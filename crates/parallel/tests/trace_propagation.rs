//! Trace-context propagation through the fan-out helpers, and span-guard
//! unwinding across worker panics.

use std::sync::{Mutex, MutexGuard};

use nidc_obs::trace::{self, TracePhase};

/// Tracing state is process-global; tests that enable it serialise here.
fn trace_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn worker_spans_parent_under_the_fan_out_call() {
    let _guard = trace_lock();
    trace::clear();
    trace::set_trace_enabled(true);
    let items: Vec<u64> = (0..16).collect();
    {
        let _root = nidc_obs::span!("test.window");
        let got = nidc_parallel::par_map(&items, 4, |x| {
            let _item = nidc_obs::span!("test.item");
            x + 1
        });
        assert_eq!(got, (1..=16).collect::<Vec<u64>>());
    }
    trace::set_trace_enabled(false);
    let events = trace::drain();
    let stats = trace::validate_events(&events).expect("well-formed");
    assert_eq!(stats.spans, 1 + 1 + 16, "window + fan_out + one per item");
    assert!(stats.threads > 1, "the gate must have fanned out");

    let root = events.iter().find(|e| e.name == "test.window").unwrap();
    let fan = events
        .iter()
        .find(|e| e.name == "parallel.fan_out" && e.phase == TracePhase::Begin)
        .expect("fan-out span recorded");
    assert_eq!(fan.parent, root.id, "fan-out nests under the caller's span");
    let item_begins: Vec<_> = events
        .iter()
        .filter(|e| e.name == "test.item" && e.phase == TracePhase::Begin)
        .collect();
    assert_eq!(item_begins.len(), 16);
    assert!(
        item_begins.iter().all(|e| e.parent == fan.id),
        "every worker span attaches to the fan-out span, not a dangling root"
    );
    assert!(
        item_begins.iter().any(|e| e.thread != root.thread),
        "some spans recorded on worker threads"
    );
}

#[test]
fn par_map_mut_propagates_context_and_track() {
    let _guard = trace_lock();
    trace::clear();
    trace::set_trace_enabled(true);
    let mut items = vec![0u64, 1];
    {
        let _track = trace::with_track(9);
        let _root = nidc_obs::span!("test.mut_window");
        nidc_parallel::par_map_mut(&mut items, 2, |x| {
            let _s = nidc_obs::span!("test.shard_unit");
            *x += 10;
        });
    }
    trace::set_trace_enabled(false);
    let events = trace::drain();
    trace::validate_events(&events).expect("well-formed");
    assert_eq!(items, vec![10, 11]);
    let fan = events
        .iter()
        .find(|e| e.name == "parallel.fan_out_mut" && e.phase == TracePhase::Begin)
        .expect("mut fan-out span recorded");
    let units: Vec<_> = events
        .iter()
        .filter(|e| e.name == "test.shard_unit" && e.phase == TracePhase::Begin)
        .collect();
    assert_eq!(units.len(), 2);
    assert!(units.iter().all(|e| e.parent == fan.id));
    assert!(
        units.iter().all(|e| e.track == 9),
        "workers inherit the caller's track through the attached context"
    );
}

#[test]
fn span_guards_unwind_across_worker_panics() {
    let _guard = trace_lock();
    trace::clear();
    trace::set_trace_enabled(true);
    let items: Vec<u64> = (0..16).collect();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        nidc_parallel::par_map(&items, 4, |x| {
            let _item = nidc_obs::span!("test.panicking_item");
            if *x == 5 {
                panic!("worker died");
            }
            *x
        })
    }));
    assert!(result.is_err(), "the worker panic must propagate");
    trace::set_trace_enabled(false);
    let events = trace::drain();
    // Every begin that made it into the trace has its end: the span guard
    // dropped during unwind, and the dying thread flushed its buffer.
    let stats = trace::validate_events(&events)
        .expect("trace stays balanced when a worker panics mid-span");
    assert!(stats.spans >= 1);
    assert!(events
        .iter()
        .any(|e| e.name == "test.panicking_item" && e.phase == TracePhase::End));
}
