//! Deterministic chunked thread fan-out shared by every parallel hot path.
//!
//! All parallelism in this workspace goes through this crate so that one
//! invariant is enforced in one place: **results are independent of thread
//! count and scheduling**. Work is split into contiguous index chunks, one
//! per worker, each worker produces its chunk's results independently, and
//! the chunks are concatenated in chunk order. Since every function here
//! takes pure per-item (or per-chunk) closures, the output is bit-identical
//! to the sequential loop for any `threads` value.
//!
//! The thread count convention across the workspace: `0` means "use
//! [`available_threads`]", `1` means sequential (no threads spawned), and
//! `n > 1` spawns at most `n` scoped workers.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

use nidc_obs::{buckets, LazyCounter, LazyHistogram};

/// Calls that fanned out over scoped worker threads.
static FANOUTS: LazyCounter = LazyCounter::new("nidc_parallel_fanouts_total");
/// Calls that took the sequential path (below the fan-out gate).
static SEQUENTIAL: LazyCounter = LazyCounter::new("nidc_parallel_sequential_total");
/// Chunks processed (sequential calls count as one chunk).
static CHUNKS: LazyCounter = LazyCounter::new("nidc_parallel_chunks_total");
/// Wall-clock seconds each chunk's closure ran for. Chunks routinely finish
/// in microseconds, so this sits on the sub-millisecond bucket family.
static CHUNK_SECONDS: LazyHistogram =
    LazyHistogram::new("nidc_parallel_chunk_seconds", buckets::FINE_SECONDS);

/// The number of hardware threads, falling back to 1 when unknown.
///
/// Cached after the first call: `available_parallelism` re-reads cgroup
/// limits on every invocation (file I/O plus heap allocations), and
/// `resolve_threads(0)` sits on hot paths — with the counting allocator on,
/// the per-call allocations would also make `threads: 0` runs tally
/// differently from explicit thread counts.
pub fn available_threads() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Resolves a user-facing thread knob: `0` → [`available_threads`],
/// anything else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        available_threads()
    } else {
        threads
    }
}

/// Splits `0..len` into at most `chunks` contiguous ranges of near-equal
/// size, in order. Returns fewer ranges when `len < chunks`; never returns
/// an empty range.
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<Range<usize>> {
    let chunks = chunks.max(1).min(len);
    if chunks == 0 {
        return Vec::new();
    }
    let per = len.div_ceil(chunks);
    (0..chunks)
        .map(|c| (c * per)..((c + 1) * per).min(len))
        .filter(|r| !r.is_empty())
        .collect()
}

/// Shared accumulator for worker-thread allocation deltas across one
/// fan-out. Workers measure their own thread-local tallies around the chunk
/// closure; the spawner folds the sum into *its* thread tallies before the
/// fan-out span closes, so enclosing spans attribute worker allocations the
/// same way `SpanContext` chaining attributes worker spans. Inert (and
/// entirely unused) while allocation tracking is off.
struct WorkerAllocFold {
    active: bool,
    allocs: AtomicU64,
    bytes: AtomicU64,
}

impl WorkerAllocFold {
    fn new() -> Self {
        Self {
            active: nidc_obs::alloc::tracking_enabled(),
            allocs: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Runs `work` on a worker thread, accumulating its allocation delta.
    fn measure<R>(&self, work: impl FnOnce() -> R) -> R {
        if !self.active {
            return work();
        }
        let (a0, b0) = nidc_obs::alloc::thread_tallies();
        let out = work();
        let (a1, b1) = nidc_obs::alloc::thread_tallies();
        self.allocs
            .fetch_add(a1.wrapping_sub(a0), Ordering::Relaxed);
        self.bytes.fetch_add(b1.wrapping_sub(b0), Ordering::Relaxed);
        out
    }

    /// Folds the accumulated worker deltas into the calling thread.
    /// Call after the scope join, before the fan-out span drops.
    fn fold_into_caller(self) {
        if self.active {
            nidc_obs::alloc::add_external(self.allocs.into_inner(), self.bytes.into_inner());
        }
    }
}

/// Whether fanning `len` items out over `threads` workers is worthwhile;
/// the same gate every call site used ad hoc before this crate existed.
/// `threads` must already be resolved (see [`resolve_threads`]).
pub fn should_fan_out(len: usize, threads: usize) -> bool {
    // Register (without incrementing) every fan-out metric at the decision
    // point: call sites gate on this before touching `par_chunks`, so on a
    // host that never crosses the gate these metrics would otherwise be
    // absent from snapshots entirely.
    FANOUTS.add(0);
    SEQUENTIAL.add(0);
    CHUNKS.add(0);
    CHUNK_SECONDS.touch();
    threads > 1 && len >= 2 * threads
}

/// Maps `f` over each chunk of `0..len`, one worker per chunk, and returns
/// the per-chunk results in chunk order.
///
/// This is the primitive the item-level helpers build on; use it directly
/// when the natural unit of work is a whole range (e.g. building one map
/// per chunk and merging them in order).
pub fn par_chunks<R, F>(len: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let threads = resolve_threads(threads);
    if !should_fan_out(len, threads) {
        // add(0) registers the fan-out counter so snapshots report it even
        // in runs that never cross the gate (single-core hosts).
        SEQUENTIAL.inc();
        FANOUTS.add(0);
        return chunk_ranges(len, 1)
            .into_iter()
            .map(|range| {
                CHUNKS.inc();
                let _timer = CHUNK_SECONDS.start_timer();
                f(range)
            })
            .collect();
    }
    FANOUTS.inc();
    SEQUENTIAL.add(0);
    // Workers are fresh threads with no current span; capture the caller's
    // trace context (inside a span covering the whole fan-out) and attach
    // it in each worker so spans opened by `f` parent under this call.
    let _fan_span = nidc_obs::span!("parallel.fan_out");
    let ctx = nidc_obs::trace::current_context();
    let fold = WorkerAllocFold::new();
    let ranges = chunk_ranges(len, threads);
    let mut results: Vec<Option<R>> = Vec::new();
    results.resize_with(ranges.len(), || None);
    std::thread::scope(|scope| {
        for (slot, range) in results.iter_mut().zip(ranges) {
            let f = &f;
            let fold = &fold;
            scope.spawn(move || {
                // Declared first so it drops last: the flush must follow
                // every span close, and must run even if `f` panics, so the
                // spawner's drain sees this worker's events after the join.
                let _flush = nidc_obs::trace::flush_on_exit();
                let _ctx = ctx.attach();
                CHUNKS.inc();
                let _timer = CHUNK_SECONDS.start_timer();
                *slot = Some(fold.measure(|| f(range)));
            });
        }
    });
    // Before `_fan_span` drops: the fan-out span (and everything above it)
    // absorbs the worker-thread allocation deltas.
    fold.fold_into_caller();
    results
        .into_iter()
        .map(|r| r.expect("worker filled its slot"))
        .collect()
}

/// Maps `f` over `0..len` in parallel; `results[i] == f(i)` exactly as in
/// the sequential loop, regardless of thread count.
pub fn par_map_indices<R, F>(len: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_chunks(len, threads, |range| range.map(&f).collect::<Vec<R>>())
        .into_iter()
        .flatten()
        .collect()
}

/// Maps `f` over a slice in parallel; `results[i] == f(&items[i])`.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indices(items.len(), threads, |i| f(&items[i]))
}

/// Maps `f` over a mutable slice in parallel; `results[i] == f(&mut
/// items[i])` exactly as in the sequential loop, for any thread count.
///
/// The slice is split into contiguous `chunks_mut` regions, one scoped
/// worker per region, so each worker holds an exclusive borrow of its items
/// — mutation needs no locks and no `unsafe`. Unlike the read-only helpers,
/// this one fans out whenever `threads > 1` and there are at least two
/// items: it exists for **coarse-grained** units of work (one pipeline
/// shard, one partition) where even two items are worth two workers, not
/// for fine-grained item loops (those should keep using [`par_map`] and its
/// `len >= 2·threads` gate).
pub fn par_map_mut<T, R, F>(items: &mut [T], threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    let threads = resolve_threads(threads);
    let len = items.len();
    // Register the fan-out metrics at the decision point, as should_fan_out
    // does for the read-only helpers.
    FANOUTS.add(0);
    SEQUENTIAL.add(0);
    CHUNKS.add(0);
    CHUNK_SECONDS.touch();
    if threads <= 1 || len <= 1 {
        SEQUENTIAL.inc();
        return items
            .iter_mut()
            .map(|item| {
                CHUNKS.inc();
                let _timer = CHUNK_SECONDS.start_timer();
                f(item)
            })
            .collect();
    }
    FANOUTS.inc();
    // Same trace-context handoff as `par_chunks`: shard/partition closures
    // open spans of their own, and those must parent under this call site
    // (and inherit its track) rather than dangle as roots.
    let _fan_span = nidc_obs::span!("parallel.fan_out_mut");
    let ctx = nidc_obs::trace::current_context();
    let fold = WorkerAllocFold::new();
    let ranges = chunk_ranges(len, threads);
    let mut results: Vec<Option<Vec<R>>> = Vec::new();
    results.resize_with(ranges.len(), || None);
    std::thread::scope(|scope| {
        let mut rest = items;
        let mut offset = 0;
        for (slot, range) in results.iter_mut().zip(&ranges) {
            let (chunk, tail) = rest.split_at_mut(range.end - offset);
            offset = range.end;
            rest = tail;
            let f = &f;
            let fold = &fold;
            scope.spawn(move || {
                // First so it drops last; see the par_chunks worker.
                let _flush = nidc_obs::trace::flush_on_exit();
                let _ctx = ctx.attach();
                CHUNKS.inc();
                let _timer = CHUNK_SECONDS.start_timer();
                *slot = Some(fold.measure(|| chunk.iter_mut().map(f).collect()));
            });
        }
    });
    // Same as par_chunks: fold worker deltas in while the span is open.
    fold.fold_into_caller();
    results
        .into_iter()
        .flat_map(|r| r.expect("worker filled its slot"))
        .collect()
}

/// Folds each chunk of `0..len` sequentially with `fold`, then combines
/// the per-chunk accumulators **in chunk order** with `merge`.
///
/// Deterministic for any thread count, but note the caveat shared by every
/// parallel reduction: the result equals the sequential fold only when
/// `merge` is exactly associative over the accumulators (true for counts,
/// maps keyed by disjoint items, max by a total order — not for float
/// sums). Hot paths that need bit-identical float statistics keep their
/// accumulation sequential and parallelise only the pure per-item work.
pub fn par_fold<A, F, M>(
    len: usize,
    threads: usize,
    init: impl Fn() -> A + Sync,
    fold: F,
    merge: M,
) -> A
where
    A: Send,
    F: Fn(A, usize) -> A + Sync,
    M: Fn(A, A) -> A,
{
    par_chunks(len, threads, |range| range.fold(init(), &fold))
        .into_iter()
        .reduce(merge)
        .unwrap_or_else(init)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        for len in [0usize, 1, 2, 3, 7, 16, 100, 101] {
            for chunks in [1usize, 2, 3, 4, 7, 13] {
                let ranges = chunk_ranges(len, chunks);
                let mut covered = Vec::new();
                for r in &ranges {
                    assert!(!r.is_empty(), "empty chunk for len={len} chunks={chunks}");
                    covered.extend(r.clone());
                }
                assert_eq!(covered, (0..len).collect::<Vec<_>>());
                assert!(ranges.len() <= chunks);
            }
        }
    }

    #[test]
    fn par_map_matches_sequential_for_any_thread_count() {
        let items: Vec<u64> = (0..103).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [0usize, 1, 2, 4, 7] {
            assert_eq!(par_map(&items, threads, |x| x * x + 1), expected);
        }
    }

    #[test]
    fn par_map_indices_preserves_order() {
        for threads in [0usize, 1, 2, 4, 7] {
            let got = par_map_indices(57, threads, |i| i as u64 * 3);
            assert_eq!(got, (0..57).map(|i| i as u64 * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_chunks_concatenates_in_chunk_order() {
        for threads in [0usize, 1, 2, 4, 7] {
            let per_chunk = par_chunks(40, threads, |r| (r.start, r.end));
            let mut pos = 0;
            for (start, end) in per_chunk {
                assert_eq!(start, pos);
                pos = end;
            }
            assert_eq!(pos, 40);
        }
    }

    #[test]
    fn par_fold_counts_deterministically() {
        for threads in [0usize, 1, 2, 4, 7] {
            let count = par_fold(
                1000,
                threads,
                || 0u64,
                |acc, i| acc + u64::from(i % 3 == 0),
                |a, b| a + b,
            );
            assert_eq!(count, 334);
        }
    }

    #[test]
    fn small_inputs_stay_sequential_but_correct() {
        // len < 2*threads takes the sequential path
        assert_eq!(par_map(&[1, 2, 3], 8, |x| x + 1), vec![2, 3, 4]);
        assert_eq!(par_map::<u32, u32, _>(&[], 4, |x| *x), Vec::<u32>::new());
    }

    #[test]
    fn par_map_mut_matches_sequential_for_any_thread_count() {
        let reference: Vec<u64> = (0..37).map(|x: u64| x * 2 + 1).collect();
        for threads in [0usize, 1, 2, 4, 7] {
            let mut items: Vec<u64> = (0..37).collect();
            let returned = par_map_mut(&mut items, threads, |x| {
                *x = *x * 2 + 1;
                *x
            });
            assert_eq!(items, reference, "threads={threads}");
            assert_eq!(returned, reference, "threads={threads}");
        }
    }

    #[test]
    fn par_map_mut_fans_out_even_with_few_items() {
        // two items, two threads: the coarse-grained helper must not fall
        // back to sequential (and must still be order-exact)
        let mut items = vec![10u64, 20];
        let got = par_map_mut(&mut items, 2, |x| {
            *x += 1;
            *x
        });
        assert_eq!(got, vec![11, 21]);
        assert_eq!(items, vec![11, 21]);
    }

    #[test]
    fn par_map_mut_handles_empty_and_single() {
        let mut empty: Vec<u32> = Vec::new();
        assert_eq!(par_map_mut(&mut empty, 4, |x| *x), Vec::<u32>::new());
        let mut one = vec![7u32];
        assert_eq!(par_map_mut(&mut one, 4, |x| *x + 1), vec![8]);
        assert_eq!(one, vec![7]); // closure read, did not assign
    }

    #[test]
    fn worker_alloc_deltas_fold_into_the_caller() {
        // The only test in this binary that toggles allocation tracking, so
        // no cross-test lock is needed; tallies are per-thread anyway.
        nidc_obs::alloc::set_tracking(true);
        let (a0, b0) = nidc_obs::alloc::thread_tallies();
        let results = par_map_indices(16, 4, |i| vec![i as u64; 64]);
        let (a1, b1) = nidc_obs::alloc::thread_tallies();
        nidc_obs::alloc::set_tracking(false);
        assert_eq!(results.len(), 16);
        assert!(
            a1 - a0 >= 16,
            "every worker-side Vec allocation must fold into the caller ({})",
            a1 - a0
        );
        assert!(b1 - b0 >= 16 * 64 * 8, "folded bytes: {}", b1 - b0);
    }

    #[test]
    fn resolve_threads_maps_zero_to_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
