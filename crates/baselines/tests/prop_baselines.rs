//! Property tests for the baseline clustering methods: totality,
//! conservation of documents, and determinism.

use nidc_baselines::{gac, incr, kmeans, GacConfig, IncrConfig, KMeansConfig};
use nidc_textproc::{DocId, SparseVector, TermId};
use proptest::prelude::*;

fn docs_strategy() -> impl Strategy<Value = Vec<(DocId, SparseVector)>> {
    prop::collection::vec(prop::collection::vec((0u32..20, 0.1f64..3.0), 1..8), 1..30).prop_map(
        |raw| {
            raw.into_iter()
                .enumerate()
                .map(|(i, pairs)| {
                    (
                        DocId(i as u64),
                        SparseVector::from_entries(
                            pairs.into_iter().map(|(t, w)| (TermId(t), w)).collect(),
                        ),
                    )
                })
                .collect()
        },
    )
}

fn sorted_ids(clusters: &[Vec<DocId>]) -> Vec<u64> {
    let mut ids: Vec<u64> = clusters.iter().flatten().map(|d| d.0).collect();
    ids.sort_unstable();
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// K-means assigns every document exactly once, for any K.
    #[test]
    fn kmeans_conserves_documents(docs in docs_strategy(), k in 1usize..8, seed in 0u64..5) {
        let result = kmeans(&docs, &KMeansConfig { k, seed, ..KMeansConfig::default() });
        prop_assert_eq!(sorted_ids(&result.clusters), (0..docs.len() as u64).collect::<Vec<_>>());
        prop_assert!(result.iterations >= 1);
    }

    /// K-means is deterministic for a fixed seed.
    #[test]
    fn kmeans_deterministic(docs in docs_strategy(), k in 1usize..6) {
        let cfg = KMeansConfig { k, seed: 9, ..KMeansConfig::default() };
        prop_assert_eq!(kmeans(&docs, &cfg).clusters, kmeans(&docs, &cfg).clusters);
    }

    /// INCR conserves all non-zero documents and respects creation order.
    #[test]
    fn incr_conserves_documents(docs in docs_strategy(), threshold in 0.0f64..1.0) {
        let timed: Vec<(DocId, f64, SparseVector)> = docs
            .iter()
            .enumerate()
            .map(|(i, (id, v))| (*id, i as f64 * 0.1, v.clone()))
            .collect();
        let clusters = incr(&timed, &IncrConfig { threshold, ..IncrConfig::default() });
        prop_assert_eq!(sorted_ids(&clusters), (0..docs.len() as u64).collect::<Vec<_>>());
        // no empty clusters
        prop_assert!(clusters.iter().all(|c| !c.is_empty()));
    }

    /// With threshold 0 every doc joins the first cluster; with threshold
    /// > 1 every doc becomes its own cluster.
    #[test]
    fn incr_threshold_extremes(docs in docs_strategy()) {
        let timed: Vec<(DocId, f64, SparseVector)> = docs
            .iter()
            .enumerate()
            .map(|(i, (id, v))| (*id, i as f64 * 0.1, v.clone()))
            .collect();
        let all_in_one = incr(&timed, &IncrConfig { threshold: 0.0, ..IncrConfig::default() });
        prop_assert_eq!(all_in_one.len(), 1);
        let singletons = incr(&timed, &IncrConfig { threshold: 1.1, ..IncrConfig::default() });
        prop_assert_eq!(singletons.len(), docs.len());
    }

    /// GAC conserves documents and never exceeds… never returns fewer than
    /// one cluster nor more clusters than documents.
    #[test]
    fn gac_conserves_documents(docs in docs_strategy(), target in 1usize..6) {
        let clusters = gac(&docs, &GacConfig {
            target_clusters: target,
            bucket_size: 8,
            reduction: 0.5,
            ..GacConfig::default()
        });
        prop_assert_eq!(sorted_ids(&clusters), (0..docs.len() as u64).collect::<Vec<_>>());
        prop_assert!(!clusters.is_empty());
        prop_assert!(clusters.len() <= docs.len());
    }

    /// GAC reaches (close to) the requested number of top-level clusters
    /// when enough documents exist.
    #[test]
    fn gac_hits_target(docs in docs_strategy(), target in 1usize..4) {
        prop_assume!(docs.len() >= 8);
        let clusters = gac(&docs, &GacConfig {
            target_clusters: target,
            bucket_size: 6,
            reduction: 0.5,
            ..GacConfig::default()
        });
        prop_assert!(clusters.len() <= target.max(1) + 1,
            "{} clusters for target {target}", clusters.len());
    }
}
