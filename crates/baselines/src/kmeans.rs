//! Classic cosine (spherical) K-means — the algorithm of the paper's §4.1
//! that the extended method builds on.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use nidc_textproc::{DocId, SparseVector};

/// Seeding strategy for the initial centroids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Seeding {
    /// K documents chosen uniformly at random (the paper's step 1).
    Random,
    /// Farthest-point (k-means++-style) seeding: iteratively pick the
    /// document least similar to its nearest chosen seed.
    FarthestPoint,
}

/// Configuration for [`kmeans`].
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters K.
    pub k: usize,
    /// Maximum iterations before giving up on convergence.
    pub max_iters: usize,
    /// RNG seed for the initial centroid choice.
    pub seed: u64,
    /// Seeding strategy.
    pub seeding: Seeding,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 8,
            max_iters: 50,
            seed: 42,
            seeding: Seeding::Random,
        }
    }
}

/// The outcome of a K-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Document ids per cluster (clusters may be empty).
    pub clusters: Vec<Vec<DocId>>,
    /// Iterations executed until convergence (no assignment changed).
    pub iterations: usize,
    /// Sum over documents of cosine similarity to their centroid (higher is
    /// tighter).
    pub objective: f64,
}

struct Dense {
    v: Vec<f64>,
    norm: f64,
}

impl Dense {
    fn zero(dim: usize) -> Self {
        Self {
            v: vec![0.0; dim],
            norm: 0.0,
        }
    }

    fn add(&mut self, s: &SparseVector) {
        for (t, w) in s.iter() {
            let i = t.index();
            if i >= self.v.len() {
                self.v.resize(i + 1, 0.0);
            }
            self.v[i] += w;
        }
    }

    fn refresh_norm(&mut self) {
        self.norm = self.v.iter().map(|x| x * x).sum::<f64>().sqrt();
    }

    /// Cosine between the dense centroid and a unit-normalised sparse doc.
    fn cosine(&self, s: &SparseVector) -> f64 {
        if self.norm == 0.0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for (t, w) in s.iter() {
            if let Some(&c) = self.v.get(t.index()) {
                acc += c * w;
            }
        }
        acc / self.norm
    }
}

/// Runs cosine K-means on the given documents (vectors are L2-normalised
/// internally; zero vectors are dropped into their own trailing cluster
/// assignment order but never crash).
///
/// Follows the paper's description of the classic method: choose K seeds,
/// assign every document to the most similar centroid, recompute centroids,
/// repeat until no assignment changes (or `max_iters`).
pub fn kmeans(docs: &[(DocId, SparseVector)], config: &KMeansConfig) -> KMeansResult {
    let k = config.k.min(docs.len()).max(1);
    let dim = docs
        .iter()
        .flat_map(|(_, v)| v.entries().last().map(|&(t, _)| t.index() + 1))
        .max()
        .unwrap_or(0);
    // unit-normalise
    let unit: Vec<SparseVector> = docs
        .iter()
        .map(|(_, v)| v.normalized().unwrap_or_default())
        .collect();

    if docs.is_empty() {
        return KMeansResult {
            clusters: vec![Vec::new(); k],
            iterations: 0,
            objective: 0.0,
        };
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let seed_idx: Vec<usize> = match config.seeding {
        Seeding::Random => {
            let mut idx: Vec<usize> = (0..docs.len()).collect();
            idx.shuffle(&mut rng);
            idx.truncate(k);
            idx
        }
        Seeding::FarthestPoint => {
            let mut chosen = vec![rng.gen_range(0..docs.len())];
            while chosen.len() < k {
                // similarity of each doc to its nearest chosen seed
                let next = (0..docs.len())
                    .filter(|i| !chosen.contains(i))
                    .min_by(|&a, &b| {
                        let sa = chosen
                            .iter()
                            .map(|&c| unit[a].dot(&unit[c]))
                            .fold(f64::NEG_INFINITY, f64::max);
                        let sb = chosen
                            .iter()
                            .map(|&c| unit[b].dot(&unit[c]))
                            .fold(f64::NEG_INFINITY, f64::max);
                        sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
                    });
                match next {
                    Some(i) => chosen.push(i),
                    None => break,
                }
            }
            chosen
        }
    };

    let mut centroids: Vec<Dense> = seed_idx
        .iter()
        .map(|&i| {
            let mut d = Dense::zero(dim);
            d.add(&unit[i]);
            d.refresh_norm();
            d
        })
        .collect();

    let mut assignment: Vec<usize> = vec![usize::MAX; docs.len()];
    let mut iterations = 0;
    for _ in 0..config.max_iters {
        iterations += 1;
        let mut changed = false;
        for (i, u) in unit.iter().enumerate() {
            let best = centroids
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    a.cosine(u)
                        .partial_cmp(&b.cosine(u))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(p, _)| p)
                .unwrap_or(0);
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // standard empty-cluster fix-up: reseed an empty cluster with the
        // document least similar to its current centroid (taken from a
        // cluster that can spare one)
        let mut counts = vec![0usize; centroids.len()];
        for &a in &assignment {
            counts[a] += 1;
        }
        for p in 0..centroids.len() {
            if counts[p] > 0 {
                continue;
            }
            let victim = (0..unit.len())
                .filter(|&i| counts[assignment[i]] > 1)
                .min_by(|&a, &b| {
                    let sa = centroids[assignment[a]].cosine(&unit[a]);
                    let sb = centroids[assignment[b]].cosine(&unit[b]);
                    sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
                });
            if let Some(i) = victim {
                counts[assignment[i]] -= 1;
                assignment[i] = p;
                counts[p] += 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        // recompute centroids
        for c in &mut centroids {
            c.v.iter_mut().for_each(|x| *x = 0.0);
        }
        for (i, u) in unit.iter().enumerate() {
            centroids[assignment[i]].add(u);
        }
        for c in &mut centroids {
            c.refresh_norm();
        }
    }

    let mut clusters = vec![Vec::new(); centroids.len()];
    let mut objective = 0.0;
    for (i, &(id, _)) in docs.iter().enumerate() {
        clusters[assignment[i]].push(id);
        objective += centroids[assignment[i]].cosine(&unit[i]);
    }
    KMeansResult {
        clusters,
        iterations,
        objective,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nidc_textproc::TermId;

    fn v(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
    }

    /// Two well-separated groups in disjoint term subspaces.
    fn two_groups() -> Vec<(DocId, SparseVector)> {
        let mut docs = Vec::new();
        for i in 0..6u64 {
            docs.push((DocId(i), v(&[(0, 3.0 + i as f64 % 2.0), (1, 1.0)])));
        }
        for i in 6..12u64 {
            docs.push((DocId(i), v(&[(5, 2.0), (6, 3.0 + i as f64 % 2.0)])));
        }
        docs
    }

    #[test]
    fn separates_disjoint_groups() {
        let docs = two_groups();
        let result = kmeans(
            &docs,
            &KMeansConfig {
                k: 2,
                ..KMeansConfig::default()
            },
        );
        let nonempty: Vec<_> = result.clusters.iter().filter(|c| !c.is_empty()).collect();
        assert_eq!(nonempty.len(), 2);
        for cluster in nonempty {
            let low = cluster.iter().filter(|d| d.0 < 6).count();
            assert!(
                low == 0 || low == cluster.len(),
                "mixed cluster: {cluster:?}"
            );
        }
    }

    #[test]
    fn converges_and_reports_iterations() {
        let docs = two_groups();
        let result = kmeans(
            &docs,
            &KMeansConfig {
                k: 2,
                max_iters: 100,
                ..KMeansConfig::default()
            },
        );
        assert!(result.iterations < 100, "did not converge");
        assert!(result.objective > 0.0);
    }

    #[test]
    fn k_larger_than_docs_is_clamped() {
        let docs = vec![(DocId(0), v(&[(0, 1.0)])), (DocId(1), v(&[(1, 1.0)]))];
        let result = kmeans(
            &docs,
            &KMeansConfig {
                k: 10,
                ..KMeansConfig::default()
            },
        );
        let assigned: usize = result.clusters.iter().map(Vec::len).sum();
        assert_eq!(assigned, 2);
    }

    #[test]
    fn empty_input() {
        let result = kmeans(&[], &KMeansConfig::default());
        assert_eq!(result.iterations, 0);
        assert!(result.clusters.iter().all(Vec::is_empty));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let docs = two_groups();
        let cfg = KMeansConfig {
            k: 3,
            seed: 7,
            ..KMeansConfig::default()
        };
        let a = kmeans(&docs, &cfg);
        let b = kmeans(&docs, &cfg);
        assert_eq!(a.clusters, b.clusters);
    }

    #[test]
    fn farthest_point_seeding_separates_groups() {
        let docs = two_groups();
        let result = kmeans(
            &docs,
            &KMeansConfig {
                k: 2,
                seeding: Seeding::FarthestPoint,
                ..KMeansConfig::default()
            },
        );
        for cluster in result.clusters.iter().filter(|c| !c.is_empty()) {
            let low = cluster.iter().filter(|d| d.0 < 6).count();
            assert!(low == 0 || low == cluster.len());
        }
    }

    #[test]
    fn all_documents_assigned_exactly_once() {
        let docs = two_groups();
        let result = kmeans(
            &docs,
            &KMeansConfig {
                k: 4,
                ..KMeansConfig::default()
            },
        );
        let mut all: Vec<u64> = result.clusters.iter().flatten().map(|d| d.0).collect();
        all.sort_unstable();
        assert_eq!(all, (0..12).collect::<Vec<_>>());
    }
}
