//! Single-pass incremental clustering (INCR, Yang et al. 1999 — paper §2.2).
//!
//! Documents are processed one at a time in arrival order. A document joins
//! the existing cluster whose centroid it is most similar to if that
//! similarity clears a preselected threshold; otherwise it seeds a new
//! cluster. A linear time-decay window optionally discounts similarity to
//! old clusters — the lineage the paper contrasts its *exponential* decay
//! against.

use nidc_textproc::{DocId, SparseVector};

/// Configuration for [`incr`].
#[derive(Debug, Clone)]
pub struct IncrConfig {
    /// Similarity threshold for joining an existing cluster.
    pub threshold: f64,
    /// Linear decay window in days: a cluster last touched `age` days ago has
    /// its similarity scaled by `max(0, 1 − age/window)`. `None` disables
    /// decay (pure INCR).
    pub window_days: Option<f64>,
    /// Upper bound on the number of clusters (0 = unlimited). When the bound
    /// is hit, documents below threshold join their best cluster anyway.
    pub max_clusters: usize,
}

impl Default for IncrConfig {
    fn default() -> Self {
        Self {
            threshold: 0.3,
            window_days: None,
            max_clusters: 0,
        }
    }
}

struct IncrCluster {
    centroid: Vec<f64>,
    norm: f64,
    members: Vec<DocId>,
    last_touched: f64,
}

impl IncrCluster {
    fn cosine(&self, unit: &SparseVector) -> f64 {
        if self.norm == 0.0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for (t, w) in unit.iter() {
            if let Some(&c) = self.centroid.get(t.index()) {
                acc += c * w;
            }
        }
        acc / self.norm
    }

    fn add(&mut self, unit: &SparseVector, id: DocId, day: f64) {
        for (t, w) in unit.iter() {
            let i = t.index();
            if i >= self.centroid.len() {
                self.centroid.resize(i + 1, 0.0);
            }
            self.centroid[i] += w;
        }
        self.norm = self.centroid.iter().map(|x| x * x).sum::<f64>().sqrt();
        self.members.push(id);
        self.last_touched = day;
    }
}

/// Runs single-pass INCR over `(id, day, vector)` triples, which must be in
/// chronological order. Returns document ids per cluster, in creation order.
pub fn incr(docs: &[(DocId, f64, SparseVector)], config: &IncrConfig) -> Vec<Vec<DocId>> {
    let mut clusters: Vec<IncrCluster> = Vec::new();
    for (id, day, v) in docs {
        let Some(unit) = v.normalized() else {
            continue; // zero vector carries no signal
        };
        let mut best: Option<(usize, f64)> = None;
        for (p, c) in clusters.iter().enumerate() {
            let mut s = c.cosine(&unit);
            if let Some(w) = config.window_days {
                let age = (day - c.last_touched).max(0.0);
                s *= (1.0 - age / w).max(0.0);
            }
            if best.is_none_or(|(_, bs)| s > bs) {
                best = Some((p, s));
            }
        }
        let join = match best {
            Some((_, s)) if s >= config.threshold => true,
            _ => config.max_clusters > 0 && clusters.len() >= config.max_clusters,
        };
        if join {
            let (p, _) = best.expect("join implies a best cluster");
            clusters[p].add(&unit, *id, *day);
        } else {
            let mut c = IncrCluster {
                centroid: Vec::new(),
                norm: 0.0,
                members: Vec::new(),
                last_touched: *day,
            };
            c.add(&unit, *id, *day);
            clusters.push(c);
        }
    }
    clusters.into_iter().map(|c| c.members).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nidc_textproc::TermId;

    fn v(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
    }

    #[test]
    fn groups_similar_documents() {
        let docs = vec![
            (DocId(0), 0.0, v(&[(0, 1.0), (1, 1.0)])),
            (DocId(1), 0.1, v(&[(0, 1.0), (1, 2.0)])),
            (DocId(2), 0.2, v(&[(9, 1.0)])),
            (DocId(3), 0.3, v(&[(0, 2.0), (1, 1.0)])),
        ];
        let clusters = incr(&docs, &IncrConfig::default());
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0], vec![DocId(0), DocId(1), DocId(3)]);
        assert_eq!(clusters[1], vec![DocId(2)]);
    }

    #[test]
    fn high_threshold_splinters() {
        let docs = vec![
            (DocId(0), 0.0, v(&[(0, 1.0)])),
            (DocId(1), 0.1, v(&[(0, 1.0), (1, 1.0)])),
        ];
        let clusters = incr(
            &docs,
            &IncrConfig {
                threshold: 0.99,
                ..IncrConfig::default()
            },
        );
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn time_window_forces_new_cluster_for_stale_topics() {
        let docs = vec![
            (DocId(0), 0.0, v(&[(0, 1.0)])),
            // identical content, 20 days later — window is 10 days
            (DocId(1), 20.0, v(&[(0, 1.0)])),
        ];
        let without = incr(&docs, &IncrConfig::default());
        assert_eq!(without.len(), 1);
        let with = incr(
            &docs,
            &IncrConfig {
                window_days: Some(10.0),
                ..IncrConfig::default()
            },
        );
        assert_eq!(with.len(), 2, "stale cluster should not absorb new doc");
    }

    #[test]
    fn max_clusters_cap_forces_joins() {
        let docs = vec![
            (DocId(0), 0.0, v(&[(0, 1.0)])),
            (DocId(1), 0.1, v(&[(1, 1.0)])),
            (DocId(2), 0.2, v(&[(2, 1.0)])),
        ];
        let clusters = incr(
            &docs,
            &IncrConfig {
                threshold: 0.9,
                max_clusters: 2,
                ..IncrConfig::default()
            },
        );
        assert_eq!(clusters.len(), 2);
        let total: usize = clusters.iter().map(Vec::len).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn zero_vectors_are_skipped() {
        let docs = vec![(DocId(0), 0.0, SparseVector::new())];
        assert!(incr(&docs, &IncrConfig::default()).is_empty());
    }

    #[test]
    fn empty_input_yields_no_clusters() {
        assert!(incr(&[], &IncrConfig::default()).is_empty());
    }
}
