//! Baseline clustering methods the paper positions itself against (§2.2):
//!
//! * [`kmeans`] — the classic cosine (spherical) K-means the paper extends
//!   (§4.1), with random or farthest-point seeding;
//! * [`incr`] — Yang et al.'s single-pass incremental clustering (INCR):
//!   threshold-based assignment with an optional linear time-decay window;
//! * [`gac`] — Yang et al.'s bucketed group-average agglomerative clustering
//!   (GAC) with re-clustering, extending Cutting's Fractionation.
//!
//! All baselines consume `(DocId, SparseVector)` pairs (any weighting; they
//! L2-normalise internally) so they can run on exactly the same tf·idf
//! vectors as the paper's method, isolating the *algorithmic* difference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gac;
mod incr;
mod kmeans;

pub use gac::{gac, GacConfig};
pub use incr::{incr, IncrConfig};
pub use kmeans::{kmeans, KMeansConfig, KMeansResult, Seeding};
