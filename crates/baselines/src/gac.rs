//! GAC: bucketed group-average agglomerative clustering with re-clustering
//! (Yang et al. 1999, extending Cutting's Fractionation — paper §2.2).
//!
//! Chronologically ordered documents are divided into fixed-size buckets;
//! inside each bucket, group-average hierarchical agglomeration merges the
//! most similar pair until the bucket shrinks by a reduction factor ρ.
//! Surviving clusters from consecutive buckets are re-bucketed and the
//! process repeats until the global cluster count reaches the target.
//!
//! Group-average similarity between clusters of *unit* vectors is computed
//! from summed representatives: for clusters A, B with sums `S_A, S_B`,
//!
//! ```text
//! ga_sim(A,B) = (S_A · S_B) / (|A|·|B|)
//! ```
//!
//! which is exactly the average pairwise cosine between members.

use nidc_textproc::{DocId, SparseVector};

/// Configuration for [`gac`].
#[derive(Debug, Clone)]
pub struct GacConfig {
    /// Target number of top-level clusters.
    pub target_clusters: usize,
    /// Bucket size (documents or clusters per bucket).
    pub bucket_size: usize,
    /// Reduction factor ρ ∈ (0,1): each bucket is agglomerated until
    /// `⌈ρ·bucket⌉` clusters remain.
    pub reduction: f64,
    /// Worker threads for the pairwise-similarity scans (`0` = all hardware
    /// threads, `1` = sequential). The clustering is bit-identical for any
    /// value — see `nidc-parallel`.
    pub threads: usize,
}

impl Default for GacConfig {
    fn default() -> Self {
        Self {
            target_clusters: 8,
            bucket_size: 64,
            reduction: 0.5,
            threads: 0,
        }
    }
}

#[derive(Clone)]
struct GacCluster {
    sum: SparseVector,
    members: Vec<DocId>,
}

impl GacCluster {
    fn ga_sim(&self, other: &GacCluster) -> f64 {
        self.sum.dot(&other.sum) / (self.members.len() as f64 * other.members.len() as f64)
    }

    fn merge(self, other: GacCluster) -> GacCluster {
        // in-place axpy reuses the larger operand's allocation instead of
        // rebuilding the merged sum from scratch on every agglomeration
        let (mut sum, addend) = if self.sum.nnz() >= other.sum.nnz() {
            (self.sum, other.sum)
        } else {
            (other.sum, self.sum)
        };
        sum.axpy_in_place(&addend, 1.0);
        GacCluster {
            sum,
            members: {
                let mut m = self.members;
                m.extend(other.members);
                m
            },
        }
    }
}

/// The globally most-similar pair of `bucket`, scanned row-parallel over
/// `threads` workers. Each worker keeps the best pair of its contiguous row
/// range under strict `>`, and the per-chunk winners are combined in chunk
/// order, again under strict `>` — so the winner is the first strict maximum
/// in `(i, j)` scan order, exactly as in the sequential double loop, for any
/// thread count.
fn best_pair(bucket: &[GacCluster], threads: usize) -> (usize, usize, f64) {
    let scan_rows = |rows: std::ops::Range<usize>| {
        let mut best = (0usize, 1usize, f64::NEG_INFINITY);
        for i in rows {
            for j in (i + 1)..bucket.len() {
                let s = bucket[i].ga_sim(&bucket[j]);
                if s > best.2 {
                    best = (i, j, s);
                }
            }
        }
        best
    };
    if !nidc_parallel::should_fan_out(bucket.len(), threads) {
        return scan_rows(0..bucket.len());
    }
    nidc_parallel::par_chunks(bucket.len(), threads, scan_rows)
        .into_iter()
        .reduce(|a, b| if b.2 > a.2 { b } else { a })
        .expect("non-empty bucket")
}

/// Agglomerates `bucket` down to `target` clusters by repeatedly merging the
/// most similar pair (O(n²) per pass; buckets are small).
fn agglomerate(mut bucket: Vec<GacCluster>, target: usize, threads: usize) -> Vec<GacCluster> {
    while bucket.len() > target.max(1) {
        let (i, j, _) = best_pair(&bucket, threads);
        let b = bucket.swap_remove(j);
        let a = std::mem::replace(
            &mut bucket[i],
            GacCluster {
                sum: SparseVector::new(),
                members: Vec::new(),
            },
        );
        bucket[i] = a.merge(b);
    }
    bucket
}

/// Runs GAC over `(id, vector)` pairs in chronological order. Returns
/// document ids per cluster.
pub fn gac(docs: &[(DocId, SparseVector)], config: &GacConfig) -> Vec<Vec<DocId>> {
    let mut clusters: Vec<GacCluster> = docs
        .iter()
        .filter_map(|(id, v)| {
            v.normalized().map(|unit| GacCluster {
                sum: unit,
                members: vec![*id],
            })
        })
        .collect();
    if clusters.is_empty() {
        return Vec::new();
    }
    let bucket_size = config.bucket_size.max(2);
    let threads = nidc_parallel::resolve_threads(config.threads);
    loop {
        if clusters.len() <= config.target_clusters {
            break;
        }
        // One pass: bucket consecutive clusters and shrink each bucket.
        // Buckets are independent, so they agglomerate in parallel (one
        // worker per contiguous run of buckets) and are re-concatenated in
        // bucket order — the same output the sequential bucket loop
        // produces. Each bucket's own pair scan stays sequential here; the
        // row-parallel scan kicks in for the big global agglomerations.
        let num_buckets = clusters.len().div_ceil(bucket_size);
        let buckets: Vec<&[GacCluster]> = clusters.chunks(bucket_size).collect();
        let reduced_buckets: Vec<Vec<GacCluster>> =
            nidc_parallel::par_chunks(num_buckets, threads, |range| {
                range
                    .flat_map(|b| {
                        let chunk = buckets[b];
                        let target =
                            ((chunk.len() as f64 * config.reduction).ceil() as usize).max(1);
                        agglomerate(chunk.to_vec(), target, 1)
                    })
                    .collect()
            });
        let mut progressed = false;
        let mut next: Vec<GacCluster> = Vec::new();
        for reduced in reduced_buckets {
            next.extend(reduced);
        }
        if next.len() < clusters.len() {
            progressed = true;
        }
        clusters = next;
        if !progressed {
            // single bucket that cannot shrink further: finish globally
            clusters = agglomerate(clusters, config.target_clusters, threads);
            break;
        }
        if clusters.len() <= bucket_size {
            // final global agglomeration
            clusters = agglomerate(clusters, config.target_clusters, threads);
            break;
        }
    }
    clusters.into_iter().map(|c| c.members).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nidc_textproc::TermId;

    fn v(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
    }

    fn three_groups() -> Vec<(DocId, SparseVector)> {
        let mut docs = Vec::new();
        for g in 0..3u32 {
            for i in 0..5u64 {
                let id = DocId(g as u64 * 5 + i);
                docs.push((id, v(&[(g * 3, 2.0), (g * 3 + 1, 1.0 + (i % 2) as f64)])));
            }
        }
        docs
    }

    #[test]
    fn recovers_disjoint_groups() {
        let docs = three_groups();
        let clusters = gac(
            &docs,
            &GacConfig {
                target_clusters: 3,
                bucket_size: 6,
                reduction: 0.5,
                ..GacConfig::default()
            },
        );
        assert_eq!(clusters.len(), 3);
        for c in &clusters {
            let groups: std::collections::HashSet<u64> = c.iter().map(|d| d.0 / 5).collect();
            assert_eq!(groups.len(), 1, "mixed cluster {c:?}");
        }
    }

    #[test]
    fn all_docs_preserved() {
        let docs = three_groups();
        let clusters = gac(&docs, &GacConfig::default());
        let mut all: Vec<u64> = clusters.iter().flatten().map(|d| d.0).collect();
        all.sort_unstable();
        assert_eq!(all, (0..15).collect::<Vec<_>>());
    }

    #[test]
    fn ga_sim_is_average_pairwise_cosine() {
        let a = GacCluster {
            sum: v(&[(0, 1.0)]).add_scaled(&v(&[(0, 0.6), (1, 0.8)]), 1.0),
            members: vec![DocId(0), DocId(1)],
        };
        let b = GacCluster {
            sum: v(&[(1, 1.0)]),
            members: vec![DocId(2)],
        };
        // pairwise cosines: (e0·e1)=0, ((0.6,0.8)·e1)=0.8 → avg 0.4
        assert!((a.ga_sim(&b) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn target_of_one_merges_everything() {
        let docs = three_groups();
        let clusters = gac(
            &docs,
            &GacConfig {
                target_clusters: 1,
                bucket_size: 4,
                reduction: 0.5,
                ..GacConfig::default()
            },
        );
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 15);
    }

    #[test]
    fn empty_and_zero_vector_inputs() {
        assert!(gac(&[], &GacConfig::default()).is_empty());
        let docs = vec![(DocId(0), SparseVector::new())];
        assert!(gac(&docs, &GacConfig::default()).is_empty());
    }

    #[test]
    fn fewer_docs_than_target_returns_singletons() {
        let docs = vec![(DocId(0), v(&[(0, 1.0)])), (DocId(1), v(&[(1, 1.0)]))];
        let clusters = gac(
            &docs,
            &GacConfig {
                target_clusters: 5,
                ..GacConfig::default()
            },
        );
        assert_eq!(clusters.len(), 2);
    }
}
