//! Property tests: the incremental statistics path must agree with the
//! non-incremental (from-scratch) path for arbitrary chronological operation
//! sequences — this is the correctness claim behind the paper's §5.1.

use nidc_forgetting::{DecayParams, Repository, Timestamp};
use nidc_textproc::{DocId, SparseVector, TermId};
use proptest::prelude::*;

/// One repository operation in a generated scenario.
#[derive(Debug, Clone)]
enum Op {
    /// Insert a doc with the given small tf pattern after `dt` days.
    Insert { dt: f64, terms: Vec<(u8, u8)> },
    /// Advance the clock by `dt` days.
    Advance { dt: f64 },
    /// Expire old docs.
    Expire,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0.0f64..3.0, prop::collection::vec((0u8..20, 1u8..5), 1..6))
            .prop_map(|(dt, terms)| Op::Insert { dt, terms }),
        (0.0f64..5.0).prop_map(|dt| Op::Advance { dt }),
        Just(Op::Expire),
    ]
}

fn run_ops(beta: f64, gamma: f64, ops: &[Op]) -> Repository {
    let params = DecayParams::from_spans(beta, gamma).unwrap();
    let mut repo = Repository::new(params);
    let mut next_id = 0u64;
    let mut now = Timestamp(0.0);
    for op in ops {
        match op {
            Op::Insert { dt, terms } => {
                now = now + *dt;
                let tf = SparseVector::from_entries(
                    terms
                        .iter()
                        .map(|&(t, f)| (TermId(u32::from(t)), f64::from(f)))
                        .collect(),
                );
                repo.insert(DocId(next_id), now, tf).unwrap();
                next_id += 1;
            }
            Op::Advance { dt } => {
                now = now + *dt;
                repo.advance_to(now).unwrap();
            }
            Op::Expire => {
                repo.expire();
            }
        }
    }
    repo
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Incremental statistics never drift more than 1e-9 from exact values.
    #[test]
    fn incremental_matches_scratch(
        beta in 1.0f64..40.0,
        gamma_mult in 1.0f64..4.0,
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let repo = run_ops(beta, beta * gamma_mult, &ops);
        prop_assert!(repo.drift() < 1e-9, "drift = {}", repo.drift());
    }

    /// Selection probabilities always form a (sub-)distribution: every
    /// Pr(d) ∈ [0, 1] and they sum to 1 when the repository is non-empty.
    #[test]
    fn selection_probabilities_form_distribution(
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let repo = run_ops(7.0, 14.0, &ops);
        let mut total = 0.0;
        for id in repo.doc_ids() {
            let p = repo.pr_doc(id).unwrap();
            prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
            total += p;
        }
        if !repo.is_empty() {
            prop_assert!((total - 1.0).abs() < 1e-9, "ΣPr(d) = {total}");
        }
    }

    /// Term probabilities form a distribution over the live vocabulary.
    #[test]
    fn term_probabilities_form_distribution(
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let repo = run_ops(7.0, 14.0, &ops);
        if repo.is_empty() {
            return Ok(());
        }
        let mut total = 0.0;
        for k in 0..repo.vocab_dim() {
            let p = repo.pr_term(TermId(k as u32));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&p));
            total += p;
        }
        prop_assert!((total - 1.0).abs() < 1e-9, "ΣPr(t) = {total}");
    }

    /// After expire(), every remaining document has weight ≥ ε and the
    /// expired set is exactly the set of documents older than γ.
    #[test]
    fn expire_removes_exactly_the_old(
        ops in prop::collection::vec(op_strategy(), 1..50),
    ) {
        let mut repo = run_ops(7.0, 14.0, &ops);
        let eps = repo.params().epsilon();
        repo.expire();
        for (_, entry) in repo.iter() {
            prop_assert!(entry.weight() >= eps - 1e-12);
            prop_assert!(repo.now() - entry.acquired() <= 14.0 + 1e-9);
        }
    }

    /// Weights are monotonically non-increasing in age.
    #[test]
    fn older_documents_weigh_less(
        ops in prop::collection::vec(op_strategy(), 2..60),
    ) {
        let repo = run_ops(7.0, 140.0, &ops); // long life span: nothing expires
        let mut entries: Vec<_> = repo.iter().map(|(_, e)| (e.acquired(), e.weight())).collect();
        entries.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in entries.windows(2) {
            prop_assert!(w[0].1 <= w[1].1 + 1e-12,
                "older doc (t={:?}) outweighs newer (t={:?})", w[0].0, w[1].0);
        }
    }
}
