//! Decay parameters: half-life span β → forgetting factor λ (eq. 2) and
//! life span γ → expiration threshold ε = λ^γ (§5.2).

use crate::{Error, Result};

/// The forgetting-model parameters.
///
/// * `β` (*half-life span*, days): the period over which a document loses half
///   its weight. Determines the forgetting factor `λ = exp(−ln 2 / β)`
///   (paper eq. 2), so `λ^β = 1/2`.
/// * `γ` (*life span*, days): the period a document stays active; documents
///   whose weight falls below `ε = λ^γ` are expired.
///
/// The paper's settings:
/// * Experiment 1: β = 7, γ = 14 → λ ≈ 0.906 ("0.9"), ε = 0.25.
/// * Experiment 2: β ∈ {7, 30}, γ = 30.
///
/// ```
/// use nidc_forgetting::DecayParams;
///
/// let p = DecayParams::from_spans(7.0, 14.0).unwrap();
/// assert!((p.lambda().powf(7.0) - 0.5).abs() < 1e-12);   // λ^β = 1/2
/// assert!((p.epsilon() - 0.25).abs() < 1e-12);           // ε = λ^γ = (1/2)^(γ/β)
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecayParams {
    half_life: f64,
    life_span: f64,
    lambda: f64,
    epsilon: f64,
}

impl DecayParams {
    /// Builds parameters from a half-life span `beta` and life span `gamma`
    /// (both in days).
    ///
    /// # Errors
    /// Returns [`Error::InvalidParameter`] unless `beta > 0`, `gamma > 0`,
    /// and both are finite.
    pub fn from_spans(beta: f64, gamma: f64) -> Result<Self> {
        if !(beta.is_finite() && beta > 0.0) {
            return Err(Error::InvalidParameter {
                name: "half_life (beta)",
                value: beta,
            });
        }
        if !(gamma.is_finite() && gamma > 0.0) {
            return Err(Error::InvalidParameter {
                name: "life_span (gamma)",
                value: gamma,
            });
        }
        let lambda = (-(std::f64::consts::LN_2) / beta).exp();
        let epsilon = lambda.powf(gamma);
        Ok(Self {
            half_life: beta,
            life_span: gamma,
            lambda,
            epsilon,
        })
    }

    /// The forgetting factor `λ ∈ (0, 1)` (per day).
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The half-life span β in days.
    #[inline]
    pub fn half_life(&self) -> f64 {
        self.half_life
    }

    /// The life span γ in days.
    #[inline]
    pub fn life_span(&self) -> f64 {
        self.life_span
    }

    /// The expiration threshold `ε = λ^γ`.
    #[inline]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The decay factor `λ^Δτ` for an elapsed period of `delta_days`.
    ///
    /// `Δτ` must be ≥ 0: the model never travels backwards.
    #[inline]
    pub fn decay_over(&self, delta_days: f64) -> f64 {
        debug_assert!(delta_days >= 0.0, "decay_over requires Δτ ≥ 0");
        // λ^Δτ = exp(Δτ · ln λ); ln λ = −ln2/β exactly.
        (delta_days * self.lambda.ln()).exp()
    }

    /// The weight of a document `age_days` after acquisition (eq. 1).
    #[inline]
    pub fn weight_at_age(&self, age_days: f64) -> f64 {
        self.decay_over(age_days)
    }

    /// Whether a document of the given age is expired (weight < ε).
    #[inline]
    pub fn is_expired_at_age(&self, age_days: f64) -> bool {
        self.weight_at_age(age_days) < self.epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment1_parameters() {
        // K=32, β=7d, γ=14d "correspond to λ = 0.9 and ε = 0.25" (§6.1).
        let p = DecayParams::from_spans(7.0, 14.0).unwrap();
        assert!((p.lambda() - 0.9057).abs() < 5e-4); // exp(-ln2/7) ≈ 0.9057, paper rounds to 0.9
        assert!((p.epsilon() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn experiment2_parameters() {
        // β=7 → λ≈0.9; β=30 → λ≈0.98 (§6.2.2).
        let p7 = DecayParams::from_spans(7.0, 30.0).unwrap();
        let p30 = DecayParams::from_spans(30.0, 30.0).unwrap();
        assert!((p7.lambda() - 0.9).abs() < 0.01);
        assert!((p30.lambda() - 0.977).abs() < 0.005);
        // β = γ = 30 → ε = 1/2: anything older than a half-life dies.
        assert!((p30.epsilon() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn half_life_property() {
        for beta in [0.5, 1.0, 7.0, 30.0, 365.0] {
            let p = DecayParams::from_spans(beta, beta).unwrap();
            assert!(
                (p.weight_at_age(beta) - 0.5).abs() < 1e-12,
                "weight after one half-life must be 1/2 (beta={beta})"
            );
        }
    }

    #[test]
    fn decay_composes_multiplicatively() {
        let p = DecayParams::from_spans(7.0, 14.0).unwrap();
        let d1 = p.decay_over(3.0);
        let d2 = p.decay_over(4.0);
        assert!((d1 * d2 - p.decay_over(7.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_elapsed_is_identity() {
        let p = DecayParams::from_spans(7.0, 14.0).unwrap();
        assert_eq!(p.decay_over(0.0), 1.0);
        assert_eq!(p.weight_at_age(0.0), 1.0);
    }

    #[test]
    fn expiry_boundary() {
        let p = DecayParams::from_spans(7.0, 14.0).unwrap();
        assert!(!p.is_expired_at_age(13.99));
        // at exactly γ the weight equals ε, and the paper expires dw < ε (strict)
        assert!(!p.is_expired_at_age(14.0));
        assert!(p.is_expired_at_age(14.01));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(DecayParams::from_spans(0.0, 14.0).is_err());
        assert!(DecayParams::from_spans(-1.0, 14.0).is_err());
        assert!(DecayParams::from_spans(7.0, 0.0).is_err());
        assert!(DecayParams::from_spans(f64::NAN, 14.0).is_err());
        assert!(DecayParams::from_spans(7.0, f64::INFINITY).is_err());
    }

    #[test]
    fn lambda_strictly_between_zero_and_one() {
        for beta in [0.1, 1.0, 10.0, 1000.0] {
            let p = DecayParams::from_spans(beta, 1.0).unwrap();
            assert!(p.lambda() > 0.0 && p.lambda() < 1.0);
        }
    }
}
