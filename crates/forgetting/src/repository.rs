//! The document repository with forgetting-model statistics.

use std::collections::BTreeMap;

use nidc_obs::{buckets, LazyCounter, LazyHistogram};
use nidc_textproc::{DocId, SparseVector, TermId};

use crate::{DecayParams, Error, Result, StatsSnapshot, Timestamp};

/// Incremental clock-advance (decay) pass timings, O(docs + vocab).
static ADVANCE_SECONDS: LazyHistogram =
    LazyHistogram::new("nidc_forgetting_advance_seconds", buckets::LATENCY_SECONDS);
/// From-scratch statistics rebuild timings, O(total tokens).
static RECOMPUTE_SECONDS: LazyHistogram = LazyHistogram::new(
    "nidc_forgetting_recompute_seconds",
    buckets::LATENCY_SECONDS,
);
/// Documents inserted into the repository.
static DOCS_INSERTED: LazyCounter = LazyCounter::new("nidc_forgetting_docs_inserted_total");
/// Documents dropped by ε-expiration.
static DOCS_EXPIRED: LazyCounter = LazyCounter::new("nidc_forgetting_docs_expired_total");
/// Times a clamp-to-zero actually absorbed negative floating-point residue
/// (in `tdw` or a term numerator). Always-on so fp drift is observable in
/// release builds, where the accompanying `debug_assert!`s compile out.
static FP_RESIDUE_CLAMPS: LazyCounter = LazyCounter::new("nidc_fp_residue_clamps_total");

/// A stored document: raw term frequencies plus forgetting-model state.
#[derive(Debug, Clone)]
pub struct DocEntry {
    tf: SparseVector,
    len: f64,
    acquired: Timestamp,
    weight: f64,
}

impl DocEntry {
    /// Raw term frequencies `f_ik`.
    pub fn tf(&self) -> &SparseVector {
        &self.tf
    }

    /// Document length `len_i = Σ_l f_il` (eq. 15).
    pub fn len(&self) -> f64 {
        self.len
    }

    /// Acquisition time `T_i`.
    pub fn acquired(&self) -> Timestamp {
        self.acquired
    }

    /// Current weight `dw_i` (relative to the repository clock).
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The conditional term distribution `Pr(t_k|d_i) = f_ik/len_i` (eq. 8).
    pub fn term_distribution(&self) -> SparseVector {
        self.tf.scaled(1.0 / self.len)
    }
}

/// Aggregate statistics of a [`Repository`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepositoryStats {
    /// Number of live documents.
    pub num_docs: usize,
    /// Dimension of the term-statistics table (highest seen term id + 1).
    pub vocab_dim: usize,
    /// Total document weight `tdw` (eq. 3).
    pub tdw: f64,
    /// The repository clock.
    pub now: Timestamp,
}

/// The document repository: documents, their decaying weights, and the
/// derived probabilities of the forgetting model.
///
/// See the [crate documentation](crate) for the model and the incremental /
/// non-incremental update paths.
#[derive(Debug, Clone)]
pub struct Repository {
    params: DecayParams,
    now: Timestamp,
    docs: BTreeMap<DocId, DocEntry>,
    /// `tdw = Σ_i dw_i` (eq. 3), maintained incrementally (eq. 28).
    tdw: f64,
    /// Per-term numerators `S_k = Σ_i dw_i · Pr(t_k|d_i)`, so that
    /// `Pr(t_k) = S_k / tdw` (eq. 10). Indexed by term id.
    term_num: Vec<f64>,
}

impl Repository {
    /// Creates an empty repository with clock at the epoch.
    pub fn new(params: DecayParams) -> Self {
        Self {
            params,
            now: Timestamp::EPOCH,
            docs: BTreeMap::new(),
            tdw: 0.0,
            term_num: Vec::new(),
        }
    }

    /// The decay parameters.
    pub fn params(&self) -> &DecayParams {
        &self.params
    }

    /// The repository clock `τ` (time of the last update).
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Number of live documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the repository holds no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Whether document `id` is stored.
    pub fn contains(&self, id: DocId) -> bool {
        self.docs.contains_key(&id)
    }

    /// The stored entry for `id`.
    pub fn doc(&self, id: DocId) -> Option<&DocEntry> {
        self.docs.get(&id)
    }

    /// Iterates `(DocId, &DocEntry)` in id order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (DocId, &DocEntry)> {
        self.docs.iter().map(|(&id, e)| (id, e))
    }

    /// The ids of all live documents, in order.
    pub fn doc_ids(&self) -> Vec<DocId> {
        self.docs.keys().copied().collect()
    }

    /// Total document weight `tdw` (eq. 3).
    pub fn tdw(&self) -> f64 {
        self.tdw
    }

    /// Dimension of the term-statistics table.
    pub fn vocab_dim(&self) -> usize {
        self.term_num.len()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> RepositoryStats {
        RepositoryStats {
            num_docs: self.docs.len(),
            vocab_dim: self.term_num.len(),
            tdw: self.tdw,
            now: self.now,
        }
    }

    /// Current weight `dw_i` of document `id` (eq. 1).
    pub fn doc_weight(&self, id: DocId) -> Result<f64> {
        self.docs
            .get(&id)
            .map(|e| e.weight)
            .ok_or(Error::UnknownDocument(id))
    }

    /// Selection probability `Pr(d_i) = dw_i / tdw` (eq. 4).
    pub fn pr_doc(&self, id: DocId) -> Result<f64> {
        let w = self.doc_weight(id)?;
        Ok(if self.tdw > 0.0 { w / self.tdw } else { 0.0 })
    }

    /// Term occurrence probability `Pr(t_k)` (eq. 10).
    ///
    /// Returns 0 for terms no live document contains.
    pub fn pr_term(&self, term: TermId) -> f64 {
        if self.tdw <= 0.0 {
            return 0.0;
        }
        match self.term_num.get(term.index()) {
            Some(&s) if s > 0.0 => s / self.tdw,
            Some(_) | None => 0.0,
        }
    }

    /// Advances the repository clock to `t`, decaying every statistic by
    /// `λ^Δτ` — the paper's incremental update (eqs. 27–28 and the analogous
    /// scaling of the `S_k` numerators).
    ///
    /// Cost: O(#docs + vocab_dim).
    ///
    /// # Errors
    /// [`Error::TimeWentBackwards`] if `t` precedes the clock;
    /// [`Error::NonFiniteTimestamp`] for NaN/infinite `t`.
    pub fn advance_to(&mut self, t: Timestamp) -> Result<()> {
        if !t.is_finite() {
            return Err(Error::NonFiniteTimestamp(t));
        }
        if t < self.now {
            return Err(Error::TimeWentBackwards {
                current: self.now,
                requested: t,
            });
        }
        let delta = t - self.now;
        if delta == 0.0 {
            return Ok(());
        }
        // Span after the zero-delta early return: only real decay passes
        // show up in a trace.
        let _span = nidc_obs::span!("repo.advance");
        let _timer = ADVANCE_SECONDS.start_timer();
        let factor = self.params.decay_over(delta);
        for entry in self.docs.values_mut() {
            entry.weight *= factor; // eq. 27
        }
        self.tdw *= factor; // eq. 28 (new-document term added by insert())
        for s in &mut self.term_num {
            *s *= factor;
        }
        self.now = t;
        Ok(())
    }

    /// Inserts a document acquired at time `t` with raw term frequencies
    /// `tf`. The clock is advanced to `t` first (documents must arrive in
    /// chronological order).
    ///
    /// # Errors
    /// [`Error::DuplicateDocument`], [`Error::EmptyDocument`], or any error
    /// of [`Repository::advance_to`].
    pub fn insert(&mut self, id: DocId, t: Timestamp, tf: SparseVector) -> Result<()> {
        if self.docs.contains_key(&id) {
            return Err(Error::DuplicateDocument(id));
        }
        let len = tf.sum();
        if len <= 0.0 || len.is_nan() {
            return Err(Error::EmptyDocument(id));
        }
        self.advance_to(t)?;
        // New document: dw = 1 (§5.1 step 1), tdw += 1 (the m' term of eq. 28),
        // S_k += Pr(t_k|d) for each term.
        for (term, f) in tf.iter() {
            let idx = term.index();
            if idx >= self.term_num.len() {
                self.term_num.resize(idx + 1, 0.0);
            }
            self.term_num[idx] += f / len;
        }
        self.tdw += 1.0;
        self.docs.insert(
            id,
            DocEntry {
                tf,
                len,
                acquired: t,
                weight: 1.0,
            },
        );
        DOCS_INSERTED.inc();
        Ok(())
    }

    /// Inserts a batch of documents that all arrived at time `t`.
    ///
    /// On error, documents inserted earlier in the batch remain stored.
    pub fn insert_batch<I>(&mut self, t: Timestamp, docs: I) -> Result<()>
    where
        I: IntoIterator<Item = (DocId, SparseVector)>,
    {
        for (id, tf) in docs {
            self.insert(id, t, tf)?;
        }
        Ok(())
    }

    /// Removes document `id`, subtracting its contributions from `tdw` and
    /// the term numerators. Returns the removed entry.
    pub fn remove(&mut self, id: DocId) -> Result<DocEntry> {
        let entry = self.docs.remove(&id).ok_or(Error::UnknownDocument(id))?;
        let mut clamps = 0u64;
        self.tdw -= entry.weight;
        for (term, f) in entry.tf.iter() {
            if let Some(s) = self.term_num.get_mut(term.index()) {
                let contribution = entry.weight * f / entry.len;
                *s -= contribution;
                // The clamp below exists only to absorb floating-point
                // residue from long incremental chains; a substantially
                // negative numerator means a real accounting bug (e.g. a
                // contribution subtracted twice), which must not be masked.
                debug_assert!(
                    *s >= -1e-9 * (1.0 + contribution.abs()),
                    "term {term} numerator went negative beyond fp drift: {s}"
                );
                if *s < 0.0 {
                    *s = 0.0; // clamp tiny negative drift
                    clamps += 1;
                }
            }
        }
        debug_assert!(
            self.tdw >= -1e-9 * (1.0 + entry.weight),
            "tdw went negative beyond fp drift: {}",
            self.tdw
        );
        if self.tdw < 0.0 {
            self.tdw = 0.0;
            clamps += 1;
        }
        // add(0) keeps the counter registered even in drift-free runs.
        FP_RESIDUE_CLAMPS.add(clamps);
        Ok(entry)
    }

    /// Expires every document whose weight has dropped below `ε = λ^γ`
    /// (§5.2 step 2). Returns the expired ids in order.
    pub fn expire(&mut self) -> Vec<DocId> {
        let mut dead = Vec::new();
        self.expire_with(|id| dead.push(id));
        dead
    }

    /// Like [`Repository::expire`], but streams each expired id into
    /// `on_expire` as it is removed. Incremental callers use this to retire
    /// the document's contribution from downstream state in the same pass —
    /// cluster representatives and the term→cluster index via
    /// `remove(φ_d)`, warm-start assignment maps by dropping the key —
    /// instead of re-deriving the expired set afterwards.
    pub fn expire_with<F: FnMut(DocId)>(&mut self, mut on_expire: F) {
        let eps = self.params.epsilon();
        let dead: Vec<DocId> = self
            .docs
            .iter()
            .filter(|(_, e)| e.weight < eps)
            .map(|(&id, _)| id)
            .collect();
        DOCS_EXPIRED.add(dead.len() as u64);
        for id in dead {
            let _ = self.remove(id);
            on_expire(id);
        }
    }

    /// The **non-incremental** statistics rebuild of the paper's
    /// Experiment 1: recomputes every `dw_i` from `λ^(τ−T_i)`, re-sums `tdw`,
    /// and re-accumulates every `S_k` from a full pass over all postings.
    ///
    /// Cost: O(total tokens). Also removes accumulated floating-point drift
    /// from long chains of incremental updates.
    pub fn recompute_from_scratch(&mut self) {
        let _span = nidc_obs::span!("repo.recompute");
        let _timer = RECOMPUTE_SECONDS.start_timer();
        let mut tdw = 0.0;
        for s in &mut self.term_num {
            *s = 0.0;
        }
        // Collect first: we cannot borrow docs mutably while updating term_num.
        let lambda = self.params;
        let now = self.now;
        for entry in self.docs.values_mut() {
            entry.weight = lambda.weight_at_age(now - entry.acquired);
            tdw += entry.weight;
        }
        for entry in self.docs.values() {
            let scale = entry.weight / entry.len;
            for (term, f) in entry.tf.iter() {
                let idx = term.index();
                if idx >= self.term_num.len() {
                    self.term_num.resize(idx + 1, 0.0);
                }
                self.term_num[idx] += scale * f;
            }
        }
        self.tdw = tdw;
    }

    /// [`Repository::recompute_from_scratch`] fanned out over `threads`
    /// scoped workers (`0` = all hardware threads; see `nidc-parallel`).
    ///
    /// Bit-identical to the sequential rebuild for any thread count:
    ///
    /// * the per-document weights `λ^(τ−T_i)` are pure and computed
    ///   item-parallel, then `tdw` is summed sequentially in document order;
    /// * the `S_k` numerators are sharded by **term range** — each worker
    ///   owns a contiguous slice of the term table and scans the postings in
    ///   document order, accumulating only the terms in its range. Every
    ///   slot therefore receives its additions in exactly the sequential
    ///   order. (Each worker re-scans all postings; the redundancy buys
    ///   lock-free determinism and still wins once the table is wide.)
    pub fn recompute_from_scratch_with(&mut self, threads: usize) {
        let threads = nidc_parallel::resolve_threads(threads);
        if !nidc_parallel::should_fan_out(self.docs.len(), threads) {
            // The sequential fallback carries its own RECOMPUTE_SECONDS timer.
            return self.recompute_from_scratch();
        }
        let _span = nidc_obs::span!("repo.recompute");
        let _timer = RECOMPUTE_SECONDS.start_timer();
        let lambda = self.params;
        let now = self.now;
        let ages: Vec<Timestamp> = self.docs.values().map(|e| e.acquired).collect();
        let weights = nidc_parallel::par_map(&ages, threads, |&t| lambda.weight_at_age(now - t));
        let mut tdw = 0.0;
        for (entry, &w) in self.docs.values_mut().zip(&weights) {
            entry.weight = w;
            tdw += w;
        }
        let dim = self.term_num.len().max(
            self.docs
                .values()
                .flat_map(|e| e.tf.iter())
                .map(|(t, _)| t.index() + 1)
                .max()
                .unwrap_or(0),
        );
        let postings: Vec<(&SparseVector, f64)> = self
            .docs
            .values()
            .map(|e| (&e.tf, e.weight / e.len))
            .collect();
        let shards = nidc_parallel::par_chunks(dim, threads, |range| {
            let mut local = vec![0.0; range.len()];
            for (tf, scale) in &postings {
                for (term, f) in tf.iter() {
                    let idx = term.index();
                    if range.contains(&idx) {
                        local[idx - range.start] += scale * f;
                    }
                }
            }
            local
        });
        self.term_num = shards.concat();
        self.tdw = tdw;
    }

    /// Maximum absolute deviation between the incrementally-maintained
    /// statistics and an exact from-scratch recomputation. Used to bound
    /// numerical drift in tests.
    pub fn drift(&self) -> f64 {
        let mut exact = self.clone();
        exact.recompute_from_scratch();
        let mut worst: f64 = (self.tdw - exact.tdw).abs();
        for (a, b) in self.term_num.iter().zip(exact.term_num.iter()) {
            worst = worst.max((a - b).abs());
        }
        for (id, e) in self.iter() {
            let w = exact.doc_weight(id).expect("same docs");
            worst = worst.max((e.weight - w).abs());
        }
        worst
    }

    /// Freezes the current probabilities into a [`StatsSnapshot`] for the
    /// similarity machinery (idf table + per-document selection
    /// probabilities).
    pub fn snapshot(&self) -> StatsSnapshot {
        let idf: Vec<f64> = (0..self.term_num.len())
            .map(|k| {
                let p = self.pr_term(TermId(k as u32));
                if p > 0.0 {
                    1.0 / p.sqrt() // eq. 14: idf_k = 1/√Pr(t_k)
                } else {
                    0.0
                }
            })
            .collect();
        let pr_doc = self
            .docs
            .iter()
            .map(|(&id, e)| {
                (
                    id,
                    if self.tdw > 0.0 {
                        e.weight / self.tdw
                    } else {
                        0.0
                    },
                )
            })
            .collect();
        StatsSnapshot::new(self.now, self.tdw, idf, pr_doc)
    }
}

impl nidc_obs::DeepSize for Repository {
    /// Heap footprint: the document map (per-entry node overhead plus each
    /// document's tf vector) and the per-term numerator table.
    fn deep_size_bytes(&self) -> u64 {
        nidc_obs::btree_map_size_bytes(&self.docs, |e| nidc_obs::DeepSize::deep_size_bytes(&e.tf))
            + (self.term_num.capacity() * std::mem::size_of::<f64>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tf(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
    }

    fn params() -> DecayParams {
        DecayParams::from_spans(7.0, 14.0).unwrap()
    }

    #[test]
    fn insert_sets_unit_weight_and_updates_tdw() {
        let mut r = Repository::new(params());
        r.insert(DocId(0), Timestamp(0.0), tf(&[(0, 1.0)])).unwrap();
        r.insert(DocId(1), Timestamp(0.0), tf(&[(1, 2.0)])).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.doc_weight(DocId(0)).unwrap(), 1.0);
        assert_eq!(r.tdw(), 2.0);
        assert_eq!(r.pr_doc(DocId(0)).unwrap(), 0.5);
    }

    #[test]
    fn deep_size_grows_with_documents() {
        use nidc_obs::DeepSize;
        let mut r = Repository::new(params());
        let empty = r.deep_size_bytes();
        r.insert(DocId(0), Timestamp(0.0), tf(&[(0, 1.0), (2, 3.0)]))
            .unwrap();
        let one = r.deep_size_bytes();
        // one map entry (key + DocEntry + node overhead) plus 2 tf entries
        // plus the term-numerator table up to term 2.
        assert!(one >= empty + 2 * 16, "{empty} -> {one}");
        r.insert(DocId(1), Timestamp(0.0), tf(&[(1, 1.0)])).unwrap();
        assert!(r.deep_size_bytes() > one);
    }

    #[test]
    fn duplicate_and_empty_documents_rejected() {
        let mut r = Repository::new(params());
        r.insert(DocId(0), Timestamp(0.0), tf(&[(0, 1.0)])).unwrap();
        assert_eq!(
            r.insert(DocId(0), Timestamp(1.0), tf(&[(0, 1.0)])),
            Err(Error::DuplicateDocument(DocId(0)))
        );
        assert_eq!(
            r.insert(DocId(1), Timestamp(1.0), tf(&[])),
            Err(Error::EmptyDocument(DocId(1)))
        );
    }

    #[test]
    fn advance_decays_weights_exponentially() {
        let mut r = Repository::new(params());
        r.insert(DocId(0), Timestamp(0.0), tf(&[(0, 1.0)])).unwrap();
        r.advance_to(Timestamp(7.0)).unwrap();
        assert!((r.doc_weight(DocId(0)).unwrap() - 0.5).abs() < 1e-12);
        r.advance_to(Timestamp(14.0)).unwrap();
        assert!((r.doc_weight(DocId(0)).unwrap() - 0.25).abs() < 1e-12);
        assert!((r.tdw() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn time_cannot_go_backwards() {
        let mut r = Repository::new(params());
        r.advance_to(Timestamp(5.0)).unwrap();
        assert!(matches!(
            r.advance_to(Timestamp(4.0)),
            Err(Error::TimeWentBackwards { .. })
        ));
        assert!(matches!(
            r.advance_to(Timestamp(f64::NAN)),
            Err(Error::NonFiniteTimestamp(_))
        ));
    }

    #[test]
    fn insert_implicitly_advances_clock() {
        let mut r = Repository::new(params());
        r.insert(DocId(0), Timestamp(0.0), tf(&[(0, 1.0)])).unwrap();
        r.insert(DocId(1), Timestamp(7.0), tf(&[(0, 1.0)])).unwrap();
        assert_eq!(r.now(), Timestamp(7.0));
        // old doc decayed to 1/2, new doc weight 1 → tdw = 1.5 (eq. 28)
        assert!((r.tdw() - 1.5).abs() < 1e-12);
        assert!((r.pr_doc(DocId(1)).unwrap() - (1.0 / 1.5)).abs() < 1e-12);
    }

    #[test]
    fn pr_term_matches_definition() {
        // doc0: t0 ×2 (len 2) ; doc1: t0 ×1, t1 ×1 (len 2), same time.
        let mut r = Repository::new(params());
        r.insert(DocId(0), Timestamp(0.0), tf(&[(0, 2.0)])).unwrap();
        r.insert(DocId(1), Timestamp(0.0), tf(&[(0, 1.0), (1, 1.0)]))
            .unwrap();
        // Pr(t0) = Pr(t0|d0)Pr(d0) + Pr(t0|d1)Pr(d1) = 1.0*0.5 + 0.5*0.5 = 0.75
        assert!((r.pr_term(TermId(0)) - 0.75).abs() < 1e-12);
        assert!((r.pr_term(TermId(1)) - 0.25).abs() < 1e-12);
        assert_eq!(r.pr_term(TermId(99)), 0.0);
        // probabilities over the vocabulary sum to 1
        let total: f64 = (0..r.vocab_dim())
            .map(|k| r.pr_term(TermId(k as u32)))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pr_term_shifts_toward_recent_documents() {
        let mut r = Repository::new(params());
        r.insert(DocId(0), Timestamp(0.0), tf(&[(0, 1.0)])).unwrap();
        r.insert(DocId(1), Timestamp(7.0), tf(&[(1, 1.0)])).unwrap();
        // doc0 has decayed to 1/2: Pr(t0) = 0.5/1.5, Pr(t1) = 1.0/1.5
        assert!(r.pr_term(TermId(1)) > r.pr_term(TermId(0)));
        assert!((r.pr_term(TermId(0)) - 1.0 / 3.0).abs() < 1e-12);
        assert!((r.pr_term(TermId(1)) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn remove_subtracts_contributions() {
        let mut r = Repository::new(params());
        r.insert(DocId(0), Timestamp(0.0), tf(&[(0, 2.0)])).unwrap();
        r.insert(DocId(1), Timestamp(0.0), tf(&[(0, 1.0), (1, 1.0)]))
            .unwrap();
        let e = r.remove(DocId(0)).unwrap();
        assert_eq!(e.len(), 2.0);
        assert_eq!(r.len(), 1);
        assert!((r.tdw() - 1.0).abs() < 1e-12);
        assert!((r.pr_term(TermId(0)) - 0.5).abs() < 1e-12);
        assert!(matches!(r.remove(DocId(0)), Err(Error::UnknownDocument(_))));
    }

    #[test]
    fn expire_drops_documents_below_epsilon() {
        // γ=14 → ε=0.25. A doc aged 15 days has weight < 0.25.
        let mut r = Repository::new(params());
        r.insert(DocId(0), Timestamp(0.0), tf(&[(0, 1.0)])).unwrap();
        r.insert(DocId(1), Timestamp(10.0), tf(&[(1, 1.0)]))
            .unwrap();
        r.advance_to(Timestamp(15.0)).unwrap();
        let dead = r.expire();
        assert_eq!(dead, vec![DocId(0)]);
        assert_eq!(r.len(), 1);
        assert!(r.contains(DocId(1)));
        // term 0 statistics must be gone
        assert_eq!(r.pr_term(TermId(0)), 0.0);
    }

    #[test]
    fn incremental_equals_scratch_after_many_updates() {
        let mut r = Repository::new(params());
        // Interleave inserts, advances, removals over 40 "days".
        let mut id = 0u64;
        for day in 0..40 {
            let t = Timestamp(day as f64);
            for j in 0..3 {
                r.insert(
                    DocId(id),
                    t,
                    tf(&[(j, 1.0 + j as f64), ((day % 5) as u32 + 3, 2.0)]),
                )
                .unwrap();
                id += 1;
            }
            if day % 7 == 6 {
                r.expire();
            }
        }
        assert!(
            r.drift() < 1e-9,
            "incremental statistics drifted: {}",
            r.drift()
        );
    }

    #[test]
    fn recompute_from_scratch_is_idempotent() {
        let mut r = Repository::new(params());
        r.insert(DocId(0), Timestamp(0.0), tf(&[(0, 1.0)])).unwrap();
        r.advance_to(Timestamp(3.0)).unwrap();
        r.recompute_from_scratch();
        let tdw1 = r.tdw();
        r.recompute_from_scratch();
        assert_eq!(r.tdw(), tdw1);
    }

    #[test]
    fn snapshot_exposes_idf_and_pr_doc() {
        let mut r = Repository::new(params());
        r.insert(DocId(0), Timestamp(0.0), tf(&[(0, 2.0)])).unwrap();
        r.insert(DocId(1), Timestamp(0.0), tf(&[(0, 1.0), (1, 1.0)]))
            .unwrap();
        let snap = r.snapshot();
        assert!((snap.idf(TermId(0)) - 1.0 / 0.75f64.sqrt()).abs() < 1e-12);
        assert!((snap.idf(TermId(1)) - 1.0 / 0.25f64.sqrt()).abs() < 1e-12);
        assert_eq!(snap.idf(TermId(9)), 0.0);
        assert!((snap.pr_doc(DocId(0)).unwrap() - 0.5).abs() < 1e-12);
        assert!(snap.pr_doc(DocId(7)).is_none());
        assert_eq!(snap.num_docs(), 2);
    }

    #[test]
    fn empty_repository_is_well_behaved() {
        let r = Repository::new(params());
        assert!(r.is_empty());
        assert_eq!(r.tdw(), 0.0);
        assert_eq!(r.pr_term(TermId(0)), 0.0);
        assert!(r.doc_weight(DocId(0)).is_err());
        let snap = r.snapshot();
        assert_eq!(snap.num_docs(), 0);
    }

    #[test]
    fn stats_reports_consistent_view() {
        let mut r = Repository::new(params());
        r.insert(DocId(0), Timestamp(1.0), tf(&[(5, 1.0)])).unwrap();
        let s = r.stats();
        assert_eq!(s.num_docs, 1);
        assert_eq!(s.vocab_dim, 6);
        assert_eq!(s.now, Timestamp(1.0));
        assert!((s.tdw - 1.0).abs() < 1e-12);
    }
}
