//! A linear-decay repository — the counterfactual to the paper's design
//! choice.
//!
//! The paper contrasts its exponential forgetting factor with INCR's
//! *linear* decaying weight (§2.2) and notes that the O(1)-per-document
//! incremental statistics update (eq. 27, `dw|τ+Δτ = λ^Δτ·dw|τ`) "is due to
//! the selection of the exponential forgetting factor" (§5.1). This module
//! makes that argument measurable: [`LinearRepository`] implements the same
//! statistics under the linear window weight
//!
//! ```text
//! dw_i = max(0, 1 − (τ − T_i)/W)
//! ```
//!
//! for which no multiplicative shortcut exists — advancing the clock forces
//! a full recomputation of every weight-dependent statistic (`tdw`, every
//! `S_k`), i.e. an O(total tokens) pass per update. The `ablations` binary
//! compares the update costs head to head.

use std::collections::BTreeMap;

use nidc_textproc::{DocId, SparseVector, TermId};

use crate::{Error, Result, Timestamp};

/// One stored document under linear decay.
#[derive(Debug, Clone)]
struct LinearEntry {
    tf: SparseVector,
    len: f64,
    acquired: Timestamp,
}

/// A document repository under the **linear** window weight
/// `dw = max(0, 1 − age/window)`.
///
/// API mirrors the exponential [`crate::Repository`] where meaningful, but
/// every statistic is recomputed on demand because linear decay admits no
/// incremental shortcut — which is precisely the point (see module docs).
#[derive(Debug, Clone)]
pub struct LinearRepository {
    window: f64,
    now: Timestamp,
    docs: BTreeMap<DocId, LinearEntry>,
    /// Cached statistics, recomputed by `refresh` after every clock change.
    tdw: f64,
    term_num: Vec<f64>,
}

impl LinearRepository {
    /// Creates an empty repository with the given window length in days.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] unless `window > 0` and finite.
    pub fn new(window: f64) -> Result<Self> {
        if !(window.is_finite() && window > 0.0) {
            return Err(Error::InvalidParameter {
                name: "window",
                value: window,
            });
        }
        Ok(Self {
            window,
            now: Timestamp::EPOCH,
            docs: BTreeMap::new(),
            tdw: 0.0,
            term_num: Vec::new(),
        })
    }

    /// The linear weight of a document of the given age.
    pub fn weight_at_age(&self, age_days: f64) -> f64 {
        (1.0 - age_days / self.window).max(0.0)
    }

    /// Current weight of document `id`.
    pub fn doc_weight(&self, id: DocId) -> Result<f64> {
        let e = self.docs.get(&id).ok_or(Error::UnknownDocument(id))?;
        Ok(self.weight_at_age(self.now - e.acquired))
    }

    /// Number of live (positive-weight) documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the repository holds no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Total weight `tdw` at the current clock.
    pub fn tdw(&self) -> f64 {
        self.tdw
    }

    /// `Pr(t_k)` at the current clock.
    pub fn pr_term(&self, term: TermId) -> f64 {
        if self.tdw <= 0.0 {
            return 0.0;
        }
        match self.term_num.get(term.index()) {
            Some(&s) if s > 0.0 => s / self.tdw,
            _ => 0.0,
        }
    }

    /// The full recomputation every clock change forces under linear decay:
    /// a pass over all postings. This is the cost the paper's exponential
    /// choice avoids.
    fn refresh(&mut self) {
        // drop fully-expired documents first
        let window = self.window;
        let now = self.now;
        self.docs.retain(|_, e| (now - e.acquired) < window);
        let mut tdw = 0.0;
        for s in &mut self.term_num {
            *s = 0.0;
        }
        for e in self.docs.values() {
            let w = (1.0 - (now - e.acquired) / window).max(0.0);
            tdw += w;
            let scale = w / e.len;
            for (t, f) in e.tf.iter() {
                let idx = t.index();
                if idx >= self.term_num.len() {
                    self.term_num.resize(idx + 1, 0.0);
                }
                self.term_num[idx] += scale * f;
            }
        }
        self.tdw = tdw;
    }

    /// Advances the clock to `t` — O(total tokens), unavoidably.
    pub fn advance_to(&mut self, t: Timestamp) -> Result<()> {
        if !t.is_finite() {
            return Err(Error::NonFiniteTimestamp(t));
        }
        if t < self.now {
            return Err(Error::TimeWentBackwards {
                current: self.now,
                requested: t,
            });
        }
        if t - self.now > 0.0 {
            self.now = t;
            self.refresh();
        }
        Ok(())
    }

    /// Inserts a document acquired at `t` (advancing the clock to `t`).
    pub fn insert(&mut self, id: DocId, t: Timestamp, tf: SparseVector) -> Result<()> {
        if self.docs.contains_key(&id) {
            return Err(Error::DuplicateDocument(id));
        }
        let len = tf.sum();
        if len <= 0.0 || len.is_nan() {
            return Err(Error::EmptyDocument(id));
        }
        self.advance_to(t)?;
        // a fresh document enters at weight exactly 1, so its contribution
        // is exact without a recomputation — insertion is O(doc) under both
        // decay families; only the *clock advance* differs (see module docs)
        self.tdw += 1.0;
        for (term, f) in tf.iter() {
            let idx = term.index();
            if idx >= self.term_num.len() {
                self.term_num.resize(idx + 1, 0.0);
            }
            self.term_num[idx] += f / len;
        }
        self.docs.insert(
            id,
            LinearEntry {
                tf,
                len,
                acquired: t,
            },
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tf(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
    }

    #[test]
    fn linear_weight_profile() {
        let r = LinearRepository::new(10.0).unwrap();
        assert_eq!(r.weight_at_age(0.0), 1.0);
        assert_eq!(r.weight_at_age(5.0), 0.5);
        assert_eq!(r.weight_at_age(10.0), 0.0);
        assert_eq!(r.weight_at_age(15.0), 0.0);
    }

    #[test]
    fn statistics_match_definitions() {
        let mut r = LinearRepository::new(10.0).unwrap();
        r.insert(DocId(0), Timestamp(0.0), tf(&[(0, 2.0)])).unwrap();
        r.insert(DocId(1), Timestamp(0.0), tf(&[(0, 1.0), (1, 1.0)]))
            .unwrap();
        assert!((r.tdw() - 2.0).abs() < 1e-12);
        assert!((r.pr_term(TermId(0)) - 0.75).abs() < 1e-12);
        r.advance_to(Timestamp(5.0)).unwrap();
        // both docs at weight 0.5 → Pr(t) unchanged, tdw halved
        assert!((r.tdw() - 1.0).abs() < 1e-12);
        assert!((r.pr_term(TermId(0)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn documents_vanish_at_window_edge() {
        let mut r = LinearRepository::new(10.0).unwrap();
        r.insert(DocId(0), Timestamp(0.0), tf(&[(0, 1.0)])).unwrap();
        r.insert(DocId(1), Timestamp(8.0), tf(&[(1, 1.0)])).unwrap();
        r.advance_to(Timestamp(12.0)).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.doc_weight(DocId(0)).is_err());
        assert!((r.doc_weight(DocId(1)).unwrap() - 0.6).abs() < 1e-12);
        assert_eq!(r.pr_term(TermId(0)), 0.0);
    }

    #[test]
    fn error_paths() {
        assert!(LinearRepository::new(0.0).is_err());
        assert!(LinearRepository::new(f64::NAN).is_err());
        let mut r = LinearRepository::new(10.0).unwrap();
        r.insert(DocId(0), Timestamp(1.0), tf(&[(0, 1.0)])).unwrap();
        assert!(matches!(
            r.insert(DocId(0), Timestamp(2.0), tf(&[(0, 1.0)])),
            Err(Error::DuplicateDocument(_))
        ));
        assert!(matches!(
            r.advance_to(Timestamp(0.5)),
            Err(Error::TimeWentBackwards { .. })
        ));
        assert!(matches!(
            r.insert(DocId(1), Timestamp(2.0), tf(&[])),
            Err(Error::EmptyDocument(_))
        ));
    }

    #[test]
    fn exponential_and_linear_agree_at_time_zero() {
        // both models give fresh documents weight 1 and identical Pr(t)
        let mut lin = LinearRepository::new(14.0).unwrap();
        let mut exp = crate::Repository::new(crate::DecayParams::from_spans(7.0, 14.0).unwrap());
        for (id, pairs) in [(0u64, vec![(0u32, 2.0)]), (1, vec![(0, 1.0), (1, 3.0)])] {
            lin.insert(DocId(id), Timestamp(0.0), tf(&pairs)).unwrap();
            exp.insert(DocId(id), Timestamp(0.0), tf(&pairs)).unwrap();
        }
        for k in 0..2 {
            assert!((lin.pr_term(TermId(k)) - exp.pr_term(TermId(k))).abs() < 1e-12);
        }
        assert!((lin.tdw() - exp.tdw()).abs() < 1e-12);
    }
}
