//! The *document forgetting model* of Khy, Ishikawa & Kitagawa (ICDE 2006)
//! and its incremental statistics maintenance.
//!
//! Every document enters the repository with weight 1 and decays
//! exponentially (paper eq. 1):
//!
//! ```text
//! dw_i = λ^(τ − T_i),      λ = exp(−ln 2 / β)   (eq. 2)
//! ```
//!
//! where `β` is the user-facing *half-life span* and `T_i` the acquisition
//! time of document `d_i`. From the weights the model derives
//!
//! * the total weight `tdw = Σ_l dw_l` (eq. 3),
//! * the selection probability `Pr(d_i) = dw_i / tdw` (eq. 4),
//! * the term occurrence probability
//!   `Pr(t_k) = Σ_i Pr(t_k|d_i)·Pr(d_i)` (eq. 10) with
//!   `Pr(t_k|d_i) = f_ik / Σ_l f_il` (eq. 8).
//!
//! [`Repository`] maintains all of these. Two update paths exist:
//!
//! * [`Repository::advance_to`] + [`Repository::insert`] — the paper's
//!   **incremental** path (§5.1, eqs. 27–29): old weights are scaled by
//!   `λ^Δτ`, `tdw` becomes `λ^Δτ·tdw + m'`, and the per-term numerators
//!   `S_k = Σ_i dw_i·Pr(t_k|d_i)` are scaled by the same factor before the
//!   new documents' contributions are added. Cost: O(#docs + #vocab + new
//!   tokens).
//! * [`Repository::recompute_from_scratch`] — the **non-incremental** path
//!   used as the baseline in the paper's Experiment 1: every statistic is
//!   rebuilt by a full pass over every stored posting. Cost: O(total tokens).
//!
//! Expiration (§5.2 step 2): documents whose weight has fallen below
//! `ε = λ^γ` (γ = *life span*) are dropped by [`Repository::expire`].
//!
//! # Example
//!
//! ```
//! use nidc_forgetting::{DecayParams, Repository, Timestamp};
//! use nidc_textproc::{DocId, SparseVector, TermId};
//!
//! // 7-day half-life, 14-day life span — the paper's Experiment 1 setting.
//! let params = DecayParams::from_spans(7.0, 14.0).unwrap();
//! assert!((params.lambda() - 0.9057).abs() < 1e-3);
//!
//! let mut repo = Repository::new(params);
//! let tf = SparseVector::from_entries(vec![(TermId(0), 2.0), (TermId(1), 1.0)]);
//! repo.insert(DocId(0), Timestamp(0.0), tf).unwrap();
//!
//! repo.advance_to(Timestamp(7.0)).unwrap(); // one half-life later
//! assert!((repo.doc_weight(DocId(0)).unwrap() - 0.5).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decay;
mod error;
pub mod linear;
mod persist;
mod repository;
pub mod sharding;
mod snapshot;
mod time;

pub use decay::DecayParams;
pub use error::Error;
pub use linear::LinearRepository;
pub use persist::{DocState, RepositoryState};
pub use repository::{DocEntry, Repository, RepositoryStats};
pub use snapshot::StatsSnapshot;
pub use time::Timestamp;

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;
