//! Merging forgetting-model statistics across independent repositories
//! (one per stream shard).
//!
//! Sharding the stream is sound because every statistic of §3 is a **sum
//! over documents**: `tdw = Σ_i dw_i` (eq. 3) and the per-term numerators
//! `S_k = Σ_i dw_i·Pr(t_k|d_i)` both split exactly over any partition of
//! the document set, and the §5.1 incremental updates (scale by `λ^Δτ`,
//! add the newcomers) commute with that partition. A shard therefore
//! maintains its partial sums independently, and the global quantities are
//! recovered at query time:
//!
//! ```text
//! tdw        = Σ_s tdw_s
//! Pr(t_k)    = Σ_s S_k,s / Σ_s tdw_s  =  Σ_s Pr_s(t_k)·tdw_s / Σ_s tdw_s
//! Pr(d_i)    = dw_i / Σ_s tdw_s
//! ```
//!
//! Expiration (`dw < ε`, §5.2 step 2) is a per-document predicate and needs
//! no cross-shard information at all.

use nidc_textproc::{DocId, TermId};

use crate::repository::{Repository, RepositoryStats};
use crate::Timestamp;

/// Merges per-shard aggregate statistics into the global view.
///
/// `num_docs` and `tdw` are sums over the (disjoint) shards; `vocab_dim` is
/// the widest term table (shards share one interned vocabulary, so term ids
/// are globally comparable); `now` is the latest shard clock (after a
/// fan-out `advance_to` all clocks agree, but shards that have not seen a
/// document since their last advance may lag).
pub fn merge_stats(stats: &[RepositoryStats]) -> RepositoryStats {
    RepositoryStats {
        num_docs: stats.iter().map(|s| s.num_docs).sum(),
        vocab_dim: stats.iter().map(|s| s.vocab_dim).max().unwrap_or(0),
        tdw: stats.iter().map(|s| s.tdw).sum(),
        now: stats
            .iter()
            .map(|s| s.now)
            .fold(Timestamp::EPOCH, |a, b| if b > a { b } else { a }),
    }
}

/// The global term occurrence probability `Pr(t_k)` (eq. 10) over the union
/// of the shards' documents:
///
/// ```text
/// Pr(t_k) = Σ_s Pr_s(t_k)·tdw_s / Σ_s tdw_s
/// ```
///
/// (each shard's `Pr_s(t_k)` is `S_k,s/tdw_s`, so the weighted mean
/// reconstitutes `Σ S_k,s / Σ tdw_s` exactly). Returns 0 when no shard
/// holds any weight.
pub fn merged_pr_term(repos: &[&Repository], term: TermId) -> f64 {
    let tdw: f64 = repos.iter().map(|r| r.tdw()).sum();
    if tdw <= 0.0 {
        return 0.0;
    }
    let num: f64 = repos.iter().map(|r| r.pr_term(term) * r.tdw()).sum();
    num / tdw
}

/// The global selection probability `Pr(d_i) = dw_i / Σ_s tdw_s` (eq. 4)
/// for a document living in one of the shards. Returns `None` when no shard
/// stores `id`.
pub fn merged_pr_doc(repos: &[&Repository], id: DocId) -> Option<f64> {
    let tdw: f64 = repos.iter().map(|r| r.tdw()).sum();
    let w = repos.iter().find_map(|r| r.doc_weight(id).ok())?;
    Some(if tdw > 0.0 { w / tdw } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DecayParams;
    use nidc_textproc::SparseVector;

    fn tf(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
    }

    fn params() -> DecayParams {
        DecayParams::from_spans(7.0, 14.0).unwrap()
    }

    /// Builds the same document set once monolithically and once split
    /// across two shards (even/odd ids).
    fn monolith_and_shards() -> (Repository, Repository, Repository) {
        let docs: Vec<(u64, f64, SparseVector)> = vec![
            (0, 0.0, tf(&[(0, 2.0), (1, 1.0)])),
            (1, 0.5, tf(&[(0, 1.0), (2, 3.0)])),
            (2, 1.0, tf(&[(1, 1.0), (3, 1.0)])),
            (3, 2.0, tf(&[(2, 2.0)])),
            (4, 3.0, tf(&[(0, 1.0), (3, 2.0)])),
        ];
        let mut all = Repository::new(params());
        let mut even = Repository::new(params());
        let mut odd = Repository::new(params());
        for (id, day, tf) in docs {
            all.insert(DocId(id), Timestamp(day), tf.clone()).unwrap();
            let shard = if id % 2 == 0 { &mut even } else { &mut odd };
            shard.insert(DocId(id), Timestamp(day), tf).unwrap();
        }
        for r in [&mut all, &mut even, &mut odd] {
            r.advance_to(Timestamp(5.0)).unwrap();
        }
        (all, even, odd)
    }

    #[test]
    fn merged_stats_equal_monolithic_stats() {
        let (all, even, odd) = monolith_and_shards();
        let merged = merge_stats(&[even.stats(), odd.stats()]);
        let reference = all.stats();
        assert_eq!(merged.num_docs, reference.num_docs);
        assert_eq!(merged.vocab_dim, reference.vocab_dim);
        assert_eq!(merged.now, reference.now);
        assert!((merged.tdw - reference.tdw).abs() < 1e-12);
    }

    #[test]
    fn merged_pr_term_equals_monolithic_pr_term() {
        let (all, even, odd) = monolith_and_shards();
        let shards = [&even, &odd];
        for k in 0..all.vocab_dim() as u32 {
            let t = TermId(k);
            assert!(
                (merged_pr_term(&shards, t) - all.pr_term(t)).abs() < 1e-12,
                "term {k}"
            );
        }
        // unknown terms stay 0
        assert_eq!(merged_pr_term(&shards, TermId(99)), 0.0);
        // merged probabilities still sum to 1 over the vocabulary
        let total: f64 = (0..all.vocab_dim() as u32)
            .map(|k| merged_pr_term(&shards, TermId(k)))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merged_pr_doc_equals_monolithic_pr_doc() {
        let (all, even, odd) = monolith_and_shards();
        let shards = [&even, &odd];
        for id in 0..5u64 {
            let d = DocId(id);
            assert!(
                (merged_pr_doc(&shards, d).unwrap() - all.pr_doc(d).unwrap()).abs() < 1e-12,
                "doc {id}"
            );
        }
        assert!(merged_pr_doc(&shards, DocId(42)).is_none());
    }

    #[test]
    fn empty_shard_set_is_well_behaved() {
        assert_eq!(merged_pr_term(&[], TermId(0)), 0.0);
        assert!(merged_pr_doc(&[], DocId(0)).is_none());
        let s = merge_stats(&[]);
        assert_eq!(s.num_docs, 0);
        assert_eq!(s.tdw, 0.0);
        assert_eq!(s.now, Timestamp::EPOCH);
    }
}
