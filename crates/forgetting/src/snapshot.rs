//! Frozen probability snapshots consumed by the similarity layer.

use std::collections::BTreeMap;

use nidc_textproc::{DocId, TermId};

use crate::Timestamp;

/// An immutable snapshot of the repository's probabilities at one instant:
/// the idf table `idf_k = 1/√Pr(t_k)` (eq. 14) and the per-document selection
/// probabilities `Pr(d_i)` (eq. 4).
///
/// The novelty-based similarity (eq. 16) and the cluster representatives
/// (eq. 20) are pure functions of this snapshot plus the raw term
/// frequencies, so a clustering session takes one snapshot and works from it.
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    now: Timestamp,
    tdw: f64,
    idf: Vec<f64>,
    pr_doc: BTreeMap<DocId, f64>,
}

impl StatsSnapshot {
    /// Builds a snapshot (normally via `Repository::snapshot`).
    pub fn new(now: Timestamp, tdw: f64, idf: Vec<f64>, pr_doc: BTreeMap<DocId, f64>) -> Self {
        Self {
            now,
            tdw,
            idf,
            pr_doc,
        }
    }

    /// The instant the snapshot was taken.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Total document weight at snapshot time.
    pub fn tdw(&self) -> f64 {
        self.tdw
    }

    /// `idf_k = 1/√Pr(t_k)`; 0.0 for terms absent from all live documents.
    pub fn idf(&self, term: TermId) -> f64 {
        self.idf.get(term.index()).copied().unwrap_or(0.0)
    }

    /// The idf table, indexed by term id.
    pub fn idf_table(&self) -> &[f64] {
        &self.idf
    }

    /// `Pr(d_i)` for a live document; `None` if the document is unknown.
    pub fn pr_doc(&self, id: DocId) -> Option<f64> {
        self.pr_doc.get(&id).copied()
    }

    /// Number of documents covered by the snapshot.
    pub fn num_docs(&self) -> usize {
        self.pr_doc.len()
    }

    /// Iterates `(DocId, Pr(d))` in id order.
    pub fn iter_docs(&self) -> impl Iterator<Item = (DocId, f64)> + '_ {
        self.pr_doc.iter().map(|(&id, &p)| (id, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let snap = StatsSnapshot::new(
            Timestamp(2.0),
            1.5,
            vec![2.0, 0.0, 1.0],
            [(DocId(1), 0.6), (DocId(2), 0.4)].into_iter().collect(),
        );
        assert_eq!(snap.now(), Timestamp(2.0));
        assert_eq!(snap.tdw(), 1.5);
        assert_eq!(snap.idf(TermId(0)), 2.0);
        assert_eq!(snap.idf(TermId(5)), 0.0);
        assert_eq!(snap.pr_doc(DocId(1)), Some(0.6));
        assert_eq!(snap.pr_doc(DocId(9)), None);
        assert_eq!(snap.num_docs(), 2);
        let docs: Vec<_> = snap.iter_docs().collect();
        assert_eq!(docs, vec![(DocId(1), 0.6), (DocId(2), 0.4)]);
    }
}
