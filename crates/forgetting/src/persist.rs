//! Repository persistence: snapshot the full state of a repository to a
//! serialisable plain-data form and restore it exactly.
//!
//! An on-line clustering service needs to survive restarts without
//! replaying its entire ingestion history. [`RepositoryState`] captures
//! everything a [`Repository`] is a function of — the decay parameters, the
//! clock, and each document's `(id, acquisition time, raw term
//! frequencies)` — and [`Repository::from_state`] rebuilds the derived
//! statistics exactly (weights, `tdw`, per-term numerators).

use serde::{Deserialize, Serialize};

use nidc_textproc::{DocId, SparseVector, TermId};

use crate::{DecayParams, Repository, Result, Timestamp};

/// One persisted document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DocState {
    /// Document id.
    pub id: u64,
    /// Acquisition time `T_i`, in days.
    pub acquired: f64,
    /// Raw term frequencies as `(term_id, count)` pairs, sorted by term.
    pub tf: Vec<(u32, f64)>,
}

/// The complete serialisable state of a [`Repository`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepositoryState {
    /// Half-life span β (days).
    pub half_life: f64,
    /// Life span γ (days).
    pub life_span: f64,
    /// The repository clock `τ` (days).
    pub now: f64,
    /// The live documents.
    pub docs: Vec<DocState>,
}

impl Repository {
    /// Captures the repository's full state.
    pub fn to_state(&self) -> RepositoryState {
        RepositoryState {
            half_life: self.params().half_life(),
            life_span: self.params().life_span(),
            now: self.now().days(),
            docs: self
                .iter()
                .map(|(id, entry)| DocState {
                    id: id.0,
                    acquired: entry.acquired().days(),
                    tf: entry.tf().iter().map(|(t, f)| (t.0, f)).collect(),
                })
                .collect(),
        }
    }

    /// Rebuilds a repository from a captured state. The derived statistics
    /// are recomputed exactly from the acquisition times, so a
    /// save/load round trip is lossless up to floating-point recomputation
    /// (bounded by the same guarantees as
    /// [`Repository::recompute_from_scratch`]).
    ///
    /// # Errors
    /// Propagates the errors of [`DecayParams::from_spans`] and
    /// [`Repository::insert`] (e.g. duplicate ids, non-chronological or
    /// non-finite timestamps).
    pub fn from_state(state: &RepositoryState) -> Result<Repository> {
        let params = DecayParams::from_spans(state.half_life, state.life_span)?;
        let mut repo = Repository::new(params);
        let mut docs: Vec<&DocState> = state.docs.iter().collect();
        docs.sort_by(|a, b| {
            a.acquired
                .partial_cmp(&b.acquired)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for d in docs {
            let tf =
                SparseVector::from_entries(d.tf.iter().map(|&(t, f)| (TermId(t), f)).collect());
            repo.insert(DocId(d.id), Timestamp(d.acquired), tf)?;
        }
        repo.advance_to(Timestamp(state.now))?;
        Ok(repo)
    }

    /// Serialises the repository state as JSON.
    pub fn save_json<W: std::io::Write>(&self, writer: W) -> std::io::Result<()> {
        serde_json::to_writer(writer, &self.to_state()).map_err(std::io::Error::from)
    }

    /// Restores a repository from JSON written by [`Repository::save_json`].
    pub fn load_json<R: std::io::Read>(reader: R) -> std::io::Result<Repository> {
        let state: RepositoryState = serde_json::from_reader(reader)?;
        Repository::from_state(&state)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tf(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
    }

    fn sample_repo() -> Repository {
        let mut repo = Repository::new(DecayParams::from_spans(7.0, 21.0).unwrap());
        repo.insert(DocId(3), Timestamp(0.5), tf(&[(0, 2.0), (4, 1.0)]))
            .unwrap();
        repo.insert(DocId(1), Timestamp(1.0), tf(&[(0, 1.0), (2, 3.0)]))
            .unwrap();
        repo.insert(DocId(7), Timestamp(4.25), tf(&[(2, 1.0), (9, 1.0)]))
            .unwrap();
        repo.advance_to(Timestamp(6.0)).unwrap();
        repo
    }

    #[test]
    fn state_roundtrip_preserves_everything() {
        let repo = sample_repo();
        let restored = Repository::from_state(&repo.to_state()).unwrap();
        assert_eq!(restored.len(), repo.len());
        assert_eq!(restored.now(), repo.now());
        assert!((restored.tdw() - repo.tdw()).abs() < 1e-12);
        for (id, entry) in repo.iter() {
            let r = restored.doc(id).expect("doc survives");
            assert_eq!(r.acquired(), entry.acquired());
            assert!((r.weight() - entry.weight()).abs() < 1e-12);
            assert_eq!(r.tf(), entry.tf());
        }
        for k in 0..repo.vocab_dim() {
            let t = TermId(k as u32);
            assert!((restored.pr_term(t) - repo.pr_term(t)).abs() < 1e-12);
        }
    }

    #[test]
    fn json_roundtrip() {
        let repo = sample_repo();
        let mut buf = Vec::new();
        repo.save_json(&mut buf).unwrap();
        let restored = Repository::load_json(buf.as_slice()).unwrap();
        assert_eq!(restored.len(), repo.len());
        assert!((restored.tdw() - repo.tdw()).abs() < 1e-12);
        // restored repository keeps working: ingest and decay
        let mut restored = restored;
        restored
            .insert(DocId(100), Timestamp(7.0), tf(&[(0, 1.0)]))
            .unwrap();
        assert_eq!(restored.len(), repo.len() + 1);
    }

    #[test]
    fn state_documents_sorted_on_restore() {
        // out-of-order docs in the state must still restore
        let repo = sample_repo();
        let mut state = repo.to_state();
        state.docs.reverse();
        let restored = Repository::from_state(&state).unwrap();
        assert_eq!(restored.len(), repo.len());
    }

    #[test]
    fn corrupt_json_is_rejected() {
        assert!(Repository::load_json(&b"{not json"[..]).is_err());
        // valid JSON, invalid parameters
        let bad = r#"{"half_life":-1.0,"life_span":14.0,"now":0.0,"docs":[]}"#;
        assert!(Repository::load_json(bad.as_bytes()).is_err());
    }

    #[test]
    fn empty_repository_roundtrips() {
        let repo = Repository::new(DecayParams::from_spans(7.0, 14.0).unwrap());
        let restored = Repository::from_state(&repo.to_state()).unwrap();
        assert!(restored.is_empty());
        assert_eq!(restored.params().half_life(), 7.0);
    }
}
