//! The time model.
//!
//! The paper measures time in days (half-life spans of 7 or 30 days, 30-day
//! time windows). We represent instants as `f64` days since an arbitrary
//! epoch; fractional days express intra-day arrival order.

use std::fmt;
use std::ops::{Add, Sub};

/// An instant, in days since the corpus epoch.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Timestamp(pub f64);

impl Timestamp {
    /// The epoch (day 0).
    pub const EPOCH: Timestamp = Timestamp(0.0);

    /// Days since the epoch.
    #[inline]
    pub fn days(self) -> f64 {
        self.0
    }

    /// Whether the value is a finite number (required of all repository
    /// timestamps).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// The later of two timestamps.
    pub fn max(self, other: Timestamp) -> Timestamp {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<f64> for Timestamp {
    type Output = Timestamp;
    /// Shifts the instant forward by `rhs` days.
    fn add(self, rhs: f64) -> Timestamp {
        Timestamp(self.0 + rhs)
    }
}

impl Sub for Timestamp {
    type Output = f64;
    /// Elapsed days from `rhs` to `self`.
    fn sub(self, rhs: Timestamp) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "day {:.3}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Timestamp(3.0) + 4.5;
        assert_eq!(t, Timestamp(7.5));
        assert_eq!(t - Timestamp(2.5), 5.0);
    }

    #[test]
    fn ordering_and_max() {
        assert!(Timestamp(1.0) < Timestamp(2.0));
        assert_eq!(Timestamp(1.0).max(Timestamp(2.0)), Timestamp(2.0));
        assert_eq!(Timestamp(3.0).max(Timestamp(2.0)), Timestamp(3.0));
    }

    #[test]
    fn display() {
        assert_eq!(Timestamp(1.5).to_string(), "day 1.500");
    }

    #[test]
    fn finiteness() {
        assert!(Timestamp(0.0).is_finite());
        assert!(!Timestamp(f64::NAN).is_finite());
        assert!(!Timestamp(f64::INFINITY).is_finite());
    }
}
