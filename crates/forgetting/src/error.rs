//! Error type for the forgetting model.

use nidc_textproc::DocId;

use crate::Timestamp;

/// Errors raised by the forgetting-model repository.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A decay parameter was non-positive or non-finite.
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An operation would move the repository clock backwards.
    TimeWentBackwards {
        /// The repository's current clock.
        current: Timestamp,
        /// The earlier time that was requested.
        requested: Timestamp,
    },
    /// A document with this id is already stored.
    DuplicateDocument(DocId),
    /// The document id is not present in the repository.
    UnknownDocument(DocId),
    /// A document with no terms (zero length) cannot define `Pr(t_k|d_i)`.
    EmptyDocument(DocId),
    /// A timestamp was NaN or infinite.
    NonFiniteTimestamp(Timestamp),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::InvalidParameter { name, value } => {
                write!(f, "invalid forgetting parameter {name}: {value}")
            }
            Error::TimeWentBackwards { current, requested } => write!(
                f,
                "time went backwards: repository is at {current}, requested {requested}"
            ),
            Error::DuplicateDocument(id) => write!(f, "document {id} already in repository"),
            Error::UnknownDocument(id) => write!(f, "document {id} not in repository"),
            Error::EmptyDocument(id) => write!(f, "document {id} has no terms"),
            Error::NonFiniteTimestamp(t) => write!(f, "non-finite timestamp {t}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::DuplicateDocument(DocId(3));
        assert!(e.to_string().contains("d3"));
        let e = Error::TimeWentBackwards {
            current: Timestamp(5.0),
            requested: Timestamp(1.0),
        };
        assert!(e.to_string().contains("backwards"));
        let e = Error::InvalidParameter {
            name: "half_life (beta)",
            value: -1.0,
        };
        assert!(e.to_string().contains("beta"));
    }
}
