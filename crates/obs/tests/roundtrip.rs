//! Snapshot serialisation round-trip through a real JSON parser, and
//! Prometheus exposition validity on registry-produced snapshots.

use nidc_obs::{buckets, HistogramSnapshot, Recorder, Registry, Snapshot};
use serde_json::Value;

fn sample_registry() -> Registry {
    let r = Registry::new();
    r.add("rt_docs_total", 41);
    r.add("rt_windows_total", 3);
    r.gauge("rt_heap_bytes").set(2048);
    r.fgauge("rt_cohesion").set(0.8125);
    for v in [0.0002, 0.013, 0.013, 0.7, 120.0] {
        r.observe("rt_phase_seconds", buckets::LATENCY_SECONDS, v);
    }
    for v in [2.0, 9.0, 400.0] {
        r.observe("rt_batch_sizes", buckets::SIZES, v);
    }
    r
}

/// Rebuilds a [`Snapshot`] from the exporter's JSON-lines shape.
fn snapshot_from_json(v: &Value) -> Snapshot {
    let counters = v
        .get("counters")
        .and_then(Value::as_object)
        .expect("counters object")
        .iter()
        .map(|(name, val)| (name.clone(), val.as_u64().expect("counter value")))
        .collect();
    let gauges = v
        .get("gauges")
        .and_then(Value::as_object)
        .expect("gauges object")
        .iter()
        .map(|(name, val)| (name.clone(), val.as_u64().expect("gauge value")))
        .collect();
    let fgauges = v
        .get("fgauges")
        .and_then(Value::as_object)
        .expect("fgauges object")
        .iter()
        .map(|(name, val)| (name.clone(), val.as_f64().expect("fgauge value")))
        .collect();
    let histograms = v
        .get("histograms")
        .and_then(Value::as_object)
        .expect("histograms object")
        .iter()
        .map(|(name, h)| {
            let mut bounds = Vec::new();
            let mut counts = Vec::new();
            for bucket in h.get("buckets").and_then(Value::as_array).expect("buckets") {
                let le = bucket.get("le").expect("le");
                match le.as_f64() {
                    Some(b) => bounds.push(b),
                    None => assert_eq!(le.as_str(), Some("+Inf")),
                }
                counts.push(bucket.get("n").and_then(Value::as_u64).expect("n"));
            }
            (
                name.clone(),
                HistogramSnapshot {
                    bounds,
                    counts,
                    count: h.get("count").and_then(Value::as_u64).expect("count"),
                    sum: h.get("sum").and_then(Value::as_f64).expect("sum"),
                },
            )
        })
        .collect();
    Snapshot {
        counters,
        gauges,
        fgauges,
        histograms,
    }
}

#[test]
fn json_roundtrip_is_lossless() {
    let snap = sample_registry().snapshot();
    let parsed: Value = serde_json::from_str(&snap.to_json()).expect("exporter emits valid JSON");
    assert_eq!(snapshot_from_json(&parsed), snap);
}

#[test]
fn json_line_meta_fields_survive_parsing() {
    let snap = sample_registry().snapshot();
    let line = snap.to_json_line(&[("window", 7.0), ("day", 35.5)]);
    let parsed: Value = serde_json::from_str(&line).unwrap();
    assert_eq!(parsed.get("window").and_then(Value::as_u64), Some(7));
    assert_eq!(parsed.get("day").and_then(Value::as_f64), Some(35.5));
    assert_eq!(snapshot_from_json(&parsed), snap);
}

#[test]
fn prometheus_exposition_is_valid_on_real_data() {
    let text = sample_registry().snapshot().to_prometheus();
    let mut series = 0usize;
    for line in text.lines() {
        assert!(!line.is_empty());
        if let Some(comment) = line.strip_prefix("# ") {
            assert!(comment.starts_with("TYPE "), "only TYPE comments: {line}");
            let mut parts = comment.split_whitespace();
            assert_eq!(parts.next(), Some("TYPE"));
            assert!(parts.next().is_some());
            assert!(matches!(
                parts.next(),
                Some("counter") | Some("gauge") | Some("histogram")
            ));
            continue;
        }
        let (series_part, value) = line.rsplit_once(' ').expect("value present");
        let name = series_part.split('{').next().unwrap();
        assert!(name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        if let Some(labels) = series_part.strip_prefix(&format!("{name}{{")) {
            let labels = labels.strip_suffix('}').expect("closing brace");
            let (key, quoted) = labels.split_once('=').expect("label assignment");
            assert_eq!(key, "le");
            assert!(quoted.starts_with('"') && quoted.ends_with('"'));
        }
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf",
            "unparseable sample value {value:?}"
        );
        series += 1;
    }
    // 2 counters + 1 gauge + 1 fgauge + 2 histograms × (buckets + sum +
    // count).
    let expected =
        2 + 1 + 1 + (buckets::LATENCY_SECONDS.len() + 1 + 2) + (buckets::SIZES.len() + 1 + 2);
    assert_eq!(series, expected);
}

#[test]
fn histogram_totals_match_buckets_after_roundtrip() {
    let snap = sample_registry().snapshot();
    let parsed: Value = serde_json::from_str(&snap.to_json()).unwrap();
    let rebuilt = snapshot_from_json(&parsed);
    for (name, h) in &rebuilt.histograms {
        assert_eq!(
            h.counts.iter().sum::<u64>(),
            h.count,
            "bucket totals disagree for {name}"
        );
    }
}
