//! Structured lifecycle-event stream (JSON lines).
//!
//! Metrics answer "how much / how fast"; the event stream answers **what
//! happened to the clusters** — births, deaths, splits, merges, drift —
//! one JSON object per line, in the order the pipeline observed them.
//! The producer side lives in `nidc-core` (`LineageTracker` serialises its
//! typed events); this module owns the process-global sink those lines go
//! through, mirroring the discipline of the metrics registry:
//!
//! * **off by default** — an emit site pays one relaxed atomic load plus a
//!   branch while no session is active, and builds no strings;
//! * **pure observer** — nothing in the algorithm reads the sink back, so
//!   clustering results are bit-identical with events on or off (enforced
//!   by `tests/obs_determinism.rs`);
//! * **line-buffered** — every completed event reaches the file when its
//!   newline is written, so an aborted run leaves whole, parseable lines.
//!
//! The first line of every stream is a header object
//! `{"schema":"nidc-events","v":N}`; consumers (`check_events`,
//! `nidc inspect`) refuse streams whose version they do not know.

use std::fs::{self, File};
use std::io::{self, LineWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Version of the event-stream wire schema, written in the header line.
///
/// Bump when an event kind changes shape or meaning; additive new kinds do
/// not require a bump (consumers must skip unknown `kind`s).
pub const EVENTS_SCHEMA_VERSION: u32 = 1;

/// Whether an event session is currently active. Relaxed: same determinism
/// contract as the metrics enable flag.
static EVENTS_ENABLED: AtomicBool = AtomicBool::new(false);

/// The open sink, installed by [`EventSession::create`].
static SINK: Mutex<Option<LineWriter<File>>> = Mutex::new(None);

fn sink() -> MutexGuard<'static, Option<LineWriter<File>>> {
    // A poisoned sink only means a writer thread panicked mid-line; the
    // stream stays usable and observability must never take the process
    // down.
    SINK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether an event sink is installed. Emit sites check this **before**
/// building their JSON line, so the disabled cost is one relaxed load.
#[inline(always)]
pub fn enabled() -> bool {
    EVENTS_ENABLED.load(Ordering::Relaxed)
}

/// Appends one pre-serialised JSON object to the active stream (no-op when
/// no session is active). `json` must be a single line without a trailing
/// newline; write errors are swallowed here and surfaced by
/// [`EventSession::finish`].
pub fn emit_line(json: &str) {
    debug_assert!(!json.contains('\n'), "event lines must be single-line");
    if !enabled() {
        return;
    }
    if let Some(w) = sink().as_mut() {
        let mut line = String::with_capacity(json.len() + 1);
        line.push_str(json);
        line.push('\n');
        let _ = w.write_all(line.as_bytes());
    }
}

/// Tears the sink down without flushing beyond what line-buffering already
/// pushed out. Part of [`crate::reset_all`], the between-runs boundary.
pub(crate) fn reset() {
    EVENTS_ENABLED.store(false, Ordering::Relaxed);
    *sink() = None;
}

/// An active event stream: created at the top of a run, finished at the end.
///
/// Creating a session truncates `path`, writes the schema header line, and
/// installs the process-global sink; [`EventSession::finish`] flushes and
/// uninstalls it. Only one session can be active at a time — creating a
/// second replaces the first (matching `reset_all` semantics between CLI
/// runs).
#[derive(Debug)]
pub struct EventSession {
    path: PathBuf,
}

impl EventSession {
    /// Creates (truncating) the event file at `path`, making parent
    /// directories as needed, writes the schema header, and starts
    /// recording.
    pub fn create(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let mut writer = LineWriter::new(File::create(&path)?);
        writer.write_all(
            format!("{{\"schema\":\"nidc-events\",\"v\":{EVENTS_SCHEMA_VERSION}}}\n").as_bytes(),
        )?;
        *sink() = Some(writer);
        EVENTS_ENABLED.store(true, Ordering::Relaxed);
        Ok(Self { path })
    }

    /// Where events go.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stops recording, flushes, and surfaces any deferred I/O error.
    pub fn finish(self) -> io::Result<()> {
        EVENTS_ENABLED.store(false, Ordering::Relaxed);
        let writer = sink().take();
        match writer {
            Some(mut w) => w.flush(),
            None => Ok(()),
        }
    }
}

impl Drop for EventSession {
    fn drop(&mut self) {
        // Best-effort finish for sessions dropped without `finish()` (e.g.
        // an early `?` return); errors are swallowed as `Drop` must.
        EVENTS_ENABLED.store(false, Ordering::Relaxed);
        if let Some(mut w) = sink().take() {
            let _ = w.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::global_lock;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "nidc_obs_events_{tag}_{}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn disabled_emit_is_a_no_op() {
        let _guard = global_lock();
        reset();
        assert!(!enabled());
        emit_line("{\"kind\":\"lost\"}"); // must not panic, must not write
    }

    #[test]
    fn session_writes_header_then_lines_and_finish_tears_down() {
        let _guard = global_lock();
        let path = tmp("roundtrip");
        let session = EventSession::create(&path).unwrap();
        assert!(enabled());
        assert_eq!(session.path(), path.as_path());
        emit_line("{\"kind\":\"birth\",\"lineage\":1}");
        emit_line("{\"kind\":\"death\",\"lineage\":1}");
        session.finish().unwrap();
        assert!(!enabled());
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            format!("{{\"schema\":\"nidc-events\",\"v\":{EVENTS_SCHEMA_VERSION}}}")
        );
        assert!(lines[1].contains("\"birth\""));
        assert!(lines[2].contains("\"death\""));
        // After finish, emits go nowhere.
        emit_line("{\"kind\":\"late\"}");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn drop_without_finish_still_flushes_and_disables() {
        let _guard = global_lock();
        let path = tmp("drop");
        {
            let _session = EventSession::create(&path).unwrap();
            emit_line("{\"kind\":\"birth\",\"lineage\":7}");
        }
        assert!(!enabled());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "header + one event: {text:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn create_makes_parent_dirs() {
        let _guard = global_lock();
        let dir = std::env::temp_dir().join(format!("nidc_obs_events_dir_{}", std::process::id()));
        let path = dir.join("nested/events.jsonl");
        let session = EventSession::create(&path).unwrap();
        session.finish().unwrap();
        assert!(path.is_file());
        std::fs::remove_dir_all(&dir).ok();
    }
}
