//! Minimal leveled, structured logging to stderr.
//!
//! One line per event, `key=value` formatted, e.g.:
//!
//! ```text
//! ts=12.345 level=debug target=kmeans event=iteration iter=3 moved=12 g=0.018221
//! ```
//!
//! Logging is off by default (`Level::Off`); the CLI maps `--log-level`
//! onto [`set_log_level`]. The level check is one relaxed atomic load, so
//! disabled call sites that pre-check [`log_on`] pay no formatting cost.

use std::fmt;
use std::io::Write;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Log verbosity, ordered: `Off < Info < Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Level {
    /// No logging (default).
    #[default]
    Off,
    /// Once-per-phase events (recluster summaries, recompute fallbacks).
    Info,
    /// Per-iteration detail (K-means convergence traces).
    Debug,
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(Self::Off),
            "info" => Ok(Self::Info),
            "debug" => Ok(Self::Debug),
            other => Err(format!(
                "unknown log level {other:?} (expected off|info|debug)"
            )),
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Off => "off",
            Self::Info => "info",
            Self::Debug => "debug",
        })
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(0);

fn level_from_u8(v: u8) -> Level {
    match v {
        2 => Level::Debug,
        1 => Level::Info,
        _ => Level::Off,
    }
}

/// Sets the process-wide log level.
pub fn set_log_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current process-wide log level.
pub fn log_level() -> Level {
    level_from_u8(LEVEL.load(Ordering::Relaxed))
}

/// Whether events at `level` are currently emitted. Call sites with costly
/// field computation should pre-check this.
#[inline]
pub fn log_on(level: Level) -> bool {
    level != Level::Off && level <= log_level()
}

/// Seconds since the first log call of the process (stable origin for the
/// `ts=` field).
fn uptime() -> f64 {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// Emits one structured line to stderr if `level` is enabled.
///
/// `target` names the subsystem (`pipeline`, `kmeans`, `forgetting`, …),
/// `event` the occurrence, and `fields` extra `key=value` pairs.
pub fn log(level: Level, target: &str, event: &str, fields: &[(&str, &dyn fmt::Display)]) {
    if !log_on(level) {
        return;
    }
    let mut line = String::with_capacity(96);
    line.push_str(&format!(
        "ts={:.3} level={level} target={target} event={event}",
        uptime()
    ));
    for (key, value) in fields {
        line.push(' ');
        line.push_str(key);
        line.push('=');
        line.push_str(&value.to_string());
    }
    line.push('\n');
    // One write per line keeps concurrent emitters from interleaving;
    // failure to log must never take the pipeline down.
    let _ = std::io::stderr().write_all(line.as_bytes());
}

/// [`log`] at [`Level::Info`].
pub fn info(target: &str, event: &str, fields: &[(&str, &dyn fmt::Display)]) {
    log(Level::Info, target, event, fields);
}

/// [`log`] at [`Level::Debug`].
pub fn debug(target: &str, event: &str, fields: &[(&str, &dyn fmt::Display)]) {
    log(Level::Debug, target, event, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_display_roundtrip() {
        for level in [Level::Off, Level::Info, Level::Debug] {
            assert_eq!(level.to_string().parse::<Level>().unwrap(), level);
        }
        assert!("verbose".parse::<Level>().is_err());
    }

    #[test]
    fn level_ordering_gates_events() {
        let _guard = crate::test_support::global_lock();
        set_log_level(Level::Off);
        assert!(!log_on(Level::Info));
        assert!(!log_on(Level::Debug));
        // `Off`-level events never fire, whatever the threshold.
        set_log_level(Level::Debug);
        assert!(!log_on(Level::Off));
        assert!(log_on(Level::Info));
        assert!(log_on(Level::Debug));
        set_log_level(Level::Info);
        assert!(log_on(Level::Info));
        assert!(!log_on(Level::Debug));
        set_log_level(Level::Off);
    }

    #[test]
    fn log_calls_do_not_panic() {
        let _guard = crate::test_support::global_lock();
        set_log_level(Level::Debug);
        info("obs", "test_event", &[("k", &1u64), ("name", &"value")]);
        debug("obs", "test_event", &[("f", &0.5f64)]);
        log(Level::Off, "obs", "never", &[]);
        set_log_level(Level::Off);
    }
}
