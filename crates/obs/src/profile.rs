//! In-process hierarchical profiling over drained trace events.
//!
//! [`Profile::from_events`] matches begin/end pairs, follows parent links
//! (across threads — a shard worker's spans aggregate under the fan-out
//! span that spawned it), and merges spans with the same *name path* into
//! one node: `pipeline.recluster → kmeans.run → kmeans.iteration` is a
//! single row however many windows and iterations ran. Each node carries a
//! call count, total wall time, self time (total minus the time spent in
//! child spans), and — when allocation tracking ran — allocation counts and
//! bytes with the same total/self split, rendered as a tree-indented text
//! report by [`Profile::to_text`] — the `--trace-summary` output.

use std::collections::BTreeMap;

use crate::trace::{TraceEvent, TracePhase};

/// One aggregated node of the profile tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileNode {
    /// Span name (shared by every span merged into this node).
    pub name: &'static str,
    /// How many spans merged here.
    pub calls: u64,
    /// Σ span durations.
    pub total_ns: u64,
    /// Σ (span duration − child span durations); time spent in this node's
    /// own code rather than in instrumented children.
    pub self_ns: u64,
    /// Σ allocation events inside these spans (0 when tracking was off).
    pub total_allocs: u64,
    /// Σ (span allocations − child span allocations).
    pub self_allocs: u64,
    /// Σ bytes allocated inside these spans (0 when tracking was off).
    pub total_bytes: u64,
    /// Σ (span bytes − child span bytes).
    pub self_bytes: u64,
    /// Child nodes, sorted by descending total time.
    pub children: Vec<ProfileNode>,
}

/// An aggregated span tree; see the module docs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Root nodes (spans with no recorded parent), sorted by descending
    /// total time.
    pub roots: Vec<ProfileNode>,
}

/// Aggregation arena node, flattened to [`ProfileNode`] at the end.
#[derive(Default)]
struct Agg {
    calls: u64,
    total_ns: u64,
    self_ns: u64,
    total_allocs: u64,
    self_allocs: u64,
    total_bytes: u64,
    self_bytes: u64,
    children: BTreeMap<&'static str, usize>,
}

impl Profile {
    /// Builds the aggregated tree from a drained event stream. Spans
    /// missing an end event (which [`crate::trace::validate_events`] would
    /// reject) are skipped.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        // Match begin/end pairs into (name, parent, duration, allocation
        // delta) records. Like `dur_ns`, the alloc fields hold the begin
        // snapshot until the end event converts them into deltas.
        struct Rec {
            name: &'static str,
            parent: u64,
            dur_ns: u64,
            child_ns: u64,
            allocs: u64,
            child_allocs: u64,
            bytes: u64,
            child_bytes: u64,
        }
        let mut recs: BTreeMap<u64, Rec> = BTreeMap::new();
        for ev in events {
            match ev.phase {
                TracePhase::Begin => {
                    recs.insert(
                        ev.id,
                        Rec {
                            name: ev.name,
                            parent: ev.parent,
                            dur_ns: ev.ts_ns, // begin ts until the end arrives
                            child_ns: 0,
                            allocs: ev.allocs,
                            child_allocs: 0,
                            bytes: ev.bytes,
                            child_bytes: 0,
                        },
                    );
                }
                TracePhase::End => {
                    if let Some(r) = recs.get_mut(&ev.id) {
                        r.dur_ns = ev.ts_ns.saturating_sub(r.dur_ns);
                        r.allocs = ev.allocs.saturating_sub(r.allocs);
                        r.bytes = ev.bytes.saturating_sub(r.bytes);
                    }
                }
            }
        }
        // Drop unmatched begins: their dur_ns still holds a raw timestamp.
        let mut ended: BTreeMap<u64, bool> = BTreeMap::new();
        for ev in events {
            if ev.phase == TracePhase::End {
                ended.insert(ev.id, true);
            }
        }
        recs.retain(|id, _| ended.contains_key(id));

        // Charge each span's duration and allocations to its parent's
        // child tallies.
        let child_sums: Vec<(u64, u64, u64, u64)> = recs
            .values()
            .filter(|r| r.parent != 0)
            .map(|r| (r.parent, r.dur_ns, r.allocs, r.bytes))
            .collect();
        for (parent, dur, allocs, bytes) in child_sums {
            if let Some(p) = recs.get_mut(&parent) {
                p.child_ns += dur;
                p.child_allocs += allocs;
                p.child_bytes += bytes;
            }
        }

        // Aggregate by name path. `path_of` memoises span id → arena index.
        let mut arena: Vec<Agg> = Vec::new();
        let mut root_index: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut node_of: BTreeMap<u64, usize> = BTreeMap::new();
        // Ids in ascending order: a span's id is always greater than its
        // parent's (allocation order), so parents resolve before children.
        let ids: Vec<u64> = recs.keys().copied().collect();
        for id in ids {
            let (name, parent) = {
                let r = &recs[&id];
                (r.name, r.parent)
            };
            let slot = match node_of.get(&parent) {
                Some(&p_idx) => {
                    if let Some(&idx) = arena[p_idx].children.get(name) {
                        idx
                    } else {
                        arena.push(Agg::default());
                        let idx = arena.len() - 1;
                        arena[p_idx].children.insert(name, idx);
                        idx
                    }
                }
                // Parent 0 or a parent that never ended: treat as a root.
                None => *root_index.entry(name).or_insert_with(|| {
                    arena.push(Agg::default());
                    arena.len() - 1
                }),
            };
            node_of.insert(id, slot);
            let r = &recs[&id];
            arena[slot].calls += 1;
            arena[slot].total_ns += r.dur_ns;
            arena[slot].self_ns += r.dur_ns.saturating_sub(r.child_ns);
            arena[slot].total_allocs += r.allocs;
            arena[slot].self_allocs += r.allocs.saturating_sub(r.child_allocs);
            arena[slot].total_bytes += r.bytes;
            arena[slot].self_bytes += r.bytes.saturating_sub(r.child_bytes);
        }

        fn build(name: &'static str, idx: usize, arena: &[Agg]) -> ProfileNode {
            let a = &arena[idx];
            let mut children: Vec<ProfileNode> = a
                .children
                .iter()
                .map(|(n, i)| build(n, *i, arena))
                .collect();
            children.sort_by(|x, y| y.total_ns.cmp(&x.total_ns).then(x.name.cmp(y.name)));
            ProfileNode {
                name,
                calls: a.calls,
                total_ns: a.total_ns,
                self_ns: a.self_ns,
                total_allocs: a.total_allocs,
                self_allocs: a.self_allocs,
                total_bytes: a.total_bytes,
                self_bytes: a.self_bytes,
                children,
            }
        }
        let mut roots: Vec<ProfileNode> = root_index
            .iter()
            .map(|(name, idx)| build(name, *idx, &arena))
            .collect();
        roots.sort_by(|x, y| y.total_ns.cmp(&x.total_ns).then(x.name.cmp(y.name)));
        Self { roots }
    }

    /// Total number of aggregated nodes.
    pub fn node_count(&self) -> usize {
        fn count(n: &ProfileNode) -> usize {
            1 + n.children.iter().map(count).sum::<usize>()
        }
        self.roots.iter().map(count).sum()
    }

    /// The tree-indented text report, e.g.:
    ///
    /// ```text
    /// span                                      calls      total       self     allocs self-alloc      bytes self-bytes
    /// pipeline.recluster                            4    38.21ms     1.02ms      52.1k       1.2k    11.4MB    201.0KB
    ///   kmeans.run                                  4    35.70ms     0.41ms      50.9k       0.3k    11.2MB     90.5KB
    /// ```
    ///
    /// The allocation columns render as `0` throughout when allocation
    /// tracking was off during the traced run.
    pub fn to_text(&self) -> String {
        const NAME_WIDTH: usize = 40;
        let mut out = String::new();
        out.push_str(&format!(
            "{:<NAME_WIDTH$} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            "span", "calls", "total", "self", "allocs", "self-alloc", "bytes", "self-bytes"
        ));
        fn walk(node: &ProfileNode, depth: usize, out: &mut String) {
            let label = format!("{}{}", "  ".repeat(depth), node.name);
            out.push_str(&format!(
                "{:<NAME_WIDTH$} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                label,
                node.calls,
                fmt_ns(node.total_ns),
                fmt_ns(node.self_ns),
                fmt_count(node.total_allocs),
                fmt_count(node.self_allocs),
                fmt_bytes(node.total_bytes),
                fmt_bytes(node.self_bytes),
            ));
            for child in &node.children {
                walk(child, depth + 1, out);
            }
        }
        for root in &self.roots {
            walk(root, 0, &mut out);
        }
        out
    }
}

/// `999` / `12.3k` / `4.5M` — event counts, unit by magnitude.
fn fmt_count(n: u64) -> String {
    let n = n as f64;
    if n < 10_000.0 {
        format!("{n:.0}")
    } else if n < 10_000_000.0 {
        format!("{:.1}k", n / 1_000.0)
    } else {
        format!("{:.1}M", n / 1_000_000.0)
    }
}

/// `999B` / `12.3KB` / `4.5MB` / `6.7GB` — byte volumes, unit by magnitude.
fn fmt_bytes(b: u64) -> String {
    let b = b as f64;
    if b < 1_024.0 {
        format!("{b:.0}B")
    } else if b < 1_048_576.0 {
        format!("{:.1}KB", b / 1_024.0)
    } else if b < 1_073_741_824.0 {
        format!("{:.1}MB", b / 1_048_576.0)
    } else {
        format!("{:.1}GB", b / 1_073_741_824.0)
    }
}

/// `12.34µs` / `5.67ms` / `8.90s` — fixed two decimals, unit by magnitude.
fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2}µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, id: u64, parent: u64, phase: TracePhase, ts_ns: u64) -> TraceEvent {
        TraceEvent {
            name,
            id,
            parent,
            track: 0,
            thread: 0,
            phase,
            ts_ns,
            allocs: 0,
            bytes: 0,
        }
    }

    fn ev_alloc(
        name: &'static str,
        id: u64,
        parent: u64,
        phase: TracePhase,
        ts_ns: u64,
        allocs: u64,
        bytes: u64,
    ) -> TraceEvent {
        TraceEvent {
            allocs,
            bytes,
            ..ev(name, id, parent, phase, ts_ns)
        }
    }

    #[test]
    fn aggregates_same_path_and_computes_self_time() {
        use TracePhase::{Begin, End};
        // window(0..100) { kmeans(10..90) { iter(20..40), iter(50..80) } }
        let events = vec![
            ev("window", 1, 0, Begin, 0),
            ev("kmeans", 2, 1, Begin, 10),
            ev("iter", 3, 2, Begin, 20),
            ev("iter", 3, 2, End, 40),
            ev("iter", 4, 2, Begin, 50),
            ev("iter", 4, 2, End, 80),
            ev("kmeans", 2, 1, End, 90),
            ev("window", 1, 0, End, 100),
        ];
        let p = Profile::from_events(&events);
        assert_eq!(p.roots.len(), 1);
        let window = &p.roots[0];
        assert_eq!(
            (window.name, window.calls, window.total_ns),
            ("window", 1, 100)
        );
        assert_eq!(window.self_ns, 20, "100 total − 80 in kmeans");
        let kmeans = &window.children[0];
        assert_eq!(
            (kmeans.name, kmeans.calls, kmeans.total_ns),
            ("kmeans", 1, 80)
        );
        assert_eq!(kmeans.self_ns, 30, "80 − (20 + 30) in iters");
        let iter = &kmeans.children[0];
        assert_eq!((iter.name, iter.calls, iter.total_ns), ("iter", 2, 50));
        assert_eq!(iter.self_ns, 50);
        assert_eq!(p.node_count(), 3);
    }

    #[test]
    fn cross_thread_children_attach_to_their_parent() {
        use TracePhase::{Begin, End};
        let mut events = vec![ev("fanout", 1, 0, Begin, 0)];
        let mut worker = ev("chunk", 2, 1, Begin, 5);
        worker.thread = 3;
        events.push(worker);
        let mut worker_end = ev("chunk", 2, 1, End, 15);
        worker_end.thread = 3;
        events.push(worker_end);
        events.push(ev("fanout", 1, 0, End, 20));
        let p = Profile::from_events(&events);
        assert_eq!(p.roots.len(), 1);
        assert_eq!(p.roots[0].children[0].name, "chunk");
        assert_eq!(p.roots[0].self_ns, 10);
    }

    #[test]
    fn alloc_deltas_aggregate_with_self_split() {
        use TracePhase::{Begin, End};
        // outer allocates 10 events / 1000 bytes overall, of which the
        // inner span accounts for 4 events / 300 bytes.
        let events = vec![
            ev_alloc("outer", 1, 0, Begin, 0, 100, 5_000),
            ev_alloc("inner", 2, 1, Begin, 10, 103, 5_200),
            ev_alloc("inner", 2, 1, End, 20, 107, 5_500),
            ev_alloc("outer", 1, 0, End, 30, 110, 6_000),
        ];
        let p = Profile::from_events(&events);
        let outer = &p.roots[0];
        assert_eq!((outer.total_allocs, outer.total_bytes), (10, 1_000));
        assert_eq!((outer.self_allocs, outer.self_bytes), (6, 700));
        let inner = &outer.children[0];
        assert_eq!((inner.total_allocs, inner.total_bytes), (4, 300));
        assert_eq!((inner.self_allocs, inner.self_bytes), (4, 300));
    }

    #[test]
    fn text_report_is_tree_indented() {
        use TracePhase::{Begin, End};
        let events = vec![
            ev("outer", 1, 0, Begin, 0),
            ev("inner", 2, 1, Begin, 1_000),
            ev("inner", 2, 1, End, 2_500_000),
            ev("outer", 1, 0, End, 3_000_000),
        ];
        let text = Profile::from_events(&events).to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("span"));
        assert!(lines[1].starts_with("outer"));
        assert!(lines[2].starts_with("  inner"), "indented: {:?}", lines[2]);
        assert!(lines[1].contains("3.00ms"));
        assert!(lines[2].contains("2.50ms"));
    }

    #[test]
    fn unmatched_begins_are_skipped() {
        use TracePhase::Begin;
        let events = vec![ev("dangling", 1, 0, Begin, 5)];
        let p = Profile::from_events(&events);
        assert!(p.roots.is_empty());
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(12_340), "12.34µs");
        assert_eq!(fmt_ns(5_670_000), "5.67ms");
        assert_eq!(fmt_ns(8_900_000_000), "8.90s");
    }

    #[test]
    fn fmt_count_and_bytes_units() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(9_999), "9999");
        assert_eq!(fmt_count(52_100), "52.1k");
        assert_eq!(fmt_count(12_500_000), "12.5M");
        assert_eq!(fmt_bytes(0), "0B");
        assert_eq!(fmt_bytes(1_023), "1023B");
        assert_eq!(fmt_bytes(205_824), "201.0KB");
        assert_eq!(fmt_bytes(11_953_766), "11.4MB");
        assert_eq!(fmt_bytes(2_147_483_648), "2.0GB");
    }
}
