//! Static site handles: cheap, cache the registry lookup once per site.

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::metrics::{Counter, Histogram};

/// A named counter site, declared as a `static` next to the code it counts.
///
/// Disabled cost: one relaxed load + branch. Enabled cost: one `OnceLock`
/// load (the registry lookup happens only on the first event) plus one
/// relaxed `fetch_add`.
///
/// ```
/// static MOVES: nidc_obs::LazyCounter = nidc_obs::LazyCounter::new("demo_moves_total");
/// MOVES.add(3);
/// ```
#[derive(Debug)]
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<Arc<Counter>>,
}

impl LazyCounter {
    /// A handle for the counter registered under `name`.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The metric name this site records under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `delta` events (no-op while recording is disabled).
    ///
    /// `add(0)` still registers the metric — call sites use that to make a
    /// counter visible in snapshots even in runs where it never fires.
    #[inline]
    pub fn add(&self, delta: u64) {
        if crate::enabled() {
            self.cell
                .get_or_init(|| crate::global().counter(self.name))
                .add(delta);
        }
    }

    /// Adds one event (no-op while recording is disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }
}

/// A named histogram site, declared as a `static` with its bucket layout.
///
/// ```
/// use nidc_obs::{buckets, LazyHistogram};
/// static PHASE: LazyHistogram = LazyHistogram::new("demo_seconds", buckets::LATENCY_SECONDS);
/// PHASE.observe(0.032);
/// let _timer = PHASE.start_timer(); // or time a scope via RAII
/// ```
#[derive(Debug)]
pub struct LazyHistogram {
    name: &'static str,
    bounds: &'static [f64],
    cell: OnceLock<Arc<Histogram>>,
}

impl LazyHistogram {
    /// A handle for the histogram registered under `name` with `bounds`.
    pub const fn new(name: &'static str, bounds: &'static [f64]) -> Self {
        Self {
            name,
            bounds,
            cell: OnceLock::new(),
        }
    }

    /// The metric name this site records under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one observation (no-op while recording is disabled).
    #[inline]
    pub fn observe(&self, value: f64) {
        if crate::enabled() {
            self.cell
                .get_or_init(|| crate::global().histogram(self.name, self.bounds))
                .observe(value);
        }
    }

    /// Registers the histogram without recording anything, so it shows up
    /// (empty) in snapshots even in runs where the site never fires.
    pub fn touch(&self) {
        if crate::enabled() {
            self.cell
                .get_or_init(|| crate::global().histogram(self.name, self.bounds));
        }
    }

    /// Starts a phase timer that records elapsed seconds into this
    /// histogram when dropped. Returns an inert timer while disabled.
    #[inline]
    pub fn start_timer(&'static self) -> PhaseTimer {
        PhaseTimer {
            site: crate::enabled().then(|| (self, Instant::now())),
        }
    }
}

/// RAII phase timer: measures wall-clock seconds from construction to drop
/// and records them into its [`LazyHistogram`].
///
/// Obtained from [`LazyHistogram::start_timer`]. While recording is
/// disabled the timer is inert (no clock read at all).
#[derive(Debug)]
#[must_use = "a phase timer records on drop; binding it to `_` drops it immediately"]
pub struct PhaseTimer {
    site: Option<(&'static LazyHistogram, Instant)>,
}

impl PhaseTimer {
    /// An inert timer (records nothing). Useful as a default.
    pub fn disabled() -> Self {
        Self { site: None }
    }

    /// Stops the timer now and records, instead of waiting for scope end.
    pub fn stop(self) {}
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        if let Some((site, started)) = self.site.take() {
            site.observe(started.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::buckets;
    use crate::test_support::global_lock;

    #[test]
    fn lazy_sites_record_only_while_enabled() {
        let _guard = global_lock();
        static C: LazyCounter = LazyCounter::new("handles_gate_total");
        static H: LazyHistogram =
            LazyHistogram::new("handles_gate_seconds", buckets::LATENCY_SECONDS);
        crate::set_enabled(false);
        C.inc();
        H.observe(1.0);
        assert_eq!(crate::snapshot().counter("handles_gate_total"), None);
        crate::set_enabled(true);
        C.add(2);
        H.observe(0.5);
        let snap = crate::snapshot();
        assert_eq!(snap.counter("handles_gate_total"), Some(2));
        assert_eq!(snap.histogram("handles_gate_seconds").unwrap().count, 1);
        crate::set_enabled(false);
    }

    #[test]
    fn add_zero_registers_the_metric() {
        let _guard = global_lock();
        static C: LazyCounter = LazyCounter::new("handles_zero_total");
        static H: LazyHistogram = LazyHistogram::new("handles_zero_sizes", buckets::SIZES);
        crate::set_enabled(true);
        C.add(0);
        H.touch();
        let snap = crate::snapshot();
        assert_eq!(snap.counter("handles_zero_total"), Some(0));
        assert_eq!(snap.histogram("handles_zero_sizes").unwrap().count, 0);
        crate::set_enabled(false);
    }

    #[test]
    fn phase_timer_observes_on_drop() {
        let _guard = global_lock();
        static H: LazyHistogram =
            LazyHistogram::new("handles_timer_seconds", buckets::LATENCY_SECONDS);
        crate::set_enabled(true);
        {
            let _t = H.start_timer();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = crate::snapshot();
        let h = snap.histogram("handles_timer_seconds").unwrap();
        assert_eq!(h.count, 1);
        assert!(h.sum >= 0.002, "sum={}", h.sum);
        crate::set_enabled(false);
        // Disabled timers are inert.
        let t = H.start_timer();
        assert!(t.site.is_none());
        t.stop();
    }
}
