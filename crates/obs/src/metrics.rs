//! The two metric primitives: atomic counters and fixed-bucket histograms.

use std::sync::atomic::{AtomicU64, Ordering};

/// Standard bucket layouts.
///
/// Buckets are `f64` upper bounds, ascending and inclusive (a value lands in
/// the first bucket whose bound is `>=` the value, Prometheus `le`
/// semantics); an implicit `+Inf` overflow bucket is always appended.
pub mod buckets {
    /// Wall-clock phase latencies in seconds, 1µs – 60s.
    pub const LATENCY_SECONDS: &[f64] = &[
        1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
    ];

    /// Sub-millisecond micro-op latencies in seconds, 25ns – 100ms.
    ///
    /// [`LATENCY_SECONDS`] collapses everything under 1µs into one bucket,
    /// which hides the distributions that matter for the step-1 sweep,
    /// `ClusterIndex` maintenance, and per-document ingest: those run in
    /// tens of nanoseconds to tens of microseconds. This family trades the
    /// multi-second tail for 2.5×/4× steps through the ns/µs decades.
    pub const FINE_SECONDS: &[f64] = &[
        2.5e-8, 1e-7, 2.5e-7, 1e-6, 2.5e-6, 1e-5, 2.5e-5, 1e-4, 2.5e-4, 1e-3, 2.5e-3, 1e-2, 2.5e-2,
        0.1,
    ];

    /// Size-like quantities (documents, postings, chunk lengths).
    pub const SIZES: &[f64] = &[
        1.0,
        2.0,
        5.0,
        10.0,
        25.0,
        50.0,
        100.0,
        250.0,
        500.0,
        1_000.0,
        2_500.0,
        5_000.0,
        10_000.0,
        50_000.0,
        100_000.0,
        1_000_000.0,
    ];

    /// K-means repetition counts until convergence.
    pub const ITERATIONS: &[f64] = &[1.0, 2.0, 3.0, 4.0, 5.0, 7.0, 10.0, 15.0, 20.0, 30.0, 50.0];

    /// Clustering-index G values (log-spaced; G spans many decades as the
    /// live-document count and decay weights change).
    pub const OBJECTIVE_G: &[f64] = &[
        1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0, 1_000.0,
    ];
}

/// A monotonically increasing event counter.
///
/// All updates are relaxed atomic adds; reads are snapshots, not
/// linearisation points.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `delta` events.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the counter in place.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// A fixed-bucket histogram with a running sum.
///
/// Bounds come from [`buckets`] (or any static ascending slice); a value
/// `v` lands in the first bucket with `v <= bound`, or in the implicit
/// `+Inf` overflow bucket. Non-finite observations are dropped — the only
/// instrumented sources are wall-clock durations and already-validated
/// objective values, so a NaN here is a recording bug, not a signal.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [f64],
    /// One slot per bound plus the `+Inf` overflow slot.
    counts: Vec<AtomicU64>,
    /// Σ observed values, stored as `f64::to_bits` and updated by CAS.
    sum_bits: AtomicU64,
}

impl Histogram {
    /// A histogram over `bounds` (ascending, finite), all buckets zero.
    pub fn new(bounds: &'static [f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        debug_assert!(
            bounds.iter().all(|b| b.is_finite()),
            "bounds must be finite"
        );
        Self {
            bounds,
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0.0_f64.to_bits()),
        }
    }

    /// The finite upper bounds this histogram was built with.
    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: f64) {
        if !value.is_finite() {
            return;
        }
        // First bucket whose (inclusive) upper bound contains `value`;
        // `partition_point` returns `bounds.len()` for the overflow bucket.
        let idx = self.bounds.partition_point(|b| value > *b);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Per-bucket (non-cumulative) counts; the last entry is the `+Inf`
    /// overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Zeroes every bucket and the sum in place.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.sum_bits.store(0.0_f64.to_bits(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_add_inc_reset() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive_upper_bounds() {
        static BOUNDS: &[f64] = &[1.0, 2.0, 5.0];
        let h = Histogram::new(BOUNDS);
        h.observe(0.0); // below everything → bucket 0
        h.observe(1.0); // exactly on a bound → that bucket (le semantics)
        h.observe(1.0000001); // just above → next bucket
        h.observe(2.0);
        h.observe(5.0);
        h.observe(5.0000001); // above the last bound → +Inf overflow
        assert_eq!(h.bucket_counts(), vec![2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        assert!((h.sum() - (0.0 + 1.0 + 1.0000001 + 2.0 + 5.0 + 5.0000001)).abs() < 1e-9);
    }

    #[test]
    fn histogram_negative_values_land_in_first_bucket() {
        static BOUNDS: &[f64] = &[1.0, 2.0];
        let h = Histogram::new(BOUNDS);
        h.observe(-3.0);
        assert_eq!(h.bucket_counts(), vec![1, 0, 0]);
        assert_eq!(h.sum(), -3.0);
    }

    #[test]
    fn histogram_ignores_non_finite() {
        static BOUNDS: &[f64] = &[1.0];
        let h = Histogram::new(BOUNDS);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(f64::NEG_INFINITY);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn histogram_reset_zeroes_in_place() {
        static BOUNDS: &[f64] = &[1.0];
        let h = Histogram::new(BOUNDS);
        h.observe(0.5);
        h.observe(3.0);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.bucket_counts(), vec![0, 0]);
    }

    #[test]
    fn preset_bucket_layouts_ascend() {
        for bounds in [
            buckets::LATENCY_SECONDS,
            buckets::FINE_SECONDS,
            buckets::SIZES,
            buckets::ITERATIONS,
            buckets::OBJECTIVE_G,
        ] {
            assert!(bounds.windows(2).all(|w| w[0] < w[1]));
            assert!(bounds.iter().all(|b| b.is_finite() && *b > 0.0));
        }
    }

    #[test]
    fn histogram_concurrent_observe_is_lossless_on_count() {
        static BOUNDS: &[f64] = &[10.0, 100.0];
        let h = Histogram::new(BOUNDS);
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1000 {
                        h.observe((t * 50 + i % 150) as f64);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
    }
}
