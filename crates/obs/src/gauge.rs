//! Gauges (last-value metrics), their static site handles, and the
//! [`DeepSize`] trait that feeds the retained-structure heap gauges.
//!
//! Counters accumulate and histograms distribute; a [`Gauge`] simply holds
//! the **last sampled value** — the natural shape for heap footprints
//! (`nidc_mem_*_bytes`), which are re-measured once per window/recluster
//! rather than accumulated. The JSONL exporter's per-window [`crate::reset`]
//! zeroes gauges too, so a window in which a structure was never re-sampled
//! reports `0` (meaning "not sampled"), not a stale figure.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A last-value metric: `set` overwrites, `get` reads.
///
/// All relaxed atomics, same determinism contract as [`crate::Counter`]:
/// the algorithm never reads gauges back.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Overwrites the gauge with `value`.
    #[inline]
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// The last value set (zero if never set or since reset).
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the gauge in place (registration survives).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A named gauge site, declared as a `static` next to the code it measures.
///
/// Same discipline as [`crate::LazyCounter`]: disabled cost is one relaxed
/// load + branch, and the registry lookup is cached in a `OnceLock` after
/// the first event. `set(0)` (or [`LazyGauge::touch`]) registers the gauge
/// without asserting a measurement.
///
/// ```
/// static HEAP: nidc_obs::LazyGauge = nidc_obs::LazyGauge::new("demo_heap_bytes");
/// HEAP.set(4096);
/// ```
#[derive(Debug)]
pub struct LazyGauge {
    name: &'static str,
    cell: OnceLock<Arc<Gauge>>,
}

impl LazyGauge {
    /// A handle for the gauge registered under `name`.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The metric name this site records under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Overwrites the gauge (no-op while recording is disabled).
    #[inline]
    pub fn set(&self, value: u64) {
        if crate::enabled() {
            self.cell
                .get_or_init(|| crate::global().gauge(self.name))
                .set(value);
        }
    }

    /// Registers the gauge without recording, so it shows up (zero) in
    /// snapshots even in runs where the site never samples.
    pub fn touch(&self) {
        if crate::enabled() {
            self.cell.get_or_init(|| crate::global().gauge(self.name));
        }
    }
}

/// A last-value metric holding an `f64` — the shape of the per-window
/// quality signals (`nidc_quality_*`), which are ratios and similarities
/// rather than byte counts.
///
/// Stored as the IEEE-754 bit pattern in a relaxed `AtomicU64`; same
/// determinism contract as [`Gauge`]: the algorithm never reads it back.
/// Resetting restores `0.0`, which per-window JSONL readers interpret as
/// "not sampled this window".
#[derive(Debug)]
pub struct FloatGauge {
    bits: AtomicU64,
}

impl Default for FloatGauge {
    fn default() -> Self {
        Self::new()
    }
}

impl FloatGauge {
    /// A gauge at `0.0`.
    pub const fn new() -> Self {
        Self {
            bits: AtomicU64::new(0),
        }
    }

    /// Overwrites the gauge with `value`. Non-finite values are dropped
    /// (the exporters would degrade them to `0` anyway, and a poisoned
    /// gauge must not masquerade as a measurement).
    #[inline]
    pub fn set(&self, value: f64) {
        if value.is_finite() {
            self.bits.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// The last value set (`0.0` if never set or since reset).
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Zeroes the gauge in place (registration survives).
    pub fn reset(&self) {
        self.bits.store(0, Ordering::Relaxed);
    }
}

/// A named [`FloatGauge`] site, declared as a `static` next to the code it
/// measures. Same discipline as [`LazyGauge`]: disabled cost is one relaxed
/// load + branch, and `touch` registers without asserting a measurement.
#[derive(Debug)]
pub struct LazyFloatGauge {
    name: &'static str,
    cell: OnceLock<Arc<FloatGauge>>,
}

impl LazyFloatGauge {
    /// A handle for the float gauge registered under `name`.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The metric name this site records under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Overwrites the gauge (no-op while recording is disabled).
    #[inline]
    pub fn set(&self, value: f64) {
        if crate::enabled() {
            self.cell
                .get_or_init(|| crate::global().fgauge(self.name))
                .set(value);
        }
    }

    /// Registers the gauge without recording, so it shows up (`0.0`) in
    /// snapshots even in runs where the site never samples.
    pub fn touch(&self) {
        if crate::enabled() {
            self.cell.get_or_init(|| crate::global().fgauge(self.name));
        }
    }
}

/// Estimated heap footprint of a retained structure, in bytes.
///
/// `deep_size_bytes` returns **heap** bytes only (stack size excluded), so
/// container impls can sum element contributions plus their own buffers
/// without double counting. The estimates deliberately use layout constants
/// rather than allocator introspection: they are deterministic across runs
/// and platforms with the same pointer width, which is what a regression
/// gate needs. See DESIGN.md §4.6 for the accounting rules (capacity vs.
/// length, per-node overhead for tree maps).
pub trait DeepSize {
    /// Estimated bytes of heap owned by `self` (excluding `size_of::<Self>()`).
    fn deep_size_bytes(&self) -> u64;
}

impl<T: DeepSize> DeepSize for Vec<T> {
    fn deep_size_bytes(&self) -> u64 {
        let spine = (self.capacity() * std::mem::size_of::<T>()) as u64;
        spine + self.iter().map(DeepSize::deep_size_bytes).sum::<u64>()
    }
}

impl<T: DeepSize> DeepSize for Option<T> {
    fn deep_size_bytes(&self) -> u64 {
        self.as_ref().map_or(0, DeepSize::deep_size_bytes)
    }
}

/// Estimated per-entry overhead of `BTreeMap` beyond the key/value payload:
/// amortised node headers, parent pointers, and slack from nodes running
/// below capacity. A deterministic constant by design (see [`DeepSize`]).
pub const BTREE_ENTRY_OVERHEAD: u64 = 16;

/// Estimated heap bytes of a `BTreeMap` with fixed-size keys and values
/// whose heap payload is measured by `value_heap` (pass `|_| 0` for plain
/// values).
pub fn btree_map_size_bytes<K, V>(
    map: &std::collections::BTreeMap<K, V>,
    value_heap: impl Fn(&V) -> u64,
) -> u64 {
    let entry = (std::mem::size_of::<K>() + std::mem::size_of::<V>()) as u64;
    map.len() as u64 * (entry + BTREE_ENTRY_OVERHEAD) + map.values().map(value_heap).sum::<u64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::global_lock;

    #[test]
    fn gauge_set_overwrites_and_reset_zeroes() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0);
        g.set(42);
        g.set(7);
        assert_eq!(g.get(), 7, "set must overwrite, not accumulate");
        g.reset();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn lazy_gauge_respects_enable_gate() {
        let _guard = global_lock();
        static G: LazyGauge = LazyGauge::new("gauge_gate_bytes");
        crate::set_enabled(false);
        G.set(100);
        assert_eq!(crate::snapshot().gauge("gauge_gate_bytes"), None);
        crate::set_enabled(true);
        G.set(256);
        assert_eq!(crate::snapshot().gauge("gauge_gate_bytes"), Some(256));
        crate::set_enabled(false);
    }

    #[test]
    fn float_gauge_overwrites_drops_non_finite_and_resets() {
        let g = FloatGauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(0.75);
        g.set(0.25);
        assert_eq!(g.get(), 0.25, "set must overwrite, not accumulate");
        g.set(f64::NAN);
        g.set(f64::INFINITY);
        assert_eq!(g.get(), 0.25, "non-finite samples are dropped");
        g.reset();
        assert_eq!(g.get(), 0.0);
    }

    #[test]
    fn lazy_float_gauge_respects_enable_gate() {
        let _guard = global_lock();
        static G: LazyFloatGauge = LazyFloatGauge::new("fgauge_gate_ratio");
        crate::set_enabled(false);
        G.set(0.5);
        assert_eq!(crate::snapshot().fgauge("fgauge_gate_ratio"), None);
        crate::set_enabled(true);
        G.set(0.125);
        assert_eq!(crate::snapshot().fgauge("fgauge_gate_ratio"), Some(0.125));
        G.touch();
        assert_eq!(
            crate::snapshot().fgauge("fgauge_gate_ratio"),
            Some(0.125),
            "touch after set must not clobber the sample"
        );
        crate::set_enabled(false);
    }

    #[test]
    fn touch_registers_at_zero() {
        let _guard = global_lock();
        static G: LazyGauge = LazyGauge::new("gauge_touch_bytes");
        crate::set_enabled(true);
        G.touch();
        assert_eq!(crate::snapshot().gauge("gauge_touch_bytes"), Some(0));
        crate::set_enabled(false);
    }

    struct Leaf(Vec<u8>);
    impl DeepSize for Leaf {
        fn deep_size_bytes(&self) -> u64 {
            self.0.capacity() as u64
        }
    }

    #[test]
    fn vec_impl_counts_spine_capacity_plus_elements() {
        let mut v: Vec<Leaf> = Vec::with_capacity(4);
        v.push(Leaf(Vec::with_capacity(10)));
        v.push(Leaf(Vec::with_capacity(6)));
        let spine = 4 * std::mem::size_of::<Leaf>() as u64;
        assert_eq!(v.deep_size_bytes(), spine + 16);
    }

    #[test]
    fn btree_helper_scales_with_len() {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<u64, u64> = BTreeMap::new();
        assert_eq!(btree_map_size_bytes(&m, |_| 0), 0);
        for i in 0..10 {
            m.insert(i, i);
        }
        assert_eq!(btree_map_size_bytes(&m, |_| 0), 10 * (16 + 16));
        assert_eq!(btree_map_size_bytes(&m, |_| 5), 10 * (16 + 16) + 50);
    }
}
