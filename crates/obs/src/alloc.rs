//! Counting global allocator: process-wide and per-thread allocation tallies.
//!
//! [`CountingAlloc`] wraps [`std::alloc::System`] and, **when tracking is
//! enabled**, counts every alloc/dealloc/realloc together with the byte
//! volumes involved. Tracking is off by default; a disabled allocation costs
//! exactly one relaxed atomic load plus a predictable branch on top of the
//! system allocator — the same discipline as the metric recorder's
//! [`crate::enabled`] gate.
//!
//! Two tally sets are kept:
//!
//! * **Global totals** (relaxed atomics): allocs, deallocs, reallocs, bytes
//!   allocated, live bytes, and peak live bytes. These feed [`stats`], the
//!   `nidc_alloc_*` counters, and `bench_alloc`.
//! * **Per-thread tallies** (const-initialised `thread_local!` `Cell`s, so
//!   touching them never allocates and never recurses into the allocator):
//!   allocation events and bytes allocated on *this* thread. Trace spans
//!   snapshot these at open/close, giving the profile tree per-span
//!   `allocs`/`bytes` attribution; `par_map`/`par_map_mut` fold worker
//!   deltas back into the capturing span via [`add_external`].
//!
//! Counting is a pure observer: no allocation decision ever depends on the
//! tallies, so enabling tracking cannot change clustering results (pinned by
//! `tests/obs_determinism.rs`).
//!
//! Live bytes are kept signed internally: blocks allocated before tracking
//! was enabled may be freed after, so the observed live delta can dip below
//! zero — [`stats`] clamps at zero rather than wrapping. "Live bytes" is
//! requested-bytes accounting (`Layout::size`), not allocator-internal
//! fragmentation or arena overhead — see DESIGN.md §4.6 for what peak-live
//! does and does not capture. For the OS view, use [`rss_peak_bytes`].

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

/// Master switch for allocation tracking (off by default).
static TRACKING: AtomicBool = AtomicBool::new(false);

// Process-wide totals. All relaxed: tallies are monotone event counts that
// no algorithm reads back, and exact cross-thread ordering is irrelevant.
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);
// Signed: frees of blocks allocated before tracking started (or before a
// reset) legitimately push the observed delta negative.
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
static PEAK_LIVE_BYTES: AtomicI64 = AtomicI64::new(0);

thread_local! {
    // Const-initialised Cells: no lazy init, no Drop, no allocation on
    // first touch — safe to bump from inside the allocator itself.
    static TL_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static TL_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Whether allocation tracking is currently enabled.
#[inline(always)]
pub fn tracking_enabled() -> bool {
    TRACKING.load(Ordering::Relaxed)
}

/// Turns allocation tracking on or off process-wide.
///
/// Safe to toggle at any time; tallies accumulated so far are preserved
/// (use [`reset`] to zero them).
pub fn set_tracking(on: bool) {
    TRACKING.store(on, Ordering::Relaxed);
}

/// A frozen copy of the process-wide allocation tallies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Allocation events (`alloc` + `alloc_zeroed`).
    pub allocs: u64,
    /// Deallocation events.
    pub deallocs: u64,
    /// Reallocation events (counted separately, not as alloc+dealloc).
    pub reallocs: u64,
    /// Total bytes ever allocated (allocs plus realloc growth).
    pub bytes_allocated: u64,
    /// Bytes currently live (allocated minus deallocated, clamped at 0).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` since the last [`reset_peak`].
    pub peak_live_bytes: u64,
}

/// Reads the current process-wide tallies.
pub fn stats() -> AllocStats {
    AllocStats {
        allocs: ALLOCS.load(Ordering::Relaxed),
        deallocs: DEALLOCS.load(Ordering::Relaxed),
        reallocs: REALLOCS.load(Ordering::Relaxed),
        bytes_allocated: BYTES_ALLOCATED.load(Ordering::Relaxed),
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed).max(0) as u64,
        peak_live_bytes: PEAK_LIVE_BYTES.load(Ordering::Relaxed).max(0) as u64,
    }
}

/// Zeroes every global tally and this thread's per-thread tallies.
///
/// Note `live_bytes` is also zeroed: after a reset it tracks the *delta*
/// of live bytes since the reset, which is what phase-scoped measurement
/// (`bench_alloc`) wants. Other threads' per-thread tallies are untouched.
pub fn reset() {
    ALLOCS.store(0, Ordering::Relaxed);
    DEALLOCS.store(0, Ordering::Relaxed);
    REALLOCS.store(0, Ordering::Relaxed);
    BYTES_ALLOCATED.store(0, Ordering::Relaxed);
    LIVE_BYTES.store(0, Ordering::Relaxed);
    PEAK_LIVE_BYTES.store(0, Ordering::Relaxed);
    let _ = TL_ALLOCS.try_with(|c| c.set(0));
    let _ = TL_BYTES.try_with(|c| c.set(0));
}

/// Resets the peak-live high-water mark to the current live level, so the
/// next phase measures its own peak rather than inheriting history's.
pub fn reset_peak() {
    PEAK_LIVE_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// This thread's `(allocation events, bytes allocated)` tallies.
///
/// Monotone while tracking is enabled; trace spans snapshot them at open and
/// close, so the difference attributes allocations to the span.
#[inline]
pub fn thread_tallies() -> (u64, u64) {
    (
        TL_ALLOCS.try_with(Cell::get).unwrap_or(0),
        TL_BYTES.try_with(Cell::get).unwrap_or(0),
    )
}

/// Folds externally-measured allocation work into *this* thread's tallies.
///
/// The parallel fan-outs measure each worker thread's delta and fold the sum
/// into the calling thread before the fan-out span closes, so enclosing
/// spans attribute worker allocations exactly as `SpanContext` chaining
/// already attributes worker time. Global totals are **not** touched — the
/// workers already counted there.
#[inline]
pub fn add_external(allocs: u64, bytes: u64) {
    let _ = TL_ALLOCS.try_with(|c| c.set(c.get().wrapping_add(allocs)));
    let _ = TL_BYTES.try_with(|c| c.set(c.get().wrapping_add(bytes)));
}

#[inline]
fn on_alloc(size: u64) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    BYTES_ALLOCATED.fetch_add(size, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    PEAK_LIVE_BYTES.fetch_max(live, Ordering::Relaxed);
    let _ = TL_ALLOCS.try_with(|c| c.set(c.get().wrapping_add(1)));
    let _ = TL_BYTES.try_with(|c| c.set(c.get().wrapping_add(size)));
}

#[inline]
fn on_dealloc(size: u64) {
    DEALLOCS.fetch_add(1, Ordering::Relaxed);
    LIVE_BYTES.fetch_sub(size as i64, Ordering::Relaxed);
}

#[inline]
fn on_realloc(old: u64, new: u64) {
    REALLOCS.fetch_add(1, Ordering::Relaxed);
    if new > old {
        let grow = new - old;
        BYTES_ALLOCATED.fetch_add(grow, Ordering::Relaxed);
        let live = LIVE_BYTES.fetch_add(grow as i64, Ordering::Relaxed) + grow as i64;
        PEAK_LIVE_BYTES.fetch_max(live, Ordering::Relaxed);
        let _ = TL_BYTES.try_with(|c| c.set(c.get().wrapping_add(grow)));
    } else {
        LIVE_BYTES.fetch_sub((old - new) as i64, Ordering::Relaxed);
    }
    let _ = TL_ALLOCS.try_with(|c| c.set(c.get().wrapping_add(1)));
}

/// A counting wrapper over [`std::alloc::System`].
///
/// Installed as the workspace `#[global_allocator]` below, so every binary
/// and test that links `nidc-obs` gets allocation observability for free.
pub struct CountingAlloc;

// `GlobalAlloc` is inherently unsafe to implement; this is the one place in
// the crate that needs it, and it only delegates to `System` plus relaxed
// counter bumps that never allocate.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if tracking_enabled() && !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if tracking_enabled() && !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if tracking_enabled() {
            on_dealloc(layout.size() as u64);
        }
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if tracking_enabled() && !p.is_null() {
            on_realloc(layout.size() as u64, new_size as u64);
        }
        p
    }
}

#[global_allocator]
static GLOBAL_ALLOC: CountingAlloc = CountingAlloc;

/// The process's peak resident set size in bytes, from `/proc/self/status`
/// `VmHWM` on Linux; `0` where unavailable.
///
/// This is the OS's view (pages, not requested bytes) and works without the
/// counting allocator enabled — the JSONL metrics exporter emits it per
/// window so long `nidc stream` runs expose leak trends for free.
pub fn rss_peak_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kb: u64 = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

// Last-sampled totals, so `sample_metrics` can feed *deltas* into the
// cumulative `nidc_alloc_*` counters (which the JSONL exporter zeroes per
// window) without double counting.
static LAST_ALLOCS: AtomicU64 = AtomicU64::new(0);
static LAST_DEALLOCS: AtomicU64 = AtomicU64::new(0);
static LAST_REALLOCS: AtomicU64 = AtomicU64::new(0);
static LAST_BYTES: AtomicU64 = AtomicU64::new(0);

/// Publishes the allocation totals into the `nidc_alloc_*` counters as a
/// delta since the previous sample.
///
/// Called by the metrics exporter before each window snapshot. With tracking
/// disabled the deltas are zero, but the counters still register — so the
/// metrics schema (and `check_metrics`) is stable whether or not
/// `--alloc-stats` was requested.
pub fn sample_metrics() {
    use crate::LazyCounter;
    static M_ALLOCS: LazyCounter = LazyCounter::new("nidc_alloc_allocs_total");
    static M_DEALLOCS: LazyCounter = LazyCounter::new("nidc_alloc_deallocs_total");
    static M_REALLOCS: LazyCounter = LazyCounter::new("nidc_alloc_reallocs_total");
    static M_BYTES: LazyCounter = LazyCounter::new("nidc_alloc_bytes_total");

    let s = stats();
    // swap() gives exactly-once delta semantics even if two exporters race.
    let d_allocs = s
        .allocs
        .wrapping_sub(LAST_ALLOCS.swap(s.allocs, Ordering::Relaxed));
    let d_deallocs = s
        .deallocs
        .wrapping_sub(LAST_DEALLOCS.swap(s.deallocs, Ordering::Relaxed));
    let d_reallocs = s
        .reallocs
        .wrapping_sub(LAST_REALLOCS.swap(s.reallocs, Ordering::Relaxed));
    let d_bytes = s
        .bytes_allocated
        .wrapping_sub(LAST_BYTES.swap(s.bytes_allocated, Ordering::Relaxed));
    // add(0) registers without recording, keeping the schema stable.
    M_ALLOCS.add(d_allocs);
    M_DEALLOCS.add(d_deallocs);
    M_REALLOCS.add(d_reallocs);
    M_BYTES.add(d_bytes);
}

/// Resets the delta baseline used by [`sample_metrics`] (part of
/// [`crate::reset_all`]'s between-runs boundary).
pub(crate) fn reset_sample_baseline() {
    let s = stats();
    LAST_ALLOCS.store(s.allocs, Ordering::Relaxed);
    LAST_DEALLOCS.store(s.deallocs, Ordering::Relaxed);
    LAST_REALLOCS.store(s.reallocs, Ordering::Relaxed);
    LAST_BYTES.store(s.bytes_allocated, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::global_lock;

    #[test]
    fn disabled_tracking_counts_nothing() {
        let _guard = global_lock();
        set_tracking(false);
        reset();
        let before = stats();
        let v: Vec<u64> = Vec::with_capacity(64);
        drop(v);
        let after = stats();
        assert_eq!(before, after, "disabled allocator must not count");
    }

    #[test]
    fn enabled_tracking_counts_alloc_and_dealloc() {
        let _guard = global_lock();
        set_tracking(true);
        reset();
        let v: Vec<u64> = Vec::with_capacity(128);
        let mid = stats();
        drop(v);
        let end = stats();
        set_tracking(false);
        assert!(mid.allocs >= 1);
        assert!(mid.bytes_allocated >= 1024, "128 × 8 bytes expected");
        assert!(mid.live_bytes >= 1024);
        assert!(mid.peak_live_bytes >= mid.live_bytes);
        assert!(end.deallocs > mid.deallocs, "dropping v must count");
    }

    #[test]
    fn thread_tallies_track_local_allocations() {
        let _guard = global_lock();
        set_tracking(true);
        let (a0, b0) = thread_tallies();
        let v: Vec<u64> = Vec::with_capacity(32);
        let (a1, b1) = thread_tallies();
        drop(v);
        set_tracking(false);
        assert!(a1 > a0);
        assert!(b1 - b0 >= 256);
    }

    #[test]
    fn add_external_bumps_only_thread_tallies() {
        // Tracking stays off: add_external is unconditional, and with the
        // allocator dormant the global totals provably cannot move.
        let _guard = global_lock();
        set_tracking(false);
        let global_before = stats();
        let (a0, b0) = thread_tallies();
        add_external(5, 1000);
        let (a1, b1) = thread_tallies();
        let global_after = stats();
        assert_eq!(a1 - a0, 5);
        assert_eq!(b1 - b0, 1000);
        assert_eq!(global_before, global_after);
    }

    #[test]
    fn realloc_growth_counts_bytes_once() {
        let _guard = global_lock();
        set_tracking(true);
        reset();
        let mut v: Vec<u64> = vec![0; 8];
        let before = stats();
        v.reserve_exact(1024); // forces a realloc (or alloc+copy)
        let after = stats();
        drop(v);
        set_tracking(false);
        assert!(
            after.reallocs > before.reallocs || after.allocs > before.allocs,
            "growing past capacity must surface as a realloc or alloc"
        );
        assert!(after.bytes_allocated > before.bytes_allocated);
    }

    #[test]
    fn freeing_pretracked_blocks_clamps_instead_of_wrapping() {
        let _guard = global_lock();
        set_tracking(false);
        let v: Vec<u64> = Vec::with_capacity(512); // allocated unobserved
        set_tracking(true);
        reset();
        drop(v); // freed observed → signed live goes negative internally
        let s = stats();
        set_tracking(false);
        assert!(
            s.live_bytes < 1 << 40,
            "live bytes must clamp at zero, not wrap: {}",
            s.live_bytes
        );
    }

    #[test]
    fn reset_peak_rebases_to_current_live() {
        let _guard = global_lock();
        set_tracking(true);
        reset();
        let v: Vec<u64> = Vec::with_capacity(4096);
        drop(v);
        let spiked = stats();
        assert!(spiked.peak_live_bytes >= 32 * 1024);
        reset_peak();
        let rebased = stats();
        set_tracking(false);
        assert!(rebased.peak_live_bytes < spiked.peak_live_bytes);
    }

    #[test]
    fn rss_peak_is_nonzero_on_linux() {
        let rss = rss_peak_bytes();
        if cfg!(target_os = "linux") {
            assert!(rss > 0, "a running process has a nonzero peak RSS");
        } else {
            assert_eq!(rss, 0);
        }
    }

    #[test]
    fn sample_metrics_registers_counters_even_when_disabled() {
        let _guard = global_lock();
        set_tracking(false);
        crate::set_enabled(true);
        crate::reset();
        reset_sample_baseline();
        sample_metrics();
        let snap = crate::snapshot();
        crate::set_enabled(false);
        for name in [
            "nidc_alloc_allocs_total",
            "nidc_alloc_deallocs_total",
            "nidc_alloc_reallocs_total",
            "nidc_alloc_bytes_total",
        ] {
            assert_eq!(snap.counter(name), Some(0), "{name} must register at zero");
        }
    }
}
