//! Frozen metric state and its two wire formats (JSON, Prometheus text).

/// Frozen state of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite upper bounds, ascending (the `+Inf` bucket is implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; `bounds.len() + 1` entries, the
    /// last being the `+Inf` overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

/// Frozen state of a [`crate::Registry`] — the per-window report type.
///
/// Every collection is sorted by metric name (inherited from the
/// registry's BTreeMap ordering), so serialisations are deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// `(name, value)` for every registered counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every registered gauge (last sampled value).
    pub gauges: Vec<(String, u64)>,
    /// `(name, value)` for every registered float gauge (last sampled
    /// value). Kept apart from `gauges` so integer byte-gauges stay exact.
    pub fgauges: Vec<(String, f64)>,
    /// `(name, state)` for every registered histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Value of the named counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of the named gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Value of the named float gauge, if registered.
    pub fn fgauge(&self, name: &str) -> Option<f64> {
        self.fgauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// State of the named histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Every registered metric name (counters, gauges, float gauges, then
    /// histograms, each sorted).
    pub fn metric_names(&self) -> Vec<&str> {
        self.counters
            .iter()
            .map(|(n, _)| n.as_str())
            .chain(self.gauges.iter().map(|(n, _)| n.as_str()))
            .chain(self.fgauges.iter().map(|(n, _)| n.as_str()))
            .chain(self.histograms.iter().map(|(n, _)| n.as_str()))
            .collect()
    }

    /// Whether nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.fgauges.is_empty()
            && self.histograms.is_empty()
    }

    /// One JSON object (single line, no trailing newline).
    ///
    /// Shape:
    /// `{"counters":{"name":n,...},"gauges":{"name":n,...},`
    /// `"fgauges":{"name":x,...},"histograms":{"name":{"count":n,"sum":s,`
    /// `"buckets":[{"le":b,"n":n},...,{"le":"+Inf","n":n}]},...}}`
    pub fn to_json(&self) -> String {
        self.to_json_line(&[])
    }

    /// Like [`Snapshot::to_json`] with leading `"key":value` metadata fields
    /// (window index, simulation day, …) spliced into the object.
    pub fn to_json_line(&self, meta: &[(&str, f64)]) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        for (key, value) in meta {
            push_json_str(&mut out, key);
            out.push(':');
            push_json_num(&mut out, *value);
            out.push(',');
        }
        out.push_str("\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push(':');
            out.push_str(&value.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push(':');
            out.push_str(&value.to_string());
        }
        out.push_str("},\"fgauges\":{");
        for (i, (name, value)) in self.fgauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push(':');
            push_json_num(&mut out, *value);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push_str(":{\"count\":");
            out.push_str(&h.count.to_string());
            out.push_str(",\"sum\":");
            push_json_num(&mut out, h.sum);
            out.push_str(",\"buckets\":[");
            for (j, n) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"le\":");
                match h.bounds.get(j) {
                    Some(b) => push_json_num(&mut out, *b),
                    None => out.push_str("\"+Inf\""),
                }
                out.push_str(",\"n\":");
                out.push_str(&n.to_string());
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Prometheus text exposition format (version 0.0.4): `# TYPE` comments,
    /// counters and gauges as-is, histograms as cumulative
    /// `_bucket{le="..."}` series plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(512);
        for (name, value) in &self.counters {
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push_str(" counter\n");
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        for (name, value) in &self.gauges {
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push_str(" gauge\n");
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        for (name, value) in &self.fgauges {
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push_str(" gauge\n");
            out.push_str(name);
            out.push(' ');
            push_prom_num(&mut out, *value);
            out.push('\n');
        }
        for (name, h) in &self.histograms {
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push_str(" histogram\n");
            let mut cumulative = 0u64;
            for (j, n) in h.counts.iter().enumerate() {
                cumulative += n;
                out.push_str(name);
                out.push_str("_bucket{le=\"");
                match h.bounds.get(j) {
                    Some(b) => push_prom_num(&mut out, *b),
                    None => out.push_str("+Inf"),
                }
                out.push_str("\"} ");
                out.push_str(&cumulative.to_string());
                out.push('\n');
            }
            out.push_str(name);
            out.push_str("_sum ");
            push_prom_num(&mut out, h.sum);
            out.push('\n');
            out.push_str(name);
            out.push_str("_count ");
            out.push_str(&h.count.to_string());
            out.push('\n');
        }
        out
    }
}

/// Appends a JSON string literal (metric names are ASCII identifiers, but
/// escape the JSON-significant characters anyway).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` as a JSON number. Integral values print without a
/// fraction; non-finite values (which the recording layer already filters)
/// degrade to `0` rather than emitting invalid JSON.
fn push_json_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push('0');
    } else if v == v.trunc() && v.abs() < 1e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        // `{:?}` is Rust's shortest round-trip form (e.g. `1e-6`, `0.25`);
        // its exponent notation is valid JSON.
        out.push_str(&format!("{v:?}"));
    }
}

/// Appends an `f64` in Prometheus text format (same as JSON except that
/// non-finite values have spellings).
fn push_prom_num(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        push_json_num(out, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            counters: vec![("a_total".to_string(), 3), ("b_total".to_string(), 0)],
            gauges: vec![("g_bytes".to_string(), 4096)],
            fgauges: vec![("q_ratio".to_string(), 0.375)],
            histograms: vec![(
                "p_seconds".to_string(),
                HistogramSnapshot {
                    bounds: vec![0.001, 0.25, 1.0],
                    counts: vec![1, 2, 0, 1],
                    count: 4,
                    sum: 1.7562,
                },
            )],
        }
    }

    #[test]
    fn accessors() {
        let s = sample();
        assert_eq!(s.counter("a_total"), Some(3));
        assert_eq!(s.counter("missing"), None);
        assert_eq!(s.gauge("g_bytes"), Some(4096));
        assert_eq!(s.gauge("missing"), None);
        assert_eq!(s.fgauge("q_ratio"), Some(0.375));
        assert_eq!(s.fgauge("missing"), None);
        assert_eq!(s.histogram("p_seconds").unwrap().count, 4);
        assert!(s.histogram("missing").is_none());
        assert_eq!(
            s.metric_names(),
            vec!["a_total", "b_total", "g_bytes", "q_ratio", "p_seconds"]
        );
        assert!(!s.is_empty());
        assert!(Snapshot::default().is_empty());
    }

    #[test]
    fn json_shape() {
        let s = sample();
        let line = s.to_json_line(&[("window", 3.0), ("day", 14.5)]);
        assert!(line.starts_with("{\"window\":3,\"day\":14.5,\"counters\":{"));
        assert!(line.contains("\"a_total\":3"));
        assert!(line.contains("\"gauges\":{\"g_bytes\":4096}"));
        assert!(line.contains("\"fgauges\":{\"q_ratio\":0.375}"));
        assert!(line.contains("\"p_seconds\":{\"count\":4,\"sum\":1.7562,\"buckets\":["));
        assert!(line.contains("{\"le\":0.001,\"n\":1}"));
        assert!(line.contains("{\"le\":\"+Inf\",\"n\":1}"));
        assert!(!line.contains('\n'));
        assert!(line.ends_with("}}"));
    }

    #[test]
    fn prometheus_shape_is_cumulative() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE a_total counter\na_total 3\n"));
        assert!(text.contains("# TYPE g_bytes gauge\ng_bytes 4096\n"));
        assert!(text.contains("# TYPE q_ratio gauge\nq_ratio 0.375\n"));
        assert!(text.contains("# TYPE p_seconds histogram\n"));
        assert!(text.contains("p_seconds_bucket{le=\"0.001\"} 1\n"));
        assert!(text.contains("p_seconds_bucket{le=\"0.25\"} 3\n"));
        assert!(text.contains("p_seconds_bucket{le=\"1\"} 3\n"));
        assert!(text.contains("p_seconds_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("p_seconds_sum 1.7562\n"));
        assert!(text.contains("p_seconds_count 4\n"));
    }

    #[test]
    fn prometheus_lines_are_well_formed() {
        // Minimal exposition-format validity: every line is a comment or
        // `name{labels} value` / `name value` with a parseable value.
        for line in sample().to_prometheus().lines() {
            if line.starts_with('#') {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("metric line has a value");
            let name = series.split('{').next().unwrap();
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name {name:?}"
            );
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
                "bad value {value:?}"
            );
        }
    }

    #[test]
    fn json_number_edge_cases() {
        let mut s = String::new();
        push_json_num(&mut s, 1e-6);
        s.push(' ');
        push_json_num(&mut s, f64::NAN);
        s.push(' ');
        push_json_num(&mut s, 42.0);
        assert_eq!(s, "1e-6 0 42");
    }
}
