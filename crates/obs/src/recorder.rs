//! The [`Recorder`] trait, its no-op implementation, and the [`Registry`]
//! that backs the process-global recorder.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::gauge::{FloatGauge, Gauge};
use crate::metrics::{Counter, Histogram};
use crate::snapshot::{HistogramSnapshot, Snapshot};

/// A sink for metric events.
///
/// Implemented by [`Registry`] (records) and [`NoopRecorder`] (discards).
/// Hot paths normally go through the static [`crate::LazyCounter`] /
/// [`crate::LazyHistogram`] handles instead of dynamic dispatch; the trait
/// exists so components can be handed an explicit recorder in tests and so
/// the disabled path has a provably inert implementation.
pub trait Recorder: Send + Sync {
    /// Whether this recorder keeps anything at all. `false` lets callers
    /// skip preparing event data.
    fn enabled(&self) -> bool;

    /// Adds `delta` to the named counter.
    fn add(&self, name: &'static str, delta: u64);

    /// Records `value` into the named histogram, creating it with `bounds`
    /// on first use.
    fn observe(&self, name: &'static str, bounds: &'static [f64], value: f64);
}

/// A recorder that discards every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn add(&self, _name: &'static str, _delta: u64) {}

    fn observe(&self, _name: &'static str, _bounds: &'static [f64], _value: f64) {}
}

/// A named collection of counters, gauges and histograms.
///
/// Metrics are registered on first use and never removed; [`Registry::reset`]
/// zeroes them in place so `Arc` handles cached by call sites stay valid.
/// Counter, gauge and histogram names live in separate namespaces, but the
/// naming convention (see DESIGN.md §Observability) keeps them disjoint
/// anyway (`*_total` counters vs. `nidc_mem_*_bytes` gauges vs.
/// `*_seconds`/value-distribution histograms).
#[derive(Debug)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    fgauges: Mutex<BTreeMap<&'static str, Arc<FloatGauge>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub const fn new() -> Self {
        Self {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            fgauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        // A poisoned metrics map only means some thread panicked mid-insert;
        // the data is still a valid BTreeMap, and observability must never
        // take the process down.
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The counter registered under `name`, created at zero on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(Self::lock(&self.counters).entry(name).or_default())
    }

    /// The gauge registered under `name`, created at zero on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Arc::clone(Self::lock(&self.gauges).entry(name).or_default())
    }

    /// The float gauge registered under `name`, created at `0.0` on first
    /// use. Float gauges live in their own namespace (and their own
    /// snapshot section) so integer byte-gauges keep exact `u64` wire
    /// values.
    pub fn fgauge(&self, name: &'static str) -> Arc<FloatGauge> {
        Arc::clone(Self::lock(&self.fgauges).entry(name).or_default())
    }

    /// The histogram registered under `name`, created with `bounds` on first
    /// use (later calls keep the original bounds).
    pub fn histogram(&self, name: &'static str, bounds: &'static [f64]) -> Arc<Histogram> {
        Arc::clone(
            Self::lock(&self.histograms)
                .entry(name)
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Freezes every registered metric into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let counters = Self::lock(&self.counters)
            .iter()
            .map(|(name, c)| (name.to_string(), c.get()))
            .collect();
        let gauges = Self::lock(&self.gauges)
            .iter()
            .map(|(name, g)| (name.to_string(), g.get()))
            .collect();
        let fgauges = Self::lock(&self.fgauges)
            .iter()
            .map(|(name, g)| (name.to_string(), g.get()))
            .collect();
        let histograms = Self::lock(&self.histograms)
            .iter()
            .map(|(name, h)| {
                (
                    name.to_string(),
                    HistogramSnapshot {
                        bounds: h.bounds().to_vec(),
                        counts: h.bucket_counts(),
                        count: h.count(),
                        sum: h.sum(),
                    },
                )
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            fgauges,
            histograms,
        }
    }

    /// Zeroes every registered metric in place (registrations survive).
    pub fn reset(&self) {
        for c in Self::lock(&self.counters).values() {
            c.reset();
        }
        for g in Self::lock(&self.gauges).values() {
            g.reset();
        }
        for g in Self::lock(&self.fgauges).values() {
            g.reset();
        }
        for h in Self::lock(&self.histograms).values() {
            h.reset();
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder for Registry {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, name: &'static str, delta: u64) {
        self.counter(name).add(delta);
    }

    fn observe(&self, name: &'static str, bounds: &'static [f64], value: f64) {
        self.histogram(name, bounds).observe(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::buckets;

    #[test]
    fn counter_handles_are_shared() {
        let r = Registry::new();
        let a = r.counter("shared_total");
        let b = r.counter("shared_total");
        a.add(2);
        b.add(3);
        assert_eq!(r.counter("shared_total").get(), 5);
    }

    #[test]
    fn histogram_keeps_first_bounds() {
        let r = Registry::new();
        let h = r.histogram("h_seconds", buckets::LATENCY_SECONDS);
        let again = r.histogram("h_seconds", buckets::SIZES);
        assert_eq!(h.bounds(), again.bounds());
    }

    #[test]
    fn reset_preserves_registrations_and_handles() {
        let r = Registry::new();
        let c = r.counter("kept_total");
        c.add(7);
        r.observe("kept_seconds", buckets::LATENCY_SECONDS, 0.1);
        r.reset();
        let snap = r.snapshot();
        assert_eq!(snap.counter("kept_total"), Some(0));
        assert_eq!(snap.histogram("kept_seconds").unwrap().count, 0);
        // The pre-reset handle still feeds the same counter.
        c.add(1);
        assert_eq!(r.snapshot().counter("kept_total"), Some(1));
    }

    #[test]
    fn gauge_handles_are_shared_and_reset_zeroes_them() {
        let r = Registry::new();
        let a = r.gauge("shared_bytes");
        let b = r.gauge("shared_bytes");
        a.set(100);
        b.set(250);
        assert_eq!(r.gauge("shared_bytes").get(), 250, "last set wins");
        assert_eq!(r.snapshot().gauge("shared_bytes"), Some(250));
        r.reset();
        assert_eq!(r.snapshot().gauge("shared_bytes"), Some(0));
        // The pre-reset handle still feeds the same gauge.
        a.set(9);
        assert_eq!(r.snapshot().gauge("shared_bytes"), Some(9));
    }

    #[test]
    fn fgauge_handles_are_shared_and_reset_zeroes_them() {
        let r = Registry::new();
        let a = r.fgauge("shared_ratio");
        let b = r.fgauge("shared_ratio");
        a.set(0.5);
        b.set(0.75);
        assert_eq!(r.fgauge("shared_ratio").get(), 0.75, "last set wins");
        assert_eq!(r.snapshot().fgauge("shared_ratio"), Some(0.75));
        r.reset();
        assert_eq!(r.snapshot().fgauge("shared_ratio"), Some(0.0));
        // The pre-reset handle still feeds the same gauge.
        a.set(0.25);
        assert_eq!(r.snapshot().fgauge("shared_ratio"), Some(0.25));
    }

    #[test]
    fn noop_recorder_discards() {
        let n = NoopRecorder;
        assert!(!n.enabled());
        n.add("x_total", 1);
        n.observe("x_seconds", buckets::LATENCY_SECONDS, 1.0);
    }

    #[test]
    fn registry_recorder_records() {
        let r = Registry::new();
        let rec: &dyn Recorder = &r;
        assert!(rec.enabled());
        rec.add("r_total", 4);
        rec.observe("r_sizes", buckets::SIZES, 12.0);
        let snap = r.snapshot();
        assert_eq!(snap.counter("r_total"), Some(4));
        assert_eq!(snap.histogram("r_sizes").unwrap().count, 1);
    }
}
