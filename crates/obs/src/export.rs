//! File exporters for per-window metric snapshots.

use std::fmt;
use std::fs::{self, File};
use std::io::{self, LineWriter, Write};
use std::path::{Path, PathBuf};
use std::str::FromStr;

use crate::snapshot::Snapshot;

/// On-disk format for exported snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsFormat {
    /// One JSON object per window, appended as a line (`jsonl`). Each line
    /// holds the **delta since the previous line** — the exporter resets
    /// the registry after writing, so windows are directly comparable.
    #[default]
    Jsonl,
    /// Prometheus text exposition (`prom`). The file is rewritten on every
    /// export with **cumulative** totals, like a `/metrics` endpoint would
    /// serve; the registry is not reset.
    Prom,
}

impl FromStr for MetricsFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "jsonl" => Ok(Self::Jsonl),
            "prom" => Ok(Self::Prom),
            other => Err(format!(
                "unknown metrics format {other:?} (expected jsonl|prom)"
            )),
        }
    }
}

impl fmt::Display for MetricsFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Jsonl => "jsonl",
            Self::Prom => "prom",
        })
    }
}

/// Writes global-registry snapshots to a file, once per window.
///
/// Creating an exporter also calls [`crate::set_enabled`]`(true)` — an
/// export target implies the intent to record.
///
/// The JSON-lines writer is **line-buffered**: every completed window line
/// reaches the file as soon as its newline is written, so a run that dies
/// mid-stream (panic, abort between windows) leaves a file of whole,
/// parseable lines — never a truncated one. Call
/// [`MetricsExporter::finish`] at the end of a run to flush and surface
/// any pending I/O error; dropping the exporter flushes too, but swallows
/// errors as `Drop` must.
#[derive(Debug)]
pub struct MetricsExporter {
    path: PathBuf,
    format: MetricsFormat,
    /// Open line-buffered append handle for JSON-lines; `None` for
    /// Prometheus, which rewrites the whole file each export.
    writer: Option<LineWriter<File>>,
}

impl MetricsExporter {
    /// Creates (truncating) the export file at `path`, making parent
    /// directories as needed, and enables global metric recording.
    pub fn create(path: impl Into<PathBuf>, format: MetricsFormat) -> io::Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let writer = match format {
            MetricsFormat::Jsonl => Some(LineWriter::new(File::create(&path)?)),
            MetricsFormat::Prom => {
                File::create(&path)?; // fail early if the path is unwritable
                None
            }
        };
        crate::set_enabled(true);
        Ok(Self {
            path,
            format,
            writer,
        })
    }

    /// Where exports go.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The configured format.
    pub fn format(&self) -> MetricsFormat {
        self.format
    }

    /// Exports the current global snapshot, tagged with `meta` fields
    /// (window index, simulation day, …).
    ///
    /// Samples the allocator tallies into the `nidc_alloc_*` counters first
    /// (registered at zero when allocation tracking is off), and appends an
    /// `rss_peak_bytes` meta field (the OS-level `VmHWM` high-water mark;
    /// 0 off Linux) so long streaming runs expose leak trends even without
    /// the counting allocator enabled.
    ///
    /// JSON-lines: appends one line and resets the registry (per-window
    /// deltas). Prometheus: rewrites the file with cumulative totals and
    /// ignores `meta` (the exposition format has no per-sample metadata).
    pub fn record_window(&mut self, meta: &[(&str, f64)]) -> io::Result<()> {
        crate::alloc::sample_metrics();
        let snap = crate::snapshot();
        let mut meta: Vec<(&str, f64)> = meta.to_vec();
        meta.push(("rss_peak_bytes", crate::alloc::rss_peak_bytes() as f64));
        self.export(&snap, &meta)
    }

    /// Like [`MetricsExporter::record_window`] for an explicit snapshot.
    /// JSON-lines still resets the global registry afterwards.
    pub fn export(&mut self, snap: &Snapshot, meta: &[(&str, f64)]) -> io::Result<()> {
        match self.format {
            MetricsFormat::Jsonl => {
                let w = self.writer.as_mut().expect("jsonl exporter has a writer");
                // One write per line: `LineWriter` pushes the whole line to
                // the file when it sees the trailing newline, so the file
                // only ever grows by complete lines.
                let mut line = snap.to_json_line(meta);
                line.push('\n');
                w.write_all(line.as_bytes())?;
                crate::reset();
            }
            MetricsFormat::Prom => {
                fs::write(&self.path, snap.to_prometheus())?;
            }
        }
        Ok(())
    }

    /// Flushes anything still buffered (a final line written without its
    /// newline cannot happen through [`MetricsExporter::export`], but the
    /// flush also surfaces deferred I/O errors a `Drop` would swallow).
    /// Call once at the end of a run.
    pub fn finish(&mut self) -> io::Result<()> {
        if let Some(w) = &mut self.writer {
            w.flush()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::global_lock;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nidc_obs_export_{tag}_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn format_parses_and_displays() {
        assert_eq!(
            "jsonl".parse::<MetricsFormat>().unwrap(),
            MetricsFormat::Jsonl
        );
        assert_eq!(
            "prom".parse::<MetricsFormat>().unwrap(),
            MetricsFormat::Prom
        );
        assert!("csv".parse::<MetricsFormat>().is_err());
        assert_eq!(MetricsFormat::Jsonl.to_string(), "jsonl");
        assert_eq!(MetricsFormat::Prom.to_string(), "prom");
        assert_eq!(MetricsFormat::default(), MetricsFormat::Jsonl);
    }

    #[test]
    fn jsonl_appends_deltas_and_resets() {
        let _guard = global_lock();
        let path = tmpdir("jsonl").join("out.jsonl");
        let mut exp = MetricsExporter::create(&path, MetricsFormat::Jsonl).unwrap();
        assert!(crate::enabled());
        crate::add("export_jsonl_total", 2);
        exp.record_window(&[("window", 0.0)]).unwrap();
        // Reset happened: the counter is registered but back to zero.
        assert_eq!(crate::snapshot().counter("export_jsonl_total"), Some(0));
        crate::add("export_jsonl_total", 5);
        exp.record_window(&[("window", 1.0)]).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"window\":0"));
        assert!(lines[0].contains("\"export_jsonl_total\":2"));
        assert!(
            lines[1].contains("\"export_jsonl_total\":5"),
            "delta, not cumulative"
        );
        assert!(
            lines[0].contains("\"rss_peak_bytes\":"),
            "per-window RSS high-water mark: {:?}",
            lines[0]
        );
        assert!(
            lines[0].contains("\"nidc_alloc_allocs_total\":"),
            "alloc counters registered every window: {:?}",
            lines[0]
        );
        crate::set_enabled(false);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn prom_rewrites_cumulative() {
        let _guard = global_lock();
        let path = tmpdir("prom").join("metrics.prom");
        let mut exp = MetricsExporter::create(&path, MetricsFormat::Prom).unwrap();
        crate::add("export_prom_total", 1);
        exp.record_window(&[]).unwrap();
        crate::add("export_prom_total", 1);
        exp.record_window(&[]).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("export_prom_total 2"), "cumulative: {text}");
        assert_eq!(
            text.matches("# TYPE export_prom_total").count(),
            1,
            "rewritten, not appended"
        );
        crate::set_enabled(false);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_lines_survive_a_writer_killed_mid_stream() {
        let _guard = global_lock();
        let path = tmpdir("kill").join("killed.jsonl");
        let windows = 3u64;
        let writer = std::thread::spawn({
            let path = path.clone();
            move || {
                let mut exp = MetricsExporter::create(&path, MetricsFormat::Jsonl).unwrap();
                for w in 0..windows {
                    crate::add("export_kill_total", w + 1);
                    exp.record_window(&[("window", w as f64)]).unwrap();
                }
                // Die without finish() or Drop — as an aborted process
                // would. Line buffering means every recorded window must
                // already be on disk.
                std::mem::forget(exp);
                panic!("killed mid-stream");
            }
        });
        assert!(writer.join().is_err(), "writer thread must have died");
        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), windows as usize, "no window lost: {text:?}");
        for (i, line) in lines.iter().enumerate() {
            let v: serde_json::Value =
                serde_json::from_str(line).unwrap_or_else(|e| panic!("line {i} unparseable: {e}"));
            assert_eq!(v["window"], serde_json::json!(i));
            assert_eq!(v["counters"]["export_kill_total"], serde_json::json!(i + 1));
        }
        crate::set_enabled(false);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn finish_flushes_and_reports_errors_eagerly() {
        let _guard = global_lock();
        let path = tmpdir("finish").join("finish.jsonl");
        let mut exp = MetricsExporter::create(&path, MetricsFormat::Jsonl).unwrap();
        crate::add("export_finish_total", 1);
        exp.record_window(&[]).unwrap();
        exp.finish().unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        // Prometheus exporters have no buffered writer; finish is a no-op.
        let mut prom =
            MetricsExporter::create(tmpdir("finish").join("m.prom"), MetricsFormat::Prom).unwrap();
        prom.finish().unwrap();
        crate::set_enabled(false);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn create_makes_parent_dirs() {
        let _guard = global_lock();
        let path = tmpdir("mkdir").join("nested/deeper/out.jsonl");
        let exp = MetricsExporter::create(&path, MetricsFormat::Jsonl).unwrap();
        assert!(exp.path().parent().unwrap().is_dir());
        assert_eq!(exp.format(), MetricsFormat::Jsonl);
        crate::set_enabled(false);
        fs::remove_file(&path).ok();
    }
}
