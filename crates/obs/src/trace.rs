//! Causal span tracing over per-thread event buffers.
//!
//! The metrics layer answers "how much, how often"; this module answers
//! *where inside one window the time went*. Instrumented code opens RAII
//! spans ([`span`] / the [`crate::span!`] macro); each span records a
//! begin and an end [`TraceEvent`] carrying a process-unique `u64` id, the
//! id of the span that was current when it opened (its parent), and a
//! *track* — the lane Perfetto renders it on (track 0 is the main
//! pipeline; sharded runs give every shard its own track).
//!
//! # Recording model
//!
//! Events go into a per-thread buffer (`thread_local!`), so the hot path
//! takes no lock and — once the buffer has warmed up to its flush
//! threshold's capacity — performs no allocation. Buffers are batch-flushed
//! into one process-global sink when full, on [`flush_thread`], when their
//! thread exits, and on [`drain`]. Workers spawned by `nidc-parallel` hold
//! a [`flush_on_exit`] guard, so their buffers reach the sink while the
//! worker closure unwinds — strictly before the fan-out's scope join
//! returns (the thread-exit flush alone would race the spawner's
//! [`drain`], because `std::thread::scope` may return before a finished
//! worker's thread-local destructors run). Per-thread event order is
//! preserved across batches.
//!
//! # Cross-thread propagation
//!
//! A fresh thread has no current span, so spans it opens would become
//! roots. Fan-out call sites capture [`current_context`] *before* spawning
//! and [`SpanContext::attach`] it inside each worker closure: spans the
//! worker opens then parent correctly under the span that was current at
//! the fan-out point, and inherit its track. `ShardedPipeline` overrides
//! the track per shard ([`with_track`]) so each shard renders as one lane.
//!
//! # Contract (same as the metrics layer)
//!
//! Tracing is off by default; a disabled [`span`] site pays one relaxed
//! atomic load plus a branch and constructs nothing. Recording never
//! influences results — clusterings are bit-identical with tracing on or
//! off (enforced by `tests/obs_determinism.rs` in the workspace root).

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Whether an event opens or closes a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// Span opened.
    Begin,
    /// Span closed.
    End,
}

/// One begin or end record, as captured on the recording thread.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Span name (a static label like `"kmeans.iteration"`).
    pub name: &'static str,
    /// Process-unique span id; the begin and end events of a span share it.
    /// Never 0 (0 means "no span" in parent links).
    pub id: u64,
    /// Id of the enclosing span at open time, 0 for roots.
    pub parent: u64,
    /// Display lane: 0 = main pipeline, shard `s` renders on track `s + 1`.
    pub track: u32,
    /// Ordinal of the OS thread that recorded the event (for validation;
    /// distinct from `track`, which is a display concept).
    pub thread: u64,
    /// Begin or end.
    pub phase: TracePhase,
    /// Nanoseconds since the process trace origin, monotone per thread.
    pub ts_ns: u64,
    /// Snapshot of the recording thread's allocation-event tally at event
    /// time (monotone per thread, like `ts_ns`; 0 while allocation
    /// tracking is disabled). End − begin = allocations inside the span.
    pub allocs: u64,
    /// Snapshot of the recording thread's bytes-allocated tally at event
    /// time (same semantics as `allocs`).
    pub bytes: u64,
}

/// Master switch, independent of the metrics enable flag.
static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);

/// Span id allocator; 0 is reserved for "no parent".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Recording-thread ordinal allocator.
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

/// Where thread buffers flush to; drained by [`drain`].
static SINK: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());

/// Human-readable lane names for the exporter (`track → label`).
static TRACK_LABELS: Mutex<BTreeMap<u32, String>> = Mutex::new(BTreeMap::new());

/// Buffered events per thread before a batch flush into [`SINK`].
const FLUSH_EVERY: usize = 4096;

/// Whether span recording is currently enabled.
#[inline(always)]
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Turns span recording on or off process-wide.
pub fn set_trace_enabled(on: bool) {
    if on {
        origin(); // pin the timestamp origin before the first event
    }
    TRACE_ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide timestamp origin: every `ts_ns` counts from here.
fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    origin().elapsed().as_nanos() as u64
}

/// Per-thread recording state. The buffer flushes to [`SINK`] when full
/// and in the thread-local destructor, so a worker thread that exits (the
/// `std::thread::scope` join in `nidc-parallel`) never strands events.
struct ThreadState {
    ordinal: u64,
    /// Id of the innermost open span on this thread (0 = none).
    parent: u64,
    /// Track newly opened spans record on.
    track: u32,
    buf: Vec<TraceEvent>,
}

impl ThreadState {
    fn new() -> Self {
        Self {
            ordinal: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
            parent: 0,
            track: 0,
            buf: Vec::new(),
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.buf.capacity() == 0 {
            // One allocation per thread; `drain` in `flush` keeps the
            // capacity, so steady-state recording allocates nothing.
            self.buf.reserve(FLUSH_EVERY);
        }
        self.buf.push(ev);
        if self.buf.len() >= FLUSH_EVERY {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
        sink.extend(self.buf.drain(..));
    }
}

impl Drop for ThreadState {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<ThreadState> = RefCell::new(ThreadState::new());
}

/// An open span; recording its end event on drop (including during panic
/// unwinding, so traces stay balanced across worker panics).
///
/// Not `Send`: a span must close on the thread that opened it.
#[must_use = "a span records its duration when dropped"]
#[derive(Debug)]
pub struct Span {
    state: Option<SpanState>,
    _not_send: PhantomData<*const ()>,
}

#[derive(Debug)]
struct SpanState {
    name: &'static str,
    id: u64,
    parent: u64,
    track: u32,
    thread: u64,
}

/// Opens a span named `name` under the thread's current span.
///
/// Inert (no id allocated, nothing recorded) while tracing is disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !trace_enabled() {
        return Span {
            state: None,
            _not_send: PhantomData,
        };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let ts_ns = now_ns();
    let (allocs, bytes) = crate::alloc::thread_tallies();
    let state = LOCAL
        .try_with(|l| {
            let mut l = l.borrow_mut();
            let st = SpanState {
                name,
                id,
                parent: l.parent,
                track: l.track,
                thread: l.ordinal,
            };
            l.parent = id;
            l.push(TraceEvent {
                name,
                id,
                parent: st.parent,
                track: st.track,
                thread: st.thread,
                phase: TracePhase::Begin,
                ts_ns,
                allocs,
                bytes,
            });
            st
        })
        .ok();
    Span {
        state,
        _not_send: PhantomData,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(st) = self.state.take() else { return };
        let ts_ns = now_ns();
        // Spans close on their opening thread (the type is !Send), so this
        // reads the same thread's tally the begin event snapshotted.
        let (allocs, bytes) = crate::alloc::thread_tallies();
        let ev = TraceEvent {
            name: st.name,
            id: st.id,
            parent: st.parent,
            track: st.track,
            thread: st.thread,
            phase: TracePhase::End,
            ts_ns,
            allocs,
            bytes,
        };
        let pushed = LOCAL.try_with(|l| {
            let mut l = l.borrow_mut();
            l.parent = st.parent;
            l.push(ev.clone());
        });
        if pushed.is_err() {
            // Thread-local already destroyed (span dropped during thread
            // teardown): keep the trace balanced via the sink directly.
            let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
            sink.push(ev);
        }
    }
}

/// The (parent span, track) pair a worker closure should record under.
///
/// Captured on the spawning thread with [`current_context`] and applied in
/// the worker with [`SpanContext::attach`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanContext {
    /// Id of the span current at capture time (0 = none).
    pub parent: u64,
    /// Track current at capture time.
    pub track: u32,
}

/// The calling thread's current (span, track), for handing to workers.
/// Cheap and meaningless (all zeros) while tracing is disabled.
#[inline]
pub fn current_context() -> SpanContext {
    if !trace_enabled() {
        return SpanContext::default();
    }
    LOCAL
        .try_with(|l| {
            let l = l.borrow();
            SpanContext {
                parent: l.parent,
                track: l.track,
            }
        })
        .unwrap_or_default()
}

/// Restores the previous (parent, track) when dropped. Not `Send`.
#[must_use = "the context detaches when this guard drops"]
#[derive(Debug)]
pub struct ContextGuard {
    saved: Option<(u64, u32)>,
    _not_send: PhantomData<*const ()>,
}

impl SpanContext {
    /// Makes this context the calling thread's current one until the
    /// returned guard drops. Inert while tracing is disabled.
    pub fn attach(self) -> ContextGuard {
        if !trace_enabled() {
            return ContextGuard {
                saved: None,
                _not_send: PhantomData,
            };
        }
        let saved = LOCAL
            .try_with(|l| {
                let mut l = l.borrow_mut();
                let saved = (l.parent, l.track);
                l.parent = self.parent;
                l.track = self.track;
                saved
            })
            .ok();
        ContextGuard {
            saved,
            _not_send: PhantomData,
        }
    }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        let Some((parent, track)) = self.saved.take() else {
            return;
        };
        let _ = LOCAL.try_with(|l| {
            let mut l = l.borrow_mut();
            l.parent = parent;
            l.track = track;
        });
    }
}

/// Restores the previous track when dropped. Not `Send`.
#[must_use = "the track reverts when this guard drops"]
#[derive(Debug)]
pub struct TrackGuard {
    saved: Option<u32>,
    _not_send: PhantomData<*const ()>,
}

/// Records subsequent spans on this thread onto `track` until the guard
/// drops. Inert while tracing is disabled.
pub fn with_track(track: u32) -> TrackGuard {
    if !trace_enabled() {
        return TrackGuard {
            saved: None,
            _not_send: PhantomData,
        };
    }
    let saved = LOCAL
        .try_with(|l| {
            let mut l = l.borrow_mut();
            let saved = l.track;
            l.track = track;
            saved
        })
        .ok();
    TrackGuard {
        saved,
        _not_send: PhantomData,
    }
}

impl Drop for TrackGuard {
    fn drop(&mut self) {
        let Some(track) = self.saved.take() else {
            return;
        };
        let _ = LOCAL.try_with(|l| l.borrow_mut().track = track);
    }
}

/// Names a display lane (idempotent; later labels win). Call sites should
/// gate on [`trace_enabled`] — this takes a lock, it is not a hot path.
pub fn set_track_label(track: u32, label: &str) {
    let mut labels = TRACK_LABELS.lock().unwrap_or_else(|e| e.into_inner());
    labels.insert(track, label.to_string());
}

/// All registered lane labels, sorted by track id.
pub fn track_labels() -> Vec<(u32, String)> {
    let labels = TRACK_LABELS.lock().unwrap_or_else(|e| e.into_inner());
    labels.iter().map(|(t, l)| (*t, l.clone())).collect()
}

/// Flushes the calling thread's buffer into the global sink immediately.
///
/// Worker threads must not rely on their thread-local destructor for this:
/// `std::thread::scope` can return to the spawner *before* a finished
/// worker's destructors have run, so a [`drain`] right after the join
/// could miss events. `nidc-parallel` workers instead hold a
/// [`flush_on_exit`] guard, which flushes deterministically while the
/// worker closure unwinds — before the scope join completes.
pub fn flush_thread() {
    let _ = LOCAL.try_with(|l| l.borrow_mut().flush());
}

/// Calls [`flush_thread`] when dropped (including during panic unwinding).
/// Not `Send`.
#[must_use = "the flush happens when this guard drops"]
#[derive(Debug)]
pub struct FlushGuard {
    _not_send: PhantomData<*const ()>,
}

/// An RAII handle for worker threads: take it first thing in the worker
/// closure so the thread's events reach the sink by the time the closure
/// returns (or panics), making them visible to the spawner's [`drain`].
pub fn flush_on_exit() -> FlushGuard {
    FlushGuard {
        _not_send: PhantomData,
    }
}

impl Drop for FlushGuard {
    fn drop(&mut self) {
        flush_thread();
    }
}

/// Flushes the calling thread's buffer and takes every event recorded so
/// far, in per-thread recording order.
///
/// Call from the thread that drove the run, after all fan-out has joined.
/// `nidc-parallel` workers flush before their scope joins (see
/// [`flush_on_exit`]), so this sees every fan-out event; buffers of other
/// *live* threads that have not flushed are not visible.
pub fn drain() -> Vec<TraceEvent> {
    let _ = LOCAL.try_with(|l| l.borrow_mut().flush());
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    std::mem::take(&mut *sink)
}

/// Discards all buffered events and lane labels (calling thread's buffer
/// included). Part of [`crate::reset_all`]; does not touch the enable flag.
pub fn clear() {
    let _ = LOCAL.try_with(|l| l.borrow_mut().buf.clear());
    SINK.lock().unwrap_or_else(|e| e.into_inner()).clear();
    TRACK_LABELS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
}

/// Summary statistics from a validated event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Complete (begin + end) spans.
    pub spans: usize,
    /// Distinct recording threads.
    pub threads: usize,
    /// Distinct tracks.
    pub tracks: usize,
    /// Deepest parent chain (1 = a root with no children).
    pub max_depth: usize,
}

/// Checks the well-formedness invariants every drained stream must satisfy:
/// per-thread begin/end stack discipline (ends match the innermost open
/// begin, nothing left open), per-thread monotone timestamps, unique span
/// ids, and every parent link resolving to a recorded span (or 0).
pub fn validate_events(events: &[TraceEvent]) -> Result<TraceStats, String> {
    let mut begun: BTreeSet<u64> = BTreeSet::new();
    for ev in events {
        if ev.phase == TracePhase::Begin {
            if ev.id == 0 {
                return Err(format!("span {:?} uses reserved id 0", ev.name));
            }
            if !begun.insert(ev.id) {
                return Err(format!("duplicate span id {} ({:?})", ev.id, ev.name));
            }
        }
    }

    let mut stacks: BTreeMap<u64, Vec<(u64, &'static str)>> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, u64> = BTreeMap::new();
    let mut tracks: BTreeSet<u32> = BTreeSet::new();
    let mut parents: BTreeMap<u64, u64> = BTreeMap::new();
    let mut ends = 0usize;
    for ev in events {
        tracks.insert(ev.track);
        if let Some(prev) = last_ts.insert(ev.thread, ev.ts_ns) {
            if ev.ts_ns < prev {
                return Err(format!(
                    "thread {} timestamps regress: {} after {} at {:?}",
                    ev.thread, ev.ts_ns, prev, ev.name
                ));
            }
        }
        let stack = stacks.entry(ev.thread).or_default();
        match ev.phase {
            TracePhase::Begin => {
                if ev.parent != 0 && !begun.contains(&ev.parent) {
                    return Err(format!(
                        "span {} ({:?}) has unresolved parent {}",
                        ev.id, ev.name, ev.parent
                    ));
                }
                parents.insert(ev.id, ev.parent);
                stack.push((ev.id, ev.name));
            }
            TracePhase::End => match stack.pop() {
                Some((id, name)) if id == ev.id && name == ev.name => ends += 1,
                Some((id, name)) => {
                    return Err(format!(
                        "thread {}: end of span {} ({:?}) while {} ({:?}) is innermost",
                        ev.thread, ev.id, ev.name, id, name
                    ));
                }
                None => {
                    return Err(format!(
                        "thread {}: end of span {} ({:?}) with no span open",
                        ev.thread, ev.id, ev.name
                    ));
                }
            },
        }
    }
    for (thread, stack) in &stacks {
        if let Some((id, name)) = stack.last() {
            return Err(format!("thread {thread}: span {id} ({name:?}) never ended"));
        }
    }
    if ends != begun.len() {
        return Err(format!("{} begins but {} ends", begun.len(), ends));
    }

    // Depth via parent chains (memoised; chains may cross threads).
    let mut depth: BTreeMap<u64, usize> = BTreeMap::new();
    fn depth_of(id: u64, parents: &BTreeMap<u64, u64>, memo: &mut BTreeMap<u64, usize>) -> usize {
        if id == 0 {
            return 0;
        }
        if let Some(d) = memo.get(&id) {
            return *d;
        }
        let d = 1 + parents.get(&id).map_or(0, |p| depth_of(*p, parents, memo));
        memo.insert(id, d);
        d
    }
    let max_depth = parents
        .keys()
        .map(|id| depth_of(*id, &parents, &mut depth))
        .max()
        .unwrap_or(0);

    Ok(TraceStats {
        spans: ends,
        threads: stacks.len(),
        tracks: tracks.len(),
        max_depth,
    })
}

/// Opens a [`trace::Span`](crate::trace::Span) named by the argument;
/// bind it (`let _span = nidc_obs::span!("phase");`) so it closes at scope
/// exit. One relaxed load when tracing is disabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::global_lock;

    #[test]
    fn disabled_span_records_nothing() {
        let _guard = global_lock();
        set_trace_enabled(false);
        clear();
        {
            let _s = span("trace_test_disabled");
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn spans_nest_and_validate() {
        let _guard = global_lock();
        clear();
        set_trace_enabled(true);
        {
            let _outer = span("trace_test_outer");
            {
                let _inner = span("trace_test_inner");
            }
            let _sibling = span("trace_test_sibling");
        }
        set_trace_enabled(false);
        let events = drain();
        assert_eq!(events.len(), 6);
        let stats = validate_events(&events).expect("well-formed");
        assert_eq!(stats.spans, 3);
        assert_eq!(stats.max_depth, 2);
        let inner = events
            .iter()
            .find(|e| e.name == "trace_test_inner" && e.phase == TracePhase::Begin)
            .unwrap();
        let outer = events
            .iter()
            .find(|e| e.name == "trace_test_outer" && e.phase == TracePhase::Begin)
            .unwrap();
        let sibling = events
            .iter()
            .find(|e| e.name == "trace_test_sibling" && e.phase == TracePhase::Begin)
            .unwrap();
        assert_eq!(inner.parent, outer.id);
        assert_eq!(sibling.parent, outer.id, "parent restored after inner");
        assert_eq!(outer.parent, 0);
    }

    #[test]
    fn context_attaches_across_threads() {
        let _guard = global_lock();
        clear();
        set_trace_enabled(true);
        let root = span("trace_test_root");
        let ctx = current_context();
        std::thread::scope(|s| {
            s.spawn(move || {
                let _flush = flush_on_exit();
                let _attach = ctx.attach();
                let _child = span("trace_test_worker");
            });
        });
        drop(root);
        set_trace_enabled(false);
        let events = drain();
        validate_events(&events).expect("well-formed");
        let root_id = events
            .iter()
            .find(|e| e.name == "trace_test_root")
            .unwrap()
            .id;
        let worker = events
            .iter()
            .find(|e| e.name == "trace_test_worker" && e.phase == TracePhase::Begin)
            .unwrap();
        assert_eq!(worker.parent, root_id);
        let root_thread = events
            .iter()
            .find(|e| e.name == "trace_test_root")
            .unwrap()
            .thread;
        assert_ne!(worker.thread, root_thread, "recorded on the worker thread");
    }

    #[test]
    fn tracks_override_and_restore() {
        let _guard = global_lock();
        clear();
        set_trace_enabled(true);
        set_track_label(0, "main");
        set_track_label(7, "shard 6");
        {
            let _t = with_track(7);
            let _s = span("trace_test_on_shard");
        }
        {
            let _s = span("trace_test_on_main");
        }
        set_trace_enabled(false);
        let events = drain();
        validate_events(&events).expect("well-formed");
        assert!(events
            .iter()
            .filter(|e| e.name == "trace_test_on_shard")
            .all(|e| e.track == 7));
        assert!(events
            .iter()
            .filter(|e| e.name == "trace_test_on_main")
            .all(|e| e.track == 0));
        assert_eq!(
            track_labels(),
            vec![(0, "main".to_string()), (7, "shard 6".to_string())]
        );
    }

    #[test]
    fn span_guard_unwinds_across_panics() {
        let _guard = global_lock();
        clear();
        set_trace_enabled(true);
        let caught = std::panic::catch_unwind(|| {
            let _s = span("trace_test_panicking");
            panic!("boom");
        });
        assert!(caught.is_err());
        set_trace_enabled(false);
        let events = drain();
        let stats = validate_events(&events).expect("balanced despite panic");
        assert_eq!(stats.spans, 1);
    }

    #[test]
    fn span_events_snapshot_alloc_tallies() {
        let _guard = global_lock();
        clear();
        crate::alloc::set_tracking(true);
        set_trace_enabled(true);
        {
            let _s = span("trace_test_allocating");
            let v: Vec<u64> = Vec::with_capacity(256);
            drop(v);
        }
        set_trace_enabled(false);
        crate::alloc::set_tracking(false);
        let events = drain();
        let begin = events
            .iter()
            .find(|e| e.name == "trace_test_allocating" && e.phase == TracePhase::Begin)
            .unwrap();
        let end = events
            .iter()
            .find(|e| e.name == "trace_test_allocating" && e.phase == TracePhase::End)
            .unwrap();
        assert!(
            end.allocs > begin.allocs,
            "the Vec alloc must be attributed"
        );
        assert!(end.bytes - begin.bytes >= 2048, "256 × 8 bytes expected");
    }

    #[test]
    fn validator_rejects_malformed_streams() {
        let ev = |name, id, parent, phase, ts_ns| TraceEvent {
            name,
            id,
            parent,
            track: 0,
            thread: 0,
            phase,
            ts_ns,
            allocs: 0,
            bytes: 0,
        };
        // Unbalanced: begin without end.
        let events = vec![ev("a", 1, 0, TracePhase::Begin, 10)];
        assert!(validate_events(&events)
            .unwrap_err()
            .contains("never ended"));
        // Crossed ends.
        let events = vec![
            ev("a", 1, 0, TracePhase::Begin, 10),
            ev("b", 2, 1, TracePhase::Begin, 11),
            ev("a", 1, 0, TracePhase::End, 12),
        ];
        assert!(validate_events(&events).unwrap_err().contains("innermost"));
        // Unresolved parent.
        let events = vec![
            ev("a", 1, 99, TracePhase::Begin, 10),
            ev("a", 1, 99, TracePhase::End, 12),
        ];
        assert!(validate_events(&events)
            .unwrap_err()
            .contains("unresolved parent"));
        // Regressing timestamps.
        let events = vec![
            ev("a", 1, 0, TracePhase::Begin, 10),
            ev("a", 1, 0, TracePhase::End, 9),
        ];
        assert!(validate_events(&events).unwrap_err().contains("regress"));
        // Duplicate ids.
        let events = vec![
            ev("a", 1, 0, TracePhase::Begin, 10),
            ev("a", 1, 0, TracePhase::End, 11),
            ev("b", 1, 0, TracePhase::Begin, 12),
            ev("b", 1, 0, TracePhase::End, 13),
        ];
        assert!(validate_events(&events).unwrap_err().contains("duplicate"));
    }
}
