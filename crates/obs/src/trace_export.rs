//! Chrome trace-event JSON export and the `--trace`/`--trace-summary`
//! session helper.
//!
//! The on-disk format is the Trace Event Format's JSON-object form
//! (`{"traceEvents":[...]}`), loadable in Perfetto (ui.perfetto.dev) and
//! `chrome://tracing`. Tracks map to `tid`s, so each shard renders as its
//! own lane; `B`/`E` duration events carry the span id and parent id in
//! `args` so external tools (the `check_trace` validator) can rebuild the
//! causal tree.

use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::profile::Profile;
use crate::trace::{self, TraceEvent, TracePhase};

/// Serialises events as Chrome trace-event JSON.
///
/// Events are written sorted by timestamp (stable, so per-thread order
/// breaks ties), `pid` is fixed at 1, `tid` is the track, timestamps are
/// microseconds with nanosecond fraction. Lane names come from `labels`
/// (`thread_name` metadata events); a `thread_sort_index` event per track
/// keeps lanes in track order.
pub fn write_chrome_trace(
    events: &[TraceEvent],
    labels: &[(u32, String)],
    w: &mut impl Write,
) -> io::Result<()> {
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by_key(|e| e.ts_ns);

    w.write_all(b"{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
    let mut first = true;
    let sep = |w: &mut dyn Write, first: &mut bool| -> io::Result<()> {
        if *first {
            *first = false;
            Ok(())
        } else {
            w.write_all(b",\n")
        }
    };
    for (track, label) in labels {
        sep(w, &mut first)?;
        write!(
            w,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{track},\"name\":\"thread_name\",\
             \"args\":{{\"name\":{}}}}}",
            json_str(label)
        )?;
        sep(w, &mut first)?;
        write!(
            w,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{track},\"name\":\"thread_sort_index\",\
             \"args\":{{\"sort_index\":{track}}}}}"
        )?;
    }
    for ev in sorted {
        sep(w, &mut first)?;
        let us = ev.ts_ns / 1_000;
        let frac = ev.ts_ns % 1_000;
        match ev.phase {
            TracePhase::Begin => write!(
                w,
                "{{\"ph\":\"B\",\"pid\":1,\"tid\":{},\"ts\":{us}.{frac:03},\"name\":{},\
                 \"args\":{{\"id\":{},\"parent\":{},\"thread\":{},\"allocs\":{},\"bytes\":{}}}}}",
                ev.track,
                json_str(ev.name),
                ev.id,
                ev.parent,
                ev.thread,
                ev.allocs,
                ev.bytes
            )?,
            TracePhase::End => write!(
                w,
                "{{\"ph\":\"E\",\"pid\":1,\"tid\":{},\"ts\":{us}.{frac:03},\"name\":{},\
                 \"args\":{{\"id\":{},\"thread\":{},\"allocs\":{},\"bytes\":{}}}}}",
                ev.track,
                json_str(ev.name),
                ev.id,
                ev.thread,
                ev.allocs,
                ev.bytes
            )?,
        }
    }
    w.write_all(b"]}\n")?;
    w.flush()
}

/// JSON string literal (same escaping rules as the snapshot serialiser).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Drives one traced run: enables tracing up front, drains once at the
/// end, and fans the events into the configured consumers (Chrome JSON
/// file and/or profile summary).
///
/// [`TraceSession::start`] returns `None` when neither consumer is
/// requested, so call sites can hold an `Option<TraceSession>` and stay
/// zero-cost when tracing is off.
#[derive(Debug)]
pub struct TraceSession {
    path: Option<PathBuf>,
    summary: bool,
}

impl TraceSession {
    /// Starts a session writing Chrome JSON to `path` (if given) and/or
    /// printing a profile summary on finish. Creates (truncating) the
    /// output file up front so an unwritable path fails before the run,
    /// clears any stale buffered events, and enables tracing.
    pub fn start(path: Option<PathBuf>, summary: bool) -> io::Result<Option<Self>> {
        if path.is_none() && !summary {
            return Ok(None);
        }
        if let Some(p) = &path {
            if let Some(parent) = p.parent() {
                if !parent.as_os_str().is_empty() {
                    fs::create_dir_all(parent)?;
                }
            }
            File::create(p)?;
        }
        trace::clear();
        trace::set_trace_enabled(true);
        trace::set_track_label(0, "main");
        Ok(Some(Self { path, summary }))
    }

    /// The Chrome JSON output path, if one was configured.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Whether a profile summary will be printed on finish.
    pub fn summary(&self) -> bool {
        self.summary
    }

    /// Disables tracing, drains all events, writes the configured outputs
    /// (summary text goes to `out`), and returns the drained events.
    pub fn finish(self, out: &mut impl Write) -> io::Result<Vec<TraceEvent>> {
        trace::set_trace_enabled(false);
        let events = trace::drain();
        let labels = trace::track_labels();
        if let Some(p) = &self.path {
            let mut w = BufWriter::new(File::create(p)?);
            write_chrome_trace(&events, &labels, &mut w)?;
        }
        if self.summary {
            write!(out, "{}", Profile::from_events(&events).to_text())?;
        }
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::global_lock;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nidc_obs_trace_{tag}_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ev(name: &'static str, id: u64, parent: u64, phase: TracePhase, ts_ns: u64) -> TraceEvent {
        TraceEvent {
            name,
            id,
            parent,
            track: 0,
            thread: 0,
            phase,
            ts_ns,
            allocs: 7,
            bytes: 640,
        }
    }

    #[test]
    fn chrome_json_shape() {
        use TracePhase::{Begin, End};
        let events = vec![
            ev("outer", 1, 0, Begin, 1_500),
            ev("inner \"q\"", 2, 1, Begin, 2_000),
            ev("inner \"q\"", 2, 1, End, 3_250),
            ev("outer", 1, 0, End, 4_000),
        ];
        let labels = vec![(0, "main".to_string())];
        let mut buf = Vec::new();
        write_chrome_trace(&events, &labels, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(text.trim_end().ends_with("]}"));
        assert!(text.contains("\"thread_name\",\"args\":{\"name\":\"main\"}"));
        assert!(text.contains("\"ph\":\"B\",\"pid\":1,\"tid\":0,\"ts\":1.500"));
        assert!(text
            .contains("\"args\":{\"id\":1,\"parent\":0,\"thread\":0,\"allocs\":7,\"bytes\":640}"));
        assert!(text.contains("\"ph\":\"E\""));
        assert!(text.contains("\"args\":{\"id\":1,\"thread\":0,\"allocs\":7,\"bytes\":640}"));
        assert!(text.contains("\\\"q\\\""), "names are JSON-escaped");
    }

    #[test]
    fn chrome_json_sorts_by_timestamp() {
        use TracePhase::{Begin, End};
        // Worker events flushed after main-thread events but earlier in time.
        let events = vec![
            ev("late", 2, 0, Begin, 9_000),
            ev("late", 2, 0, End, 10_000),
            ev("early", 1, 0, Begin, 1_000),
            ev("early", 1, 0, End, 2_000),
        ];
        let mut buf = Vec::new();
        write_chrome_trace(&events, &[], &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let early = text.find("\"early\"").unwrap();
        let late = text.find("\"late\"").unwrap();
        assert!(early < late);
    }

    #[test]
    fn session_none_when_nothing_requested() {
        assert!(TraceSession::start(None, false).unwrap().is_none());
    }

    #[test]
    fn session_records_writes_and_disables() {
        let _guard = global_lock();
        let path = tmpdir("session").join("out.json");
        let session = TraceSession::start(Some(path.clone()), true)
            .unwrap()
            .expect("session requested");
        assert!(trace::trace_enabled());
        assert_eq!(session.path(), Some(path.as_path()));
        {
            let _s = crate::span!("trace_export_test_phase");
        }
        let mut summary = Vec::new();
        let events = session.finish(&mut summary).unwrap();
        assert!(!trace::trace_enabled());
        assert_eq!(events.len(), 2);
        crate::trace::validate_events(&events).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("trace_export_test_phase"));
        let summary = String::from_utf8(summary).unwrap();
        assert!(summary.contains("trace_export_test_phase"));
        assert!(summary.starts_with("span"));
        fs::remove_file(&path).ok();
    }
}
