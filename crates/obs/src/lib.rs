//! Zero-dependency observability for the NIDC pipeline.
//!
//! Three primitives — atomic [`Counter`]s, fixed-bucket [`Histogram`]s and
//! RAII [`PhaseTimer`]s — feed one process-global [`Registry`], which can be
//! frozen into a [`Snapshot`] and exported as a JSON-lines record or a
//! Prometheus text-format exposition ([`MetricsExporter`]). A leveled
//! structured logger ([`Level`], [`info`], [`debug`]) replaces ad-hoc
//! `println!` debugging in the pipeline crates.
//!
//! # Determinism contract
//!
//! Instrumentation must never influence results. Every recording call is a
//! pure observer: it reads values the algorithm already computed and updates
//! atomics that nothing on the algorithm side ever reads back. No control
//! flow and no floating-point value in any instrumented crate depends on
//! recorder state, so clusterings are bit-identical with the recorder on or
//! off (enforced by `tests/obs_determinism.rs` in the workspace root).
//!
//! # Overhead budget
//!
//! Recording is **off by default**. Disabled call sites pay exactly one
//! relaxed atomic load plus a predictable branch — the [`enabled`] check —
//! and construct nothing. Enabled counter/histogram sites pay one relaxed
//! `fetch_add` (histograms add a ≤ 24-element bounds scan and a CAS loop for
//! the running sum); site handles ([`LazyCounter`], [`LazyHistogram`]) cache
//! their registry entry in a `OnceLock`, so the name lookup happens once per
//! site, not per event. Hot loops accumulate locally and publish one `add`
//! per call (see `ClusterIndex::dot_all`).
//!
//! # Usage
//!
//! ```
//! use nidc_obs as obs;
//!
//! static DOCS: obs::LazyCounter = obs::LazyCounter::new("demo_docs_total");
//! static PHASE: obs::LazyHistogram =
//!     obs::LazyHistogram::new("demo_phase_seconds", obs::buckets::LATENCY_SECONDS);
//!
//! obs::set_enabled(true);
//! {
//!     let _t = PHASE.start_timer(); // observes elapsed seconds on drop
//!     DOCS.add(3);
//! }
//! let snap = obs::snapshot();
//! assert_eq!(snap.counter("demo_docs_total"), Some(3));
//! println!("{}", snap.to_prometheus());
//! obs::set_enabled(false);
//! ```

// `deny`, not `forbid`: the one `GlobalAlloc` impl in `alloc.rs` carries a
// scoped `#[allow(unsafe_code)]`; everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod events;
mod export;
mod gauge;
mod handles;
mod log;
mod metrics;
pub mod profile;
mod recorder;
mod snapshot;
pub mod trace;
mod trace_export;

pub use events::{EventSession, EVENTS_SCHEMA_VERSION};
pub use export::{MetricsExporter, MetricsFormat};
pub use gauge::{
    btree_map_size_bytes, DeepSize, FloatGauge, Gauge, LazyFloatGauge, LazyGauge,
    BTREE_ENTRY_OVERHEAD,
};
pub use handles::{LazyCounter, LazyHistogram, PhaseTimer};
pub use log::{debug, info, log, log_level, log_on, set_log_level, Level};
pub use metrics::{buckets, Counter, Histogram};
pub use profile::{Profile, ProfileNode};
pub use recorder::{NoopRecorder, Recorder, Registry};
pub use snapshot::{HistogramSnapshot, Snapshot};
pub use trace_export::{write_chrome_trace, TraceSession};

use std::sync::atomic::{AtomicBool, Ordering};

/// The process-global registry every instrumented crate records into.
static GLOBAL: Registry = Registry::new();

/// Master switch. `false` (the default) turns every instrumentation site
/// into a single relaxed load + branch.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-global [`Registry`].
///
/// Always present; whether call sites actually record into it is governed by
/// [`set_enabled`].
pub fn global() -> &'static Registry {
    &GLOBAL
}

/// Whether metric recording is currently enabled.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns metric recording on or off process-wide.
///
/// Safe to toggle at any time; sites that cached registry handles keep
/// working because [`reset`] zeroes metrics in place rather than replacing
/// them.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The active recorder: the global registry when enabled, a no-op otherwise.
///
/// For code that wants dynamic dispatch; hot paths should prefer the static
/// [`LazyCounter`]/[`LazyHistogram`] handles instead.
pub fn recorder() -> &'static dyn Recorder {
    static NOOP: NoopRecorder = NoopRecorder;
    if enabled() {
        &GLOBAL
    } else {
        &NOOP
    }
}

/// Adds `delta` to the named counter in the global registry (no-op while
/// disabled).
#[inline]
pub fn add(name: &'static str, delta: u64) {
    if enabled() {
        GLOBAL.counter(name).add(delta);
    }
}

/// Records `value` into the named histogram in the global registry (no-op
/// while disabled).
#[inline]
pub fn observe(name: &'static str, bounds: &'static [f64], value: f64) {
    if enabled() {
        GLOBAL.histogram(name, bounds).observe(value);
    }
}

/// Freezes the current state of the global registry.
pub fn snapshot() -> Snapshot {
    GLOBAL.snapshot()
}

/// Zeroes every metric in the global registry **in place**.
///
/// Registered metrics stay registered (and cached handles stay valid), so a
/// snapshot taken right after a reset reports every previously-touched
/// metric with zero values — this is what makes per-window JSON-lines
/// deltas possible without invalidating `LazyCounter` sites.
///
/// **Scope is values only, by design**: the enable flag, log level, and
/// trace state are untouched, because the JSON-lines exporter calls this
/// after every window and must keep recording the next one. Use
/// [`reset_all`] between independent runs in one process.
pub fn reset() {
    GLOBAL.reset();
}

/// Returns the process to the recorder-off ground state: metric values
/// zeroed in place (like [`reset`]), metric recording, tracing and
/// allocation tracking disabled, allocation tallies zeroed, buffered trace
/// events and track labels discarded, and the log level back to
/// [`Level::Off`].
///
/// This is the boundary between independent runs sharing one process (the
/// CLI calls it at the top of every command dispatch), so an earlier run's
/// `--metrics`/`--log-level`/`--trace`/`--alloc-stats` cannot leak into the
/// next.
pub fn reset_all() {
    GLOBAL.reset();
    set_enabled(false);
    set_log_level(Level::Off);
    trace::set_trace_enabled(false);
    trace::clear();
    alloc::set_tracking(false);
    alloc::reset();
    alloc::reset_sample_baseline();
    events::reset();
}

#[cfg(test)]
pub(crate) mod test_support {
    //! The global enable flag is shared across the test binary's threads;
    //! every unit test that toggles it serialises on this lock.
    use std::sync::{Mutex, MutexGuard};

    pub(crate) fn global_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_add_and_observe_respect_enable_gate() {
        let _guard = test_support::global_lock();
        let name = "lib_test_gate_total";
        set_enabled(false);
        add(name, 5);
        assert_eq!(
            snapshot().counter(name),
            None,
            "disabled add must not register"
        );
        set_enabled(true);
        add(name, 2);
        observe("lib_test_gate_seconds", buckets::LATENCY_SECONDS, 0.25);
        let snap = snapshot();
        assert_eq!(snap.counter(name), Some(2));
        assert_eq!(snap.histogram("lib_test_gate_seconds").unwrap().count, 1);
        set_enabled(false);
    }

    #[test]
    fn reset_keeps_flags_but_reset_all_clears_them() {
        let _guard = test_support::global_lock();
        set_enabled(true);
        set_log_level(Level::Debug);
        trace::set_trace_enabled(true);
        alloc::set_tracking(true);
        add("lib_test_reset_total", 7);
        {
            let _s = span!("lib_test_reset_span");
        }

        // `reset` zeroes values only: every flag survives (the JSONL
        // exporter depends on this between windows).
        reset();
        assert_eq!(snapshot().counter("lib_test_reset_total"), Some(0));
        assert!(enabled());
        assert_eq!(log_level(), Level::Debug);
        assert!(trace::trace_enabled());
        assert!(alloc::tracking_enabled());

        // `reset_all` is the between-runs boundary: flags off, buffers gone.
        add("lib_test_reset_total", 3);
        reset_all();
        assert_eq!(snapshot().counter("lib_test_reset_total"), Some(0));
        assert!(!enabled());
        assert_eq!(log_level(), Level::Off);
        assert!(!trace::trace_enabled());
        assert!(!alloc::tracking_enabled());
        assert_eq!(alloc::stats(), alloc::AllocStats::default());
        assert!(trace::drain().is_empty(), "buffered spans discarded");
        assert!(trace::track_labels().is_empty());
    }

    #[test]
    fn recorder_switches_with_enable_flag() {
        let _guard = test_support::global_lock();
        set_enabled(false);
        assert!(!recorder().enabled());
        set_enabled(true);
        assert!(recorder().enabled());
        set_enabled(false);
    }
}
