//! End-to-end `--trace` / `--trace-summary` coverage, run against the real
//! `nidc` binary in a subprocess so the process-global trace state is
//! exercised exactly as a user sees it (and cannot be perturbed by other
//! tests sharing this process).

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::Command;

fn nidc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nidc"))
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nidc_trace_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn sharded_stream_trace_is_well_formed_chrome_json() {
    let dir = tmpdir();
    let corpus = dir.join("corpus.jsonl");
    let trace = dir.join("stream.trace.json");

    let gen = nidc()
        .args(["generate", "--out"])
        .arg(&corpus)
        .args(["--scale", "0.05", "--seed", "3"])
        .output()
        .expect("generate runs");
    assert!(
        gen.status.success(),
        "{}",
        String::from_utf8_lossy(&gen.stderr)
    );

    let run = nidc()
        .args(["stream", "--input"])
        .arg(&corpus)
        .args(["--every", "30", "--k", "6", "--shards", "3", "--trace"])
        .arg(&trace)
        .arg("--trace-summary")
        .output()
        .expect("stream runs");
    assert!(
        run.status.success(),
        "{}",
        String::from_utf8_lossy(&run.stderr)
    );

    // The profile summary lands on stdout and names the window phases.
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert!(stdout.contains("pipeline.recluster"), "{stdout}");
    assert!(stdout.contains("kmeans.iteration"), "{stdout}");

    // The file is valid Chrome trace-event JSON…
    let text = std::fs::read_to_string(&trace).unwrap();
    let v: serde_json::Value = serde_json::from_str(&text).unwrap();
    let events = v["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());

    // …with balanced begin/end per span id…
    let mut open: HashMap<u64, u64> = HashMap::new();
    let (mut begins, mut ends) = (0usize, 0usize);
    for e in events {
        match e["ph"].as_str().unwrap() {
            "B" => {
                begins += 1;
                *open.entry(e["args"]["id"].as_u64().unwrap()).or_insert(0) += 1;
            }
            "E" => {
                ends += 1;
                let n = open.get_mut(&e["args"]["id"].as_u64().unwrap()).unwrap();
                *n -= 1;
            }
            "M" => {}
            ph => panic!("unexpected phase {ph}"),
        }
    }
    assert!(begins > 0);
    assert_eq!(begins, ends, "every begin has its end");
    assert!(open.values().all(|&n| n == 0));

    // …and one labelled lane per shard plus the main lane, so Perfetto
    // renders the fan-out one track per shard.
    for lane in ["main", "shard 0", "shard 1", "shard 2"] {
        assert!(
            events.iter().any(|e| e["ph"].as_str() == Some("M")
                && e["name"].as_str() == Some("thread_name")
                && e["args"]["name"].as_str() == Some(lane)),
            "missing lane {lane}"
        );
    }

    // K-means iterations nest under their window's recluster span: every
    // kmeans.iteration begin has a parent chain reaching shard.recluster.
    let parent_of: HashMap<u64, (u64, &str)> = events
        .iter()
        .filter(|e| e["ph"].as_str() == Some("B"))
        .map(|e| {
            (
                e["args"]["id"].as_u64().unwrap(),
                (
                    e["args"]["parent"].as_u64().unwrap(),
                    e["name"].as_str().unwrap(),
                ),
            )
        })
        .collect();
    let mut checked = 0;
    for (id, (_, name)) in &parent_of {
        if *name != "kmeans.iteration" {
            continue;
        }
        let mut cur = *id;
        let mut reaches_recluster = false;
        while let Some((parent, name)) = parent_of.get(&cur) {
            if *name == "shard.recluster" {
                reaches_recluster = true;
                break;
            }
            if *parent == 0 {
                break;
            }
            cur = *parent;
        }
        assert!(reaches_recluster, "kmeans.iteration {id} dangles");
        checked += 1;
    }
    assert!(checked > 0, "no kmeans.iteration spans recorded");

    std::fs::remove_dir_all(&dir).ok();
}
