//! End-to-end `--alloc-stats` coverage, run against the real `nidc` binary
//! in a subprocess so the process-global counting allocator is exercised
//! exactly as a user sees it.

use std::path::PathBuf;
use std::process::Command;

fn nidc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nidc"))
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nidc_alloc_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Parses `key=value` fields out of the `alloc-stats:` summary line.
fn field(line: &str, key: &str) -> u64 {
    line.split_whitespace()
        .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("missing {key} in {line:?}"))
        .parse()
        .unwrap()
}

#[test]
fn alloc_stats_prints_nonzero_summary_and_span_columns() {
    let dir = tmpdir();
    let corpus = dir.join("corpus.jsonl");

    let gen = nidc()
        .args(["generate", "--out"])
        .arg(&corpus)
        .args(["--scale", "0.05", "--seed", "3"])
        .output()
        .expect("generate runs");
    assert!(
        gen.status.success(),
        "{}",
        String::from_utf8_lossy(&gen.stderr)
    );

    let run = nidc()
        .args(["stream", "--input"])
        .arg(&corpus)
        .args([
            "--every",
            "30",
            "--k",
            "6",
            "--alloc-stats",
            "--trace-summary",
        ])
        .output()
        .expect("stream runs");
    assert!(
        run.status.success(),
        "{}",
        String::from_utf8_lossy(&run.stderr)
    );
    let stdout = String::from_utf8_lossy(&run.stdout);

    // The one-line process summary is present with non-trivial tallies…
    let line = stdout
        .lines()
        .find(|l| l.starts_with("alloc-stats:"))
        .unwrap_or_else(|| panic!("no alloc-stats line in {stdout}"));
    assert!(field(line, "allocs") > 1_000, "{line}");
    assert!(field(line, "bytes_allocated") > field(line, "peak_live_bytes"));
    assert!(field(line, "peak_live_bytes") >= field(line, "live_bytes"));
    assert!(field(line, "deallocs") <= field(line, "allocs"));

    // …and the profile tree gained allocs/bytes columns with real values
    // on the hot spans.
    let header = stdout
        .lines()
        .find(|l| l.starts_with("span"))
        .expect("summary header");
    for col in ["allocs", "self-alloc", "bytes", "self-bytes"] {
        assert!(header.contains(col), "{header}");
    }
    let step1 = stdout
        .lines()
        .find(|l| l.contains("kmeans.step1"))
        .expect("kmeans.step1 row");
    let cols: Vec<&str> = step1.split_whitespace().collect();
    // span calls total self allocs self-alloc bytes self-bytes
    assert_eq!(cols.len(), 8, "{step1}");
    assert_ne!(cols[4], "0", "kmeans.step1 total allocs: {step1}");
    assert_ne!(cols[6], "0B", "kmeans.step1 total bytes: {step1}");

    std::fs::remove_dir_all(&dir).ok();
}
