//! Library backing the `nidc` command-line tool: argument parsing and the
//! subcommand implementations, separated from `main.rs` so they are unit
//! testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{Command, ParsedArgs};

/// CLI errors: usage problems and I/O or clustering failures.
#[derive(Debug)]
pub enum CliError {
    /// The command line could not be parsed; the string is the usage hint.
    Usage(String),
    /// An I/O failure.
    Io(std::io::Error),
    /// A library-level failure.
    Other(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Other(format!("json error: {e}"))
    }
}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, CliError>;

/// Top-level usage text.
pub const USAGE: &str = "\
nidc — novelty-based incremental document clustering (Khy et al., ICDE 2006)

USAGE:
    nidc <command> [options]

COMMANDS:
    generate   generate a synthetic TDT2-like corpus as JSONL
               --out FILE [--scale F=1.0] [--seed N]
    stats      per-window corpus statistics (Table 2 layout)
               --input FILE
    cluster    cluster a time range and print the hot-topic overview
               --input FILE [--k N=24] [--beta DAYS=7] [--gamma DAYS=30]
               [--from DAY=0] [--to DAY=end] [--top N=10] [--json]
               [--threads N=0] [--rep sparse|dense] [--metrics FILE]
               [--events FILE]
    stream     replay the corpus incrementally, printing overviews
               --input FILE [--k N=16] [--beta DAYS=7] [--gamma DAYS=21]
               [--every DAYS=5] [--state FILE] [--shards N=1]
               [--stitch on|off] [--stitch-threshold T]
               [--threads N=0] [--rep sparse|dense] [--metrics FILE]
               [--events FILE]
               (--state: resume from / checkpoint to a pipeline state file)
    eval       cluster a window and score it against the labels
               --input FILE --window N(1-6) [--k N=24] [--beta DAYS=7]
               [--gamma DAYS=30] [--seed N] [--threads N=0]
               [--shards N=1] [--stitch on|off] [--stitch-threshold T]
               [--rep sparse|dense] [--metrics FILE]
    inspect    render per-lineage timelines from an event stream
               --events FILE [--top N=24]

--threads N: worker threads for the clustering hot paths (0 = all hardware
threads, 1 = sequential). Results are identical for any value.
--shards N (stream, eval): split the stream over N independent pipelines
behind a deterministic DocId router, clustered in parallel and merged at
query time. N=1 (default) is the single pipeline, bit for bit; any fixed N
is bit-identical across thread counts. Checkpoints store the topology — on
resume the checkpoint's shard count wins over --shards.
--stitch on|off (stream, eval): the query-time stitching pass that reunites
cross-shard fragments of one topic (group-average agglomeration over the
merged representatives at a normalized cr_sim threshold). Default on; a
single shard has nothing to stitch, so it only takes effect with
--shards > 1. --stitch-threshold T sets the threshold (default 0.2;
higher = merge less).
--rep sparse|dense: cluster-representative storage. `sparse` (default) also
routes the step-1 scoring sweep through a term→cluster inverted index;
`dense` keeps the original O(K·|V|) arrays. Results are bit-identical.
--metrics FILE: record pipeline/K-means/index instrumentation and export
snapshots to FILE — per window for `stream`, once at the end for `cluster`
and `eval`. --metrics-format jsonl|prom picks the layout (default jsonl:
one per-window delta object per line; prom: cumulative Prometheus text).
Metrics never alter clustering results — recording is observation only.
--events FILE (stream, cluster): export the cluster lifecycle event stream
as JSON lines (schema header, then one birth/death/continuation/split/
merge/moved/outliered object per line). Lineage ids are persistent across
windows and checkpoints; `nidc inspect --events FILE` renders them as
per-lineage timelines and `check_events` (nidc-bench) validates a stream.
Like metrics, events are observation only — results are bit-identical
with the stream on or off.
--log-level off|info|debug: structured `key=value` tracing on stderr
(info: per-recluster summaries; debug: per-iteration K-means traces).

Corpus JSONL format: first line = topic inventory (array), then one article
per line: {\"id\":u64, \"topic\":u32, \"day\":f64, \"text\":\"...\"} —
the format written by `nidc generate` and `Corpus::save_jsonl`.";
