//! The subcommand implementations.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::Write;

use nidc_core::{
    cluster_batch, Cluster, ClusteringConfig, MergedClustering, RepBackend, ShardedPipeline,
};
use nidc_corpus::{Corpus, Generator, GeneratorConfig, TopicId};
use nidc_eval::{evaluate, evaluate_sharded, purity, Labeling, MARKING_THRESHOLD};
use nidc_forgetting::{DecayParams, Repository, Timestamp};
use nidc_similarity::DocVectors;
use nidc_textproc::{DocId, Pipeline, SparseVector, Vocabulary};

use crate::{CliError, ParsedArgs, Result};

/// Dispatches a parsed command line, writing human output to `out`.
pub fn run<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<()> {
    // Observability state is process-global. When this invocation configures
    // any observability surface, start from a clean slate so a previous
    // in-process run (the library use case — and an aborted `--trace` run
    // that never reached its session's finish) cannot leak enabled flags,
    // buffered spans, or accumulated values into this one.
    if args.get("metrics").is_some()
        || args.get("trace").is_some()
        || args.flag("trace-summary")
        || args.flag("alloc-stats")
        || args.get("log-level").is_some()
        || (args.command != crate::Command::Inspect && args.get("events").is_some())
    {
        nidc_obs::reset_all();
    }
    // `--log-level off|info|debug`: structured stderr tracing for every
    // subcommand (replaces ad-hoc progress prints).
    if let Some(level) = args.get("log-level") {
        nidc_obs::set_log_level(level.parse().map_err(CliError::Usage)?);
    }
    // `--alloc-stats`: count every allocation through the run and print a
    // one-line summary at the end. Also enriches `--trace-summary` and
    // Chrome traces with per-span allocs/bytes columns.
    let track_allocs = args.flag("alloc-stats");
    if track_allocs {
        nidc_obs::alloc::set_tracking(true);
    }
    let result = match args.command {
        crate::Command::Generate => generate(args, out),
        crate::Command::Stats => stats(args, out),
        crate::Command::Cluster => cluster(args, out),
        crate::Command::Stream => stream(args, out),
        crate::Command::Eval => eval(args, out),
        crate::Command::Inspect => inspect(args, out),
    };
    if track_allocs && result.is_ok() {
        let s = nidc_obs::alloc::stats();
        writeln!(
            out,
            "alloc-stats: allocs={} deallocs={} reallocs={} bytes_allocated={} \
             live_bytes={} peak_live_bytes={}",
            s.allocs, s.deallocs, s.reallocs, s.bytes_allocated, s.live_bytes, s.peak_live_bytes
        )?;
    }
    result
}

/// `--rep dense|sparse`: the representative backend (perf knob; results
/// are bit-identical either way, so it defaults like `--threads` does).
fn rep_backend_from(args: &ParsedArgs) -> Result<RepBackend> {
    match args.get("rep") {
        None => Ok(RepBackend::default()),
        Some(s) => s.parse().map_err(CliError::Usage),
    }
}

/// `--stitch on|off [--stitch-threshold T]`: the query-time stitching pass
/// over a sharded clustering. `None` means stitching is disabled;
/// `Some(threshold)` enables it (the default, at
/// [`nidc_core::DEFAULT_STITCH_THRESHOLD`]). A single shard is never
/// stitched regardless — the pipeline gates on `shards > 1`.
fn stitch_from(args: &ParsedArgs) -> Result<Option<f64>> {
    let on = match args.get("stitch") {
        None | Some("on") => true,
        Some("off") => false,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "--stitch must be 'on' or 'off', got '{other}'"
            )))
        }
    };
    if !on {
        return Ok(None);
    }
    let tau = args.get_f64("stitch-threshold", nidc_core::DEFAULT_STITCH_THRESHOLD)?;
    if !tau.is_finite() || tau < 0.0 {
        return Err(CliError::Usage(
            "--stitch-threshold must be a finite non-negative number".into(),
        ));
    }
    Ok(Some(tau))
}

/// `--metrics FILE [--metrics-format jsonl|prom]`: builds the snapshot
/// exporter (creating it enables global metric recording). `None` when no
/// `--metrics` was given — the instrumentation then costs one relaxed
/// atomic load per site.
fn metrics_exporter(args: &ParsedArgs) -> Result<Option<nidc_obs::MetricsExporter>> {
    let Some(path) = args.get("metrics") else {
        return Ok(None);
    };
    let format = match args.get("metrics-format") {
        None => nidc_obs::MetricsFormat::default(),
        Some(s) => s.parse().map_err(CliError::Usage)?,
    };
    Ok(Some(nidc_obs::MetricsExporter::create(path, format)?))
}

/// `--events FILE`: opens the structured lifecycle-event stream (creating
/// it enables global event recording, so the pipeline's `LineageTracker`
/// serialises births, deaths, splits, merges, drift and per-document moves
/// to FILE as JSON lines). `None` without `--events` — emission then costs
/// one relaxed load per window. Events never alter clustering results.
fn events_session(args: &ParsedArgs) -> Result<Option<nidc_obs::EventSession>> {
    let Some(path) = args.get("events") else {
        return Ok(None);
    };
    Ok(Some(nidc_obs::EventSession::create(path)?))
}

/// `--trace FILE [--trace-summary]`: starts a span-recording session that
/// writes Chrome trace-event JSON to FILE and/or prints a hierarchical
/// profile (per-span call count, total/self time) when the command finishes.
/// `None` when neither was requested — spans then cost one relaxed load.
fn trace_session(args: &ParsedArgs) -> Result<Option<nidc_obs::TraceSession>> {
    let path = args.get("trace").map(std::path::PathBuf::from);
    Ok(nidc_obs::TraceSession::start(
        path,
        args.flag("trace-summary"),
    )?)
}

fn load_corpus(args: &ParsedArgs) -> Result<Corpus> {
    let path = args.require("input")?;
    let file = File::open(path)?;
    Corpus::load_jsonl(file).map_err(CliError::Io)
}

/// Tokenises a corpus with the raw pipeline (synthetic corpora are already
/// clean tokens; real text should be pre-processed upstream).
fn tokenise(corpus: &Corpus) -> (Vocabulary, Vec<SparseVector>) {
    let pipeline = Pipeline::raw();
    let mut vocab = Vocabulary::new();
    let tfs = corpus
        .articles()
        .iter()
        .map(|a| pipeline.analyze(&a.text, &mut vocab).to_sparse())
        .collect();
    (vocab, tfs)
}

fn decay_from(args: &ParsedArgs, default_beta: f64, default_gamma: f64) -> Result<DecayParams> {
    let beta = args.get_f64("beta", default_beta)?;
    let gamma = args.get_f64("gamma", default_gamma)?;
    DecayParams::from_spans(beta, gamma)
        .map_err(|e| CliError::Usage(format!("invalid decay parameters: {e}")))
}

// ---------------------------------------------------------------- generate

fn generate<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<()> {
    let path = args.require("out")?;
    let scale = args.get_f64("scale", 1.0)?;
    let seed = args.get_u64("seed", 19980104)?;
    let corpus = Generator::new(GeneratorConfig {
        seed,
        scale,
        ..GeneratorConfig::default()
    })
    .generate();
    corpus.save_jsonl(File::create(path)?)?;
    writeln!(
        out,
        "wrote {} articles / {} topics to {path}",
        corpus.len(),
        corpus.topics().len()
    )?;
    Ok(())
}

// ------------------------------------------------------------------- stats

fn stats<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<()> {
    let corpus = load_corpus(args)?;
    writeln!(
        out,
        "{} articles, {} topics, day range 0..{:.1}",
        corpus.len(),
        corpus.topics().len(),
        corpus.articles().last().map_or(0.0, |a| a.day)
    )?;
    for w in corpus.standard_windows() {
        let s = corpus.window_stats(&w);
        writeln!(
            out,
            "{:<11} docs {:>5}  topics {:>3}  sizes min {} / med {:.1} / mean {:.2} / max {}",
            w.label,
            s.num_docs,
            s.num_topics,
            s.min_topic_size,
            s.median_topic_size,
            s.mean_topic_size,
            s.max_topic_size
        )?;
    }
    Ok(())
}

// ----------------------------------------------------------------- cluster

/// Renders one cluster as an overview line.
fn overview_line(
    cluster: &Cluster,
    vocab: &Vocabulary,
    corpus: &Corpus,
    topic_of: &BTreeMap<DocId, TopicId>,
) -> String {
    let keywords: Vec<String> = cluster
        .rep()
        .top_terms(5)
        .into_iter()
        .filter_map(|(t, _)| vocab.term(t).map(str::to_owned))
        .collect();
    let mut counts: BTreeMap<TopicId, usize> = BTreeMap::new();
    for d in cluster.members() {
        if let Some(&t) = topic_of.get(d) {
            *counts.entry(t).or_insert(0) += 1;
        }
    }
    let label = counts
        .iter()
        .max_by_key(|(_, &n)| n)
        .map(|(t, &n)| {
            let name = corpus.topic_name(*t).unwrap_or("?");
            format!("{name} {n}/{}", cluster.len())
        })
        .unwrap_or_default();
    format!(
        "{:>4} docs  avg_sim {:.2e}  [{label}]  {}",
        cluster.len(),
        cluster.avg_sim(),
        keywords.join(" ")
    )
}

fn cluster<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<()> {
    let corpus = load_corpus(args)?;
    let (vocab, tfs) = tokenise(&corpus);
    let from = args.get_f64("from", 0.0)?;
    let to = args.get_f64("to", corpus.articles().last().map_or(0.0, |a| a.day) + 0.01)?;
    let decay = decay_from(args, 7.0, 30.0)?;
    let config = ClusteringConfig {
        k: args.get_usize("k", 24)?,
        seed: args.get_u64("seed", 42)?,
        threads: args.get_usize("threads", 0)?,
        rep_backend: rep_backend_from(args)?,
        ..ClusteringConfig::default()
    };
    let top = args.get_usize("top", 10)?;
    let mut exporter = metrics_exporter(args)?;
    let events = events_session(args)?;
    let trace = trace_session(args)?;

    let mut repo = Repository::new(decay);
    let mut topic_of = BTreeMap::new();
    for (a, tf) in corpus.articles().iter().zip(&tfs) {
        if a.day >= from && a.day < to {
            repo.insert(DocId(a.id), Timestamp(a.day), tf.clone())
                .map_err(|e| CliError::Other(e.to_string()))?;
            topic_of.insert(DocId(a.id), a.topic);
        }
    }
    if repo.is_empty() {
        return Err(CliError::Other(format!(
            "no articles in day range {from}..{to}"
        )));
    }
    repo.advance_to(Timestamp(to))
        .map_err(|e| CliError::Other(e.to_string()))?;
    let vecs = DocVectors::build_parallel(&repo, config.threads);
    let clustering = cluster_batch(&vecs, &config).map_err(|e| CliError::Other(e.to_string()))?;
    if let Some(m) = exporter.as_mut() {
        m.record_window(&[("from", from), ("to", to)])?;
        m.finish()?;
    }
    if let Some(e) = events {
        // A one-shot clustering has no previous window, so the stream is a
        // single window of births — still useful as a machine-readable
        // cluster inventory, and inspectable with `nidc inspect`.
        nidc_core::LineageTracker::new().observe_clustering(&clustering);
        e.finish()?;
    }
    if let Some(s) = trace {
        s.finish(out)?;
    }

    if args.flag("json") {
        let assignment: BTreeMap<String, usize> = clustering
            .assignment()
            .into_iter()
            .map(|(d, p)| (d.0.to_string(), p))
            .collect();
        let payload = serde_json::json!({
            "days": [from, to],
            "k": config.k,
            "g": clustering.g(),
            "iterations": clustering.iterations(),
            "outliers": clustering.outliers().iter().map(|d| d.0).collect::<Vec<_>>(),
            "assignment": assignment,
        });
        writeln!(out, "{}", serde_json::to_string_pretty(&payload)?)?;
        return Ok(());
    }

    writeln!(
        out,
        "clustered {} docs (days {from:.1}..{to:.1}) into {} clusters, G = {:.3e}, {} outliers\n",
        repo.len(),
        clustering.non_empty_clusters(),
        clustering.g(),
        clustering.outliers().len()
    )?;
    let mut ranked: Vec<&Cluster> = clustering
        .clusters()
        .iter()
        .filter(|c| !c.is_empty())
        .collect();
    ranked.sort_by(|a, b| {
        b.rep()
            .g_term()
            .partial_cmp(&a.rep().g_term())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for (i, c) in ranked.iter().take(top).enumerate() {
        writeln!(
            out,
            "{:>2}. {}",
            i + 1,
            overview_line(c, &vocab, &corpus, &topic_of)
        )?;
    }
    Ok(())
}

// ------------------------------------------------------------------ stream

fn stream<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<()> {
    let corpus = load_corpus(args)?;
    let (vocab, tfs) = tokenise(&corpus);
    let decay = decay_from(args, 7.0, 21.0)?;
    let every = args.get_f64("every", 5.0)?;
    let config = ClusteringConfig {
        k: args.get_usize("k", 16)?,
        seed: args.get_u64("seed", 42)?,
        threads: args.get_usize("threads", 0)?,
        rep_backend: rep_backend_from(args)?,
        ..ClusteringConfig::default()
    };
    let mut exporter = metrics_exporter(args)?;
    let events = events_session(args)?;
    let trace = trace_session(args)?;
    // --shards N: independent stream shards behind the deterministic
    // router (1 = today's single-pipeline behaviour, bit for bit).
    let shards = args.get_usize("shards", 1)?;
    // --state FILE: resume from a previous run's checkpoint, if present,
    // and write a new checkpoint when the stream is exhausted. A sharded
    // checkpoint carries its own topology, which wins over --shards;
    // legacy (unsharded) checkpoints load as one shard.
    let state_path = args.get("state").map(str::to_owned);
    let mut pipeline = match &state_path {
        Some(p) if std::path::Path::new(p).exists() => {
            let restored = ShardedPipeline::load_json(File::open(p)?)?;
            if restored.num_shards() != shards && args.get("shards").is_some() {
                writeln!(
                    out,
                    "note: checkpoint topology ({} shards) overrides --shards {shards}",
                    restored.num_shards()
                )?;
            }
            writeln!(
                out,
                "resumed from {p}: {} live docs at {} across {} shard(s)",
                restored.num_docs(),
                restored.now(),
                restored.num_shards()
            )?;
            restored
        }
        _ => ShardedPipeline::new(decay, config, shards)
            .map_err(|e| CliError::Usage(e.to_string()))?,
    };
    // --stitch on|off / --stitch-threshold: applies to fresh and restored
    // pipelines alike (stitching is a query-time view, not pipeline state).
    pipeline.set_stitch(stitch_from(args)?);
    let resume_day = pipeline.now().days();
    let mut topic_of = BTreeMap::new();
    let mut next_report = (resume_day / every).floor() * every + every;
    let report = |pipeline: &ShardedPipeline,
                  clustering: &MergedClustering,
                  day: f64,
                  out: &mut W,
                  topic_of: &BTreeMap<DocId, TopicId>|
     -> Result<()> {
        let mut ranked: Vec<&Cluster> = clustering
            .shards()
            .iter()
            .flat_map(|c| c.clusters())
            .filter(|c| c.len() >= 2)
            .collect();
        ranked.sort_by(|a, b| {
            b.rep()
                .g_term()
                .partial_cmp(&a.rep().g_term())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        // When the query-time stitch ran (shards > 1, --stitch on), show
        // how many topics survive after cross-shard fragments are reunited.
        let stitched_note = clustering
            .stitched()
            .map(|s| {
                format!(
                    " | stitched: {} clusters ({} merges)",
                    s.non_empty_clusters(),
                    s.merges()
                )
            })
            .unwrap_or_default();
        writeln!(
            out,
            "day {:>5.1}  {:>5} live docs | top: {}{stitched_note}",
            day,
            pipeline.num_docs(),
            ranked
                .iter()
                .take(3)
                .map(|c| overview_line(c, &vocab, &corpus, topic_of))
                .collect::<Vec<_>>()
                .join(" || ")
        )?;
        Ok(())
    };
    for (a, tf) in corpus.articles().iter().zip(&tfs) {
        if a.day <= resume_day {
            continue; // already processed before the checkpoint
        }
        while a.day >= next_report {
            pipeline
                .advance_to(Timestamp(next_report))
                .map_err(|e| CliError::Other(e.to_string()))?;
            let clustering = pipeline
                .recluster_incremental()
                .map_err(|e| CliError::Other(e.to_string()))?;
            report(&pipeline, &clustering, next_report, out, &topic_of)?;
            if let Some(m) = exporter.as_mut() {
                m.record_window(&[("day", next_report), ("docs", pipeline.num_docs() as f64)])?;
            }
            next_report += every;
        }
        topic_of.insert(DocId(a.id), a.topic);
        pipeline
            .ingest(DocId(a.id), Timestamp(a.day), tf.clone())
            .map_err(|e| CliError::Other(e.to_string()))?;
    }
    let clustering = pipeline
        .recluster_incremental()
        .map_err(|e| CliError::Other(e.to_string()))?;
    report(
        &pipeline,
        &clustering,
        pipeline.now().days(),
        out,
        &topic_of,
    )?;
    if let Some(m) = exporter.as_mut() {
        m.record_window(&[
            ("day", pipeline.now().days()),
            ("docs", pipeline.num_docs() as f64),
        ])?;
        m.finish()?;
    }
    if let Some(e) = events {
        e.finish()?;
    }
    if let Some(s) = trace {
        s.finish(out)?;
    }
    if let Some(p) = &state_path {
        pipeline.save_json(File::create(p)?)?;
        writeln!(out, "checkpoint written to {p}")?;
    }
    Ok(())
}

// -------------------------------------------------------------------- eval

fn eval<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<()> {
    let corpus = load_corpus(args)?;
    let (_, tfs) = tokenise(&corpus);
    let window_no = args.get_usize("window", 0)?;
    if !(1..=6).contains(&window_no) {
        return Err(CliError::Usage("--window must be 1..6".into()));
    }
    let windows = corpus.standard_windows();
    let w = &windows[window_no - 1];
    let decay = decay_from(args, 7.0, 30.0)?;
    let config = ClusteringConfig {
        k: args.get_usize("k", 24)?,
        seed: args.get_u64("seed", 42)?,
        threads: args.get_usize("threads", 0)?,
        rep_backend: rep_backend_from(args)?,
        ..ClusteringConfig::default()
    };
    let mut exporter = metrics_exporter(args)?;
    let trace = trace_session(args)?;
    let labels: Labeling<u32> = w
        .article_indices
        .iter()
        .map(|&i| {
            let a = &corpus.articles()[i];
            (DocId(a.id), a.topic.0)
        })
        .collect();
    // --shards N: score the window as a sharded deployment would see it —
    // merged (fragmented), stitched, and per-shard figures side by side.
    let shards = args.get_usize("shards", 1)?;
    if shards > 1 {
        let mut pipeline = ShardedPipeline::new(decay, config, shards)
            .map_err(|e| CliError::Usage(e.to_string()))?;
        pipeline.set_stitch(stitch_from(args)?);
        for &i in &w.article_indices {
            let a = &corpus.articles()[i];
            pipeline
                .ingest(DocId(a.id), Timestamp(a.day), tfs[i].clone())
                .map_err(|e| CliError::Other(e.to_string()))?;
        }
        pipeline
            .advance_to(Timestamp(w.end))
            .map_err(|e| CliError::Other(e.to_string()))?;
        let merged = pipeline
            .recluster_from_scratch()
            .map_err(|e| CliError::Other(e.to_string()))?;
        if let Some(m) = exporter.as_mut() {
            m.record_window(&[("window", window_no as f64), ("shards", shards as f64)])?;
            m.finish()?;
        }
        if let Some(s) = trace {
            s.finish(out)?;
        }
        let per_shard: Vec<Vec<Vec<DocId>>> =
            merged.shards().iter().map(|c| c.member_lists()).collect();
        let stitched_lists = merged.stitched().map(|s| s.member_lists());
        let e = evaluate_sharded(
            &per_shard,
            stitched_lists.as_deref(),
            &labels,
            MARKING_THRESHOLD,
        );
        writeln!(
            out,
            "window {} ({}): {} docs across {} shards",
            window_no,
            w.label,
            w.len(),
            shards
        )?;
        writeln!(
            out,
            "merged   micro F1 {:.3}   macro F1 {:.3}   outliers {}",
            e.merged.micro_f1,
            e.merged.macro_f1,
            merged.outliers().len()
        )?;
        if let (Some(se), Some(sv)) = (&e.stitched, merged.stitched()) {
            writeln!(
                out,
                "stitched micro F1 {:.3}   macro F1 {:.3}   clusters {}   merges {}   threshold {}",
                se.micro_f1,
                se.macro_f1,
                sv.non_empty_clusters(),
                sv.merges(),
                sv.threshold()
            )?;
        }
        for (s, pe) in e.per_shard.iter().enumerate() {
            writeln!(
                out,
                "shard {s}  micro F1 {:.3}   macro F1 {:.3}   detected topics {}",
                pe.micro_f1,
                pe.macro_f1,
                pe.detected_topics.len()
            )?;
        }
        return Ok(());
    }
    let mut repo = Repository::new(decay);
    for &i in &w.article_indices {
        let a = &corpus.articles()[i];
        repo.insert(DocId(a.id), Timestamp(a.day), tfs[i].clone())
            .map_err(|e| CliError::Other(e.to_string()))?;
    }
    repo.advance_to(Timestamp(w.end))
        .map_err(|e| CliError::Other(e.to_string()))?;
    let vecs = DocVectors::build_parallel(&repo, config.threads);
    let clustering = cluster_batch(&vecs, &config).map_err(|e| CliError::Other(e.to_string()))?;
    if let Some(m) = exporter.as_mut() {
        m.record_window(&[("window", window_no as f64)])?;
        m.finish()?;
    }
    if let Some(s) = trace {
        s.finish(out)?;
    }
    let e = evaluate(&clustering.member_lists(), &labels, MARKING_THRESHOLD);
    writeln!(out, "window {} ({}): {} docs", window_no, w.label, w.len())?;
    writeln!(
        out,
        "micro F1 {:.3}   macro F1 {:.3}   purity {:.3}   detected topics {}   outliers {}",
        e.micro_f1,
        e.macro_f1,
        purity(&clustering.member_lists(), &labels),
        e.detected_topics.len(),
        clustering.outliers().len()
    )?;
    Ok(())
}

// ----------------------------------------------------------------- inspect

/// Everything `inspect` accumulates about one lineage while scanning the
/// event stream.
struct LineageTimeline {
    born: u64,
    /// `None` for a birth, `Some(parent)` for a split.
    parent: Option<u64>,
    /// `(window, cause)` once dead.
    death: Option<(u64, String)>,
    /// Member count at each window the lineage reported in.
    sizes: Vec<usize>,
    /// Drift at each continuation (empty for single-window lineages).
    drifts: Vec<f64>,
}

impl LineageTimeline {
    fn last_window(&self) -> u64 {
        match self.death {
            Some((w, _)) => w,
            None => self.born + self.sizes.len().max(1) as u64 - 1,
        }
    }

    fn lifetime(&self) -> u64 {
        self.last_window() - self.born + 1
    }
}

/// Renders `values` as a fixed-height Unicode sparkline, scaled to `max`
/// (values at or above `max` hit the tallest bar; a zero `max` flatlines).
fn sparkline(values: &[f64], max: f64) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 {
                return BARS[0];
            }
            let level = ((v / max).clamp(0.0, 1.0) * 7.0).round() as usize;
            BARS[level.min(7)]
        })
        .collect()
}

fn inspect_field(v: &serde_json::Value, name: &str, lineno: usize) -> Result<u64> {
    v.get(name).and_then(|f| f.as_u64()).ok_or_else(|| {
        CliError::Other(format!(
            "line {lineno}: missing or non-integer field \"{name}\""
        ))
    })
}

/// `nidc inspect --events FILE [--top N]`: reads a lifecycle event stream
/// (the `--events` output of `stream`/`cluster`) and renders one timeline
/// row per lineage — birth window, lifetime, size trajectory, drift
/// sparkline, and how it ended.
fn inspect<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<()> {
    let path = args.require("events")?;
    let top = args.get_usize("top", 24)?;
    let text = std::fs::read_to_string(path)?;
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());

    let (_, header) = lines
        .next()
        .ok_or_else(|| CliError::Other(format!("{path}: empty event stream")))?;
    let hv: serde_json::Value = serde_json::from_str(header)?;
    if hv.get("schema").and_then(|s| s.as_str()) != Some("nidc-events") {
        return Err(CliError::Other(format!(
            "{path}: not an nidc-events stream"
        )));
    }
    let version = hv.get("v").and_then(|s| s.as_u64()).unwrap_or(0);
    if version != u64::from(nidc_obs::EVENTS_SCHEMA_VERSION) {
        return Err(CliError::Other(format!(
            "{path}: schema version {version} is not the supported version {}",
            nidc_obs::EVENTS_SCHEMA_VERSION
        )));
    }

    let mut timelines: BTreeMap<u64, LineageTimeline> = BTreeMap::new();
    let mut last_window = 0u64;
    let (mut splits, mut merges, mut moved, mut outliered) = (0u64, 0u64, 0u64, 0u64);
    for (idx, line) in lines {
        let lineno = idx + 1;
        let v: serde_json::Value = serde_json::from_str(line)
            .map_err(|e| CliError::Other(format!("line {lineno}: invalid JSON: {e}")))?;
        let kind = v.get("kind").and_then(|k| k.as_str()).unwrap_or("");
        let window = inspect_field(&v, "window", lineno)?;
        last_window = last_window.max(window);
        match kind {
            "birth" | "split" => {
                let lineage = inspect_field(&v, "lineage", lineno)?;
                let parent = match kind {
                    "split" => {
                        splits += 1;
                        Some(inspect_field(&v, "parent", lineno)?)
                    }
                    _ => None,
                };
                timelines.insert(
                    lineage,
                    LineageTimeline {
                        born: window,
                        parent,
                        death: None,
                        sizes: vec![inspect_field(&v, "size", lineno)? as usize],
                        drifts: Vec::new(),
                    },
                );
            }
            "continuation" => {
                let lineage = inspect_field(&v, "lineage", lineno)?;
                let size = inspect_field(&v, "size", lineno)? as usize;
                let drift = v.get("drift").and_then(|d| d.as_f64()).unwrap_or(0.0);
                if let Some(t) = timelines.get_mut(&lineage) {
                    t.sizes.push(size);
                    t.drifts.push(drift);
                }
            }
            "death" => {
                let lineage = inspect_field(&v, "lineage", lineno)?;
                let cause = v
                    .get("cause")
                    .and_then(|c| c.as_str())
                    .unwrap_or("?")
                    .to_owned();
                if let Some(t) = timelines.get_mut(&lineage) {
                    t.death = Some((window, cause));
                }
            }
            "merge" => merges += 1,
            "moved" => moved += 1,
            "outliered" => outliered += 1,
            // Additive schema: unknown kinds are skipped, not an error.
            _ => {}
        }
    }

    let alive = timelines.values().filter(|t| t.death.is_none()).count();
    writeln!(
        out,
        "{}: {} window(s), {} lineages ({} alive), {} splits, {} merges, \
         {} docs moved, {} outliered",
        path,
        last_window + 1,
        timelines.len(),
        alive,
        splits,
        merges,
        moved,
        outliered
    )?;

    // Longest-lived lineages, rendered in birth order.
    let mut ranked: Vec<(&u64, &LineageTimeline)> = timelines.iter().collect();
    ranked.sort_by(|a, b| b.1.lifetime().cmp(&a.1.lifetime()).then(a.0.cmp(b.0)));
    ranked.truncate(top);
    ranked.sort_by_key(|(id, t)| (t.born, **id));
    if ranked.len() < timelines.len() {
        writeln!(
            out,
            "(showing the {} longest-lived of {} lineages — raise with --top)",
            ranked.len(),
            timelines.len()
        )?;
    }
    let drift_ceiling = timelines
        .values()
        .flat_map(|t| t.drifts.iter().copied())
        .fold(0.0f64, f64::max);
    writeln!(
        out,
        "\nlineage   windows          fate              size          trajectory / drift (▁..█ = 0..{drift_ceiling:.3})"
    )?;
    for (id, t) in ranked {
        let fate = match &t.death {
            Some((_, cause)) => cause.clone(),
            None => "alive".to_owned(),
        };
        let origin = match t.parent {
            Some(p) => format!("  (split of #{p})"),
            None => String::new(),
        };
        let first = t.sizes.first().copied().unwrap_or(0);
        let last = t.sizes.last().copied().unwrap_or(0);
        let peak = t.sizes.iter().copied().max().unwrap_or(0) as f64;
        let size_spark = sparkline(&t.sizes.iter().map(|&s| s as f64).collect::<Vec<_>>(), peak);
        let drift_spark = sparkline(&t.drifts, drift_ceiling);
        writeln!(
            out,
            "#{:<8} w{:<3}–w{:<3}        {:<10}        {:>4}→{:<4}     {}  {}{origin}",
            id,
            t.born,
            t.last_window(),
            fate,
            first,
            last,
            size_spark,
            drift_spark
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::ParsedArgs;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("nidc_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn generate_corpus(name: &str) -> String {
        let path = temp_path(name).to_string_lossy().into_owned();
        let args =
            ParsedArgs::parse(["generate", "--out", &path, "--scale", "0.05", "--seed", "3"])
                .unwrap();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        path
    }

    #[test]
    fn generate_then_stats() {
        let path = generate_corpus("g1.jsonl");
        let args = ParsedArgs::parse(["stats", "--input", &path]).unwrap();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("articles"));
        assert!(text.contains("Jan4-Feb2"));
    }

    #[test]
    fn cluster_produces_overview() {
        let path = generate_corpus("g2.jsonl");
        let args = ParsedArgs::parse([
            "cluster", "--input", &path, "--k", "8", "--from", "0", "--to", "30",
        ])
        .unwrap();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("clustered"), "{text}");
        assert!(text.contains("docs"));
    }

    #[test]
    fn cluster_json_mode_is_valid_json() {
        let path = generate_corpus("g3.jsonl");
        let args = ParsedArgs::parse([
            "cluster", "--input", &path, "--k", "6", "--to", "30", "--json",
        ])
        .unwrap();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        let v: serde_json::Value = serde_json::from_slice(&out).unwrap();
        assert!(v["g"].as_f64().is_some());
        assert!(v["assignment"].as_object().is_some());
    }

    #[test]
    fn eval_reports_scores() {
        let path = generate_corpus("g4.jsonl");
        let args =
            ParsedArgs::parse(["eval", "--input", &path, "--window", "1", "--k", "8"]).unwrap();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("micro F1"));
    }

    #[test]
    fn stream_reports_periodically() {
        let path = generate_corpus("g5.jsonl");
        let args =
            ParsedArgs::parse(["stream", "--input", &path, "--every", "30", "--k", "8"]).unwrap();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.lines().count() >= 5, "{text}");
        assert!(text.contains("live docs"));
    }

    #[test]
    fn stream_checkpoint_and_resume() {
        let path = generate_corpus("g8.jsonl");
        let state = temp_path("g8.state.json");
        let _ = std::fs::remove_file(&state);
        let state_s = state.to_string_lossy().into_owned();
        let args = ParsedArgs::parse([
            "stream", "--input", &path, "--every", "60", "--k", "6", "--state", &state_s,
        ])
        .unwrap();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        assert!(state.exists(), "checkpoint file not written");
        // resuming runs cleanly and reports the resume
        let mut out2 = Vec::new();
        run(&args, &mut out2).unwrap();
        let text = String::from_utf8(out2).unwrap();
        assert!(text.contains("resumed from"), "{text}");
    }

    #[test]
    fn stream_with_shards_reports_periodically() {
        let path = generate_corpus("g9.jsonl");
        let args = ParsedArgs::parse([
            "stream", "--input", &path, "--every", "30", "--k", "8", "--shards", "3",
        ])
        .unwrap();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("live docs"), "{text}");
    }

    #[test]
    fn sharded_stream_reports_stitched_clusters() {
        let path = generate_corpus("g12.jsonl");
        let args = ParsedArgs::parse([
            "stream", "--input", &path, "--every", "30", "--k", "8", "--shards", "3",
        ])
        .unwrap();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        // stitching defaults to on for shards > 1
        assert!(text.contains("stitched:"), "{text}");
        assert!(text.contains("merges)"), "{text}");
    }

    #[test]
    fn stitch_off_suppresses_the_stitched_view() {
        let path = generate_corpus("g13.jsonl");
        let args = ParsedArgs::parse([
            "stream", "--input", &path, "--every", "30", "--k", "8", "--shards", "3", "--stitch",
            "off",
        ])
        .unwrap();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(!text.contains("stitched:"), "{text}");
    }

    #[test]
    fn bad_stitch_value_is_usage_error() {
        let path = generate_corpus("g14.jsonl");
        for bad in [
            ["--stitch", "maybe"],
            ["--stitch-threshold", "-1"],
            ["--stitch-threshold", "inf"],
        ] {
            let mut argv = vec!["stream", "--input", &path, "--every", "60"];
            argv.extend(bad);
            let args = ParsedArgs::parse(argv).unwrap();
            let mut out = Vec::new();
            assert!(
                matches!(run(&args, &mut out), Err(CliError::Usage(_))),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn eval_with_shards_reports_merged_stitched_and_per_shard_scores() {
        let path = generate_corpus("g15.jsonl");
        let args = ParsedArgs::parse([
            "eval", "--input", &path, "--window", "1", "--k", "8", "--shards", "3",
        ])
        .unwrap();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("across 3 shards"), "{text}");
        assert!(text.contains("merged   micro F1"), "{text}");
        assert!(text.contains("stitched micro F1"), "{text}");
        assert!(text.contains("shard 0"), "{text}");
        assert!(text.contains("shard 2"), "{text}");
    }

    #[test]
    fn stream_zero_shards_is_usage_error() {
        let path = generate_corpus("g10.jsonl");
        let args =
            ParsedArgs::parse(["stream", "--input", &path, "--every", "60", "--shards", "0"])
                .unwrap();
        let mut out = Vec::new();
        assert!(matches!(run(&args, &mut out), Err(CliError::Usage(_))));
    }

    #[test]
    fn sharded_stream_checkpoint_resumes_with_checkpoint_topology() {
        let path = generate_corpus("g11.jsonl");
        let state = temp_path("g11.state.json");
        let _ = std::fs::remove_file(&state);
        let state_s = state.to_string_lossy().into_owned();
        let args = ParsedArgs::parse([
            "stream", "--input", &path, "--every", "60", "--k", "6", "--shards", "2", "--state",
            &state_s,
        ])
        .unwrap();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        assert!(state.exists(), "checkpoint file not written");
        // resume with a conflicting --shards: the checkpoint topology wins
        let args2 = ParsedArgs::parse([
            "stream", "--input", &path, "--every", "60", "--k", "6", "--shards", "5", "--state",
            &state_s,
        ])
        .unwrap();
        let mut out2 = Vec::new();
        run(&args2, &mut out2).unwrap();
        let text = String::from_utf8(out2).unwrap();
        assert!(text.contains("across 2 shard(s)"), "{text}");
        assert!(text.contains("overrides --shards 5"), "{text}");
    }

    /// One sequential test for the whole `--events`/`inspect` surface: the
    /// event sink is process-global, so two parallel tests opening sessions
    /// would steal each other's stream.
    #[test]
    fn events_export_and_inspect() {
        let path = generate_corpus("g16.jsonl");
        let events = temp_path("g16.events.jsonl");
        let events_s = events.to_string_lossy().into_owned();

        // stream writes a header plus lifecycle events
        let args = ParsedArgs::parse([
            "stream", "--input", &path, "--every", "30", "--k", "8", "--events", &events_s,
        ])
        .unwrap();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        let text = std::fs::read_to_string(&events).unwrap();
        assert!(
            text.lines()
                .next()
                .unwrap()
                .contains("\"schema\":\"nidc-events\""),
            "{text}"
        );
        assert!(text.contains("\"kind\":\"birth\""), "{text}");

        // inspect renders per-lineage timelines from it
        let args = ParsedArgs::parse(["inspect", "--events", &events_s]).unwrap();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        let rendered = String::from_utf8(out).unwrap();
        assert!(rendered.contains("lineages"), "{rendered}");
        assert!(rendered.contains("#0"), "{rendered}");
        assert!(
            rendered.contains('▁') || rendered.contains('█'),
            "no sparkline: {rendered}"
        );

        // a one-shot `cluster --events` is a single window of births
        let once = temp_path("g16.cluster.events.jsonl");
        let once_s = once.to_string_lossy().into_owned();
        let args = ParsedArgs::parse([
            "cluster", "--input", &path, "--k", "8", "--to", "30", "--events", &once_s,
        ])
        .unwrap();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        let text = std::fs::read_to_string(&once).unwrap();
        assert!(text.contains("\"kind\":\"birth\""), "{text}");
        assert!(!text.contains("\"kind\":\"continuation\""), "{text}");

        // inspect refuses a stream without the schema header
        let bad = temp_path("g16.bad.jsonl");
        std::fs::write(&bad, "{\"kind\":\"birth\"}\n").unwrap();
        let bad_s = bad.to_string_lossy().into_owned();
        let args = ParsedArgs::parse(["inspect", "--events", &bad_s]).unwrap();
        let mut out = Vec::new();
        assert!(matches!(run(&args, &mut out), Err(CliError::Other(_))));
    }

    #[test]
    fn missing_input_file_is_io_error() {
        let args = ParsedArgs::parse(["stats", "--input", "/nonexistent/x.jsonl"]).unwrap();
        let mut out = Vec::new();
        assert!(matches!(run(&args, &mut out), Err(CliError::Io(_))));
    }

    #[test]
    fn empty_day_range_is_reported() {
        let path = generate_corpus("g6.jsonl");
        let args = ParsedArgs::parse([
            "cluster", "--input", &path, "--from", "9000", "--to", "9001",
        ])
        .unwrap();
        let mut out = Vec::new();
        assert!(matches!(run(&args, &mut out), Err(CliError::Other(_))));
    }

    #[test]
    fn eval_window_bounds_checked() {
        let path = generate_corpus("g7.jsonl");
        let args = ParsedArgs::parse(["eval", "--input", &path, "--window", "9"]).unwrap();
        let mut out = Vec::new();
        assert!(matches!(run(&args, &mut out), Err(CliError::Usage(_))));
    }
}
