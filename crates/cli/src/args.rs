//! Hand-rolled argument parsing (no external dependency): `--key value`
//! options and `--flag` booleans after a subcommand word.

use std::collections::BTreeMap;

use crate::{CliError, Result};

/// The parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedArgs {
    /// Which subcommand.
    pub command: Command,
    /// `--key value` options.
    options: BTreeMap<String, String>,
    /// bare `--flag`s.
    flags: Vec<String>,
}

/// The `nidc` subcommands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Generate a synthetic corpus.
    Generate,
    /// Print per-window statistics.
    Stats,
    /// Cluster a time range.
    Cluster,
    /// Replay the stream incrementally.
    Stream,
    /// Evaluate a window against labels.
    Eval,
    /// Render per-lineage timelines from an event stream.
    Inspect,
}

impl Command {
    fn parse(word: &str) -> Option<Command> {
        match word {
            "generate" => Some(Command::Generate),
            "stats" => Some(Command::Stats),
            "cluster" => Some(Command::Cluster),
            "stream" => Some(Command::Stream),
            "eval" => Some(Command::Eval),
            "inspect" => Some(Command::Inspect),
            _ => None,
        }
    }
}

/// Options that never take a value.
const BOOLEAN_FLAGS: &[&str] = &["json", "help", "trace-summary", "alloc-stats"];

impl ParsedArgs {
    /// Parses `args` (without the program name).
    pub fn parse<I, S>(args: I) -> Result<ParsedArgs>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut iter = args.into_iter().map(Into::into).peekable();
        let word = iter
            .next()
            .ok_or_else(|| CliError::Usage("missing command".into()))?;
        let command = Command::parse(&word)
            .ok_or_else(|| CliError::Usage(format!("unknown command '{word}'")))?;
        let mut options = BTreeMap::new();
        let mut flags = Vec::new();
        while let Some(tok) = iter.next() {
            let Some(key) = tok.strip_prefix("--") else {
                return Err(CliError::Usage(format!("unexpected argument '{tok}'")));
            };
            if BOOLEAN_FLAGS.contains(&key) {
                flags.push(key.to_owned());
                continue;
            }
            let value = iter
                .next()
                .ok_or_else(|| CliError::Usage(format!("--{key} requires a value")))?;
            options.insert(key.to_owned(), value);
        }
        Ok(ParsedArgs {
            command,
            options,
            flags,
        })
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A required string option.
    pub fn require(&self, key: &str) -> Result<&str> {
        self.get(key)
            .ok_or_else(|| CliError::Usage(format!("--{key} is required")))
    }

    /// A numeric option with a default.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{key}: '{v}' is not a number"))),
        }
    }

    /// An integer option with a default.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{key}: '{v}' is not an integer"))),
        }
    }

    /// A u64 option with a default.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{key}: '{v}' is not an integer"))),
        }
    }

    /// Whether a boolean `--flag` was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_options_and_flags() {
        let a =
            ParsedArgs::parse(["cluster", "--input", "c.jsonl", "--k", "12", "--json"]).unwrap();
        assert_eq!(a.command, Command::Cluster);
        assert_eq!(a.get("input"), Some("c.jsonl"));
        assert_eq!(a.get_usize("k", 24).unwrap(), 12);
        assert!(a.flag("json"));
        assert!(!a.flag("verbose"));
    }

    #[test]
    fn defaults_apply_when_options_absent() {
        let a = ParsedArgs::parse(["cluster", "--input", "x"]).unwrap();
        assert_eq!(a.get_f64("beta", 7.0).unwrap(), 7.0);
        assert_eq!(a.get_u64("seed", 42).unwrap(), 42);
    }

    #[test]
    fn missing_command_is_an_error() {
        assert!(matches!(
            ParsedArgs::parse(Vec::<String>::new()),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(matches!(
            ParsedArgs::parse(["frobnicate"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn option_without_value_is_an_error() {
        assert!(matches!(
            ParsedArgs::parse(["cluster", "--input"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn non_numeric_value_is_an_error() {
        let a = ParsedArgs::parse(["cluster", "--k", "many"]).unwrap();
        assert!(matches!(a.get_usize("k", 1), Err(CliError::Usage(_))));
    }

    #[test]
    fn required_option() {
        let a = ParsedArgs::parse(["stats"]).unwrap();
        assert!(matches!(a.require("input"), Err(CliError::Usage(_))));
    }

    #[test]
    fn stray_positional_is_an_error() {
        assert!(matches!(
            ParsedArgs::parse(["cluster", "positional"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn all_commands_parse() {
        for (w, c) in [
            ("generate", Command::Generate),
            ("stats", Command::Stats),
            ("cluster", Command::Cluster),
            ("stream", Command::Stream),
            ("eval", Command::Eval),
            ("inspect", Command::Inspect),
        ] {
            assert_eq!(ParsedArgs::parse([w]).unwrap().command, c);
        }
    }
}
