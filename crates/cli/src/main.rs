//! The `nidc` binary: parse the command line and dispatch.

use nidc_cli::{commands, CliError, ParsedArgs, USAGE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let parsed = match ParsedArgs::parse(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if let Err(e) = commands::run(&parsed, &mut out) {
        eprintln!("{e}");
        std::process::exit(match e {
            CliError::Usage(_) => 2,
            _ => 1,
        });
    }
}
