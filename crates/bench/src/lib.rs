//! Experiment harness: the glue that runs the paper's experiments end to
//! end (corpus → text processing → forgetting statistics → clustering →
//! evaluation) and the shared code behind every `src/bin/` experiment
//! binary.
//!
//! Every table and figure of the paper has a binary here — see DESIGN.md's
//! experiment index for the mapping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;

use std::time::{Duration, Instant};

use nidc_core::{cluster_batch, Clustering, ClusteringConfig};
use nidc_corpus::{Corpus, Generator, GeneratorConfig, TimeWindow, TopicId};
use nidc_eval::{evaluate, Evaluation, Labeling, MARKING_THRESHOLD};
use nidc_forgetting::{DecayParams, Repository, Timestamp};
use nidc_similarity::DocVectors;
use nidc_textproc::{DocId, Pipeline, SparseVector, Vocabulary};

/// A corpus with every article already tokenised into term-frequency
/// vectors over a shared vocabulary.
pub struct PreparedCorpus {
    /// The article stream.
    pub corpus: Corpus,
    /// The shared vocabulary.
    pub vocab: Vocabulary,
    /// `tfs[i]` is the tf vector of `corpus.articles()[i]`.
    pub tfs: Vec<SparseVector>,
}

impl PreparedCorpus {
    /// Tokenises every article of `corpus` (raw pipeline — the synthetic
    /// language is already normalised).
    pub fn prepare(corpus: Corpus) -> Self {
        let pipeline = Pipeline::raw();
        let mut vocab = Vocabulary::new();
        let tfs = corpus
            .articles()
            .iter()
            .map(|a| pipeline.analyze(&a.text, &mut vocab).to_sparse())
            .collect();
        Self { corpus, vocab, tfs }
    }

    /// Generates and prepares the standard evaluation corpus at `scale`
    /// (1.0 = the paper's 7,578-document subset).
    pub fn standard(scale: f64) -> Self {
        Self::prepare(
            Generator::new(GeneratorConfig {
                scale,
                ..GeneratorConfig::default()
            })
            .generate(),
        )
    }

    /// Ground-truth labels for a set of article indices.
    pub fn labels_for(&self, indices: &[usize]) -> Labeling<u32> {
        indices
            .iter()
            .map(|&i| {
                let a = &self.corpus.articles()[i];
                (DocId(a.id), a.topic.0)
            })
            .collect()
    }

    /// Builds a forgetting-model repository over the given article indices
    /// and advances it to `clock`.
    pub fn build_repository(
        &self,
        indices: &[usize],
        decay: DecayParams,
        clock: Timestamp,
    ) -> Repository {
        let mut repo = Repository::new(decay);
        for &i in indices {
            let a = &self.corpus.articles()[i];
            repo.insert(DocId(a.id), Timestamp(a.day), self.tfs[i].clone())
                .expect("articles are chronological and unique");
        }
        repo.advance_to(clock)
            .expect("clock is at/after last article");
        repo
    }
}

/// The outcome of clustering one time window under one half-life setting.
pub struct WindowRun {
    /// The clustering itself.
    pub clustering: Clustering,
    /// Evaluation against ground truth (marking threshold 0.60).
    pub evaluation: Evaluation<u32>,
    /// Wall-clock time of the statistics build.
    pub stats_time: Duration,
    /// Wall-clock time of the clustering.
    pub cluster_time: Duration,
}

/// Clusters one standard window non-incrementally (the paper's
/// Experiment 2 protocol): statistics and clustering are computed on the
/// window's documents with the repository clock at the window's end.
pub fn run_window(
    prep: &PreparedCorpus,
    window: &TimeWindow,
    beta: f64,
    gamma: f64,
    config: &ClusteringConfig,
) -> WindowRun {
    let decay = DecayParams::from_spans(beta, gamma).expect("valid spans");
    let t0 = Instant::now();
    let repo = prep.build_repository(&window.article_indices, decay, Timestamp(window.end));
    let vecs = DocVectors::build(&repo);
    let stats_time = t0.elapsed();

    let t1 = Instant::now();
    let clustering = cluster_batch(&vecs, config).expect("K ≥ 1");
    let cluster_time = t1.elapsed();

    let labels = prep.labels_for(&window.article_indices);
    let evaluation = evaluate(&clustering.member_lists(), &labels, MARKING_THRESHOLD);
    WindowRun {
        clustering,
        evaluation,
        stats_time,
        cluster_time,
    }
}

/// The topics *visible in a hot-topic overview* of a clustering result: the
/// paper's question "what are recent topics?" is answered by the salient
/// clusters, so a topic counts as hot only if one of its marked clusters
/// ranks within the top `max_rank` clusters by G-term `|C_p|·avg_sim(C_p)`
/// (the weight each cluster contributes to the clustering index G).
///
/// A half-life of 7 days drains the G-term of clusters made of old
/// documents, pushing stale topics out of the overview; a 30-day half-life
/// keeps them in — which is exactly the asymmetry the paper's §6.2.3
/// narrates for "Unabomber" and "Nigerian Protest Violence".
pub fn hot_topics(run: &WindowRun, max_rank: usize) -> Vec<u32> {
    let mut gs: Vec<(usize, f64)> = run
        .clustering
        .clusters()
        .iter()
        .enumerate()
        .map(|(i, c)| (i, c.rep().g_term()))
        .collect();
    gs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let top: std::collections::HashSet<usize> = gs.iter().take(max_rank).map(|&(i, _)| i).collect();
    let mut hot: Vec<u32> = run
        .evaluation
        .clusters
        .iter()
        .filter(|r| top.contains(&r.cluster))
        .filter_map(|r| r.marked_topic)
        .collect();
    hot.sort_unstable();
    hot.dedup();
    hot
}

/// Formats a topic id with its name for display.
pub fn topic_label(corpus: &Corpus, id: u32) -> String {
    match corpus.topic_name(TopicId(id)) {
        Some(name) => format!("{id} \"{name}\""),
        None => id.to_string(),
    }
}

/// Pretty-prints a `Duration` as `MmSS.Ss` like the paper's tables.
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    let mins = (secs / 60.0).floor() as u64;
    format!("{mins}min{:05.2}sec", secs - mins as f64 * 60.0)
}

/// Scale factor from the environment (`NIDC_SCALE`), defaulting to `full`.
pub fn scale_from_env(full: f64) -> f64 {
    std::env::var("NIDC_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(full)
}

/// The `--json <path>` argument of an experiment binary, if given.
///
/// Experiment binaries stay human-readable on stdout by default; with
/// `--json` they additionally write their numbers in the shared BENCH
/// schema (see [`write_bench_json`]) so the perf trajectory is
/// machine-trackable across PRs.
pub fn json_out_path() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--json" {
            return args.next().map(std::path::PathBuf::from);
        }
    }
    None
}

/// The one `--json` writer shared by every experiment binary: resolves the
/// output path (`--json <path>` override, else `default_path`, conventionally
/// under `results/`) and writes the BENCH JSON there, announcing the file on
/// stdout. Returns the path written, or `None` when neither an override nor
/// a default was given — binaries without a default stay silent unless
/// `--json` opts in.
pub fn write_json_report(
    name: &str,
    default_path: Option<&str>,
    payload: serde_json::Value,
) -> Option<std::path::PathBuf> {
    let path = json_out_path().or_else(|| default_path.map(std::path::PathBuf::from))?;
    match write_bench_json(&path, name, payload) {
        Ok(()) => println!("BENCH json written to {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    Some(path)
}

/// The `--metrics <path>` / `--metrics-format jsonl|prom` arguments of an
/// experiment binary, as a ready [`nidc_obs::MetricsExporter`] (creating it
/// enables global metric recording). `None` without `--metrics`.
pub fn metrics_from_args() -> Option<nidc_obs::MetricsExporter> {
    let mut path: Option<String> = None;
    let mut format = nidc_obs::MetricsFormat::default();
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--metrics" => path = args.next(),
            "--metrics-format" => {
                let f = args.next().expect("--metrics-format requires a value");
                format = f.parse().expect("--metrics-format");
            }
            _ => {}
        }
    }
    let exporter =
        nidc_obs::MetricsExporter::create(path?, format).expect("create metrics export file");
    Some(exporter)
}

/// The `--events <path>` argument of an experiment binary, as a ready
/// [`nidc_obs::EventSession`] (creating it enables global lifecycle-event
/// recording). `None` without `--events` — event emission then costs one
/// relaxed load per window. Callers must hand the session to
/// [`nidc_obs::EventSession::finish`] when their measured work is done.
pub fn events_from_args() -> Option<nidc_obs::EventSession> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--events" {
            let path = args.next().expect("--events requires a path");
            let session = nidc_obs::EventSession::create(path).expect("create events export file");
            return Some(session);
        }
    }
    None
}

/// The `--trace <path>` / `--trace-summary` arguments of an experiment
/// binary, as a started [`nidc_obs::TraceSession`] recording spans for the
/// rest of the run. `None` when neither was given — spans then cost one
/// relaxed load each. Callers must hand the session to
/// [`nidc_obs::TraceSession::finish`] when their measured work is done.
pub fn trace_from_args() -> Option<nidc_obs::TraceSession> {
    let mut path: Option<std::path::PathBuf> = None;
    let mut summary = false;
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace" => path = args.next().map(std::path::PathBuf::from),
            "--trace-summary" => summary = true,
            _ => {}
        }
    }
    nidc_obs::TraceSession::start(path, summary).expect("create trace output file")
}

/// The `--alloc-stats` flag of an experiment binary: enables the counting
/// allocator for the rest of the run (so spans recorded via
/// [`trace_from_args`] carry per-span allocs/bytes attribution) and returns
/// whether it was requested. Callers should print
/// [`nidc_obs::alloc::stats`] when their measured work is done.
pub fn alloc_tracking_from_args() -> bool {
    let on = std::env::args().any(|a| a == "--alloc-stats");
    if on {
        nidc_obs::alloc::set_tracking(true);
    }
    on
}

/// Writes a BENCH JSON file: `{ "bench": name, "host": {...}, ...payload }`.
///
/// The host block records the hardware parallelism the numbers were taken
/// on, so a "no speedup" result on a single-core machine is not mistaken
/// for a regression.
pub fn write_bench_json(
    path: &std::path::Path,
    name: &str,
    payload: serde_json::Value,
) -> std::io::Result<()> {
    let mut doc = serde_json::json!({
        "bench": name,
        "host": {
            "available_parallelism": nidc_parallel::available_threads(),
        },
    });
    if let (serde_json::Value::Object(doc), serde_json::Value::Object(extra)) = (&mut doc, payload)
    {
        doc.extend(extra);
    }
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, serde_json::to_string_pretty(&doc)? + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_small_corpus_and_run_window() {
        let prep = PreparedCorpus::standard(0.05);
        let windows = prep.corpus.standard_windows();
        assert_eq!(prep.tfs.len(), prep.corpus.len());
        let config = ClusteringConfig {
            k: 8,
            seed: 5,
            ..ClusteringConfig::default()
        };
        let run = run_window(&prep, &windows[0], 30.0, 30.0, &config);
        assert!(run.clustering.non_empty_clusters() > 0);
        assert!(run.evaluation.micro_f1 >= 0.0);
        // all window docs either clustered or outliers
        assert_eq!(
            run.clustering.assigned_docs() + run.clustering.outliers().len(),
            windows[0].len()
        );
    }

    #[test]
    fn fmt_duration_matches_paper_style() {
        assert_eq!(fmt_duration(Duration::from_secs(85)), "1min25.00sec");
        assert_eq!(fmt_duration(Duration::from_millis(1500)), "0min01.50sec");
    }

    #[test]
    fn labels_cover_requested_indices() {
        let prep = PreparedCorpus::standard(0.02);
        let idx: Vec<usize> = (0..prep.corpus.len().min(10)).collect();
        let labels = prep.labels_for(&idx);
        assert_eq!(labels.len(), idx.len());
    }
}
