//! Diffing two BENCH JSON reports: the library behind the `bench_compare`
//! binary and the CI `bench-baseline` job.
//!
//! Both reports are flattened to `path → value` maps (dotted keys; array
//! elements keyed by their `"name"` field when they have one, by index
//! otherwise; the `host` block and the `bench` tag are skipped — hardware
//! identity is context, not a metric). Each shared numeric path gets a
//! relative delta `(new − old) / |old|` and a direction inferred from its
//! suffix, and counts as a **regression** when it moved against its
//! direction by more than the configured threshold. Paths whose suffix
//! implies no direction (`docs`, `k`, `rounds`, …) are reported as
//! informational and never regress.

use std::collections::BTreeMap;
use std::fmt;

/// Which way a metric is supposed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Timings, byte counts: growth is a regression.
    LowerIsBetter,
    /// Throughputs, speedups, scores: shrinkage is a regression.
    HigherIsBetter,
    /// Shape descriptors (document counts, K, rounds): never a regression.
    Informational,
}

/// Infers a metric's direction from its path suffix — the BENCH schema
/// encodes units in field names, so the suffix is the unit.
///
/// `_rate` suffixes are judged by which rate it is: churn and outlier rates
/// measure instability, so growth is a regression; cohesion and separation
/// are quality scores, so shrinkage is; rates that merely describe the
/// stream's shape (novelty rate — how many documents are new is a property
/// of the input, not of the clustering) stay informational.
pub fn direction_of(path: &str) -> Direction {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    const LOWER: &[&str] = &[
        "_ms",
        "_seconds",
        "_ns",
        "_bytes",
        "_allocs",
        "_count",
        "churn_rate",
        "outlier_rate",
    ];
    const HIGHER: &[&str] = &[
        "_per_sec",
        "_speedup",
        "_reduction",
        "_f1",
        "_purity",
        "cohesion",
        "separation",
        "_stability",
    ];
    if LOWER.iter().any(|s| leaf.ends_with(s)) {
        return Direction::LowerIsBetter;
    }
    if HIGHER.iter().any(|s| leaf.ends_with(s)) || leaf == "speedup" || leaf == "purity" {
        return Direction::HigherIsBetter;
    }
    Direction::Informational
}

/// One metric present in both reports.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Dotted path of the metric (e.g. `results.k8.index_sweep_ms`).
    pub path: String,
    /// Value in the old (baseline) report.
    pub old: f64,
    /// Value in the new (candidate) report.
    pub new: f64,
    /// `(new − old) / |old|`; `0.0` when both are zero, `±inf` when only
    /// the old value is zero.
    pub rel_delta: f64,
    /// The inferred direction.
    pub direction: Direction,
    /// Whether this metric breached the threshold against its direction.
    pub regressed: bool,
}

/// The full diff of two BENCH reports.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Per-metric deltas for every numeric path present in both reports,
    /// in path order.
    pub deltas: Vec<MetricDelta>,
    /// Numeric paths only the baseline has (metric dropped).
    pub only_old: Vec<String>,
    /// Numeric paths only the candidate has (metric added).
    pub only_new: Vec<String>,
    /// The relative-change threshold regressions were judged against.
    pub threshold: f64,
}

impl Comparison {
    /// The regressed subset of [`Comparison::deltas`].
    pub fn regressions(&self) -> Vec<&MetricDelta> {
        self.deltas.iter().filter(|d| d.regressed).collect()
    }

    /// Whether any directional metric breached the threshold.
    pub fn has_regressions(&self) -> bool {
        self.deltas.iter().any(|d| d.regressed)
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<44} {:>14} {:>14} {:>9}  verdict",
            "metric", "old", "new", "delta"
        )?;
        for d in &self.deltas {
            let verdict = match (d.direction, d.regressed) {
                (Direction::Informational, _) => "info",
                (_, true) => "REGRESSED",
                (_, false) => "ok",
            };
            writeln!(
                f,
                "{:<44} {:>14.6} {:>14.6} {:>+8.1}%  {verdict}",
                d.path,
                d.old,
                d.new,
                d.rel_delta * 100.0
            )?;
        }
        for p in &self.only_old {
            writeln!(f, "{p:<44} only in baseline")?;
        }
        for p in &self.only_new {
            writeln!(f, "{p:<44} only in candidate")?;
        }
        let n = self.regressions().len();
        writeln!(
            f,
            "{n} regression(s) at threshold {:.0}%",
            self.threshold * 100.0
        )
    }
}

/// Flattens a BENCH JSON document to `dotted path → numeric value`.
///
/// The `bench` tag and the `host` block are skipped. Array elements are
/// keyed by their `"name"` field when it is a string (so reordered result
/// lists still line up), by index otherwise.
pub fn flatten(doc: &serde_json::Value) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    if let Some(map) = doc.as_object() {
        for (k, v) in map {
            if k == "bench" || k == "host" {
                continue;
            }
            flatten_into(v, k.clone(), &mut out);
        }
    }
    out
}

fn flatten_into(v: &serde_json::Value, path: String, out: &mut BTreeMap<String, f64>) {
    match v {
        serde_json::Value::Number(n) => {
            out.insert(path, n.as_f64());
        }
        serde_json::Value::Object(map) => {
            for (k, child) in map {
                flatten_into(child, format!("{path}.{k}"), out);
            }
        }
        serde_json::Value::Array(items) => {
            for (i, child) in items.iter().enumerate() {
                let key = child
                    .get("name")
                    .and_then(|n| n.as_str())
                    .map(str::to_owned)
                    .unwrap_or_else(|| i.to_string());
                flatten_into(child, format!("{path}.{key}"), out);
            }
        }
        _ => {}
    }
}

/// Diffs two flattened-able BENCH documents at `threshold` (relative
/// change, e.g. `0.10` = 10%).
pub fn compare(old: &serde_json::Value, new: &serde_json::Value, threshold: f64) -> Comparison {
    let old = flatten(old);
    let new = flatten(new);
    let mut deltas = Vec::new();
    let mut only_old = Vec::new();
    let mut only_new: Vec<String> = new
        .keys()
        .filter(|k| !old.contains_key(*k))
        .cloned()
        .collect();
    only_new.sort();
    for (path, &o) in &old {
        let Some(&n) = new.get(path) else {
            only_old.push(path.clone());
            continue;
        };
        let rel_delta = if o == n {
            0.0
        } else if o == 0.0 {
            f64::INFINITY.copysign(n)
        } else {
            (n - o) / o.abs()
        };
        let direction = direction_of(path);
        let regressed = match direction {
            Direction::LowerIsBetter => rel_delta > threshold,
            Direction::HigherIsBetter => rel_delta < -threshold,
            Direction::Informational => false,
        };
        deltas.push(MetricDelta {
            path: path.clone(),
            old: o,
            new: n,
            rel_delta,
            direction,
            regressed,
        });
    }
    Comparison {
        deltas,
        only_old,
        only_new,
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn report(sweep_ms: f64, speedup: f64) -> serde_json::Value {
        json!({
            "bench": "step1_sweep",
            "host": {"available_parallelism": 64},
            "scale": 1.0,
            "results": [
                {"name": "k8", "docs": 7579, "index_sweep_ms": sweep_ms,
                 "sweep_speedup": speedup}
            ]
        })
    }

    #[test]
    fn flatten_keys_by_name_and_skips_host() {
        let flat = flatten(&report(48.0, 1.2));
        assert_eq!(flat.get("results.k8.index_sweep_ms"), Some(&48.0));
        assert_eq!(flat.get("results.k8.docs"), Some(&7579.0));
        assert_eq!(flat.get("scale"), Some(&1.0));
        assert!(!flat.keys().any(|k| k.contains("host")));
        assert!(!flat.contains_key("bench"));
    }

    #[test]
    fn identical_reports_have_no_regressions() {
        let a = report(48.0, 1.2);
        let c = compare(&a, &a, 0.10);
        assert!(!c.has_regressions());
        assert!(c.only_old.is_empty() && c.only_new.is_empty());
        assert!(c.deltas.iter().all(|d| d.rel_delta == 0.0));
    }

    #[test]
    fn slower_timing_regresses_and_faster_does_not() {
        let base = report(100.0, 1.2);
        let slower = compare(&base, &report(115.0, 1.2), 0.10);
        assert!(slower.has_regressions());
        assert_eq!(slower.regressions()[0].path, "results.k8.index_sweep_ms");
        let faster = compare(&base, &report(50.0, 1.2), 0.10);
        assert!(!faster.has_regressions());
        let within = compare(&base, &report(105.0, 1.2), 0.10);
        assert!(!within.has_regressions(), "5% < 10% threshold");
    }

    #[test]
    fn dropped_speedup_regresses() {
        let c = compare(&report(100.0, 2.0), &report(100.0, 1.0), 0.10);
        assert!(c.has_regressions());
        assert_eq!(c.regressions()[0].path, "results.k8.sweep_speedup");
        assert_eq!(c.regressions()[0].direction, Direction::HigherIsBetter);
    }

    #[test]
    fn informational_fields_never_regress() {
        // docs collapsed and scale halved: shape descriptors, info only
        let old = json!({"scale": 1.0, "docs": 7579.0, "a_ms": 100.0});
        let new = json!({"scale": 0.5, "docs": 1.0, "a_ms": 100.0});
        let c = compare(&old, &new, 0.10);
        assert!(!c.has_regressions());
        assert_eq!(c.deltas.len(), 3);
    }

    #[test]
    fn added_and_dropped_metrics_are_listed_not_regressed() {
        let old = json!({"a_ms": 1.0, "gone_ms": 2.0});
        let new = json!({"a_ms": 1.0, "fresh_ms": 3.0});
        let c = compare(&old, &new, 0.10);
        assert_eq!(c.only_old, vec!["gone_ms".to_string()]);
        assert_eq!(c.only_new, vec!["fresh_ms".to_string()]);
        assert!(!c.has_regressions());
    }

    #[test]
    fn display_marks_regressions() {
        let c = compare(&report(100.0, 1.2), &report(150.0, 1.2), 0.10);
        let text = c.to_string();
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("1 regression(s) at threshold 10%"), "{text}");
    }

    #[test]
    fn direction_suffixes() {
        assert_eq!(direction_of("x.wall_ms"), Direction::LowerIsBetter);
        assert_eq!(direction_of("x.rep_bytes"), Direction::LowerIsBetter);
        assert_eq!(direction_of("x.ingest_allocs"), Direction::LowerIsBetter);
        assert_eq!(direction_of("x.spill_count"), Direction::LowerIsBetter);
        assert_eq!(direction_of("x.docs_per_sec"), Direction::HigherIsBetter);
        assert_eq!(direction_of("x.speedup"), Direction::HigherIsBetter);
        assert_eq!(direction_of("x.micro_f1"), Direction::HigherIsBetter);
        // lifecycle/quality leaves from BENCH_quality.json: instability
        // rates go down, cluster quality goes up, stream shape is info only
        assert_eq!(direction_of("x.mean_churn_rate"), Direction::LowerIsBetter);
        assert_eq!(
            direction_of("x.mean_outlier_rate"),
            Direction::LowerIsBetter
        );
        assert_eq!(direction_of("x.final_cohesion"), Direction::HigherIsBetter);
        assert_eq!(
            direction_of("x.final_separation"),
            Direction::HigherIsBetter
        );
        assert_eq!(direction_of("x.mean_stability"), Direction::HigherIsBetter);
        assert_eq!(direction_of("x.purity"), Direction::HigherIsBetter);
        assert_eq!(direction_of("x.novelty_rate"), Direction::Informational);
        assert_eq!(direction_of("x.mean_drift_max"), Direction::Informational);
        assert_eq!(direction_of("x.docs"), Direction::Informational);
    }

    #[test]
    fn alloc_growth_regresses_and_shrinkage_does_not() {
        let old = json!({"phases": [{"name": "ingest", "ingest_allocs": 1000.0,
                                     "peak_live_bytes": 4096.0}]});
        let grown = json!({"phases": [{"name": "ingest", "ingest_allocs": 1200.0,
                                       "peak_live_bytes": 4096.0}]});
        let c = compare(&old, &grown, 0.10);
        assert!(c.has_regressions());
        assert_eq!(c.regressions()[0].path, "phases.ingest.ingest_allocs");
        let shrunk = json!({"phases": [{"name": "ingest", "ingest_allocs": 500.0,
                                        "peak_live_bytes": 2048.0}]});
        assert!(!compare(&old, &shrunk, 0.10).has_regressions());
    }

    #[test]
    fn mixed_direction_report_judges_each_suffix_independently() {
        // Allocs shrink (good), bytes grow past threshold (bad), throughput
        // grows (good), docs change (info): exactly one regression.
        let old = json!({"r": {"step_allocs": 1000.0, "peak_live_bytes": 1000.0,
                               "docs_per_sec": 50.0, "docs": 100.0}});
        let new = json!({"r": {"step_allocs": 100.0, "peak_live_bytes": 2000.0,
                               "docs_per_sec": 80.0, "docs": 700.0}});
        let c = compare(&old, &new, 0.10);
        let regs = c.regressions();
        assert_eq!(regs.len(), 1, "{c}");
        assert_eq!(regs[0].path, "r.peak_live_bytes");
        assert_eq!(regs[0].direction, Direction::LowerIsBetter);
    }
}
