//! **Ablations** — design choices the paper leaves open, measured:
//!
//! 1. **Assignment criterion** (DESIGN.md §4): the literal avg_sim increase
//!    vs the G-term increase.
//! 2. **Incremental vs non-incremental result quality** — the paper's own
//!    open question ("whether the incremental approach can provide similar
//!    clustering quality … we will investigate this issue in future work").
//! 3. **K sweep** — the paper's future work ("a method to estimate the
//!    appropriate K value").
//! 4. **Outlier handling** — share of documents landing in the outlier list
//!    per β (the mechanism behind novelty bias).
//! 5. **Baselines** — cosine K-means, INCR and GAC on the same windows.
//! 6. **Cover-coefficient K estimate** per window.
//! 7. **Window size × half-life** — the paper's future work ("experiments
//!    using the small and large forgetting factor values on larger time
//!    window size").
//! 8. **Exponential vs linear decay update cost** — the §5.1 argument that
//!    the O(1)-per-document incremental update "is due to the selection of
//!    the exponential forgetting factor", measured against a linear-window
//!    counterfactual (INCR's weight family, §2.2).
//!
//! Reduced corpus scale by default (`NIDC_SCALE`, default 0.5) to keep the
//! sweep quick.

use nidc_baselines::{gac, incr, kmeans, GacConfig, IncrConfig, KMeansConfig};
use nidc_bench::{run_window, scale_from_env, PreparedCorpus};
use nidc_core::{ClusteringConfig, Criterion, NoveltyPipeline};
use nidc_eval::{evaluate, nmi, purity, MARKING_THRESHOLD};
use nidc_forgetting::{DecayParams, Timestamp};
use nidc_textproc::{DocId, SparseVector};

fn main() {
    let scale = scale_from_env(0.5);
    let prep = PreparedCorpus::standard(scale);
    let windows = prep.corpus.standard_windows();
    let w = &windows[3]; // Apr4–May3, the paper's showcase window
    let labels = prep.labels_for(&w.article_indices);

    // ---- 1. assignment criterion --------------------------------------
    println!("## Ablation 1: assignment criterion (window 4, beta=7)");
    for criterion in [Criterion::GTerm, Criterion::AvgSim] {
        let config = ClusteringConfig {
            k: 24,
            seed: 22,
            criterion,
            ..ClusteringConfig::default()
        };
        let run = run_window(&prep, w, 7.0, 30.0, &config);
        println!(
            "  {:?}: micro F1 {:.2}, macro F1 {:.2}, outliers {}, iterations {}",
            criterion,
            run.evaluation.micro_f1,
            run.evaluation.macro_f1,
            run.clustering.outliers().len(),
            run.clustering.iterations()
        );
    }

    // ---- 2. incremental vs non-incremental quality --------------------
    println!("\n## Ablation 2: incremental vs non-incremental clustering quality");
    println!("(stream window 4 day by day; compare final clustering against a batch run)");
    let decay = DecayParams::from_spans(7.0, 30.0).unwrap();
    let config = ClusteringConfig {
        k: 24,
        seed: 22,
        ..ClusteringConfig::default()
    };
    let mut pipe = NoveltyPipeline::new(decay, config.clone());
    let mut day_batch: Vec<(DocId, SparseVector)> = Vec::new();
    let mut current_day = f64::NEG_INFINITY;
    let mut last = None;
    for &i in &w.article_indices {
        let a = &prep.corpus.articles()[i];
        if a.day.floor() > current_day && !day_batch.is_empty() {
            pipe.ingest_batch(Timestamp(current_day + 1.0), day_batch.drain(..))
                .unwrap();
            // recluster every 5 days (a "news program" cadence)
            if (current_day as i64) % 5 == 4 {
                last = Some(pipe.recluster_incremental().unwrap());
            }
        }
        current_day = a.day.floor();
        day_batch.push((DocId(a.id), prep.tfs[i].clone()));
    }
    pipe.ingest_batch(Timestamp(w.end), day_batch.drain(..))
        .unwrap();
    pipe.advance_to(Timestamp(w.end)).unwrap();
    let incremental = pipe.recluster_incremental().unwrap();
    let _ = last;
    let batch_run = run_window(&prep, w, 7.0, 30.0, &config);
    let e_inc = evaluate(&incremental.member_lists(), &labels, MARKING_THRESHOLD);
    let e_bat = &batch_run.evaluation;
    println!(
        "  incremental:     micro F1 {:.2}, macro F1 {:.2}, purity {:.2}, NMI(vs labels) {:.2}, iterations(final) {}",
        e_inc.micro_f1,
        e_inc.macro_f1,
        purity(&incremental.member_lists(), &labels),
        nmi(&incremental.member_lists(), &labels),
        incremental.iterations()
    );
    println!(
        "  non-incremental: micro F1 {:.2}, macro F1 {:.2}, purity {:.2}, NMI(vs labels) {:.2}, iterations {}",
        e_bat.micro_f1,
        e_bat.macro_f1,
        purity(&batch_run.clustering.member_lists(), &labels),
        nmi(&batch_run.clustering.member_lists(), &labels),
        batch_run.clustering.iterations()
    );

    // ---- 3. K sweep -----------------------------------------------------
    println!("\n## Ablation 3: K sweep (window 4, beta=7)");
    for k in [8, 16, 24, 32, 48] {
        let config = ClusteringConfig {
            k,
            seed: 22,
            ..ClusteringConfig::default()
        };
        let run = run_window(&prep, w, 7.0, 30.0, &config);
        println!(
            "  K={k:>2}: micro F1 {:.2}, macro F1 {:.2}, detected topics {}, outliers {}",
            run.evaluation.micro_f1,
            run.evaluation.macro_f1,
            run.evaluation.detected_topics.len(),
            run.clustering.outliers().len()
        );
    }

    // ---- 4. outlier share per beta ---------------------------------------
    println!("\n## Ablation 4: outlier share per half-life (window 4)");
    for beta in [3.5, 7.0, 14.0, 30.0, 60.0] {
        let config = ClusteringConfig {
            k: 24,
            seed: 22,
            ..ClusteringConfig::default()
        };
        let run = run_window(&prep, w, beta, 60.0, &config);
        let share = run.clustering.outliers().len() as f64 / w.len() as f64;
        println!(
            "  beta={beta:>4}: outliers {:>4} ({:>4.1}%), micro F1 {:.2}",
            run.clustering.outliers().len(),
            share * 100.0,
            run.evaluation.micro_f1
        );
    }

    // ---- 5. baselines ---------------------------------------------------
    println!("\n## Ablation 5: baselines on window 4 (cosine tf vectors)");
    let docs: Vec<(DocId, SparseVector)> = w
        .article_indices
        .iter()
        .map(|&i| (DocId(prep.corpus.articles()[i].id), prep.tfs[i].clone()))
        .collect();
    let docs_t: Vec<(DocId, f64, SparseVector)> = w
        .article_indices
        .iter()
        .map(|&i| {
            let a = &prep.corpus.articles()[i];
            (DocId(a.id), a.day, prep.tfs[i].clone())
        })
        .collect();

    let km = kmeans(
        &docs,
        &KMeansConfig {
            k: 24,
            seed: 22,
            ..KMeansConfig::default()
        },
    );
    let e = evaluate(&km.clusters, &labels, MARKING_THRESHOLD);
    println!(
        "  cosine K-means : micro F1 {:.2}, macro F1 {:.2}, purity {:.2}",
        e.micro_f1,
        e.macro_f1,
        purity(&km.clusters, &labels)
    );

    let ic = incr(
        &docs_t,
        &IncrConfig {
            threshold: 0.45,
            window_days: None,
            max_clusters: 0,
        },
    );
    let e = evaluate(&ic, &labels, MARKING_THRESHOLD);
    println!(
        "  INCR           : micro F1 {:.2}, macro F1 {:.2}, purity {:.2}, clusters {}",
        e.micro_f1,
        e.macro_f1,
        purity(&ic, &labels),
        ic.len()
    );

    let gc = gac(
        &docs,
        &GacConfig {
            target_clusters: 24,
            bucket_size: 64,
            reduction: 0.5,
            ..GacConfig::default()
        },
    );
    let e = evaluate(&gc, &labels, MARKING_THRESHOLD);
    println!(
        "  GAC            : micro F1 {:.2}, macro F1 {:.2}, purity {:.2}",
        e.micro_f1,
        e.macro_f1,
        purity(&gc, &labels)
    );
    let nov = run_window(&prep, w, 7.0, 30.0, &config);
    println!(
        "  novelty (b=7)  : micro F1 {:.2}, macro F1 {:.2}, purity {:.2}",
        nov.evaluation.micro_f1,
        nov.evaluation.macro_f1,
        purity(&nov.clustering.member_lists(), &labels)
    );

    // F²ICM — the paper's predecessor method, same forgetting model
    let decay = DecayParams::from_spans(7.0, 30.0).unwrap();
    let repo = prep.build_repository(&w.article_indices, decay, Timestamp(w.end));
    let mut f2 = nidc_f2icm::F2icm::new(nidc_f2icm::F2icmConfig {
        k: Some(24),
        ..nidc_f2icm::F2icmConfig::default()
    });
    let f2c = f2.cluster(&repo).expect("non-empty window");
    let e = evaluate(&f2c.member_lists(), &labels, MARKING_THRESHOLD);
    println!(
        "  F2ICM (b=7)    : micro F1 {:.2}, macro F1 {:.2}, purity {:.2}, ragbag {}",
        e.micro_f1,
        e.macro_f1,
        purity(&f2c.member_lists(), &labels),
        f2c.ragbag().len()
    );

    // ---- 6. C²ICM cluster-count estimate vs Table 2 topic counts ----------
    println!("\n## Ablation 6: cover-coefficient K estimate per window (paper future work)");
    for win in &windows {
        let repo = prep.build_repository(
            &win.article_indices,
            DecayParams::from_spans(30.0, 60.0).unwrap(),
            Timestamp(win.end),
        );
        let n_c = nidc_f2icm::cover::estimate_num_clusters(&repo);
        let stats = prep.corpus.window_stats(win);
        println!(
            "  {}: n_c estimate {:>6.1} vs {} ground-truth topics ({} docs)",
            win.label, n_c, stats.num_topics, stats.num_docs
        );
    }

    // ---- 7. window size × half-life (paper future work) -------------------
    println!("\n## Ablation 7: larger time windows (60/90 days) x half-life");
    for (label, start, end) in [
        ("30-day (w4)", 90.0, 120.0),
        ("60-day (w4+w5)", 90.0, 150.0),
        ("90-day (w4..w6)", 90.0, 178.0),
    ] {
        for beta in [7.0, 30.0, 60.0] {
            let indices: Vec<usize> = prep
                .corpus
                .articles()
                .iter()
                .enumerate()
                .filter(|(_, a)| a.day >= start && a.day < end)
                .map(|(i, _)| i)
                .collect();
            let window_labels: nidc_eval::Labeling<u32> = prep.labels_for(&indices);
            let decay = DecayParams::from_spans(beta, end - start).unwrap();
            let repo = prep.build_repository(&indices, decay, Timestamp(end));
            let vecs = nidc_similarity::DocVectors::build(&repo);
            let cfg = ClusteringConfig {
                k: 24,
                seed: 22,
                ..ClusteringConfig::default()
            };
            let clustering = nidc_core::cluster_batch(&vecs, &cfg).unwrap();
            let e = evaluate(
                &clustering.member_lists(),
                &window_labels,
                MARKING_THRESHOLD,
            );
            println!(
                "  {label:<16} beta={beta:>4}: micro F1 {:.2}, macro F1 {:.2}, outliers {:>4} ({:>4.1}%), detected {}",
                e.micro_f1,
                e.macro_f1,
                clustering.outliers().len(),
                100.0 * clustering.outliers().len() as f64 / indices.len() as f64,
                e.detected_topics.len()
            );
        }
    }

    // ---- 8. exponential vs linear decay: statistics update cost -----------
    println!("\n## Ablation 8: statistics-update cost, exponential vs linear decay");
    println!("(daily updates over a growing stream; exponential uses the eq. 27 shortcut,");
    println!(" linear must recompute every statistic — the paper's §5.1 design argument)");
    let stream: Vec<(DocId, f64, SparseVector)> = prep
        .corpus
        .articles()
        .iter()
        .zip(&prep.tfs)
        .filter(|(a, _)| a.day < 30.0)
        .map(|(a, tf)| (DocId(a.id), a.day, tf.clone()))
        .collect();
    use std::time::Instant;
    // interleave chronologically: each day's documents, then the end-of-day
    // statistics update (the repeated cost under comparison)
    let t0 = Instant::now();
    let mut exp_repo =
        nidc_forgetting::Repository::new(DecayParams::from_spans(7.0, 14.0).unwrap());
    for day in 0..30 {
        for (id, d, tf) in stream.iter().filter(|(_, d, _)| d.floor() as i64 == day) {
            exp_repo.insert(*id, Timestamp(*d), tf.clone()).unwrap();
        }
        exp_repo.advance_to(Timestamp(day as f64 + 0.999)).unwrap();
        exp_repo.expire();
    }
    let exp_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let mut lin_repo = nidc_forgetting::LinearRepository::new(14.0).unwrap();
    for day in 0..30 {
        for (id, d, tf) in stream.iter().filter(|(_, d, _)| d.floor() as i64 == day) {
            lin_repo.insert(*id, Timestamp(*d), tf.clone()).unwrap();
        }
        lin_repo.advance_to(Timestamp(day as f64 + 0.999)).unwrap();
    }
    let lin_ms = t1.elapsed().as_secs_f64() * 1e3;
    println!(
        "  exponential (incremental): {exp_ms:>8.1} ms for {} docs + 30 daily updates",
        stream.len()
    );
    println!(
        "  linear (full recompute):   {lin_ms:>8.1} ms  ({:.1}x slower)",
        lin_ms / exp_ms.max(1e-9)
    );
}
