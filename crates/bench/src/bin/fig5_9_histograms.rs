//! **Figures 5–9 (paper §6.2.3)** — daily document histograms of the five
//! narrative topics:
//!
//! * Figure 5: 20074 "Nigerian Protest Violence" — scattered, denser in
//!   windows 4 and 6 (late in w4, early in w6);
//! * Figure 6: 20077 "Unabomber" — burst in the first half of window 1,
//!   quiet, re-emergence late in window 4;
//! * Figure 7: 20078 "Denmark Strike" — late window 4 + early window 5 only;
//! * Figure 8: 20001 "Asian Economic Crisis" — large, heaviest in w1–w2,
//!   declining tail;
//! * Figure 9: 20002 "Monica Lewinsky Case" — large, sustained with early
//!   peak.

use nidc_bench::{scale_from_env, PreparedCorpus};
use nidc_corpus::TopicId;

fn main() {
    let prep = PreparedCorpus::standard(scale_from_env(1.0));
    let corpus = &prep.corpus;
    let figures = [
        (5, 20074u32),
        (6, 20077),
        (7, 20078),
        (8, 20001),
        (9, 20002),
    ];
    for (fig, topic) in figures {
        let name = corpus.topic_name(TopicId(topic)).unwrap_or("?");
        let hist = corpus.topic_histogram(TopicId(topic), 1.0);
        let total: usize = hist.iter().map(|&(_, n)| n).sum();
        let max = hist.iter().map(|&(_, n)| n).max().unwrap_or(1).max(1);
        println!("\nFigure {fig}: topic {topic} \"{name}\" ({total} docs; histogram by day; | = window boundary)");
        // one row per 2-day bin to keep the plot narrow; column = count bar
        for chunk in hist.chunks(2) {
            let day = chunk[0].0;
            let n: usize = chunk.iter().map(|&(_, c)| c).sum();
            let boundary = [30.0, 60.0, 90.0, 120.0, 150.0]
                .iter()
                .any(|b| (day - b).abs() < 1.0);
            if n == 0 && !boundary {
                continue;
            }
            let bar_len = (n as f64 / max as f64 * 40.0).ceil() as usize;
            println!(
                "  day {:>3}{} {:>3} {}",
                day as u32,
                if boundary { "|" } else { " " },
                n,
                "#".repeat(bar_len)
            );
        }
    }
}
