//! **Parallel hot-path benchmark** — sequential vs threaded wall-clock for
//! the three batch-heavy paths behind `nidc-parallel`: the GAC baseline's
//! pairwise-similarity agglomeration, the φ-vector (`DocVectors`) build, and
//! the from-scratch statistics rebuild. Run on a generated ≈2k-document
//! window with K-means-scale parameters.
//!
//! Every threaded run is checked bit-identical to its sequential twin before
//! any number is reported — a speedup that changes the answer is a bug, not
//! a speedup.
//!
//! Writes `results/BENCH_parallel.json` by default; override with
//! `--json <path>`. The JSON's `host.available_parallelism` records how many
//! hardware threads the numbers were taken on: on a single-core host the
//! speedup is expectedly ≈1× and must not be read as a regression.
//!
//! Env: `NIDC_SCALE` scales the document count (default 1.0 ≈ 2k docs),
//! `NIDC_THREADS` sets the threaded variant's worker count (default 4).

use std::time::{Duration, Instant};

use nidc_baselines::{gac, GacConfig};
use nidc_bench::{scale_from_env, write_json_report};
use nidc_corpus::Generator;
use nidc_forgetting::{DecayParams, Repository, Timestamp};
use nidc_similarity::DocVectors;
use nidc_textproc::{DocId, Pipeline, SparseVector, Vocabulary};

fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed())
}

fn main() {
    let scale = scale_from_env(1.0);
    let threads: usize = std::env::var("NIDC_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let days = 14u32;
    let per_day = (143.0 * scale).round().max(1.0) as u32; // ≈ 2k docs at scale 1
    println!("parallel hot paths: {days}-day window × {per_day} docs/day, threads 1 vs {threads}");
    println!(
        "host hardware threads: {}\n",
        nidc_parallel::available_threads()
    );

    let corpus = Generator::dense_stream(2006, days, per_day, 48);
    let pipeline = Pipeline::raw();
    let mut vocab = Vocabulary::new();
    let docs: Vec<(DocId, f64, SparseVector)> = corpus
        .articles()
        .iter()
        .map(|a| {
            (
                DocId(a.id),
                a.day,
                pipeline.analyze(&a.text, &mut vocab).to_sparse(),
            )
        })
        .collect();
    println!("{} documents generated", docs.len());

    let decay = DecayParams::from_spans(7.0, 14.0).expect("paper setting");
    let mut repo = Repository::new(decay);
    for (id, day, tf) in &docs {
        repo.insert(*id, Timestamp(*day), tf.clone())
            .expect("chronological");
    }
    repo.advance_to(Timestamp(days as f64)).expect("forward");

    let mut results = Vec::new();
    let mut record = |name: &str, seq: Duration, par: Duration| {
        let speedup = seq.as_secs_f64() / par.as_secs_f64().max(1e-9);
        println!(
            "{name:<28} sequential {:>9.1} ms   {threads} threads {:>9.1} ms   speedup {speedup:.2}x",
            seq.as_secs_f64() * 1e3,
            par.as_secs_f64() * 1e3,
        );
        results.push(serde_json::json!({
            "name": name,
            "sequential_ms": seq.as_secs_f64() * 1e3,
            "parallel_ms": par.as_secs_f64() * 1e3,
            "threads": threads,
            "speedup": speedup,
        }));
    };

    // ---------------- GAC pairwise agglomeration -------------------------
    let pairs: Vec<(DocId, SparseVector)> =
        docs.iter().map(|(id, _, tf)| (*id, tf.clone())).collect();
    let base = GacConfig {
        target_clusters: 32,
        ..GacConfig::default()
    };
    let (seq_clusters, t_seq) = time(|| {
        gac(
            &pairs,
            &GacConfig {
                threads: 1,
                ..base.clone()
            },
        )
    });
    let (par_clusters, t_par) = time(|| {
        gac(
            &pairs,
            &GacConfig {
                threads,
                ..base.clone()
            },
        )
    });
    assert_eq!(
        seq_clusters, par_clusters,
        "GAC result must be bit-identical"
    );
    record("gac_2k_window", t_seq, t_par);

    // ---------------- φ-vector build -------------------------------------
    let (seq_vecs, t_seq) = time(|| DocVectors::build(&repo));
    let (par_vecs, t_par) = time(|| DocVectors::build_parallel(&repo, threads));
    for id in seq_vecs.ids() {
        assert_eq!(
            seq_vecs.phi(id).unwrap().entries(),
            par_vecs.phi(id).unwrap().entries(),
            "phi must be bit-identical"
        );
    }
    record("docvectors_build", t_seq, t_par);

    // ---------------- from-scratch statistics rebuild ---------------------
    let mut repo_seq = repo.clone();
    let mut repo_par = repo.clone();
    let ((), t_seq) = time(|| repo_seq.recompute_from_scratch_with(1));
    let ((), t_par) = time(|| repo_par.recompute_from_scratch_with(threads));
    assert!(
        repo_seq.tdw() == repo_par.tdw(),
        "rebuilt tdw must be bit-identical"
    );
    record("recompute_from_scratch", t_seq, t_par);

    let n_docs = docs.len();
    write_json_report(
        "parallel_hot_paths",
        Some("results/BENCH_parallel.json"),
        serde_json::json!({
            "scale": scale,
            "docs": n_docs,
            "results": results,
        }),
    );
}
