//! **Table 5 (paper §6.2.1)** — the topic inventory of the evaluation
//! corpus: topic id, document count and topic name, mirroring the selected
//! TDT2 topics from Jan 4 – Jun 30 1998.

use nidc_bench::{scale_from_env, PreparedCorpus};

fn main() {
    let scale = scale_from_env(1.0);
    let prep = PreparedCorpus::standard(scale);
    let corpus = &prep.corpus;
    println!("Table 5: topics in the synthetic TDT2-like corpus (scale {scale})\n");
    println!("| Topic ID | Count | Topic Name |");
    println!("|----------|-------|------------|");
    // named topics first (ids < 30000 mirror the paper), then the synthetic
    // filler tail in one summary row
    let mut filler_topics = 0usize;
    let mut filler_docs = 0usize;
    for t in corpus.topics() {
        if t.id.0 < 30000 {
            println!("| {:>8} | {:>5} | {} |", t.id.0, t.count, t.name);
        } else {
            filler_topics += 1;
            filler_docs += t.count;
        }
    }
    println!(
        "| 30000+   | {:>5} | ({} synthetic minor stories, long tail) |",
        filler_docs, filler_topics
    );
    println!(
        "\ntotal: {} documents, {} topics",
        corpus.len(),
        corpus.topics().len()
    );
}
