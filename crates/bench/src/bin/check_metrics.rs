//! **Metrics-manifest gate** — CI's guard against silently losing
//! instrumentation. Reads a JSON-lines metrics export (the `--metrics`
//! output of `online_simulation` or the CLI) and a manifest of required
//! metric names, and exits non-zero if any required metric never appeared
//! in any window.
//!
//! Usage: `check_metrics --manifest metrics_manifest.txt --metrics out.jsonl`
//!
//! The manifest is one metric name per line; blank lines and `#` comments
//! are ignored. A metric counts as present when any snapshot line lists it
//! under `counters`, `gauges`, `fgauges`, or `histograms` — per-window
//! deltas reset between lines, so presence is checked against the union
//! across all windows.

use std::collections::BTreeSet;
use std::process::ExitCode;

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

/// The union of metric names (counters and histograms) across every
/// snapshot line of a JSON-lines export.
fn collect_names(jsonl: &str) -> Result<BTreeSet<String>, String> {
    let mut names = BTreeSet::new();
    for (lineno, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: serde_json::Value = serde_json::from_str(line)
            .map_err(|e| format!("line {}: invalid JSON: {e}", lineno + 1))?;
        for section in ["counters", "gauges", "fgauges", "histograms"] {
            if let Some(map) = v.get(section).and_then(|s| s.as_object()) {
                for (name, _) in map {
                    names.insert(name.clone());
                }
            }
        }
    }
    Ok(names)
}

fn run() -> Result<(), String> {
    let manifest_path =
        arg_value("--manifest").ok_or("usage: check_metrics --manifest FILE --metrics FILE")?;
    let metrics_path =
        arg_value("--metrics").ok_or("usage: check_metrics --manifest FILE --metrics FILE")?;

    let manifest = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("cannot read manifest {manifest_path}: {e}"))?;
    let required: Vec<&str> = manifest
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    if required.is_empty() {
        return Err(format!("manifest {manifest_path} lists no metrics"));
    }

    let jsonl = std::fs::read_to_string(&metrics_path)
        .map_err(|e| format!("cannot read metrics export {metrics_path}: {e}"))?;
    let windows = jsonl.lines().filter(|l| !l.trim().is_empty()).count();
    if windows == 0 {
        return Err(format!("metrics export {metrics_path} holds no snapshots"));
    }
    let present = collect_names(&jsonl)?;

    let missing: Vec<&&str> = required.iter().filter(|m| !present.contains(**m)).collect();
    if missing.is_empty() {
        println!(
            "check_metrics: all {} required metrics present across {windows} window snapshot(s) \
             ({} distinct metrics exported)",
            required.len(),
            present.len()
        );
        Ok(())
    } else {
        let mut msg = format!(
            "{} of {} required metrics missing from {metrics_path}:",
            missing.len(),
            required.len()
        );
        for m in missing {
            msg.push_str("\n  - ");
            msg.push_str(m);
        }
        Err(msg)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("check_metrics: {msg}");
            ExitCode::FAILURE
        }
    }
}
