//! **Seed-sensitivity study** — the paper's method starts from K *randomly
//! selected* documents (§4.3 step 1) and, like all K-means variants, its
//! result depends on that draw. The paper reports single runs; this binary
//! quantifies the spread so readers can judge which paper-vs-measured gaps
//! are within initialisation noise.
//!
//! For each window × β it reports mean ± stddev and min/max of micro F1 and
//! macro F1 over `NIDC_SEEDS` seeds (default 10), plus the mean pairwise
//! Adjusted Rand Index between runs (how *structurally* similar two runs
//! with different seeds are).

use nidc_bench::{run_window, scale_from_env, PreparedCorpus};
use nidc_core::ClusteringConfig;
use nidc_eval::{ari, Labeling};
use nidc_textproc::DocId;

fn mean_sd(v: &[f64]) -> (f64, f64) {
    let m = v.iter().sum::<f64>() / v.len() as f64;
    let var = v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64;
    (m, var.sqrt())
}

fn main() {
    let n_seeds: u64 = std::env::var("NIDC_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let prep = PreparedCorpus::standard(scale_from_env(0.5));
    let windows = prep.corpus.standard_windows();
    println!("Seed sensitivity over {n_seeds} random initialisations (K=24, gamma=30d)\n");
    println!("| window | beta | micro F1 mean±sd [min,max] | macro F1 mean±sd | run-vs-run ARI |");
    println!("|--------|------|----------------------------|------------------|----------------|");
    for w in &windows {
        for beta in [7.0, 30.0] {
            let mut micro = Vec::new();
            let mut macr = Vec::new();
            let mut runs: Vec<Vec<Vec<DocId>>> = Vec::new();
            for s in 0..n_seeds {
                let config = ClusteringConfig {
                    k: 24,
                    seed: 101 * (s + 1),
                    ..ClusteringConfig::default()
                };
                let run = run_window(&prep, w, beta, 30.0, &config);
                micro.push(run.evaluation.micro_f1);
                macr.push(run.evaluation.macro_f1);
                runs.push(run.clustering.member_lists());
            }
            // pairwise ARI between runs: label each run's docs by its own
            // cluster indices and compare against every other run
            let mut aris = Vec::new();
            for i in 0..runs.len() {
                let as_labels: Labeling<u32> = runs[i]
                    .iter()
                    .enumerate()
                    .flat_map(|(p, members)| members.iter().map(move |&d| (d, p as u32)))
                    .collect();
                for other in runs.iter().skip(i + 1) {
                    aris.push(ari(other, &as_labels));
                }
            }
            let (mm, ms) = mean_sd(&micro);
            let (am, asd) = mean_sd(&macr);
            let (rm, _) = mean_sd(&aris);
            let lo = micro.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = micro.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            println!(
                "| w{} | {beta:>4} | {mm:.3}±{ms:.3} [{lo:.2},{hi:.2}] | {am:.3}±{asd:.3} | {rm:.3} |",
                w.index + 1
            );
        }
    }
    println!("\nreading: ±sd ≈ 0.02–0.05 is the single-run noise floor; paper-vs-measured gaps");
    println!(
        "inside that band are not meaningful. High run-vs-run ARI = stable cluster structure."
    );
}
