//! **Table 4 (paper §6.2.3)** — micro-average and macro-average F1 of the
//! clustering results for the six time windows under half-life spans
//! β = 7 and β = 30 days (K = 24, γ = 30 days, marking threshold 0.60).
//!
//! Paper:
//!
//! | Window | micro F1 (β=7/β=30) | macro F1 (β=7/β=30) |
//! |---|---|---|
//! | first  | 0.34 / 0.52 | 0.42 / 0.59 |
//! | second | 0.40 / 0.55 | 0.50 / 0.67 |
//! | third  | 0.32 / 0.53 | 0.37 / 0.61 |
//! | fourth | 0.39 / 0.53 | 0.48 / 0.59 |
//! | fifth  | 0.39 / 0.53 | 0.50 / 0.57 |
//! | sixth  | 0.51 / 0.60 | 0.55 / 0.66 |
//!
//! The reproduced shape: β = 30 (≈ conventional clustering) scores the
//! higher F1 because F1 does not reward novelty. We report the mean over
//! several random seeds (the paper reports a single run).
//!
//! Env vars: `NIDC_SCALE` (corpus scale, default 1.0), `NIDC_SEEDS`
//! (number of seeds to average, default 5).

use nidc_bench::{run_window, scale_from_env, PreparedCorpus};
use nidc_core::ClusteringConfig;

fn main() {
    let scale = scale_from_env(1.0);
    let n_seeds: u64 = std::env::var("NIDC_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let prep = PreparedCorpus::standard(scale);
    let windows = prep.corpus.standard_windows();
    println!(
        "Table 4: micro/macro F1 per window, beta in {{7, 30}} days (K=24, gamma=30d, {} seeds, scale {scale})\n",
        n_seeds
    );
    println!(
        "| Time window          | Microaverage F1 (b=7 / b=30) | Macroaverage F1 (b=7 / b=30) |"
    );
    println!(
        "|----------------------|------------------------------|------------------------------|"
    );

    let paper_micro = [
        (0.34, 0.52),
        (0.40, 0.55),
        (0.32, 0.53),
        (0.39, 0.53),
        (0.39, 0.53),
        (0.51, 0.60),
    ];
    let paper_macro = [
        (0.42, 0.59),
        (0.50, 0.67),
        (0.37, 0.61),
        (0.48, 0.59),
        (0.50, 0.57),
        (0.55, 0.66),
    ];

    for w in &windows {
        let mut micro = [0.0f64; 2];
        let mut macr = [0.0f64; 2];
        for (bi, beta) in [7.0, 30.0].into_iter().enumerate() {
            for s in 0..n_seeds {
                let config = ClusteringConfig {
                    k: 24,
                    seed: 11 * (s + 1),
                    ..ClusteringConfig::default()
                };
                let run = run_window(&prep, w, beta, 30.0, &config);
                micro[bi] += run.evaluation.micro_f1;
                macr[bi] += run.evaluation.macro_f1;
            }
            micro[bi] /= n_seeds as f64;
            macr[bi] /= n_seeds as f64;
        }
        println!(
            "| {:<12} ({})    | {:.2} / {:.2}  [paper {:.2} / {:.2}] | {:.2} / {:.2}  [paper {:.2} / {:.2}] |",
            w.label,
            w.index + 1,
            micro[0],
            micro[1],
            paper_micro[w.index].0,
            paper_micro[w.index].1,
            macr[0],
            macr[1],
            paper_macro[w.index].0,
            paper_macro[w.index].1,
        );
    }
}
