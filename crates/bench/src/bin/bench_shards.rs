//! **Shard-scaling benchmark** — replays the Expt-1 stream through the
//! sharded pipeline at shard counts {1, 2, 4, 8} and reports, per
//! configuration, the wall-clock split into the paper's two phases
//! (statistics updating vs clustering + query-time merge, with the
//! stitching pass broken out) together with three quality views of the
//! final round: the **merged** (fragmented) clustering, the **stitched**
//! clustering (cross-shard fragments reunited at the cr_sim threshold),
//! and each shard on its own.
//!
//! Before any number is reported every configuration is gated on coverage:
//! the merged view must account for every live document (assigned or
//! outlier, never dropped), and the live-document count must be identical
//! across shard counts — the router partitions the stream, it must not lose
//! or duplicate any of it. After all runs the **recovery gate** asserts
//! that the stitched micro-F1 of every multi-shard configuration reaches
//! at least 90% of the 1-shard figure — the quality cliff this pass exists
//! to fix.
//!
//! Writes `results/BENCH_shards.json` by default; override with
//! `--json <path>`. Also accepts `--trace <path>` / `--trace-summary` and
//! `--metrics <path>` like the other experiment binaries. Env: `NIDC_SCALE`
//! scales the corpus (default 0.5), `NIDC_EVERY` sets the days between
//! re-clusterings (default 10), `NIDC_THREADS` sets each pipeline's inner
//! worker count (default 0 = all), `NIDC_STITCH_TAU` overrides the
//! stitching threshold (default `DEFAULT_STITCH_THRESHOLD`).

use std::time::Instant;

use nidc_bench::{
    metrics_from_args, scale_from_env, trace_from_args, write_json_report, PreparedCorpus,
};
use nidc_core::{ClusteringConfig, ShardedPipeline, DEFAULT_STITCH_THRESHOLD};
use nidc_eval::{evaluate_sharded, Labeling, MARKING_THRESHOLD};
use nidc_forgetting::{DecayParams, Timestamp};
use nidc_textproc::DocId;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The stitched system must recover at least this fraction of the 1-shard
/// micro-F1 at every shard count (the in-binary quality gate CI runs).
const RECOVERY_FLOOR: f64 = 0.90;

struct Run {
    shards: usize,
    rounds: u32,
    stats_ms: f64,
    cluster_ms: f64,
    stitch_ms: f64,
    live_docs: usize,
    assigned: usize,
    outliers: usize,
    micro_f1: f64,
    macro_f1: f64,
    stitched_micro_f1: f64,
    stitched_macro_f1: f64,
    stitched_clusters: usize,
    stitch_merges: usize,
    per_shard_micro: Vec<f64>,
    per_shard_macro: Vec<f64>,
}

/// Cumulative `nidc_stitch_seconds` sum so far (recording is enabled for
/// the whole run, so deltas of this value time the in-pipeline stitch pass
/// without instrumenting — or distorting — the measured path itself).
fn stitch_seconds_so_far() -> f64 {
    nidc_obs::snapshot()
        .histogram("nidc_stitch_seconds")
        .map_or(0.0, |h| h.sum)
}

fn main() {
    let scale = scale_from_env(0.5);
    let every: f64 = std::env::var("NIDC_EVERY")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10.0);
    let threads: usize = std::env::var("NIDC_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let tau: f64 = std::env::var("NIDC_STITCH_TAU")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_STITCH_THRESHOLD);
    // Metric recording stays on for the whole run: the stitch timings are
    // read back from the `nidc_stitch_seconds` histogram.
    nidc_obs::set_enabled(true);
    let mut exporter = metrics_from_args();
    let trace = trace_from_args();
    let prep = PreparedCorpus::standard(scale);
    let decay = DecayParams::from_spans(7.0, 21.0).expect("valid");

    println!(
        "shard scaling: {} articles over 178 days, re-clustering every {every} days",
        prep.corpus.len()
    );
    println!(
        "(K=24, beta=7d, gamma=21d, stitch tau={tau}, inner threads {threads}; host hardware threads {})\n",
        nidc_parallel::available_threads()
    );
    println!("| shards | rounds | stats ms | cluster+merge ms | stitch ms | live docs | merged F1 | stitched F1 |");
    println!("|--------|--------|----------|------------------|-----------|-----------|-----------|-------------|");

    let runs: Vec<Run> = SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let config = ClusteringConfig {
                k: 24,
                seed: 42,
                threads,
                ..ClusteringConfig::default()
            };
            let mut pipeline = ShardedPipeline::new(decay, config, shards).expect("shards >= 1");
            pipeline.set_stitch(Some(tau));
            let mut run = Run {
                shards,
                rounds: 0,
                stats_ms: 0.0,
                cluster_ms: 0.0,
                stitch_ms: 0.0,
                live_docs: 0,
                assigned: 0,
                outliers: 0,
                micro_f1: 0.0,
                macro_f1: 0.0,
                stitched_micro_f1: 0.0,
                stitched_macro_f1: 0.0,
                stitched_clusters: 0,
                stitch_merges: 0,
                per_shard_micro: Vec::new(),
                per_shard_macro: Vec::new(),
            };

            let mut next_report = every;
            let mut pending: Vec<usize> = Vec::new();
            let flush = |pipeline: &mut ShardedPipeline,
                         pending: &mut Vec<usize>,
                         run: &mut Run,
                         day: f64| {
                let t0 = Instant::now();
                for &i in pending.iter() {
                    let a = &prep.corpus.articles()[i];
                    pipeline
                        .ingest(DocId(a.id), Timestamp(a.day), prep.tfs[i].clone())
                        .expect("chronological");
                }
                pending.clear();
                pipeline.advance_to(Timestamp(day)).expect("forward");
                run.stats_ms += t0.elapsed().as_secs_f64() * 1e3;

                let stitch0 = stitch_seconds_so_far();
                let t1 = Instant::now();
                let clustering = pipeline.recluster_incremental().expect("K >= 1");
                run.cluster_ms += t1.elapsed().as_secs_f64() * 1e3;
                run.stitch_ms += (stitch_seconds_so_far() - stitch0) * 1e3;
                run.rounds += 1;

                let labels: Labeling<u32> = pipeline
                    .shards()
                    .iter()
                    .flat_map(|s| s.repository().doc_ids())
                    .map(|d| (d, prep.corpus.articles()[d.0 as usize].topic.0))
                    .collect();
                let per_shard_lists: Vec<Vec<Vec<DocId>>> = clustering
                    .shards()
                    .iter()
                    .map(|c| c.member_lists())
                    .collect();
                let stitched_lists = clustering.stitched().map(|s| s.member_lists());
                let e = evaluate_sharded(
                    &per_shard_lists,
                    stitched_lists.as_deref(),
                    &labels,
                    MARKING_THRESHOLD,
                );
                run.live_docs = pipeline.num_docs();
                run.assigned = clustering.assigned_docs();
                run.outliers = clustering.outliers().len();
                run.micro_f1 = e.merged.micro_f1;
                run.macro_f1 = e.merged.macro_f1;
                run.per_shard_micro = e.per_shard.iter().map(|p| p.micro_f1).collect();
                run.per_shard_macro = e.per_shard.iter().map(|p| p.macro_f1).collect();
                match (&e.stitched, clustering.stitched()) {
                    (Some(se), Some(sv)) => {
                        run.stitched_micro_f1 = se.micro_f1;
                        run.stitched_macro_f1 = se.macro_f1;
                        run.stitched_clusters = sv.non_empty_clusters();
                        run.stitch_merges = sv.merges();
                    }
                    // one shard: stitching is the identity, so the merged
                    // figures *are* the stitched figures
                    _ => {
                        run.stitched_micro_f1 = e.merged.micro_f1;
                        run.stitched_macro_f1 = e.merged.macro_f1;
                        run.stitched_clusters = clustering.non_empty_clusters();
                        run.stitch_merges = 0;
                    }
                }
            };

            for (i, a) in prep.corpus.articles().iter().enumerate() {
                while a.day >= next_report {
                    flush(&mut pipeline, &mut pending, &mut run, next_report);
                    next_report += every;
                }
                pending.push(i);
            }
            flush(&mut pipeline, &mut pending, &mut run, 178.0);

            // coverage gate: the merged view must account for every live doc
            assert_eq!(
                run.assigned + run.outliers,
                run.live_docs,
                "{shards} shard(s): merged view dropped documents"
            );

            println!(
                "| {:>6} | {:>6} | {:>8.1} | {:>16.1} | {:>9.1} | {:>9} | {:>9.2} | {:>11.2} |",
                run.shards,
                run.rounds,
                run.stats_ms,
                run.cluster_ms,
                run.stitch_ms,
                run.live_docs,
                run.micro_f1,
                run.stitched_micro_f1
            );
            if let Some(m) = exporter.as_mut() {
                m.record_window(&[("shards", shards as f64)])
                    .expect("metrics export");
            }
            run
        })
        .collect();

    // partition gate: the router must neither lose nor duplicate documents
    for r in &runs[1..] {
        assert_eq!(
            r.live_docs, runs[0].live_docs,
            "{} shard(s): live-document count differs from the 1-shard run",
            r.shards
        );
    }

    let baseline_f1 = runs[0].micro_f1;
    println!();
    for r in &runs[1..] {
        println!(
            "{} shards: merged F1 {:.3} -> stitched F1 {:.3} ({} merges, {:.1} ms stitch over {} rounds) — {:.0}% of 1-shard",
            r.shards,
            r.micro_f1,
            r.stitched_micro_f1,
            r.stitch_merges,
            r.stitch_ms,
            r.rounds,
            100.0 * r.stitched_micro_f1 / baseline_f1.max(1e-12)
        );
    }

    let articles = prep.corpus.len();
    let results: Vec<serde_json::Value> = runs
        .iter()
        .map(|r| {
            let per_shard: Vec<serde_json::Value> = r
                .per_shard_micro
                .iter()
                .zip(&r.per_shard_macro)
                .enumerate()
                .map(|(s, (&mi, &ma))| {
                    serde_json::json!({
                        "name": format!("shard_{s}"),
                        "micro_f1": mi,
                        "macro_f1": ma,
                    })
                })
                .collect();
            serde_json::json!({
                "name": format!("shards_{}", r.shards),
                "shards": r.shards,
                "rounds": r.rounds,
                "stats_ms": r.stats_ms,
                "cluster_merge_ms": r.cluster_ms,
                "stitch_ms": r.stitch_ms,
                "live_docs": r.live_docs,
                "micro_f1": r.micro_f1,
                "macro_f1": r.macro_f1,
                "stitched_micro_f1": r.stitched_micro_f1,
                "stitched_macro_f1": r.stitched_macro_f1,
                "stitched_clusters": r.stitched_clusters,
                "stitch_merges": r.stitch_merges,
                "per_shard": per_shard,
            })
        })
        .collect();
    write_json_report(
        "bench_shards",
        Some("results/BENCH_shards.json"),
        serde_json::json!({
            "scale": scale,
            "report_every_days": every,
            "inner_threads": threads,
            "stitch_threshold": tau,
            "articles": articles,
            "results": results,
        }),
    );
    if let Some(m) = exporter.as_mut() {
        m.finish().expect("metrics export");
    }
    if let Some(s) = trace {
        s.finish(&mut std::io::stdout()).expect("trace export");
    }

    // recovery gate: stitching must climb back to >= 90% of the 1-shard
    // quality at every shard count (the cliff was 0.20 at 4 shards)
    for r in &runs[1..] {
        assert!(
            r.stitched_micro_f1 >= RECOVERY_FLOOR * baseline_f1,
            "{} shard(s): stitched micro-F1 {:.3} is below {RECOVERY_FLOOR} x 1-shard ({:.3})",
            r.shards,
            r.stitched_micro_f1,
            baseline_f1
        );
    }
}
