//! **Shard-scaling benchmark** — replays the Expt-1 stream through the
//! sharded pipeline at shard counts {1, 2, 4, 8} and reports, per
//! configuration, the wall-clock split into the paper's two phases
//! (statistics updating vs clustering + query-time merge) together with the
//! merged clustering quality over the live documents.
//!
//! Before any number is reported every configuration is gated on coverage:
//! the merged view must account for every live document (assigned or
//! outlier, never dropped), and the live-document count must be identical
//! across shard counts — the router partitions the stream, it must not lose
//! or duplicate any of it.
//!
//! Writes `results/BENCH_shards.json` by default; override with
//! `--json <path>`. Env: `NIDC_SCALE` scales the corpus (default 0.5),
//! `NIDC_EVERY` sets the days between re-clusterings (default 10),
//! `NIDC_THREADS` sets each pipeline's inner worker count (default 0 = all).

use std::time::Instant;

use nidc_bench::{scale_from_env, write_json_report, PreparedCorpus};
use nidc_core::{ClusteringConfig, ShardedPipeline};
use nidc_eval::{evaluate, Labeling, MARKING_THRESHOLD};
use nidc_forgetting::{DecayParams, Timestamp};
use nidc_textproc::DocId;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Run {
    shards: usize,
    rounds: u32,
    stats_ms: f64,
    cluster_ms: f64,
    live_docs: usize,
    assigned: usize,
    outliers: usize,
    micro_f1: f64,
    macro_f1: f64,
}

fn main() {
    let scale = scale_from_env(0.5);
    let every: f64 = std::env::var("NIDC_EVERY")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10.0);
    let threads: usize = std::env::var("NIDC_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let prep = PreparedCorpus::standard(scale);
    let decay = DecayParams::from_spans(7.0, 21.0).expect("valid");

    println!(
        "shard scaling: {} articles over 178 days, re-clustering every {every} days",
        prep.corpus.len()
    );
    println!(
        "(K=24, beta=7d, gamma=21d, inner threads {threads}; host hardware threads {})\n",
        nidc_parallel::available_threads()
    );
    println!("| shards | rounds | stats ms | cluster+merge ms | live docs | micro F1 | macro F1 |");
    println!("|--------|--------|----------|------------------|-----------|----------|----------|");

    let runs: Vec<Run> = SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let config = ClusteringConfig {
                k: 24,
                seed: 42,
                threads,
                ..ClusteringConfig::default()
            };
            let mut pipeline = ShardedPipeline::new(decay, config, shards).expect("shards >= 1");
            let mut run = Run {
                shards,
                rounds: 0,
                stats_ms: 0.0,
                cluster_ms: 0.0,
                live_docs: 0,
                assigned: 0,
                outliers: 0,
                micro_f1: 0.0,
                macro_f1: 0.0,
            };

            let mut next_report = every;
            let mut pending: Vec<usize> = Vec::new();
            let flush = |pipeline: &mut ShardedPipeline,
                         pending: &mut Vec<usize>,
                         run: &mut Run,
                         day: f64| {
                let t0 = Instant::now();
                for &i in pending.iter() {
                    let a = &prep.corpus.articles()[i];
                    pipeline
                        .ingest(DocId(a.id), Timestamp(a.day), prep.tfs[i].clone())
                        .expect("chronological");
                }
                pending.clear();
                pipeline.advance_to(Timestamp(day)).expect("forward");
                run.stats_ms += t0.elapsed().as_secs_f64() * 1e3;

                let t1 = Instant::now();
                let clustering = pipeline.recluster_incremental().expect("K >= 1");
                run.cluster_ms += t1.elapsed().as_secs_f64() * 1e3;
                run.rounds += 1;

                let labels: Labeling<u32> = pipeline
                    .shards()
                    .iter()
                    .flat_map(|s| s.repository().doc_ids())
                    .map(|d| (d, prep.corpus.articles()[d.0 as usize].topic.0))
                    .collect();
                let e = evaluate(&clustering.member_lists(), &labels, MARKING_THRESHOLD);
                run.live_docs = pipeline.num_docs();
                run.assigned = clustering.assigned_docs();
                run.outliers = clustering.outliers().len();
                run.micro_f1 = e.micro_f1;
                run.macro_f1 = e.macro_f1;
            };

            for (i, a) in prep.corpus.articles().iter().enumerate() {
                while a.day >= next_report {
                    flush(&mut pipeline, &mut pending, &mut run, next_report);
                    next_report += every;
                }
                pending.push(i);
            }
            flush(&mut pipeline, &mut pending, &mut run, 178.0);

            // coverage gate: the merged view must account for every live doc
            assert_eq!(
                run.assigned + run.outliers,
                run.live_docs,
                "{shards} shard(s): merged view dropped documents"
            );

            println!(
                "| {:>6} | {:>6} | {:>8.1} | {:>16.1} | {:>9} | {:>8.2} | {:>8.2} |",
                run.shards,
                run.rounds,
                run.stats_ms,
                run.cluster_ms,
                run.live_docs,
                run.micro_f1,
                run.macro_f1
            );
            run
        })
        .collect();

    // partition gate: the router must neither lose nor duplicate documents
    for r in &runs[1..] {
        assert_eq!(
            r.live_docs, runs[0].live_docs,
            "{} shard(s): live-document count differs from the 1-shard run",
            r.shards
        );
    }

    let baseline = runs[0].cluster_ms;
    println!();
    for r in &runs[1..] {
        println!(
            "{} shards: clustering+merge {:.2}x vs 1 shard",
            r.shards,
            baseline / r.cluster_ms.max(1e-9)
        );
    }

    let articles = prep.corpus.len();
    let results: Vec<serde_json::Value> = runs
        .iter()
        .map(|r| {
            serde_json::json!({
                "name": format!("shards_{}", r.shards),
                "shards": r.shards,
                "rounds": r.rounds,
                "stats_ms": r.stats_ms,
                "cluster_merge_ms": r.cluster_ms,
                "live_docs": r.live_docs,
                "micro_f1": r.micro_f1,
                "macro_f1": r.macro_f1,
            })
        })
        .collect();
    write_json_report(
        "bench_shards",
        Some("results/BENCH_shards.json"),
        serde_json::json!({
            "scale": scale,
            "report_every_days": every,
            "inner_threads": threads,
            "articles": articles,
            "results": results,
        }),
    );
}
