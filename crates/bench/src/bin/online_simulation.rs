//! **On-line deployment simulation** — the paper's §5.2 operating mode run
//! end to end: the full 178-day stream is replayed chronologically; every
//! `REPORT_EVERY` days a batch of new articles is ingested (incremental
//! statistics update), expired articles are dropped, and the clustering is
//! refreshed incrementally (warm-started from the previous result).
//!
//! For every re-clustering the binary reports wall-clock cost split into the
//! paper's two phases (statistics updating vs clustering), the number of
//! iterations, and the clustering quality against the ground-truth labels of
//! the currently-live documents — a longitudinal version of Tables 1 and 4
//! in one run.
//!
//! Env: `NIDC_SCALE` (default 0.5), `NIDC_EVERY` (days between
//! re-clusterings, default 5), `NIDC_SHARDS` (stream shards, default 1 —
//! today's single-pipeline behaviour, bit for bit). With `--json <path>`,
//! also writes the aggregate timings as BENCH JSON. With `--metrics <path>`
//! (`--metrics-format jsonl|prom`), exports one instrumentation snapshot
//! per re-clustering window — the canonical producer for
//! `metrics_manifest.txt`. With `--events <path>`, exports the cluster
//! lifecycle event stream (births, deaths, splits, merges, drift — see
//! `check_events`) as JSON lines. With `--trace <path>` (`--trace-summary`),
//! records spans across the whole replay and writes Chrome trace-event
//! JSON — the canonical producer for `check_trace`. With `--alloc-stats`,
//! counts every heap allocation (spans then carry allocs/bytes columns) and
//! prints a one-line process summary at the end.

use std::time::Instant;

use nidc_bench::{
    alloc_tracking_from_args, events_from_args, metrics_from_args, scale_from_env, trace_from_args,
    write_json_report, PreparedCorpus,
};
use nidc_core::{ClusteringConfig, ShardedPipeline};
use nidc_eval::{evaluate, Labeling, MARKING_THRESHOLD};
use nidc_forgetting::{DecayParams, Timestamp};
use nidc_textproc::DocId;

fn main() {
    let scale = scale_from_env(0.5);
    let every: f64 = std::env::var("NIDC_EVERY")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5.0);
    let shards: usize = std::env::var("NIDC_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let prep = PreparedCorpus::standard(scale);
    let decay = DecayParams::from_spans(7.0, 21.0).expect("valid");
    let config = ClusteringConfig {
        k: 24,
        seed: 42,
        ..ClusteringConfig::default()
    };
    let mut pipeline = ShardedPipeline::new(decay, config, shards).expect("shards ≥ 1");
    let mut exporter = metrics_from_args();
    let events = events_from_args();
    let trace = trace_from_args();
    let alloc_stats = alloc_tracking_from_args();

    println!(
        "on-line simulation: {} articles over 178 days, re-clustering every {every} days, {shards} shard(s)",
        prep.corpus.len()
    );
    println!("(K=24, beta=7d, gamma=21d — articles expire three weeks after arrival)\n");
    println!("|  day | live docs | stats ms | cluster ms | iters | clusters | outliers | micro F1 | macro F1 |");
    println!("|------|-----------|----------|------------|-------|----------|----------|----------|----------|");

    let mut next_report = every;
    let mut pending: Vec<usize> = Vec::new();
    let (mut total_stats_ms, mut total_cluster_ms, mut rounds) = (0.0, 0.0, 0u32);

    let flush = |pipeline: &mut ShardedPipeline,
                 pending: &mut Vec<usize>,
                 exporter: &mut Option<nidc_obs::MetricsExporter>,
                 day: f64| {
        let t0 = Instant::now();
        for &i in pending.iter() {
            let a = &prep.corpus.articles()[i];
            pipeline
                .ingest(DocId(a.id), Timestamp(a.day), prep.tfs[i].clone())
                .expect("chronological");
        }
        pending.clear();
        pipeline.advance_to(Timestamp(day)).expect("forward");
        let stats_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let clustering = pipeline.recluster_incremental().expect("K ≥ 1");
        let cluster_ms = t1.elapsed().as_secs_f64() * 1e3;

        // quality over the live documents, across every shard
        let labels: Labeling<u32> = pipeline
            .shards()
            .iter()
            .flat_map(|s| s.repository().doc_ids())
            .map(|d| (d, prep.corpus.articles()[d.0 as usize].topic.0))
            .collect();
        let e = evaluate(&clustering.member_lists(), &labels, MARKING_THRESHOLD);
        println!(
            "| {:>4.0} | {:>9} | {:>8.1} | {:>10.1} | {:>5} | {:>8} | {:>8} | {:>8.2} | {:>8.2} |",
            day,
            pipeline.num_docs(),
            stats_ms,
            cluster_ms,
            clustering.iterations(),
            clustering.non_empty_clusters(),
            clustering.outliers().len(),
            e.micro_f1,
            e.macro_f1
        );
        if let Some(m) = exporter.as_mut() {
            m.record_window(&[("day", day), ("docs", pipeline.num_docs() as f64)])
                .expect("write metrics snapshot");
        }
        (stats_ms, cluster_ms)
    };

    for (i, a) in prep.corpus.articles().iter().enumerate() {
        while a.day >= next_report {
            let (s, c) = flush(&mut pipeline, &mut pending, &mut exporter, next_report);
            total_stats_ms += s;
            total_cluster_ms += c;
            rounds += 1;
            next_report += every;
        }
        pending.push(i);
    }
    let (s, c) = flush(&mut pipeline, &mut pending, &mut exporter, 178.0);
    total_stats_ms += s;
    total_cluster_ms += c;
    rounds += 1;

    if let Some(m) = exporter.as_mut() {
        m.finish().expect("flush metrics export");
    }
    if let Some(e) = events {
        e.finish().expect("flush events export");
    }
    if let Some(t) = trace {
        t.finish(&mut std::io::stdout())
            .expect("write trace output");
    }
    if alloc_stats {
        let s = nidc_obs::alloc::stats();
        println!(
            "alloc-stats: allocs={} deallocs={} reallocs={} bytes_allocated={} \
             live_bytes={} peak_live_bytes={}",
            s.allocs, s.deallocs, s.reallocs, s.bytes_allocated, s.live_bytes, s.peak_live_bytes
        );
    }

    println!(
        "\n{rounds} re-clusterings; mean statistics update {:.1} ms, mean clustering {:.1} ms per round",
        total_stats_ms / rounds as f64,
        total_cluster_ms / rounds as f64
    );
    println!(
        "(the paper's batch alternative would re-ingest the entire live repository each round)"
    );

    // (bound to locals: the vendored json! macro needs single-token values
    // alongside nested literals)
    let articles = prep.corpus.len();
    write_json_report(
        "online_simulation",
        None,
        serde_json::json!({
            "scale": scale,
            "report_every_days": every,
            "shards": shards,
            "articles": articles,
            "rounds": rounds,
            "results": [
                { "name": "stats_update_mean", "wall_ms": total_stats_ms / rounds as f64 },
                { "name": "cluster_mean", "wall_ms": total_cluster_ms / rounds as f64 },
                { "name": "stats_update_total", "wall_ms": total_stats_ms },
                { "name": "cluster_total", "wall_ms": total_cluster_ms },
            ],
        }),
    );
}
