//! **Table 2 (paper §6.2.1)** — time-window statistics of the evaluation
//! corpus: documents, topics, min/max/median/mean topic size per window.
//!
//! Paper targets (TDT2 single-"YES"-label subset):
//!
//! | | First | Second | Third | Fourth | Fifth | Sixth |
//! |---|---|---|---|---|---|---|
//! | No. of docs | 1820 | 2393 | 823 | 570 | 1090 | 882 |
//! | No. of topics | 30 | 44 | 47 | 39 | 40 | 43 |
//! | Min topic size | 1 | 1 | 1 | 1 | 1 | 1 |
//! | Max topic size | 461 | 875 | 129 | 96 | 327 | 138 |
//! | Med topic size | 16.5 | 6 | 4 | 5 | 4.5 | 4 |
//! | Mean topic size | 60.67 | 54.39 | 17.51 | 14.62 | 27.25 | 20.51 |

use nidc_bench::{scale_from_env, PreparedCorpus};

fn main() {
    let scale = scale_from_env(1.0);
    let prep = PreparedCorpus::standard(scale);
    let corpus = &prep.corpus;
    println!(
        "Table 2: time-window statistics (scale {scale}, total {} docs, {} topics)\n",
        corpus.len(),
        corpus.topics().len()
    );
    let windows = corpus.standard_windows();
    let stats: Vec<_> = windows.iter().map(|w| corpus.window_stats(w)).collect();

    let labels: Vec<&str> = windows.iter().map(|w| w.label.as_str()).collect();
    println!("| {:<16} | {} |", "", labels.join(" | "));
    let row = |name: &str, values: Vec<String>| {
        println!("| {:<16} | {} |", name, values.join(" | "));
    };
    row(
        "No. of docs",
        stats.iter().map(|s| format!("{:>9}", s.num_docs)).collect(),
    );
    row(
        "No. of topics",
        stats
            .iter()
            .map(|s| format!("{:>9}", s.num_topics))
            .collect(),
    );
    row(
        "Min. topic size",
        stats
            .iter()
            .map(|s| format!("{:>9}", s.min_topic_size))
            .collect(),
    );
    row(
        "Max. topic size",
        stats
            .iter()
            .map(|s| format!("{:>9}", s.max_topic_size))
            .collect(),
    );
    row(
        "Med. topic size",
        stats
            .iter()
            .map(|s| format!("{:>9.1}", s.median_topic_size))
            .collect(),
    );
    row(
        "Mean topic size",
        stats
            .iter()
            .map(|s| format!("{:>9.2}", s.mean_topic_size))
            .collect(),
    );
    println!("\npaper:   docs [1820 2393 823 570 1090 882], topics [30 44 47 39 40 43],");
    println!("         max [461 875 129 96 327 138], median [16.5 6 4 5 4.5 4], mean [60.67 54.39 17.51 14.62 27.25 20.51]");
}
