//! **Experiment 2 narrative (paper §6.2.3)** — "what are recent topics?"
//!
//! For every (window, β) pair this binary reports which of the paper's five
//! narrative topics are **hot** — marked by a cluster ranking in the top half
//! of clusters by G-term weight, i.e. visible in a hot-topic overview — and
//! checks the paper's specific claims:
//!
//! 1. 20074 "Nigerian Protest Violence": hot under β=7 in window 4 (late
//!    occurrence) but not under β=30; in window 6 the occurrences are early,
//!    so β=7 does *not* surface it while β=30 does.
//! 2. 20077 "Unabomber": window 1's burst is in the first half, so β=7 has
//!    forgotten it by clustering time while β=30 keeps it; the small late-w4
//!    re-emergence (~15 docs) is caught by β=7 but not β=30.
//! 3. 20078 "Denmark Strike": late-w4 burst of ~8 docs — β=7 detects it
//!    impressively (recall 1.0, high precision) while β=30 does not surface
//!    it prominently.
//!
//! Averaged over `NIDC_SEEDS` seeds (default 5; the paper reports one run).

use nidc_bench::{hot_topics, run_window, scale_from_env, PreparedCorpus};
use nidc_core::ClusteringConfig;

fn main() {
    let n_seeds: u64 = std::env::var("NIDC_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let prep = PreparedCorpus::standard(scale_from_env(1.0));
    let windows = prep.corpus.standard_windows();
    let narrative = [20074u32, 20077, 20078];

    println!("Hot-topic visibility matrix (topic is 'hot' if a marked cluster ranks in the top K/2 by G-term)");
    println!("entries: number of seeds (of {n_seeds}) in which the topic is hot\n");
    println!("| topic  | beta | w1 | w2 | w3 | w4 | w5 | w6 |");
    println!("|--------|------|----|----|----|----|----|----|");
    for &topic in &narrative {
        for beta in [7.0, 30.0] {
            let mut cells = Vec::new();
            for w in &windows {
                let mut hits = 0;
                for s in 0..n_seeds {
                    let config = ClusteringConfig {
                        k: 24,
                        seed: 11 * (s + 1),
                        ..ClusteringConfig::default()
                    };
                    let run = run_window(&prep, w, beta, 30.0, &config);
                    if hot_topics(&run, config.k / 2).contains(&topic) {
                        hits += 1;
                    }
                }
                cells.push(format!("{hits:>2}"));
            }
            println!("| {topic}  | {beta:>4} | {} |", cells.join(" | "));
        }
    }

    println!("\npaper claims (1 = hot expected, 0 = not expected):");
    println!("  20074 w4: beta7=1 beta30=0   |  20074 w6: beta7=0 beta30=1");
    println!("  20077 w1: beta7=0 beta30=1   |  20077 w4: beta7=1 beta30=0");
    println!("  20078 w4: beta7=1 beta30=0");

    // Denmark Strike detail: the paper highlights recall 1.0 & high precision
    println!("\nDenmark Strike (20078) in window 4, beta=7, per seed:");
    for s in 0..n_seeds {
        let config = ClusteringConfig {
            k: 24,
            seed: 11 * (s + 1),
            ..ClusteringConfig::default()
        };
        let run = run_window(&prep, &windows[3], 7.0, 30.0, &config);
        match run
            .evaluation
            .clusters
            .iter()
            .find(|r| r.marked_topic == Some(20078))
        {
            Some(r) => println!(
                "  seed {}: cluster size {}, precision {:.2}, recall {:.2}",
                config.seed, r.size, r.precision, r.recall
            ),
            None => println!("  seed {}: not detected", config.seed),
        }
    }
}
