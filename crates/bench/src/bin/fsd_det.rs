//! **First-story detection DET analysis** — runs the TDT-style FSD task
//! (an application of the paper's similarity machinery, §2.1) over the
//! synthetic stream and reports the DET operating points and the minimum
//! normalised TDT detection cost, comparing the forgetting-aware detector
//! (β = 7) against a slow-forgetting one (β = 60 ≈ no novelty bias).
//!
//! Env: `NIDC_SCALE` (default 0.25).

use std::collections::BTreeMap;

use nidc_bench::{scale_from_env, PreparedCorpus};
use nidc_corpus::TopicId;
use nidc_forgetting::{DecayParams, Timestamp};
use nidc_tdt::{det_curve, min_cost, CostParams, FirstStoryDetector, FsdConfig, Trial};
use nidc_textproc::DocId;

fn run_detector(prep: &PreparedCorpus, beta: f64, gamma: f64) -> Vec<Trial> {
    let mut fsd = FirstStoryDetector::new(
        DecayParams::from_spans(beta, gamma).expect("valid"),
        FsdConfig::default(),
    );
    let mut last_seen: BTreeMap<TopicId, f64> = BTreeMap::new();
    let mut trials = Vec::new();
    for (a, tf) in prep.corpus.articles().iter().zip(&prep.tfs) {
        let truth = last_seen
            .get(&a.topic)
            .is_none_or(|&prev| a.day - prev > gamma);
        last_seen.insert(a.topic, a.day);
        let decision = fsd
            .process(DocId(a.id), Timestamp(a.day), tf.clone())
            .expect("chronological");
        if a.day >= 3.0 {
            // skip the cold-start window where everything is new
            trials.push(Trial {
                target: truth,
                score: decision.score,
            });
        }
    }
    trials
}

fn main() {
    let prep = PreparedCorpus::standard(scale_from_env(0.25));
    println!(
        "FSD DET analysis over {} articles (TDT cost: C_miss=1, C_fa=0.1, P_target=0.02)\n",
        prep.corpus.len()
    );
    let params = CostParams::default();
    for (label, beta, gamma) in [
        ("beta=7d, gamma=21d", 7.0, 21.0),
        ("beta=60d, gamma=180d", 60.0, 180.0),
    ] {
        let trials = run_detector(&prep, beta, gamma);
        let targets = trials.iter().filter(|t| t.target).count();
        let curve = det_curve(&trials);
        let (best, cost) = min_cost(&trials, &params).expect("non-degenerate");
        println!(
            "--- {label}: {} trials, {targets} true first stories",
            trials.len()
        );
        println!(
            "    min normalised detection cost {cost:.3} at threshold {:.2} (P_miss {:.2}, P_fa {:.2})",
            best.threshold, best.p_miss, best.p_fa
        );
        // a few representative operating points
        println!("    DET points (threshold, P_miss, P_fa):");
        let step = (curve.len() / 6).max(1);
        for p in curve.iter().step_by(step) {
            println!(
                "      {:>6.3}  {:.2}  {:.2}",
                if p.threshold.is_finite() {
                    p.threshold
                } else {
                    9.999
                },
                p.p_miss,
                p.p_fa
            );
        }
    }
    println!("\n(1.0 = the trivial detector; lower is better. The short half-life detector");
    println!(" wins because its memory — and therefore its notion of novelty — matches the");
    println!(" ground-truth definition of a first story within the life span.)");
}
