//! **Allocation benchmark** — replays the Experiment-1 stream through the
//! on-line pipeline with the counting allocator enabled and reports, per
//! phase (ingest+advance vs recluster) and per topology (unsharded vs
//! 3-shard), how many heap allocations and bytes the run performed, plus
//! the peak live-byte high-water mark.
//!
//! Unlike wall-clock benches these numbers are hardware-independent: for a
//! fixed seed, scale, and thread count the allocation counts are exact, so
//! the CI `alloc-baseline` job can diff them against the checked-in
//! `results/BENCH_alloc.json` at a tight threshold and catch accidental
//! allocation regressions (a clone in a hot loop, a lost `with_capacity`).
//!
//! Env: `NIDC_SCALE` (default 0.25), `NIDC_EVERY` (days between
//! re-clusterings, default 10). With `--json <path>` (default
//! `results/BENCH_alloc.json`) writes BENCH JSON; with `--trace <path>`
//! (`--trace-summary`) records spans — every span then carries its
//! allocs/bytes attribution.

use nidc_bench::{scale_from_env, trace_from_args, write_json_report, PreparedCorpus};
use nidc_core::{ClusteringConfig, ShardedPipeline};
use nidc_forgetting::{DecayParams, Timestamp};
use nidc_obs::alloc::{self, AllocStats};
use nidc_textproc::DocId;

/// Allocation tallies of one phase, accumulated across all windows.
#[derive(Default, Clone, Copy)]
struct PhaseTally {
    allocs: u64,
    bytes: u64,
}

impl PhaseTally {
    fn absorb(&mut self, before: AllocStats, after: AllocStats) {
        self.allocs += after.allocs - before.allocs;
        self.bytes += after.bytes_allocated - before.bytes_allocated;
    }
}

struct RunReport {
    shards: usize,
    rounds: u32,
    ingest: PhaseTally,
    recluster: PhaseTally,
    peak_live_bytes: u64,
}

/// Replays the stream on `shards` shards, tallying allocations per phase.
fn run_stream(prep: &PreparedCorpus, shards: usize, every: f64) -> RunReport {
    let decay = DecayParams::from_spans(7.0, 21.0).expect("valid");
    let config = ClusteringConfig {
        k: 24,
        seed: 42,
        threads: 1, // pinned: alloc counts are part of the report
        ..ClusteringConfig::default()
    };
    let mut pipeline = ShardedPipeline::new(decay, config, shards).expect("shards >= 1");
    let mut ingest = PhaseTally::default();
    let mut recluster = PhaseTally::default();
    let mut rounds = 0u32;
    alloc::reset_peak();

    let mut pending: Vec<usize> = Vec::new();
    let mut flush = |pipeline: &mut ShardedPipeline, pending: &mut Vec<usize>, day: f64| {
        let before = alloc::stats();
        for &i in pending.iter() {
            let a = &prep.corpus.articles()[i];
            pipeline
                .ingest(DocId(a.id), Timestamp(a.day), prep.tfs[i].clone())
                .expect("chronological");
        }
        pending.clear();
        pipeline.advance_to(Timestamp(day)).expect("forward");
        let mid = alloc::stats();
        pipeline.recluster_incremental().expect("K >= 1");
        let after = alloc::stats();
        ingest.absorb(before, mid);
        recluster.absorb(mid, after);
        rounds += 1;
    };

    let mut next_report = every;
    for (i, a) in prep.corpus.articles().iter().enumerate() {
        while a.day >= next_report {
            flush(&mut pipeline, &mut pending, next_report);
            next_report += every;
        }
        pending.push(i);
    }
    flush(&mut pipeline, &mut pending, 178.0);

    RunReport {
        shards,
        rounds,
        ingest,
        recluster,
        peak_live_bytes: alloc::stats().peak_live_bytes,
    }
}

fn main() {
    let scale = scale_from_env(0.25);
    let every: f64 = std::env::var("NIDC_EVERY")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10.0);
    let prep = PreparedCorpus::standard(scale);
    let trace = trace_from_args();
    alloc::set_tracking(true);

    println!(
        "allocation bench: {} articles, re-clustering every {every} days, threads pinned to 1",
        prep.corpus.len()
    );
    println!("| topology  | rounds | ingest allocs | ingest MB | recluster allocs | recluster MB | peak live MB |");
    println!("|-----------|--------|---------------|-----------|------------------|--------------|--------------|");

    let mut results = Vec::new();
    for shards in [1usize, 3] {
        let r = run_stream(&prep, shards, every);
        let label = if shards == 1 {
            "unsharded"
        } else {
            "sharded_3"
        };
        println!(
            "| {label:<9} | {:>6} | {:>13} | {:>9.1} | {:>16} | {:>12.1} | {:>12.1} |",
            r.rounds,
            r.ingest.allocs,
            r.ingest.bytes as f64 / 1e6,
            r.recluster.allocs,
            r.recluster.bytes as f64 / 1e6,
            r.peak_live_bytes as f64 / 1e6,
        );
        results.push(serde_json::json!({
            "name": label,
            "shards": r.shards,
            "rounds": r.rounds,
            "ingest_allocs": r.ingest.allocs,
            "ingest_bytes": r.ingest.bytes,
            "recluster_allocs": r.recluster.allocs,
            "recluster_bytes": r.recluster.bytes,
            "peak_live_bytes": r.peak_live_bytes,
        }));
    }
    alloc::set_tracking(false);

    if let Some(t) = trace {
        t.finish(&mut std::io::stdout()).expect("write trace");
    }

    let articles = prep.corpus.len();
    write_json_report(
        "bench_alloc",
        Some("results/BENCH_alloc.json"),
        serde_json::json!({
            "scale": scale,
            "report_every_days": every,
            "threads": 1,
            "articles": articles,
            "results": results,
        }),
    );
}
