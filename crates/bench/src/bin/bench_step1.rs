//! **Step-1 sweep benchmark** — dense representatives vs sparse
//! representatives + term→cluster inverted index, on the Experiment-1
//! workload (the standard generated corpus, β = 7, γ = 30).
//!
//! The extended K-means spends nearly all of its time in step 1, scoring
//! every document against every cluster representative. The dense backend
//! pays K per-cluster dot products per document — O(K·nnz(φ_d)) — while the
//! sparse backend's [`ClusterIndex::dot_all`] accumulates all K dots in one
//! pass over φ_d's terms — O(Σ_t |postings(t)|). This binary times the two
//! sweeps over identical mirrored state (checked bit-identical first), plus
//! the full `cluster_batch` wall-clock under both backends, and reports the
//! memory footprints: dense K·|V|·8 bytes vs the sparse reps' Σnnz·16 and
//! the index's postings·16.
//!
//! Writes `results/BENCH_step1.json` by default; override with
//! `--json <path>`. With `--metrics <path>` (`--metrics-format jsonl|prom`),
//! exports one instrumentation snapshot covering the whole run — the
//! `nidc_index_postings_touched_total` vs `nidc_kmeans_step1_candidates_total`
//! pair quantifies the inverted-index saving directly. Env: `NIDC_SCALE`
//! scales the corpus (default 1.0 ≈ the paper's 7,578-document subset),
//! `NIDC_SWEEPS` the number of timed sweep repetitions (default 5),
//! `NIDC_BATCH_REPS` the best-of-N repetitions of the end-to-end
//! `cluster_batch` timings (default 3).

use std::time::{Duration, Instant};

use nidc_bench::{
    metrics_from_args, scale_from_env, trace_from_args, write_json_report, PreparedCorpus,
};
use nidc_core::{cluster_batch, ClusteringConfig, RepBackend};
use nidc_forgetting::{DecayParams, Timestamp};
use nidc_similarity::{ClusterIndex, ClusterRep, DocVectors};

fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed())
}

/// Best-of-`reps` timing: repeats `f` and keeps the fastest wall-clock.
/// The minimum is the standard estimator for "how fast does this code run"
/// on a noisy shared host — scheduler preemption only ever adds time.
fn time_best<R>(reps: usize, f: impl Fn() -> R) -> (R, Duration) {
    let (mut best_r, mut best_t) = time(&f);
    for _ in 1..reps {
        let (r, t) = time(&f);
        if t < best_t {
            best_r = r;
            best_t = t;
        }
    }
    (best_r, best_t)
}

fn main() {
    let mut exporter = metrics_from_args();
    let trace = trace_from_args();
    let scale = scale_from_env(1.0);
    let sweeps: usize = std::env::var("NIDC_SWEEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let batch_reps: usize = std::env::var("NIDC_BATCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);

    println!("step-1 sweep: dense reps vs sparse reps + inverted index (expt1 workload)");
    println!(
        "host hardware threads: {}\n",
        nidc_parallel::available_threads()
    );

    let prep = PreparedCorpus::standard(scale);
    let indices: Vec<usize> = (0..prep.corpus.len()).collect();
    let clock = prep.corpus.articles().last().map_or(0.0, |a| a.day) + 0.01;
    let decay = DecayParams::from_spans(7.0, 30.0).expect("paper setting");
    let repo = prep.build_repository(&indices, decay, Timestamp(clock));
    let vecs = DocVectors::build(&repo);
    let ids = vecs.ids();
    let vocab_dim = vecs.vocab_dim();
    println!(
        "{} documents, |V| = {vocab_dim}, {} sweep repetitions per backend\n",
        ids.len(),
        sweeps
    );

    let mut results = Vec::new();
    for k in [8usize, 16, 32] {
        // A realistic topical assignment: run the clusterer itself, then
        // mirror its clusters into dense reps, sparse reps, and the index.
        let config = ClusteringConfig {
            k,
            seed: 42,
            threads: 1,
            ..ClusteringConfig::default()
        };
        let clustering = cluster_batch(&vecs, &config).expect("K ≥ 1");
        let mut dense = vec![ClusterRep::new_with(RepBackend::Dense); k];
        let mut sparse = vec![ClusterRep::new_with(RepBackend::Sparse); k];
        let mut index = ClusterIndex::new(k);
        for (q, members) in clustering.member_lists().iter().enumerate() {
            for d in members {
                let phi = vecs.phi(*d).expect("member has a vector");
                dense[q].add(phi);
                sparse[q].add(phi);
                index.add(q, phi);
            }
        }

        // correctness gate: the index rows must be bit-identical to the
        // dense dots before any number is reported
        let mut row = vec![0.0; k];
        for &d in &ids {
            let phi = vecs.phi(d).unwrap();
            index.dot_all(phi, &mut row);
            for (q, rep) in dense.iter().enumerate() {
                assert_eq!(
                    row[q],
                    rep.dot_doc(phi),
                    "index dot differs from dense at k={k} cluster {q}"
                );
            }
        }

        // the timed sweeps: score every document against all K clusters
        let (dense_acc, t_dense) = time(|| {
            let mut acc = 0.0f64;
            for _ in 0..sweeps {
                for &d in &ids {
                    let phi = vecs.phi(d).unwrap();
                    for rep in &dense {
                        acc += rep.dot_doc(phi);
                    }
                }
            }
            acc
        });
        let (index_acc, t_index) = time(|| {
            let mut acc = 0.0f64;
            let mut row = vec![0.0; k];
            for _ in 0..sweeps {
                for &d in &ids {
                    index.dot_all(vecs.phi(d).unwrap(), &mut row);
                    for &v in &row {
                        acc += v;
                    }
                }
            }
            acc
        });
        assert_eq!(dense_acc, index_acc, "sweep accumulators must agree");

        // end-to-end: the whole extended K-means under each backend
        // (best-of-N so one scheduler hiccup cannot fake a regression)
        let (c_dense, t_batch_dense) = time_best(batch_reps, || {
            cluster_batch(
                &vecs,
                &ClusteringConfig {
                    rep_backend: RepBackend::Dense,
                    ..config.clone()
                },
            )
            .unwrap()
        });
        let (c_sparse, t_batch_sparse) = time_best(batch_reps, || {
            cluster_batch(
                &vecs,
                &ClusteringConfig {
                    rep_backend: RepBackend::Sparse,
                    ..config.clone()
                },
            )
            .unwrap()
        });
        assert_eq!(
            c_dense.member_lists(),
            c_sparse.member_lists(),
            "backends must produce identical clusterings at k={k}"
        );
        assert!(c_dense.g() == c_sparse.g(), "G must be bit-identical");

        let docs_swept = (ids.len() * sweeps) as f64;
        let dense_docs_per_sec = docs_swept / t_dense.as_secs_f64().max(1e-9);
        let index_docs_per_sec = docs_swept / t_index.as_secs_f64().max(1e-9);
        let sweep_speedup = t_dense.as_secs_f64() / t_index.as_secs_f64().max(1e-9);
        let batch_speedup = t_batch_dense.as_secs_f64() / t_batch_sparse.as_secs_f64().max(1e-9);

        // memory: dense is K vocabulary-length f64 arrays; sparse stores
        // (TermId, f64) pairs, as does each index posting
        let dense_rep_bytes = k * vocab_dim * 8;
        let sparse_nnz: usize = sparse.iter().map(ClusterRep::nnz).sum();
        let sparse_rep_bytes = sparse_nnz * 16;
        // the index costs one Vec header per term slot (the O(|V|) spine,
        // like a single dense rep) plus 16 B per stored posting
        let postings_bytes =
            index.term_slots() * std::mem::size_of::<Vec<(u32, f64)>>() + index.postings_len() * 16;
        let mem_reduction = dense_rep_bytes as f64 / sparse_rep_bytes.max(1) as f64;

        println!("K = {k}");
        println!(
            "  sweep       dense {:>9.1} ms ({dense_docs_per_sec:>10.0} docs/s)   index {:>9.1} ms ({index_docs_per_sec:>10.0} docs/s)   speedup {sweep_speedup:.2}x",
            t_dense.as_secs_f64() * 1e3,
            t_index.as_secs_f64() * 1e3,
        );
        println!(
            "  cluster_batch  dense {:>9.1} ms   sparse {:>9.1} ms   speedup {batch_speedup:.2}x",
            t_batch_dense.as_secs_f64() * 1e3,
            t_batch_sparse.as_secs_f64() * 1e3,
        );
        println!(
            "  memory      dense reps {:>11} B   sparse reps {:>9} B ({mem_reduction:.1}x smaller)   postings {:>9} B\n",
            dense_rep_bytes, sparse_rep_bytes, postings_bytes,
        );

        results.push(serde_json::json!({
            "k": k,
            "docs": ids.len(),
            "vocab_dim": vocab_dim,
            "sweeps": sweeps,
            "dense_sweep_ms": t_dense.as_secs_f64() * 1e3,
            "index_sweep_ms": t_index.as_secs_f64() * 1e3,
            "dense_docs_per_sec": dense_docs_per_sec,
            "index_docs_per_sec": index_docs_per_sec,
            "sweep_speedup": sweep_speedup,
            "cluster_batch_dense_ms": t_batch_dense.as_secs_f64() * 1e3,
            "cluster_batch_sparse_ms": t_batch_sparse.as_secs_f64() * 1e3,
            "cluster_batch_speedup": batch_speedup,
            "dense_rep_bytes": dense_rep_bytes,
            "sparse_rep_bytes": sparse_rep_bytes,
            "index_postings_bytes": postings_bytes,
            "rep_memory_reduction": mem_reduction,
        }));
    }

    if let Some(m) = exporter.as_mut() {
        m.record_window(&[("scale", scale)])
            .expect("write metrics snapshot");
        m.finish().expect("flush metrics export");
    }
    if let Some(t) = trace {
        t.finish(&mut std::io::stdout())
            .expect("write trace output");
    }

    let payload = serde_json::json!({
        "scale": scale,
        "results": results,
    });
    write_json_report("step1_sweep", Some("results/BENCH_step1.json"), payload);
}
