//! **Cluster lifecycle benchmark** — replays the Expt-1 on-line stream
//! (chronological ingest, periodic incremental re-clustering, forgetting-
//! driven expiry) and reports what the [`nidc_core::LineageTracker`] saw:
//! lifecycle totals (births, deaths, splits, merges), drift, churn and
//! outlier rates, the mean consecutive-window co-membership stability
//! ([`nidc_eval::consecutive_stability`]), and the final cohesion/
//! separation quality gauges — once unsharded and once with 3 stream
//! shards, so sharding's effect on cluster *stability* is tracked the
//! same way `bench_shards` tracks its effect on F1.
//!
//! Writes `results/BENCH_quality.json` (override with `--json <path>`) in
//! the shared BENCH schema, diffable with `bench_compare` — churn and
//! outlier rates count as regressions when they grow, cohesion and
//! separation when they shrink.
//!
//! Env: `NIDC_SCALE` (default 0.2), `NIDC_EVERY` (days between
//! re-clusterings, default 10).

use std::time::Instant;

use nidc_bench::{scale_from_env, write_json_report, PreparedCorpus};
use nidc_core::{ClusteringConfig, ShardedPipeline};
use nidc_forgetting::{DecayParams, Timestamp};
use nidc_textproc::DocId;

/// Lifecycle and quality aggregates of one full stream replay.
struct LifecycleStats {
    rounds: u32,
    wall_ms: f64,
    births: u64,
    deaths: u64,
    splits: u64,
    merges: u64,
    mean_drift_max: f64,
    mean_churn_rate: f64,
    mean_outlier_rate: f64,
    mean_stability: f64,
    final_cohesion: f64,
    final_separation: f64,
}

fn replay(prep: &PreparedCorpus, shards: usize, every: f64) -> LifecycleStats {
    // Counters accumulate across the whole replay; zero them so earlier
    // configurations (or registration noise) don't leak in.
    nidc_obs::reset();

    let decay = DecayParams::from_spans(7.0, 21.0).expect("valid");
    let config = ClusteringConfig {
        k: 24,
        seed: 42,
        ..ClusteringConfig::default()
    };
    let mut pipeline = ShardedPipeline::new(decay, config, shards).expect("shards ≥ 1");

    let t0 = Instant::now();
    let mut rounds = 0u32;
    let (mut drift_sum, mut churn_sum, mut outlier_sum) = (0.0, 0.0, 0.0);
    // co-membership stability between consecutive windows (eval crate's
    // label-free Rand index over surviving docs); first window has no
    // predecessor, so it contributes nothing
    let mut stability_sum = 0.0;
    let mut stability_rounds = 0u32;
    let mut prev_members: Option<Vec<Vec<DocId>>> = None;
    let mut recluster = |pipeline: &mut ShardedPipeline, pending: &mut Vec<usize>, day: f64| {
        for &i in pending.iter() {
            let a = &prep.corpus.articles()[i];
            pipeline
                .ingest(DocId(a.id), Timestamp(a.day), prep.tfs[i].clone())
                .expect("chronological");
        }
        pending.clear();
        pipeline.advance_to(Timestamp(day)).expect("forward");
        let merged = pipeline.recluster_incremental().expect("K ≥ 1");
        let members = merged
            .stitched()
            .map(|s| s.member_lists())
            .unwrap_or_else(|| merged.member_lists());
        if let Some(prev) = prev_members.replace(members) {
            stability_sum +=
                nidc_eval::consecutive_stability(&prev, prev_members.as_ref().unwrap());
            stability_rounds += 1;
        }
        let s = nidc_obs::snapshot();
        drift_sum += s.fgauge("nidc_lifecycle_drift_max").unwrap_or(0.0);
        churn_sum += s.fgauge("nidc_quality_churn_rate").unwrap_or(0.0);
        outlier_sum += s.fgauge("nidc_quality_outlier_rate").unwrap_or(0.0);
        rounds += 1;
    };

    let mut next_report = every;
    let mut pending: Vec<usize> = Vec::new();
    for (i, a) in prep.corpus.articles().iter().enumerate() {
        while a.day >= next_report {
            recluster(&mut pipeline, &mut pending, next_report);
            next_report += every;
        }
        pending.push(i);
    }
    recluster(&mut pipeline, &mut pending, 178.0);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let s = nidc_obs::snapshot();
    LifecycleStats {
        rounds,
        wall_ms,
        births: s.counter("nidc_lifecycle_births_total").unwrap_or(0),
        deaths: s.counter("nidc_lifecycle_deaths_total").unwrap_or(0),
        splits: s.counter("nidc_lifecycle_splits_total").unwrap_or(0),
        merges: s.counter("nidc_lifecycle_merges_total").unwrap_or(0),
        mean_drift_max: drift_sum / rounds as f64,
        mean_churn_rate: churn_sum / rounds as f64,
        mean_outlier_rate: outlier_sum / rounds as f64,
        mean_stability: stability_sum / stability_rounds.max(1) as f64,
        final_cohesion: s.fgauge("nidc_quality_cohesion").unwrap_or(0.0),
        final_separation: s.fgauge("nidc_quality_separation").unwrap_or(0.0),
    }
}

fn result_entry(name: &str, s: &LifecycleStats) -> serde_json::Value {
    // (bound to locals: the vendored json! macro needs single-token values)
    let rounds = s.rounds;
    let wall_ms = s.wall_ms;
    let births = s.births;
    let deaths = s.deaths;
    let splits = s.splits;
    let merges = s.merges;
    let mean_drift_max = s.mean_drift_max;
    let mean_churn_rate = s.mean_churn_rate;
    let mean_outlier_rate = s.mean_outlier_rate;
    let mean_stability = s.mean_stability;
    let final_cohesion = s.final_cohesion;
    let final_separation = s.final_separation;
    serde_json::json!({
        "name": name,
        "rounds": rounds,
        "wall_ms": wall_ms,
        "births": births,
        "deaths": deaths,
        "splits": splits,
        "merges": merges,
        "mean_drift_max": mean_drift_max,
        "mean_churn_rate": mean_churn_rate,
        "mean_outlier_rate": mean_outlier_rate,
        "mean_stability": mean_stability,
        "final_cohesion": final_cohesion,
        "final_separation": final_separation,
    })
}

fn main() {
    let scale = scale_from_env(0.2);
    let every: f64 = std::env::var("NIDC_EVERY")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10.0);
    let prep = PreparedCorpus::standard(scale);

    // The gauges are read back programmatically, so recording must be on;
    // the clustering itself is observation-independent (see
    // tests/obs_determinism.rs), so this changes nothing but visibility.
    nidc_obs::set_enabled(true);

    println!(
        "lifecycle benchmark: {} articles over 178 days, re-clustering every {every} days",
        prep.corpus.len()
    );
    println!("(K=24, beta=7d, gamma=21d)\n");
    println!("| config    | rounds | births | deaths | splits | merges | drift | churn | outlier | stability | cohesion | separation |");
    println!("|-----------|--------|--------|--------|--------|--------|-------|-------|---------|-----------|----------|------------|");

    let mut entries = Vec::new();
    for (name, shards) in [("unsharded", 1usize), ("shards_3", 3usize)] {
        let s = replay(&prep, shards, every);
        println!(
            "| {name:<9} | {:>6} | {:>6} | {:>6} | {:>6} | {:>6} | {:>5.3} | {:>5.3} | {:>7.3} | {:>9.3} | {:>8.3} | {:>10.3} |",
            s.rounds,
            s.births,
            s.deaths,
            s.splits,
            s.merges,
            s.mean_drift_max,
            s.mean_churn_rate,
            s.mean_outlier_rate,
            s.mean_stability,
            s.final_cohesion,
            s.final_separation
        );
        entries.push(result_entry(name, &s));
    }
    nidc_obs::reset_all();

    let articles = prep.corpus.len();
    let results = serde_json::Value::Array(entries);
    write_json_report(
        "bench_lifecycle",
        Some("results/BENCH_quality.json"),
        serde_json::json!({
            "scale": scale,
            "report_every_days": every,
            "articles": articles,
            "results": results,
        }),
    );
}
