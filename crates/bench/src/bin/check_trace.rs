//! **Trace validator** — CI's guard that `--trace` output stays loadable.
//! Reads a Chrome trace-event JSON file (the `--trace` output of the CLI or
//! an experiment binary) and exits non-zero unless the stream is
//! well-formed:
//!
//! * the file is valid JSON with a `traceEvents` array;
//! * per `tid`, every `B` has a matching `E` in LIFO order (matched on
//!   `args.id` — a lane is a stack of spans, which is what Perfetto
//!   renders);
//! * per `tid`, timestamps never go backwards (events are written
//!   time-sorted);
//! * every nonzero `args.parent` refers to a span id that exists;
//! * every `sharded.stitch` span nests directly under a `sharded.merge`
//!   span — the stitching pass is part of the query-time merge, and a
//!   stitch span floating anywhere else means the pipeline wiring broke.
//!
//! Usage: `check_trace --trace FILE`

use std::collections::{BTreeMap, BTreeSet};
use std::process::ExitCode;

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

#[derive(Debug)]
struct TraceSummary {
    spans: usize,
    lanes: usize,
    named_lanes: usize,
}

fn validate(doc: &serde_json::Value) -> Result<TraceSummary, String> {
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .ok_or("no traceEvents array")?;

    let mut stacks: BTreeMap<u64, Vec<u64>> = BTreeMap::new(); // tid → open span ids
    let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
    let mut span_ids: BTreeSet<u64> = BTreeSet::new();
    let mut span_names: BTreeMap<u64, String> = BTreeMap::new();
    let mut parents: Vec<(u64, u64)> = Vec::new(); // (span, parent)
    let mut stitch_spans: Vec<(u64, u64)> = Vec::new(); // (span, parent)
    let mut named_lanes = 0usize;
    let mut spans = 0usize;

    for (i, ev) in events.iter().enumerate() {
        let at = |msg: &str| format!("event {i}: {msg}");
        let ph = ev
            .get("ph")
            .and_then(|p| p.as_str())
            .ok_or_else(|| at("missing ph"))?;
        let tid = ev
            .get("tid")
            .and_then(|t| t.as_u64())
            .ok_or_else(|| at("missing tid"))?;
        if ph == "M" {
            if ev.get("name").and_then(|n| n.as_str()) == Some("thread_name") {
                named_lanes += 1;
            }
            continue;
        }
        let ts = ev
            .get("ts")
            .and_then(|t| t.as_f64())
            .ok_or_else(|| at("missing ts"))?;
        let prev = last_ts.entry(tid).or_insert(ts);
        if ts < *prev {
            return Err(at(&format!("tid {tid}: ts went backwards ({ts} < {prev})")));
        }
        *prev = ts;
        let id = ev
            .get("args")
            .and_then(|a| a.get("id"))
            .and_then(|v| v.as_u64())
            .ok_or_else(|| at("missing args.id"))?;
        match ph {
            "B" => {
                spans += 1;
                if !span_ids.insert(id) {
                    return Err(at(&format!("span id {id} begun twice")));
                }
                let name = ev.get("name").and_then(|n| n.as_str()).unwrap_or("");
                span_names.insert(id, name.to_owned());
                let parent = ev
                    .get("args")
                    .and_then(|a| a.get("parent"))
                    .and_then(|v| v.as_u64())
                    .unwrap_or(0);
                if parent != 0 {
                    parents.push((id, parent));
                }
                if name == "sharded.stitch" {
                    stitch_spans.push((id, parent));
                }
                stacks.entry(tid).or_default().push(id);
            }
            "E" => {
                let stack = stacks.entry(tid).or_default();
                match stack.pop() {
                    Some(open) if open == id => {}
                    Some(open) => {
                        return Err(at(&format!(
                            "tid {tid}: E for span {id} but span {open} is open (not LIFO)"
                        )))
                    }
                    None => {
                        return Err(at(&format!("tid {tid}: E for span {id} with no open span")))
                    }
                }
            }
            other => return Err(at(&format!("unknown phase {other:?}"))),
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "tid {tid}: {} span(s) never ended: {stack:?}",
                stack.len()
            ));
        }
    }
    for (span, parent) in &parents {
        if !span_ids.contains(parent) {
            return Err(format!("span {span}: parent {parent} does not exist"));
        }
    }
    for (span, parent) in &stitch_spans {
        let parent_name = span_names.get(parent).map(String::as_str);
        if parent_name != Some("sharded.merge") {
            return Err(format!(
                "sharded.stitch span {span}: parent is {}, expected a sharded.merge span",
                match parent_name {
                    Some(n) => format!("{n:?} (span {parent})"),
                    None => "missing".to_owned(),
                }
            ));
        }
    }
    Ok(TraceSummary {
        spans,
        lanes: last_ts.len(),
        named_lanes,
    })
}

fn run() -> Result<(), String> {
    let path = arg_value("--trace").ok_or("usage: check_trace --trace FILE")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let s = validate(&doc)?;
    if s.spans == 0 {
        return Err(format!("{path}: no spans recorded"));
    }
    println!(
        "check_trace: {path} OK — {} spans over {} lane(s) ({} named)",
        s.spans, s.lanes, s.named_lanes
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("check_trace: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn doc(events: serde_json::Value) -> serde_json::Value {
        json!({"displayTimeUnit": "ms", "traceEvents": events})
    }

    fn b(tid: u64, ts: f64, id: u64, parent: u64) -> serde_json::Value {
        bn(tid, ts, id, parent, "s")
    }

    fn bn(tid: u64, ts: f64, id: u64, parent: u64, name: &str) -> serde_json::Value {
        let args = json!({"id": id, "parent": parent, "thread": tid});
        json!({"ph": "B", "pid": 1, "tid": tid, "ts": ts, "name": name, "args": args})
    }

    fn e(tid: u64, ts: f64, id: u64) -> serde_json::Value {
        let args = json!({"id": id, "thread": tid});
        json!({"ph": "E", "pid": 1, "tid": tid, "ts": ts, "name": "s", "args": args})
    }

    fn meta(tid: u64, name: &str, label: &str) -> serde_json::Value {
        let args = json!({ "name": label });
        json!({"ph": "M", "pid": 1, "tid": tid, "name": name, "args": args})
    }

    #[test]
    fn accepts_nested_spans_and_metadata() {
        let d = doc(json!([
            meta(0, "thread_name", "main"),
            b(0, 1.0, 1, 0),
            b(0, 2.0, 2, 1),
            e(0, 3.0, 2),
            e(0, 4.0, 1),
            b(1, 2.5, 3, 1),
            e(1, 2.9, 3),
        ]));
        let s = validate(&d).unwrap();
        assert_eq!(s.spans, 3);
        assert_eq!(s.lanes, 2);
        assert_eq!(s.named_lanes, 1);
    }

    #[test]
    fn rejects_unbalanced_begin() {
        let d = doc(json!([b(0, 1.0, 1, 0)]));
        assert!(validate(&d).unwrap_err().contains("never ended"));
    }

    #[test]
    fn rejects_non_lifo_ends() {
        let d = doc(json!([
            b(0, 1.0, 1, 0),
            b(0, 2.0, 2, 1),
            e(0, 3.0, 1),
            e(0, 4.0, 2)
        ]));
        assert!(validate(&d).unwrap_err().contains("not LIFO"));
    }

    #[test]
    fn rejects_backwards_timestamps() {
        let d = doc(json!([b(0, 5.0, 1, 0), e(0, 1.0, 1)]));
        assert!(validate(&d).unwrap_err().contains("backwards"));
    }

    #[test]
    fn rejects_dangling_parent() {
        let d = doc(json!([b(0, 1.0, 1, 99), e(0, 2.0, 1)]));
        assert!(validate(&d).unwrap_err().contains("does not exist"));
    }

    #[test]
    fn rejects_missing_trace_events() {
        assert!(validate(&json!({"nope": []})).is_err());
    }

    #[test]
    fn accepts_stitch_nested_under_merge() {
        let d = doc(json!([
            bn(0, 1.0, 1, 0, "sharded.merge"),
            bn(0, 2.0, 2, 1, "sharded.stitch"),
            e(0, 3.0, 2),
            e(0, 4.0, 1),
        ]));
        assert_eq!(validate(&d).unwrap().spans, 2);
    }

    #[test]
    fn rejects_orphan_stitch_span() {
        let d = doc(json!([bn(0, 1.0, 1, 0, "sharded.stitch"), e(0, 2.0, 1)]));
        let err = validate(&d).unwrap_err();
        assert!(err.contains("sharded.stitch"), "{err}");
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn rejects_stitch_under_wrong_parent() {
        let d = doc(json!([
            bn(0, 1.0, 1, 0, "kmeans.run"),
            bn(0, 2.0, 2, 1, "sharded.stitch"),
            e(0, 3.0, 2),
            e(0, 4.0, 1),
        ]));
        let err = validate(&d).unwrap_err();
        assert!(err.contains("expected a sharded.merge"), "{err}");
    }
}
