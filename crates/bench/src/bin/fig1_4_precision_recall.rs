//! **Figures 1–4 (paper §6.2.3)** — per-cluster precision and recall for a
//! time window under both half-life spans.
//!
//! Figure 1: window 1 (Jan4–Feb2), β = 7; Figure 2: window 1, β = 30;
//! Figure 3: window 4 (Apr4–May3), β = 7; Figure 4: window 4, β = 30.
//!
//! Each marked cluster is one bar pair (precision, recall) labelled with its
//! marked topic; unmarked clusters print with a `-` topic. The reproduced
//! shape: precision is high (≥ 0.6 by construction of marking) in both
//! settings; β = 7 recalls are thinner slices of their topics, and large
//! topics ("Asian Economic Crisis", "Monica Lewinsky Case") appear in more
//! than one cluster.
//!
//! Usage: `fig1_4_precision_recall [--window N]` (1-based, default: both
//! paper windows 1 and 4).

use nidc_bench::{run_window, scale_from_env, topic_label, PreparedCorpus};
use nidc_core::ClusteringConfig;

fn bar(v: f64) -> String {
    let filled = (v * 30.0).round() as usize;
    format!("{}{}", "#".repeat(filled), ".".repeat(30 - filled))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let windows_wanted: Vec<usize> = match args.iter().position(|a| a == "--window") {
        Some(i) => vec![args[i + 1].parse::<usize>().expect("window number") - 1],
        None => vec![0, 3],
    };
    let prep = PreparedCorpus::standard(scale_from_env(1.0));
    let windows = prep.corpus.standard_windows();
    let mut fig = 1;
    for &wi in &windows_wanted {
        for beta in [7.0, 30.0] {
            let config = ClusteringConfig {
                k: 24,
                seed: 22,
                ..ClusteringConfig::default()
            };
            let run = run_window(&prep, &windows[wi], beta, 30.0, &config);
            println!(
                "\nFigure {fig}: clustering result for {} with {}-day half life span",
                windows[wi].label, beta as u32
            );
            println!(
                "(micro F1 {:.2}, macro F1 {:.2}, {} outliers)\n",
                run.evaluation.micro_f1,
                run.evaluation.macro_f1,
                run.clustering.outliers().len()
            );
            println!("cluster  size  P     R     topic");
            for r in &run.evaluation.clusters {
                let topic = match r.marked_topic {
                    Some(t) => topic_label(&prep.corpus, t),
                    None => "-".to_owned(),
                };
                println!(
                    "  c{:02}   {:>5}  {:.2}  {:.2}  {}",
                    r.cluster, r.size, r.precision, r.recall, topic
                );
                println!("        P |{}|", bar(r.precision));
                println!("        R |{}|", bar(r.recall));
            }
            fig += 1;
        }
    }
}
