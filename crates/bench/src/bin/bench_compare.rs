//! **Bench report differ** — compares two BENCH JSON reports metric by
//! metric and exits non-zero when any directional metric regressed past the
//! threshold. The CI `bench-baseline` job runs this against the committed
//! `results/` baselines; it is equally usable by hand when tuning:
//!
//! ```text
//! bench_compare old.json new.json [--threshold 0.10]
//! ```
//!
//! Directions are inferred from field-name suffixes (`_ms`/`_bytes` lower
//! is better, `_per_sec`/`speedup`/`_f1` higher is better, everything else
//! informational); see `nidc_bench::compare` for the exact rules.

use std::process::ExitCode;

use nidc_bench::compare::compare;

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 0.10;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                i += 1;
                let v = args.get(i).ok_or("--threshold requires a value")?;
                threshold = v
                    .parse()
                    .map_err(|_| format!("--threshold: '{v}' is not a number"))?;
            }
            p => paths.push(p.to_owned()),
        }
        i += 1;
    }
    let [old_path, new_path] = paths.as_slice() else {
        return Err("usage: bench_compare OLD.json NEW.json [--threshold 0.10]".into());
    };
    let load = |p: &str| -> Result<serde_json::Value, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("{p}: invalid JSON: {e}"))
    };
    let c = compare(&load(old_path)?, &load(new_path)?, threshold);
    print!("{c}");
    Ok(c.has_regressions())
}

fn main() -> ExitCode {
    match run() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("bench_compare: {msg}");
            ExitCode::FAILURE
        }
    }
}
