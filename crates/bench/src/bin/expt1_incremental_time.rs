//! **Experiment 1 (paper §6.1, Table 1)** — computation time of the
//! incremental vs the non-incremental version.
//!
//! The paper runs on the raw TDT2 feed: Jan 4–18 1998 ≈ 4,327 documents,
//! K = 32, β = 7 days, γ = 14 days (λ ≈ 0.9, ε = 0.25). The non-incremental
//! version recomputes statistics and clusters from scratch over the 15-day
//! backlog; the incremental version reuses the statistics and clustering of
//! Jan 4–17 and only processes Jan 18 (≈ 205 documents).
//!
//! Paper (Ruby, 3.2 GHz Pentium 4):
//!
//! | Approach        | Dataset     | Statistics Updating | Clustering |
//! |-----------------|-------------|---------------------|------------|
//! | Non-incremental | Jan4–Jan18  | 25min21sec          | 58min17sec |
//! | Incremental     | Jan18       |  1min45sec          | 15min25sec |
//!
//! Absolute times are hardware/language-bound; the reproduced claim is the
//! *shape*: statistics updating is roughly proportional to the number of
//! documents touched (≈ 15–20× speedup for a 1-day-in-15 update), and warm-
//! started clustering converges in a fraction of the iterations (multi-×
//! speedup).
//!
//! Scale with `NIDC_SCALE` (documents per day multiplier, default 1.0).
//! With `--json <path>`, also writes the timings as BENCH JSON. With
//! `--metrics <path>` (`--metrics-format jsonl|prom`), exports one
//! instrumentation snapshot covering the whole run.

use std::time::{Duration, Instant};

use nidc_bench::{
    fmt_duration, metrics_from_args, scale_from_env, trace_from_args, write_json_report,
};
use nidc_core::{cluster_with_initial, ClusteringConfig, InitialState};
use nidc_corpus::Generator;
use nidc_forgetting::{DecayParams, Repository, Timestamp};
use nidc_similarity::DocVectors;
use nidc_textproc::{DocId, Pipeline, SparseVector, Vocabulary};

fn main() {
    let mut exporter = metrics_from_args();
    let trace = trace_from_args();
    let scale = scale_from_env(1.0);
    let per_day = (288.0 * scale).round().max(1.0) as u32; // ≈ 4327 docs over 15 days
    let days = 15u32;
    println!("Experiment 1: incremental vs non-incremental computation time");
    println!("stream: {days} days × {per_day} docs/day (≈ paper's Jan4–Jan18 backlog)\n");

    let corpus = Generator::dense_stream(19980104, days, per_day, 48);
    let pipeline = Pipeline::raw();
    let mut vocab = Vocabulary::new();
    let tfs: Vec<(DocId, f64, SparseVector)> = corpus
        .articles()
        .iter()
        .map(|a| {
            (
                DocId(a.id),
                a.day,
                pipeline.analyze(&a.text, &mut vocab).to_sparse(),
            )
        })
        .collect();

    let decay = DecayParams::from_spans(7.0, 14.0).expect("paper setting");
    let config = ClusteringConfig {
        k: 32,
        seed: 42,
        ..ClusteringConfig::default()
    };
    let backlog: Vec<_> = tfs.iter().filter(|(_, d, _)| *d < 14.0).cloned().collect();
    let last_day: Vec<_> = tfs.iter().filter(|(_, d, _)| *d >= 14.0).cloned().collect();

    // ---------------- Non-incremental: everything from scratch -----------
    let t = Instant::now();
    let mut repo_full = Repository::new(decay);
    for (id, day, tf) in &tfs {
        repo_full
            .insert(*id, Timestamp(*day), tf.clone())
            .expect("chronological");
    }
    repo_full.advance_to(Timestamp(15.0)).unwrap();
    repo_full.expire();
    let stats_noninc = t.elapsed();

    let t = Instant::now();
    let vecs = DocVectors::build(&repo_full);
    let cold = cluster_with_initial(&vecs, &config, InitialState::Random).expect("cluster");
    let cluster_noninc = t.elapsed();

    // ---------------- Incremental: reuse day-0..13 state -----------------
    // (setup below is NOT timed: it is the state assumed to already exist)
    let mut repo_inc = Repository::new(decay);
    for (id, day, tf) in &backlog {
        repo_inc
            .insert(*id, Timestamp(*day), tf.clone())
            .expect("chronological");
    }
    repo_inc.advance_to(Timestamp(14.0)).unwrap();
    repo_inc.expire();
    let warm_vecs = DocVectors::build(&repo_inc);
    let warm = cluster_with_initial(&warm_vecs, &config, InitialState::Random).expect("warm");
    let previous = warm.assignment();

    // timed: incremental statistics update for the new day
    let t = Instant::now();
    for (id, day, tf) in &last_day {
        repo_inc
            .insert(*id, Timestamp(*day), tf.clone())
            .expect("chronological");
    }
    repo_inc.advance_to(Timestamp(15.0)).unwrap();
    repo_inc.expire();
    let stats_inc = t.elapsed();

    // timed: warm-started clustering
    let t = Instant::now();
    let vecs_inc = DocVectors::build(&repo_inc);
    let inc = cluster_with_initial(&vecs_inc, &config, InitialState::Assignment(previous))
        .expect("cluster");
    let cluster_inc = t.elapsed();

    // ---------------- Report (Table 1 layout) ----------------------------
    println!(
        "| Approach        | Dataset      | Statistics Updating | Clustering   | iterations |"
    );
    println!(
        "|-----------------|--------------|---------------------|--------------|------------|"
    );
    println!(
        "| Non-incremental | day0-day15   | {:>19} | {:>12} | {:>10} |",
        fmt_duration(stats_noninc),
        fmt_duration(cluster_noninc),
        cold.iterations()
    );
    println!(
        "| Incremental     | day14-day15  | {:>19} | {:>12} | {:>10} |",
        fmt_duration(stats_inc),
        fmt_duration(cluster_inc),
        inc.iterations()
    );
    let ratio = |a: Duration, b: Duration| a.as_secs_f64() / b.as_secs_f64().max(1e-9);
    println!(
        "\nspeedups: statistics {:.1}x (paper: 14.5x), clustering {:.1}x (paper: 3.8x)",
        ratio(stats_noninc, stats_inc),
        ratio(cluster_noninc, cluster_inc),
    );
    println!(
        "docs: backlog {} + new day {} = {}",
        backlog.len(),
        last_day.len(),
        tfs.len()
    );

    if let Some(m) = exporter.as_mut() {
        m.record_window(&[("scale", scale)])
            .expect("write metrics snapshot");
        m.finish().expect("flush metrics export");
    }
    if let Some(t) = trace {
        t.finish(&mut std::io::stdout())
            .expect("write trace output");
    }

    {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        write_json_report(
            "expt1_incremental_time",
            None,
            serde_json::json!({
                "scale": scale,
                "docs": { "backlog": backlog.len(), "new_day": last_day.len() },
                "results": [
                    { "name": "stats_nonincremental", "wall_ms": ms(stats_noninc) },
                    { "name": "cluster_nonincremental", "wall_ms": ms(cluster_noninc),
                      "iterations": cold.iterations() },
                    { "name": "stats_incremental", "wall_ms": ms(stats_inc) },
                    { "name": "cluster_incremental", "wall_ms": ms(cluster_inc),
                      "iterations": inc.iterations() },
                ],
                "speedups": {
                    "statistics": ratio(stats_noninc, stats_inc),
                    "clustering": ratio(cluster_noninc, cluster_inc),
                },
            }),
        );
    }
}
