//! **Lifecycle-event stream gate** — CI's guard against a malformed or
//! internally inconsistent `--events` export. Reads a JSON-lines lifecycle
//! event stream (the `--events` output of `online_simulation` or the CLI)
//! and exits non-zero unless the stream is well formed:
//!
//! * the first line is the schema header `{"schema":"nidc-events","v":1}`
//!   and the version is one this checker understands;
//! * every event line is a single JSON object of a known `kind`;
//! * `window` indices are monotone non-decreasing;
//! * lineage ids resolve — `birth`/`split` introduce fresh ids, every other
//!   reference names a lineage that is alive (or, for the `from` side of
//!   `moved`/`outliered`, died earlier in the same window), and nothing is
//!   heard from a lineage after its `death`;
//! * `split`/`merge` conserve members: `1 ≤ from_parent ≤` the parent's
//!   last recorded size, `1 ≤ from_absorbed ≤` the absorbed lineage's
//!   `last_size`, and a `death`'s `last_size` equals the size the lineage
//!   last reported;
//! * `drift` is a finite number in `[0, 1]`.
//!
//! With `--metrics FILE` (the matching `--metrics` JSONL export of the same
//! run), additionally cross-checks that the event counts equal the summed
//! per-window `nidc_lifecycle_{births,deaths,splits,merges}_total` counter
//! deltas — the counters and the stream are written by the same observation
//! pass, so a mismatch means events were dropped or double-counted.
//!
//! Usage: `check_events --events FILE [--metrics FILE]`

use std::collections::BTreeMap;
use std::process::ExitCode;

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Liveness {
    Alive,
    /// Died at this window index (its `from` may still be referenced by
    /// `moved`/`outliered` events of the same window).
    Dead(u64),
}

/// Per-lineage bookkeeping while scanning the stream.
#[derive(Debug)]
struct Lineage {
    state: Liveness,
    /// Member count the lineage last reported (birth/split/continuation).
    last_size: usize,
}

#[derive(Default)]
struct Counts {
    births: u64,
    deaths: u64,
    splits: u64,
    merges: u64,
    continuations: u64,
    moved: u64,
    outliered: u64,
}

fn field_u64(v: &serde_json::Value, name: &str, ctx: &str) -> Result<u64, String> {
    v.get(name)
        .and_then(|f| f.as_u64())
        .ok_or_else(|| format!("{ctx}: missing or non-integer field \"{name}\""))
}

fn field_str<'a>(v: &'a serde_json::Value, name: &str, ctx: &str) -> Result<&'a str, String> {
    v.get(name)
        .and_then(|f| f.as_str())
        .ok_or_else(|| format!("{ctx}: missing or non-string field \"{name}\""))
}

struct Validator {
    lineages: BTreeMap<u64, Lineage>,
    window: u64,
    counts: Counts,
    events: u64,
}

impl Validator {
    fn new() -> Self {
        Self {
            lineages: BTreeMap::new(),
            window: 0,
            counts: Counts::default(),
            events: 0,
        }
    }

    fn alive(&self, id: u64, ctx: &str) -> Result<&Lineage, String> {
        match self.lineages.get(&id) {
            Some(l) if l.state == Liveness::Alive => Ok(l),
            Some(_) => Err(format!("{ctx}: lineage {id} is already dead")),
            None => Err(format!("{ctx}: lineage {id} was never introduced")),
        }
    }

    /// A `from` reference of `moved`/`outliered`: the lineage existed last
    /// window, so it is alive or died earlier *in this same window*.
    fn check_from_ref(&self, id: u64, ctx: &str) -> Result<(), String> {
        match self.lineages.get(&id) {
            Some(l) if l.state == Liveness::Alive => Ok(()),
            Some(l) if l.state == Liveness::Dead(self.window) => Ok(()),
            Some(_) => Err(format!(
                "{ctx}: lineage {id} died before window {}",
                self.window
            )),
            None => Err(format!("{ctx}: lineage {id} was never introduced")),
        }
    }

    fn introduce(&mut self, id: u64, size: usize, ctx: &str) -> Result<(), String> {
        if self.lineages.contains_key(&id) {
            return Err(format!("{ctx}: lineage {id} introduced twice"));
        }
        self.lineages.insert(
            id,
            Lineage {
                state: Liveness::Alive,
                last_size: size,
            },
        );
        Ok(())
    }

    fn check_event(&mut self, v: &serde_json::Value, ctx: &str) -> Result<(), String> {
        let kind = field_str(v, "kind", ctx)?.to_string();
        let window = field_u64(v, "window", ctx)?;
        if window < self.window {
            return Err(format!(
                "{ctx}: window went backwards ({window} after {})",
                self.window
            ));
        }
        self.window = window;
        self.events += 1;
        match kind.as_str() {
            "birth" => {
                let lineage = field_u64(v, "lineage", ctx)?;
                let size = field_u64(v, "size", ctx)? as usize;
                field_str(v, "cluster", ctx)?;
                self.introduce(lineage, size, ctx)?;
                self.counts.births += 1;
            }
            "split" => {
                let lineage = field_u64(v, "lineage", ctx)?;
                let parent = field_u64(v, "parent", ctx)?;
                let size = field_u64(v, "size", ctx)? as usize;
                let from_parent = field_u64(v, "from_parent", ctx)? as usize;
                field_str(v, "cluster", ctx)?;
                let parent_size = self.alive(parent, ctx)?.last_size;
                if from_parent < 1 || from_parent > parent_size {
                    return Err(format!(
                        "{ctx}: split takes {from_parent} members from parent {parent} \
                         which last had {parent_size}"
                    ));
                }
                if from_parent > size {
                    return Err(format!(
                        "{ctx}: split inherited {from_parent} members but holds only {size}"
                    ));
                }
                self.introduce(lineage, size, ctx)?;
                self.counts.splits += 1;
            }
            "continuation" => {
                let lineage = field_u64(v, "lineage", ctx)?;
                let size = field_u64(v, "size", ctx)? as usize;
                field_str(v, "cluster", ctx)?;
                field_u64(v, "joined", ctx)?;
                field_u64(v, "left", ctx)?;
                let drift = v
                    .get("drift")
                    .and_then(|f| f.as_f64())
                    .ok_or_else(|| format!("{ctx}: missing or non-numeric \"drift\""))?;
                if !drift.is_finite() || !(0.0..=1.0).contains(&drift) {
                    return Err(format!("{ctx}: drift {drift} outside [0, 1]"));
                }
                self.alive(lineage, ctx)?;
                self.lineages.get_mut(&lineage).expect("alive").last_size = size;
                self.counts.continuations += 1;
            }
            "merge" => {
                let absorbed = field_u64(v, "absorbed", ctx)?;
                let into = field_u64(v, "into", ctx)?;
                let from_absorbed = field_u64(v, "from_absorbed", ctx)? as usize;
                let absorbed_size = self.alive(absorbed, ctx)?.last_size;
                self.alive(into, ctx)?;
                if from_absorbed < 1 || from_absorbed > absorbed_size {
                    return Err(format!(
                        "{ctx}: merge moves {from_absorbed} members out of lineage {absorbed} \
                         which last had {absorbed_size}"
                    ));
                }
                self.counts.merges += 1;
            }
            "death" => {
                let lineage = field_u64(v, "lineage", ctx)?;
                let last_size = field_u64(v, "last_size", ctx)? as usize;
                let cause = field_str(v, "cause", ctx)?;
                if cause != "expired" && cause != "absorbed" {
                    return Err(format!("{ctx}: unknown death cause \"{cause}\""));
                }
                let recorded = self.alive(lineage, ctx)?.last_size;
                if last_size != recorded {
                    return Err(format!(
                        "{ctx}: death reports last_size {last_size} but lineage {lineage} \
                         last reported {recorded}"
                    ));
                }
                self.lineages.get_mut(&lineage).expect("alive").state = Liveness::Dead(window);
                self.counts.deaths += 1;
            }
            "moved" => {
                field_u64(v, "doc", ctx)?;
                let from = field_u64(v, "from", ctx)?;
                let to = field_u64(v, "to", ctx)?;
                self.check_from_ref(from, ctx)?;
                self.alive(to, ctx)?;
                self.counts.moved += 1;
            }
            "outliered" => {
                field_u64(v, "doc", ctx)?;
                let from = field_u64(v, "from", ctx)?;
                self.check_from_ref(from, ctx)?;
                self.counts.outliered += 1;
            }
            other => return Err(format!("{ctx}: unknown event kind \"{other}\"")),
        }
        Ok(())
    }
}

/// Validates the whole stream; returns the final tallies.
fn check_stream(jsonl: &str) -> Result<Validator, String> {
    let mut lines = jsonl
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());

    let (header_no, header) = lines.next().ok_or("event stream is empty")?;
    let hv: serde_json::Value = serde_json::from_str(header)
        .map_err(|e| format!("line {}: invalid JSON header: {e}", header_no + 1))?;
    let schema = hv.get("schema").and_then(|s| s.as_str()).unwrap_or("");
    if schema != "nidc-events" {
        return Err(format!(
            "line {}: not an nidc-events stream (schema \"{schema}\")",
            header_no + 1
        ));
    }
    let version = hv.get("v").and_then(|s| s.as_u64()).unwrap_or(0);
    if version != u64::from(nidc_obs::EVENTS_SCHEMA_VERSION) {
        return Err(format!(
            "line {}: schema version {version} is not the supported version {}",
            header_no + 1,
            nidc_obs::EVENTS_SCHEMA_VERSION
        ));
    }

    let mut validator = Validator::new();
    for (lineno, line) in lines {
        let ctx = format!("line {}", lineno + 1);
        let v: serde_json::Value =
            serde_json::from_str(line).map_err(|e| format!("{ctx}: invalid JSON: {e}"))?;
        validator.check_event(&v, &ctx)?;
    }
    Ok(validator)
}

/// Sums a counter's per-window deltas across every snapshot line of a
/// metrics JSONL export.
fn counter_total(jsonl: &str, name: &str) -> Result<u64, String> {
    let mut total = 0u64;
    for (lineno, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: serde_json::Value = serde_json::from_str(line)
            .map_err(|e| format!("metrics line {}: invalid JSON: {e}", lineno + 1))?;
        if let Some(n) = v
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(|n| n.as_u64())
        {
            total += n;
        }
    }
    Ok(total)
}

fn cross_check(metrics_path: &str, counts: &Counts) -> Result<(), String> {
    let jsonl = std::fs::read_to_string(metrics_path)
        .map_err(|e| format!("cannot read metrics export {metrics_path}: {e}"))?;
    let pairs: [(&str, u64); 4] = [
        ("nidc_lifecycle_births_total", counts.births),
        ("nidc_lifecycle_deaths_total", counts.deaths),
        ("nidc_lifecycle_splits_total", counts.splits),
        ("nidc_lifecycle_merges_total", counts.merges),
    ];
    let mut mismatches = Vec::new();
    for (name, from_events) in pairs {
        let from_counters = counter_total(&jsonl, name)?;
        if from_counters != from_events {
            mismatches.push(format!(
                "  - {name}: {from_counters} from counters, {from_events} from events"
            ));
        }
    }
    if mismatches.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "event counts disagree with {metrics_path}:\n{}",
            mismatches.join("\n")
        ))
    }
}

fn run() -> Result<(), String> {
    let events_path =
        arg_value("--events").ok_or("usage: check_events --events FILE [--metrics FILE]")?;
    let jsonl = std::fs::read_to_string(&events_path)
        .map_err(|e| format!("cannot read event stream {events_path}: {e}"))?;
    let v = check_stream(&jsonl)?;
    if let Some(metrics_path) = arg_value("--metrics") {
        cross_check(&metrics_path, &v.counts)?;
        println!("check_events: counters in {metrics_path} match the stream");
    }
    let alive = v
        .lineages
        .values()
        .filter(|l| l.state == Liveness::Alive)
        .count();
    let windows = if v.events == 0 { 0 } else { v.window + 1 };
    println!(
        "check_events: {} events over {} window(s) OK — {} lineages ({} still alive), \
         {} births, {} deaths, {} splits, {} merges, {} continuations, {} moved, {} outliered",
        v.events,
        windows,
        v.lineages.len(),
        alive,
        v.counts.births,
        v.counts.deaths,
        v.counts.splits,
        v.counts.merges,
        v.counts.continuations,
        v.counts.moved,
        v.counts.outliered
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("check_events: {msg}");
            ExitCode::FAILURE
        }
    }
}
