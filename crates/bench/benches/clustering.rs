//! End-to-end clustering benchmarks: one extended-K-means run per paper
//! experiment setting, on a reduced-scale corpus (Criterion needs many
//! repetitions, so the workload is the 0.15-scale analogue of each table's
//! setting; the experiment binaries run the full-scale versions once).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use nidc_bench::{run_window, PreparedCorpus};
use nidc_core::{cluster_with_initial, ClusteringConfig, InitialState};
use nidc_corpus::Generator;
use nidc_forgetting::{DecayParams, Repository, Timestamp};
use nidc_similarity::DocVectors;
use nidc_textproc::{DocId, Pipeline, SparseVector, Vocabulary};

/// Table 4 kernel: cluster one window under each half-life span.
fn bench_window_clustering(c: &mut Criterion) {
    let prep = PreparedCorpus::standard(0.15);
    let windows = prep.corpus.standard_windows();
    for beta in [7.0, 30.0] {
        c.bench_function(&format!("table4_window1_beta{}", beta as u32), |bench| {
            bench.iter(|| {
                let config = ClusteringConfig {
                    k: 24,
                    seed: 22,
                    ..ClusteringConfig::default()
                };
                black_box(run_window(&prep, &windows[0], beta, 30.0, &config))
            })
        });
    }
}

/// Table 1 kernel: incremental vs cold statistics + clustering on a dense
/// stream (the Experiment 1 contrast at bench scale).
fn bench_incremental_vs_cold(c: &mut Criterion) {
    let corpus = Generator::dense_stream(7, 15, 40, 32);
    let pipeline = Pipeline::raw();
    let mut vocab = Vocabulary::new();
    let tfs: Vec<(DocId, f64, SparseVector)> = corpus
        .articles()
        .iter()
        .map(|a| {
            (
                DocId(a.id),
                a.day,
                pipeline.analyze(&a.text, &mut vocab).to_sparse(),
            )
        })
        .collect();
    let decay = DecayParams::from_spans(7.0, 14.0).unwrap();
    let config = ClusteringConfig {
        k: 32,
        seed: 42,
        ..ClusteringConfig::default()
    };

    // warm state through day 14
    let mut repo = Repository::new(decay);
    for (id, day, tf) in tfs.iter().filter(|(_, d, _)| *d < 14.0) {
        repo.insert(*id, Timestamp(*day), tf.clone()).unwrap();
    }
    repo.advance_to(Timestamp(14.0)).unwrap();
    let warm_vecs = DocVectors::build(&repo);
    let warm = cluster_with_initial(&warm_vecs, &config, InitialState::Random).unwrap();
    let prev = warm.assignment();
    let last_day: Vec<_> = tfs.iter().filter(|(_, d, _)| *d >= 14.0).cloned().collect();

    c.bench_function("table1_incremental_day", |bench| {
        bench.iter_batched(
            || (repo.clone(), last_day.clone(), prev.clone()),
            |(mut r, docs, prev)| {
                for (id, day, tf) in docs {
                    r.insert(id, Timestamp(day), tf).unwrap();
                }
                r.advance_to(Timestamp(15.0)).unwrap();
                r.expire();
                let vecs = DocVectors::build(&r);
                black_box(
                    cluster_with_initial(&vecs, &config, InitialState::Assignment(prev)).unwrap(),
                )
            },
            BatchSize::LargeInput,
        )
    });

    c.bench_function("table1_noninc_full", |bench| {
        bench.iter_batched(
            || tfs.clone(),
            |docs| {
                let mut r = Repository::new(decay);
                for (id, day, tf) in docs {
                    r.insert(id, Timestamp(day), tf).unwrap();
                }
                r.advance_to(Timestamp(15.0)).unwrap();
                r.expire();
                let vecs = DocVectors::build(&r);
                black_box(cluster_with_initial(&vecs, &config, InitialState::Random).unwrap())
            },
            BatchSize::LargeInput,
        )
    });
}

/// Corpus generation + windowing (Tables 2/5, Figures 5–9 substrate).
fn bench_corpus_generation(c: &mut Criterion) {
    c.bench_function("corpus_generate_scale0.1", |bench| {
        bench.iter(|| {
            let corpus = Generator::new(nidc_corpus::GeneratorConfig {
                scale: 0.1,
                ..nidc_corpus::GeneratorConfig::default()
            })
            .generate();
            black_box(corpus.standard_windows().len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_window_clustering, bench_incremental_vs_cold, bench_corpus_generation
}
criterion_main!(benches);
