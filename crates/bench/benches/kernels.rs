//! Micro-benchmarks of the hot kernels:
//!
//! * the §4.4 claim — O(|φ|) `avg_sim_if_added` vs naive O(n²) pairwise
//!   recomputation;
//! * the §5.1 claim — incremental statistics update vs from-scratch rebuild;
//! * the sparse-vector dot product and the text pipeline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nidc_forgetting::{DecayParams, Repository, Timestamp};
use nidc_similarity::ClusterRep;
use nidc_textproc::{DocId, Pipeline, SparseVector, TermId, Vocabulary};

fn random_phi(rng: &mut StdRng, dim: u32, nnz: usize) -> SparseVector {
    SparseVector::from_entries(
        (0..nnz)
            .map(|_| (TermId(rng.gen_range(0..dim)), rng.gen_range(0.01..1.0)))
            .collect(),
    )
}

fn bench_sparse_dot(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = random_phi(&mut rng, 50_000, 120);
    let b = random_phi(&mut rng, 50_000, 120);
    c.bench_function("sparse_dot_120nnz", |bench| {
        bench.iter(|| black_box(a.dot(black_box(&b))))
    });
}

fn bench_avg_sim_update_vs_naive(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let dim = 50_000u32;
    let members: Vec<SparseVector> = (0..200).map(|_| random_phi(&mut rng, dim, 120)).collect();
    let newcomer = random_phi(&mut rng, dim, 120);
    let rep = ClusterRep::from_members(members.iter());

    // the paper's fast path: eq. 26 via the representative
    c.bench_function("avg_sim_if_added_rep_200docs", |bench| {
        bench.iter(|| black_box(rep.avg_sim_if_added(black_box(&newcomer))))
    });

    // the naive path the paper §4.4 replaces: full pairwise recomputation
    c.bench_function("avg_sim_if_added_naive_200docs", |bench| {
        bench.iter(|| {
            let mut all: Vec<&SparseVector> = members.iter().collect();
            all.push(&newcomer);
            let n = all.len();
            let mut acc = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    acc += all[i].dot(all[j]);
                }
            }
            black_box(2.0 * acc / (n as f64 * (n as f64 - 1.0)))
        })
    });
}

fn stats_repo(n_docs: u64) -> Repository {
    let mut rng = StdRng::seed_from_u64(3);
    let mut repo = Repository::new(DecayParams::from_spans(7.0, 14.0).unwrap());
    for i in 0..n_docs {
        let tf = random_phi(&mut rng, 20_000, 120);
        repo.insert(DocId(i), Timestamp(i as f64 / 300.0), tf)
            .unwrap();
    }
    repo
}

fn bench_stats_update(c: &mut Criterion) {
    let repo = stats_repo(3000);
    let mut rng = StdRng::seed_from_u64(4);
    let new_docs: Vec<(DocId, SparseVector)> = (0..200)
        .map(|i| (DocId(10_000 + i), random_phi(&mut rng, 20_000, 120)))
        .collect();

    // §5.1 incremental: decay-scale + insert one day of documents
    c.bench_function("stats_update_incremental_200new", |bench| {
        bench.iter_batched(
            || (repo.clone(), new_docs.clone()),
            |(mut r, docs)| {
                let t = Timestamp(r.now().days() + 1.0);
                r.insert_batch(t, docs).unwrap();
                black_box(r.tdw())
            },
            BatchSize::LargeInput,
        )
    });

    // non-incremental: rebuild every statistic from scratch
    c.bench_function("stats_update_scratch_3000docs", |bench| {
        bench.iter_batched(
            || repo.clone(),
            |mut r| {
                r.recompute_from_scratch();
                black_box(r.tdw())
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_text_pipeline(c: &mut Criterion) {
    let text = "The committee announced that negotiations over the national \
                tobacco settlement would resume next week, with lawmakers \
                predicting a difficult compromise on advertising restrictions \
                and liability protections for the industry"
        .repeat(4);
    let pipeline = Pipeline::english();
    c.bench_function("pipeline_english_analyze", |bench| {
        bench.iter_batched(
            Vocabulary::new,
            |mut vocab| black_box(pipeline.analyze(&text, &mut vocab)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_sparse_dot,
    bench_avg_sim_update_vs_naive,
    bench_stats_update,
    bench_text_pipeline
);
criterion_main!(benches);
