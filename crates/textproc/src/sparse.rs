//! Sorted sparse vectors over [`TermId`]s.
//!
//! Documents, tf·idf vectors, and cluster representatives (paper eq. 19–20) are
//! all sparse maps `TermId → f64`. We store them as a `Vec<(TermId, f64)>`
//! sorted by term id, which makes dot products and linear combinations cheap
//! sorted merges and keeps memory contiguous.

use crate::TermId;

/// A sparse vector: strictly-increasing `TermId`s paired with `f64` weights.
///
/// Invariants (checked in debug builds, preserved by all constructors and
/// operations):
/// * entries sorted by term id, no duplicates;
/// * no explicitly stored zeros (entries with weight exactly `0.0` are pruned
///   by [`SparseVector::from_entries`] and arithmetic helpers).
///
/// ```
/// use nidc_textproc::{SparseVector, TermId};
///
/// let a = SparseVector::from_entries(vec![(TermId(0), 1.0), (TermId(2), 2.0)]);
/// let b = SparseVector::from_entries(vec![(TermId(2), 3.0), (TermId(5), 1.0)]);
/// assert_eq!(a.dot(&b), 6.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVector {
    entries: Vec<(TermId, f64)>,
}

impl SparseVector {
    /// The empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a vector from arbitrary `(id, weight)` pairs.
    ///
    /// Pairs are sorted; duplicate ids are summed; zero weights are dropped.
    pub fn from_entries(mut entries: Vec<(TermId, f64)>) -> Self {
        entries.sort_unstable_by_key(|&(id, _)| id);
        let mut out: Vec<(TermId, f64)> = Vec::with_capacity(entries.len());
        for (id, w) in entries {
            match out.last_mut() {
                Some((last_id, last_w)) if *last_id == id => *last_w += w,
                _ => out.push((id, w)),
            }
        }
        out.retain(|&(_, w)| w != 0.0);
        Self { entries: out }
    }

    /// Builds a vector from entries already sorted by strictly-increasing id.
    ///
    /// # Panics
    /// In debug builds, panics if the ordering invariant is violated.
    pub fn from_sorted(entries: Vec<(TermId, f64)>) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "entries must be sorted by strictly increasing TermId"
        );
        Self { entries }
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector has no stored entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stored entries, sorted by term id.
    pub fn entries(&self) -> &[(TermId, f64)] {
        &self.entries
    }

    /// The weight of term `id` (0.0 if absent).
    pub fn get(&self, id: TermId) -> f64 {
        match self.entries.binary_search_by_key(&id, |&(t, _)| t) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0.0,
        }
    }

    /// Dot product via sorted merge: `Σ_k a_k · b_k`.
    pub fn dot(&self, other: &SparseVector) -> f64 {
        let (mut i, mut j) = (0, 0);
        let (a, b) = (&self.entries, &other.entries);
        let mut acc = 0.0;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += a[i].1 * b[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Squared Euclidean norm `Σ_k a_k²`.
    pub fn norm_sq(&self) -> f64 {
        self.entries.iter().map(|&(_, w)| w * w).sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Sum of weights `Σ_k a_k` (the document length `len_i` of eq. 15 when the
    /// weights are raw term frequencies).
    pub fn sum(&self) -> f64 {
        self.entries.iter().map(|&(_, w)| w).sum()
    }

    /// Returns `self + scale · other` as a new vector (merge-based).
    pub fn add_scaled(&self, other: &SparseVector, scale: f64) -> SparseVector {
        let (a, b) = (&self.entries, &other.entries);
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < b.len() {
            let pick_a = match (a.get(i), b.get(j)) {
                (Some(x), Some(y)) => x.0 <= y.0,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!(),
            };
            if pick_a {
                let (id, w) = a[i];
                i += 1;
                if j < b.len() && b[j].0 == id {
                    let merged = w + scale * b[j].1;
                    j += 1;
                    if merged != 0.0 {
                        out.push((id, merged));
                    }
                } else {
                    out.push((id, w));
                }
            } else {
                let (id, w) = b[j];
                j += 1;
                let scaled = scale * w;
                if scaled != 0.0 {
                    out.push((id, scaled));
                }
            }
        }
        SparseVector { entries: out }
    }

    /// Adds `scale · other` into `self` in place (sorted merge).
    ///
    /// The merge reuses `self`'s allocation when `other` introduces no new
    /// term ids (the common case for cluster-representative maintenance,
    /// where a member's terms are already present); otherwise one new buffer
    /// of size `nnz(self) + nnz(other)` is built.
    ///
    /// Entries whose merged weight is exactly `0.0` are pruned, preserving
    /// the no-stored-zeros invariant. Each surviving weight is produced by
    /// the single scalar operation `a + scale·b` (or `scale·b` for new
    /// terms), so repeated calls accumulate bit-identically to a dense
    /// per-slot `+=` loop applied in the same order.
    pub fn axpy_in_place(&mut self, other: &SparseVector, scale: f64) {
        if scale == 0.0 || other.is_empty() {
            return;
        }
        // Fast path: every term of `other` already exists in `self` —
        // update weights in place, pruning exact zeros only if one appeared
        // (weights cancel to exactly 0.0 only on removals, so the common
        // append case skips the O(nnz) retain scan entirely).
        let mut j = 0;
        let mut in_place = true;
        let mut zeroed = false;
        {
            let a = &mut self.entries;
            let b = &other.entries;
            let mut i = 0;
            while j < b.len() {
                match a[i..].binary_search_by_key(&b[j].0, |&(t, _)| t) {
                    Ok(off) => {
                        i += off;
                        a[i].1 += scale * b[j].1;
                        zeroed |= a[i].1 == 0.0;
                        j += 1;
                    }
                    Err(_) => {
                        in_place = false;
                        break;
                    }
                }
            }
        }
        if in_place {
            if zeroed {
                self.entries.retain(|&(_, w)| w != 0.0);
            }
            return;
        }
        // General path: fold the remaining terms of `other` (position `j`
        // on) in by a backward in-place merge. Counting the genuinely new
        // terms first lets the vector grow once at the tail and merge from
        // the back, so no fresh allocation is made and spare capacity is
        // reused across long add/remove chains — the cost that dominates
        // representative maintenance when documents churn between clusters.
        let b = &other.entries[j..];
        let old_len = self.entries.len();
        let mut extra = 0usize;
        {
            let a = &self.entries;
            let (mut i, mut jj) = (0, 0);
            while jj < b.len() {
                if i >= a.len() || a[i].0 > b[jj].0 {
                    extra += 1;
                    jj += 1;
                } else if a[i].0 == b[jj].0 {
                    i += 1;
                    jj += 1;
                } else {
                    i += 1;
                }
            }
        }
        self.entries.resize(old_len + extra, (TermId(0), 0.0));
        let a = &mut self.entries;
        let mut write = old_len + extra;
        let (mut i, mut jj) = (old_len as isize - 1, b.len() as isize - 1);
        // invariant: write == (i+1) + (jj+1) + <remaining prefix of a>, so a
        // write never clobbers an unread a[..=i] slot
        while jj >= 0 {
            write -= 1;
            if i >= 0 && a[i as usize].0 == b[jj as usize].0 {
                let w = a[i as usize].1 + scale * b[jj as usize].1;
                a[write] = (a[i as usize].0, w);
                zeroed |= w == 0.0;
                i -= 1;
                jj -= 1;
            } else if i >= 0 && a[i as usize].0 > b[jj as usize].0 {
                a[write] = a[i as usize];
                i -= 1;
            } else {
                let scaled = scale * b[jj as usize].1;
                a[write] = (b[jj as usize].0, scaled);
                zeroed |= scaled == 0.0;
                jj -= 1;
            }
        }
        debug_assert_eq!(write as isize, i + 1);
        if zeroed {
            self.entries.retain(|&(_, w)| w != 0.0);
        }
    }

    /// Returns the vector scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> SparseVector {
        if factor == 0.0 {
            return SparseVector::new();
        }
        SparseVector {
            entries: self
                .entries
                .iter()
                .map(|&(id, w)| (id, w * factor))
                .collect(),
        }
    }

    /// Scales the vector in place.
    pub fn scale_in_place(&mut self, factor: f64) {
        if factor == 0.0 {
            self.entries.clear();
            return;
        }
        for (_, w) in &mut self.entries {
            *w *= factor;
        }
    }

    /// Returns the unit-normalised copy, or `None` for the zero vector.
    pub fn normalized(&self) -> Option<SparseVector> {
        let n = self.norm();
        if n == 0.0 {
            None
        } else {
            Some(self.scaled(1.0 / n))
        }
    }

    /// Cosine similarity with `other`; 0.0 if either vector is zero.
    pub fn cosine(&self, other: &SparseVector) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            self.dot(other) / denom
        }
    }

    /// Iterates over `(TermId, f64)` entries in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, f64)> + '_ {
        self.entries.iter().copied()
    }
}

impl nidc_obs::DeepSize for SparseVector {
    /// Heap footprint: the entry buffer's full *capacity* (spare capacity is
    /// real resident memory — `axpy_in_place` deliberately over-allocates to
    /// amortise churn, and the gauges should see that).
    fn deep_size_bytes(&self) -> u64 {
        (self.entries.capacity() * std::mem::size_of::<(TermId, f64)>()) as u64
    }
}

impl FromIterator<(TermId, f64)> for SparseVector {
    fn from_iter<I: IntoIterator<Item = (TermId, f64)>>(iter: I) -> Self {
        Self::from_entries(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
    }

    #[test]
    fn from_entries_sorts_merges_and_prunes() {
        let s = v(&[(3, 1.0), (1, 2.0), (3, 4.0), (2, 0.0)]);
        assert_eq!(s.entries(), &[(TermId(1), 2.0), (TermId(3), 5.0)]);
    }

    #[test]
    fn get_absent_is_zero() {
        let s = v(&[(1, 2.0)]);
        assert_eq!(s.get(TermId(0)), 0.0);
        assert_eq!(s.get(TermId(1)), 2.0);
        assert_eq!(s.get(TermId(2)), 0.0);
    }

    #[test]
    fn dot_of_disjoint_is_zero() {
        assert_eq!(v(&[(0, 1.0), (2, 1.0)]).dot(&v(&[(1, 5.0), (3, 5.0)])), 0.0);
    }

    #[test]
    fn dot_matches_dense_computation() {
        let a = v(&[(0, 1.0), (1, 2.0), (4, -3.0)]);
        let b = v(&[(1, 0.5), (2, 9.0), (4, 2.0)]);
        assert!((a.dot(&b) - (2.0 * 0.5 + -3.0 * 2.0)).abs() < 1e-12);
    }

    #[test]
    fn dot_is_commutative() {
        let a = v(&[(0, 1.5), (3, 2.5)]);
        let b = v(&[(0, -1.0), (3, 4.0), (7, 1.0)]);
        assert_eq!(a.dot(&b), b.dot(&a));
    }

    #[test]
    fn norms() {
        let a = v(&[(0, 3.0), (1, 4.0)]);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.sum(), 7.0);
    }

    #[test]
    fn add_scaled_merges_and_cancels() {
        let a = v(&[(0, 1.0), (2, 2.0)]);
        let b = v(&[(1, 3.0), (2, -1.0)]);
        let c = a.add_scaled(&b, 2.0);
        assert_eq!(
            c.entries(),
            &[(TermId(0), 1.0), (TermId(1), 6.0)] // 2.0 + 2*(-1.0) = 0 pruned
        );
    }

    #[test]
    fn axpy_in_place_matches_add_scaled() {
        let cases = [
            (
                vec![(0u32, 1.0), (2, 2.0)],
                vec![(1u32, 3.0), (2, -1.0)],
                2.0,
            ),
            (vec![(0, 1.0), (2, 2.0)], vec![(0, 0.5), (2, 0.25)], -1.0),
            (vec![], vec![(4, 1.0)], 3.0),
            (vec![(7, 1.0)], vec![], 2.0),
            (vec![(1, 1.0), (3, 1.0)], vec![(1, 1.0), (3, 1.0)], -1.0),
        ];
        for (a, b, scale) in cases {
            let a = v(&a);
            let b = v(&b);
            let mut inplace = a.clone();
            inplace.axpy_in_place(&b, scale);
            assert_eq!(
                inplace,
                a.add_scaled(&b, scale),
                "a={a:?} b={b:?} s={scale}"
            );
        }
    }

    #[test]
    fn axpy_in_place_subset_takes_fast_path_and_prunes() {
        // every term of b exists in a: exercised in place, zeros pruned
        let mut a = v(&[(0, 1.0), (3, 2.0), (9, 4.0)]);
        let b = v(&[(3, 2.0), (9, 1.0)]);
        a.axpy_in_place(&b, -1.0);
        assert_eq!(a.entries(), &[(TermId(0), 1.0), (TermId(9), 3.0)]);
    }

    #[test]
    fn add_scaled_with_zero_scale_keeps_self() {
        let a = v(&[(0, 1.0), (5, 2.0)]);
        let b = v(&[(0, 10.0), (9, 10.0)]);
        assert_eq!(a.add_scaled(&b, 0.0), a);
    }

    #[test]
    fn scaled_and_scale_in_place_agree() {
        let a = v(&[(0, 1.0), (5, -2.0)]);
        let mut b = a.clone();
        b.scale_in_place(3.0);
        assert_eq!(a.scaled(3.0), b);
        let mut z = a.clone();
        z.scale_in_place(0.0);
        assert!(z.is_empty());
    }

    #[test]
    fn normalized_unit_norm() {
        let a = v(&[(0, 3.0), (1, 4.0)]);
        let n = a.normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-12);
        assert!(v(&[]).normalized().is_none());
    }

    #[test]
    fn cosine_bounds_and_self_similarity() {
        let a = v(&[(0, 1.0), (1, 1.0)]);
        let b = v(&[(0, 2.0), (1, 2.0)]);
        assert!((a.cosine(&b) - 1.0).abs() < 1e-12);
        assert_eq!(a.cosine(&SparseVector::new()), 0.0);
    }

    #[test]
    fn deep_size_counts_capacity_not_len() {
        use nidc_obs::DeepSize;
        assert_eq!(SparseVector::new().deep_size_bytes(), 0);
        let s = v(&[(0, 1.0), (3, 2.0)]);
        let per_entry = std::mem::size_of::<(TermId, f64)>() as u64;
        assert!(s.deep_size_bytes() >= 2 * per_entry);
    }

    #[test]
    fn from_iterator_collects() {
        let s: SparseVector = [(TermId(2), 1.0), (TermId(0), 1.0)].into_iter().collect();
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.entries()[0].0, TermId(0));
    }
}
