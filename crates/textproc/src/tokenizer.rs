//! Word tokenisation.
//!
//! News text (the paper's input) is tokenised into lower-case word tokens.
//! The tokenizer is configurable so tests and the synthetic corpus (which
//! already produces clean tokens) can bypass filtering steps.

/// Configuration for [`Tokenizer`].
#[derive(Debug, Clone)]
pub struct TokenizerConfig {
    /// Lower-case every token (default: true).
    pub lowercase: bool,
    /// Minimum token length in characters (default: 2).
    pub min_len: usize,
    /// Maximum token length in characters; longer tokens are dropped
    /// (default: 40 — catches URLs and junk).
    pub max_len: usize,
    /// Drop tokens containing any digit (default: false; years like "1998"
    /// are meaningful in news).
    pub drop_numeric: bool,
}

impl Default for TokenizerConfig {
    fn default() -> Self {
        Self {
            lowercase: true,
            min_len: 2,
            max_len: 40,
            drop_numeric: false,
        }
    }
}

/// Splits raw text into word tokens.
///
/// A token is a maximal run of alphanumeric characters; apostrophes and
/// hyphens *inside* a word are kept (so "don't" and "co-operate" survive as
/// single tokens), while all other punctuation separates tokens.
///
/// ```
/// use nidc_textproc::Tokenizer;
///
/// let t = Tokenizer::default();
/// let toks: Vec<_> = t.tokenize("U.S. stocks — they don't fall!").collect();
/// assert_eq!(toks, vec!["u.s", "stocks", "they", "don't", "fall"]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tokenizer {
    config: TokenizerConfig,
}

impl Tokenizer {
    /// Creates a tokenizer with the given configuration.
    pub fn new(config: TokenizerConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &TokenizerConfig {
        &self.config
    }

    /// Tokenises `text`, yielding owned tokens.
    pub fn tokenize<'a>(&'a self, text: &'a str) -> impl Iterator<Item = String> + 'a {
        let cfg = &self.config;
        text.split(|c: char| !(c.is_alphanumeric() || c == '\'' || c == '-' || c == '.'))
            .flat_map(|chunk| {
                // trim joining punctuation from the edges
                let trimmed = chunk.trim_matches(|c: char| c == '\'' || c == '-' || c == '.');
                if trimmed.is_empty() {
                    None
                } else {
                    Some(trimmed)
                }
            })
            .filter_map(move |tok| {
                let n_chars = tok.chars().count();
                if n_chars < cfg.min_len || n_chars > cfg.max_len {
                    return None;
                }
                if cfg.drop_numeric && tok.chars().any(|c| c.is_ascii_digit()) {
                    return None;
                }
                Some(if cfg.lowercase {
                    tok.to_lowercase()
                } else {
                    tok.to_owned()
                })
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(text: &str) -> Vec<String> {
        Tokenizer::default().tokenize(text).collect()
    }

    #[test]
    fn splits_on_whitespace_and_punctuation() {
        assert_eq!(toks("hello, world"), vec!["hello", "world"]);
        assert_eq!(toks("a;b|c"), Vec::<String>::new()); // all length-1
        assert_eq!(toks("one;two|three"), vec!["one", "two", "three"]);
    }

    #[test]
    fn lowercases_by_default() {
        assert_eq!(toks("Asian CRISIS"), vec!["asian", "crisis"]);
    }

    #[test]
    fn keeps_internal_apostrophes_and_hyphens() {
        assert_eq!(toks("don't co-operate"), vec!["don't", "co-operate"]);
    }

    #[test]
    fn trims_edge_punctuation() {
        assert_eq!(
            toks("'quoted' -dashed- end."),
            vec!["quoted", "dashed", "end"]
        );
    }

    #[test]
    fn min_length_filter() {
        assert_eq!(toks("I a to be or"), vec!["to", "be", "or"]);
    }

    #[test]
    fn max_length_filter_drops_junk() {
        let long = "x".repeat(50);
        assert_eq!(toks(&format!("ok {long} fine")), vec!["ok", "fine"]);
    }

    #[test]
    fn numeric_tokens_kept_by_default_dropped_on_request() {
        assert_eq!(toks("in 1998 olympics"), vec!["in", "1998", "olympics"]);
        let t = Tokenizer::new(TokenizerConfig {
            drop_numeric: true,
            ..TokenizerConfig::default()
        });
        let got: Vec<_> = t.tokenize("in 1998 olympics").collect();
        assert_eq!(got, vec!["in", "olympics"]);
    }

    #[test]
    fn unicode_words_survive() {
        assert_eq!(toks("café naïve"), vec!["café", "naïve"]);
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert!(toks("").is_empty());
        assert!(toks("   \t\n").is_empty());
    }
}
