//! The end-to-end text-analysis pipeline: tokenise → stop-filter → stem → count.

use crate::stopwords::StopWords;
use crate::{PorterStemmer, TermCounts, Tokenizer, TokenizerConfig, Vocabulary};

/// A configured analysis pipeline producing [`TermCounts`] from raw text.
///
/// ```
/// use nidc_textproc::{Pipeline, Vocabulary};
///
/// let mut vocab = Vocabulary::new();
/// let p = Pipeline::english();
/// let counts = p.analyze("Markets crashed; the markets are crashing.", &mut vocab);
/// // "markets"/"crashed"/"crashing" stem to shared stems; "the"/"are" are dropped.
/// let market = vocab.get("market").expect("stem interned");
/// assert_eq!(counts.get(market), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline {
    tokenizer: Tokenizer,
    stopwords: StopWords,
    stemmer: Option<PorterStemmer>,
    bigrams: bool,
}

impl Pipeline {
    /// Standard English pipeline: default tokenizer, English stop words,
    /// Porter stemming.
    pub fn english() -> Self {
        Self {
            tokenizer: Tokenizer::default(),
            stopwords: StopWords::english(),
            stemmer: Some(PorterStemmer::new()),
            bigrams: false,
        }
    }

    /// A raw pipeline: tokenisation only (no stop words, no stemming).
    /// Useful for pre-tokenised synthetic corpora.
    pub fn raw() -> Self {
        Self {
            tokenizer: Tokenizer::default(),
            stopwords: StopWords::none(),
            stemmer: None,
            bigrams: false,
        }
    }

    /// Builds a fully custom pipeline.
    pub fn new(tokenizer_config: TokenizerConfig, stopwords: StopWords, stem: bool) -> Self {
        Self {
            tokenizer: Tokenizer::new(tokenizer_config),
            stopwords,
            stemmer: stem.then(PorterStemmer::new),
            bigrams: false,
        }
    }

    /// Additionally index bigrams of consecutive surviving terms
    /// (`"white_house"`-style tokens). Bigrams sharpen topical signatures in
    /// real English text; they are pointless on bag-of-words synthetic
    /// corpora whose token order carries no information.
    pub fn with_bigrams(mut self, on: bool) -> Self {
        self.bigrams = on;
        self
    }

    /// Analyses `text`: tokens are stop-filtered, stemmed (if enabled),
    /// interned into `vocab`, and counted. With bigrams enabled, each pair
    /// of consecutive surviving terms is additionally counted as a
    /// `first_second` term.
    pub fn analyze(&self, text: &str, vocab: &mut Vocabulary) -> TermCounts {
        let mut counts = TermCounts::new();
        let mut prev: Option<String> = None;
        for token in self.tokenizer.tokenize(text) {
            if self.stopwords.contains(&token) {
                prev = None; // stop words break bigram adjacency
                continue;
            }
            let term = match &self.stemmer {
                Some(s) => s.stem(&token),
                None => token,
            };
            if term.is_empty() {
                prev = None;
                continue;
            }
            counts.add(vocab.intern(&term));
            if self.bigrams {
                if let Some(p) = &prev {
                    counts.add(vocab.intern(&format!("{p}_{term}")));
                }
                prev = Some(term);
            }
        }
        counts
    }

    /// Analyses a batch of texts, sharing one vocabulary.
    pub fn analyze_batch<'a, I>(&self, texts: I, vocab: &mut Vocabulary) -> Vec<TermCounts>
    where
        I: IntoIterator<Item = &'a str>,
    {
        texts.into_iter().map(|t| self.analyze(t, vocab)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn english_pipeline_filters_and_stems() {
        let mut vocab = Vocabulary::new();
        let p = Pipeline::english();
        let c = p.analyze("The connected connections connecting", &mut vocab);
        // all three content words share the stem "connect"
        let id = vocab.get("connect").expect("connect stem");
        assert_eq!(c.get(id), 3);
        assert_eq!(c.distinct(), 1);
        assert!(vocab.get("the").is_none(), "stop word must not be interned");
    }

    #[test]
    fn raw_pipeline_keeps_everything() {
        let mut vocab = Vocabulary::new();
        let p = Pipeline::raw();
        let c = p.analyze("the the crisis", &mut vocab);
        assert_eq!(c.get(vocab.get("the").unwrap()), 2);
        assert_eq!(c.get(vocab.get("crisis").unwrap()), 1);
    }

    #[test]
    fn batch_shares_vocabulary() {
        let mut vocab = Vocabulary::new();
        let p = Pipeline::raw();
        let batch = p.analyze_batch(["alpha beta", "beta gamma"], &mut vocab);
        assert_eq!(batch.len(), 2);
        let beta = vocab.get("beta").unwrap();
        assert_eq!(batch[0].get(beta), 1);
        assert_eq!(batch[1].get(beta), 1);
        assert_eq!(vocab.len(), 3);
    }

    #[test]
    fn empty_text_empty_counts() {
        let mut vocab = Vocabulary::new();
        let p = Pipeline::english();
        assert!(p.analyze("", &mut vocab).is_empty());
        assert!(p.analyze("the and of", &mut vocab).is_empty());
    }

    #[test]
    fn bigrams_index_consecutive_pairs() {
        let mut vocab = Vocabulary::new();
        let p = Pipeline::raw().with_bigrams(true);
        let c = p.analyze("white house statement", &mut vocab);
        assert_eq!(c.get(vocab.get("white_house").unwrap()), 1);
        assert_eq!(c.get(vocab.get("house_statement").unwrap()), 1);
        assert_eq!(c.get(vocab.get("white").unwrap()), 1);
        // 3 unigrams + 2 bigrams
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn stop_words_break_bigram_adjacency() {
        let mut vocab = Vocabulary::new();
        let p = Pipeline::english().with_bigrams(true);
        p.analyze("markets in turmoil", &mut vocab);
        // "in" is a stop word: no bigram across it
        assert!(vocab.get("market_turmoil").is_none());
        assert!(vocab.iter().all(|(_, s)| !s.contains("in_")));
    }

    #[test]
    fn bigrams_off_by_default() {
        let mut vocab = Vocabulary::new();
        Pipeline::raw().analyze("alpha beta", &mut vocab);
        assert!(vocab.get("alpha_beta").is_none());
    }

    #[test]
    fn custom_pipeline_without_stemming() {
        let mut vocab = Vocabulary::new();
        let p = Pipeline::new(TokenizerConfig::default(), StopWords::none(), false);
        p.analyze("running runner", &mut vocab);
        assert!(vocab.get("running").is_some());
        assert!(vocab.get("runner").is_some());
        assert!(vocab.get("run").is_none());
    }
}
