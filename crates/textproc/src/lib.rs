//! Text-processing substrate for the NIDC (novelty-based incremental document
//! clustering) reproduction.
//!
//! The paper (Khy, Ishikawa, Kitagawa; ICDE 2006) operates on term-frequency
//! vectors over a shared vocabulary (its eq. 8: `Pr(t_k|d_i) = f_ik / Σ_l f_il`).
//! This crate provides everything needed to go from raw text to those vectors:
//!
//! * [`Tokenizer`] — configurable word tokenizer (lower-casing, length and
//!   alphabetic filters),
//! * [`stopwords`] — a standard English stop-word list and a user-extensible
//!   [`stopwords::StopWords`] filter,
//! * [`PorterStemmer`] — a full implementation of the Porter (1980) stemming
//!   algorithm,
//! * [`Vocabulary`] — bidirectional term interning (`&str` ↔ [`TermId`]),
//! * [`SparseVector`] — sorted sparse `(TermId, f64)` vectors with merge-based
//!   arithmetic (the representation used for documents and cluster
//!   representatives throughout the workspace),
//! * [`TermCounts`] — integer bags of words, the `f_ik` of the paper,
//! * [`Pipeline`] — the composition tokenise → stop-filter → stem → count.
//!
//! # Example
//!
//! ```
//! use nidc_textproc::{Pipeline, Vocabulary};
//!
//! let mut vocab = Vocabulary::new();
//! let pipeline = Pipeline::english();
//! let counts = pipeline.analyze("The strikers struck: a striking strike!", &mut vocab);
//! // "the", "a" are stop words; the rest survive as stemmed terms.
//! assert!(counts.total() >= 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counts;
mod docid;
mod pipeline;
mod sparse;
mod stemmer;
pub mod stopwords;
mod tokenizer;
mod vocab;

pub use counts::TermCounts;
pub use docid::DocId;
pub use pipeline::Pipeline;
pub use sparse::SparseVector;
pub use stemmer::PorterStemmer;
pub use tokenizer::{Tokenizer, TokenizerConfig};
pub use vocab::{TermId, Vocabulary};
