//! English stop-word filtering.
//!
//! Stop words carry no topical signal and would otherwise dominate the term
//! statistics `Pr(t_k)` of the forgetting model. The default list is the
//! classic van Rijsbergen / SMART-style core English list.

use std::collections::HashSet;

/// The built-in English stop-word list (lower-case).
pub const ENGLISH: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "aren't",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "can't",
    "cannot",
    "could",
    "couldn't",
    "did",
    "didn't",
    "do",
    "does",
    "doesn't",
    "doing",
    "don't",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "hadn't",
    "has",
    "hasn't",
    "have",
    "haven't",
    "having",
    "he",
    "he'd",
    "he'll",
    "he's",
    "her",
    "here",
    "here's",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "how's",
    "i",
    "i'd",
    "i'll",
    "i'm",
    "i've",
    "if",
    "in",
    "into",
    "is",
    "isn't",
    "it",
    "it's",
    "its",
    "itself",
    "let's",
    "me",
    "more",
    "most",
    "mustn't",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "ought",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "shan't",
    "she",
    "she'd",
    "she'll",
    "she's",
    "should",
    "shouldn't",
    "so",
    "some",
    "such",
    "than",
    "that",
    "that's",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "there's",
    "these",
    "they",
    "they'd",
    "they'll",
    "they're",
    "they've",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "wasn't",
    "we",
    "we'd",
    "we'll",
    "we're",
    "we've",
    "were",
    "weren't",
    "what",
    "what's",
    "when",
    "when's",
    "where",
    "where's",
    "which",
    "while",
    "who",
    "who's",
    "whom",
    "why",
    "why's",
    "with",
    "won't",
    "would",
    "wouldn't",
    "you",
    "you'd",
    "you'll",
    "you're",
    "you've",
    "your",
    "yours",
    "yourself",
    "yourselves",
    "said",
    "says",
    "say",
    "will",
    "also",
    "one",
    "two",
    "mr",
    "mrs",
    "ms",
];

/// A stop-word set.
///
/// ```
/// use nidc_textproc::stopwords::StopWords;
///
/// let mut sw = StopWords::english();
/// assert!(sw.contains("the"));
/// assert!(!sw.contains("strike"));
/// sw.add("reuters");
/// assert!(sw.contains("reuters"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct StopWords {
    words: HashSet<String>,
}

impl StopWords {
    /// An empty set (no filtering).
    pub fn none() -> Self {
        Self::default()
    }

    /// The built-in English list.
    pub fn english() -> Self {
        Self {
            words: ENGLISH.iter().map(|&w| w.to_owned()).collect(),
        }
    }

    /// Builds a set from arbitrary words (lower-cased on insertion).
    pub fn from_words<I, S>(words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut sw = Self::none();
        for w in words {
            sw.add(w.as_ref());
        }
        sw
    }

    /// Adds `word` to the set.
    pub fn add(&mut self, word: &str) {
        self.words.insert(word.to_lowercase());
    }

    /// Whether `word` is a stop word (case-insensitive).
    pub fn contains(&self, word: &str) -> bool {
        if self.words.is_empty() {
            return false;
        }
        if self.words.contains(word) {
            return true;
        }
        // fall back to a lowercase probe only when needed
        word.chars().any(|c| c.is_uppercase()) && self.words.contains(&word.to_lowercase())
    }

    /// Number of stop words in the set.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn english_list_contains_core_words() {
        let sw = StopWords::english();
        for w in ["the", "and", "of", "to", "is", "was", "said"] {
            assert!(sw.contains(w), "{w} should be a stop word");
        }
    }

    #[test]
    fn content_words_pass() {
        let sw = StopWords::english();
        for w in ["economy", "strike", "olympics", "iraq", "tobacco"] {
            assert!(!sw.contains(w), "{w} should not be a stop word");
        }
    }

    #[test]
    fn case_insensitive_lookup() {
        let sw = StopWords::english();
        assert!(sw.contains("The"));
        assert!(sw.contains("AND"));
    }

    #[test]
    fn none_filters_nothing() {
        let sw = StopWords::none();
        assert!(!sw.contains("the"));
        assert!(sw.is_empty());
    }

    #[test]
    fn custom_words() {
        let sw = StopWords::from_words(["Reuters", "ap"]);
        assert!(sw.contains("reuters"));
        assert!(sw.contains("AP"));
        assert_eq!(sw.len(), 2);
    }

    #[test]
    fn no_duplicate_entries_in_builtin_list() {
        let unique: HashSet<_> = ENGLISH.iter().collect();
        assert_eq!(unique.len(), ENGLISH.len(), "duplicate entries in ENGLISH");
    }
}
