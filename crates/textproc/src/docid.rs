//! Document identifiers shared across the workspace.

use std::fmt;

/// Identifier of a document in the repository.
///
/// `DocId`s are assigned by whoever produces documents (the corpus generator,
/// a feed reader, …) and are treated as opaque by the clustering machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u64);

impl DocId {
    /// The id as a `usize` (for indexing into dense side tables).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl From<u64> for DocId {
    fn from(v: u64) -> Self {
        DocId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let d: DocId = 42u64.into();
        assert_eq!(d, DocId(42));
        assert_eq!(d.to_string(), "d42");
        assert_eq!(d.index(), 42);
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(DocId(1) < DocId(2));
    }
}
