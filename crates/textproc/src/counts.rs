//! Term-frequency bags (`f_ik` in the paper's eq. 8).

use std::collections::BTreeMap;

use crate::{SparseVector, TermId};

/// A bag of term counts for one document: `term → frequency`.
///
/// Backed by a `BTreeMap` so iteration is already in term-id order, which
/// lets [`TermCounts::to_sparse`] build a valid [`SparseVector`] without
/// re-sorting.
///
/// ```
/// use nidc_textproc::{TermCounts, TermId};
///
/// let mut c = TermCounts::new();
/// c.add(TermId(3));
/// c.add(TermId(1));
/// c.add(TermId(3));
/// assert_eq!(c.get(TermId(3)), 2);
/// assert_eq!(c.total(), 3);
/// assert_eq!(c.distinct(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TermCounts {
    counts: BTreeMap<TermId, u32>,
    total: u64,
}

impl TermCounts {
    /// An empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the count of `term` by one.
    pub fn add(&mut self, term: TermId) {
        self.add_n(term, 1);
    }

    /// Increments the count of `term` by `n`.
    pub fn add_n(&mut self, term: TermId, n: u32) {
        if n == 0 {
            return;
        }
        *self.counts.entry(term).or_insert(0) += n;
        self.total += u64::from(n);
    }

    /// The count of `term` (0 if absent).
    pub fn get(&self, term: TermId) -> u32 {
        self.counts.get(&term).copied().unwrap_or(0)
    }

    /// Total number of token occurrences, `len_i = Σ_l f_il` (eq. 15).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct terms.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Whether the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates `(term, count)` in term-id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, u32)> + '_ {
        self.counts.iter().map(|(&t, &c)| (t, c))
    }

    /// Converts the raw counts into a [`SparseVector`] of `f64` frequencies.
    pub fn to_sparse(&self) -> SparseVector {
        SparseVector::from_sorted(
            self.counts
                .iter()
                .map(|(&t, &c)| (t, f64::from(c)))
                .collect(),
        )
    }
}

impl FromIterator<TermId> for TermCounts {
    fn from_iter<I: IntoIterator<Item = TermId>>(iter: I) -> Self {
        let mut c = TermCounts::new();
        for t in iter {
            c.add(t);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut c = TermCounts::new();
        c.add(TermId(5));
        c.add(TermId(5));
        c.add(TermId(1));
        assert_eq!(c.get(TermId(5)), 2);
        assert_eq!(c.get(TermId(1)), 1);
        assert_eq!(c.get(TermId(0)), 0);
    }

    #[test]
    fn totals_track_occurrences() {
        let mut c = TermCounts::new();
        c.add_n(TermId(0), 10);
        c.add_n(TermId(1), 5);
        c.add_n(TermId(1), 0); // no-op
        assert_eq!(c.total(), 15);
        assert_eq!(c.distinct(), 2);
    }

    #[test]
    fn to_sparse_preserves_order_and_values() {
        let c: TermCounts = [TermId(9), TermId(2), TermId(9), TermId(2), TermId(2)]
            .into_iter()
            .collect();
        let s = c.to_sparse();
        assert_eq!(s.entries(), &[(TermId(2), 3.0), (TermId(9), 2.0)]);
        assert_eq!(s.sum(), c.total() as f64);
    }

    #[test]
    fn iter_in_term_order() {
        let mut c = TermCounts::new();
        c.add(TermId(7));
        c.add(TermId(0));
        let got: Vec<_> = c.iter().collect();
        assert_eq!(got, vec![(TermId(0), 1), (TermId(7), 1)]);
    }

    #[test]
    fn empty_bag() {
        let c = TermCounts::new();
        assert!(c.is_empty());
        assert_eq!(c.total(), 0);
        assert!(c.to_sparse().is_empty());
    }
}
