//! Bidirectional term interning.
//!
//! Every distinct term string in the document repository is assigned a dense
//! [`TermId`]. Dense ids keep sparse vectors small (`u32` instead of `String`)
//! and make the per-term statistics of the forgetting model (`Pr(t_k)`,
//! eq. 10 of the paper) indexable by plain `Vec`s.

use std::collections::HashMap;
use std::fmt;

/// Identifier of an interned term.
///
/// Ids are dense: the first interned term receives id 0, the next id 1, …
/// A `TermId` is only meaningful relative to the [`Vocabulary`] that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A bidirectional mapping between term strings and dense [`TermId`]s.
///
/// ```
/// use nidc_textproc::Vocabulary;
///
/// let mut vocab = Vocabulary::new();
/// let a = vocab.intern("crisis");
/// let b = vocab.intern("strike");
/// assert_ne!(a, b);
/// assert_eq!(vocab.intern("crisis"), a); // idempotent
/// assert_eq!(vocab.term(a), Some("crisis"));
/// assert_eq!(vocab.len(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    by_term: HashMap<String, TermId>,
    by_id: Vec<String>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty vocabulary with room for `cap` terms.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            by_term: HashMap::with_capacity(cap),
            by_id: Vec::with_capacity(cap),
        }
    }

    /// Interns `term`, returning its id. Existing terms keep their id.
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.by_term.get(term) {
            return id;
        }
        let id =
            TermId(u32::try_from(self.by_id.len()).expect("vocabulary exceeded u32::MAX terms"));
        self.by_id.push(term.to_owned());
        self.by_term.insert(term.to_owned(), id);
        id
    }

    /// Looks up the id of `term` without interning it.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.by_term.get(term).copied()
    }

    /// Returns the string for `id`, if `id` was issued by this vocabulary.
    pub fn term(&self, id: TermId) -> Option<&str> {
        self.by_id.get(id.index()).map(String::as_str)
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether no terms have been interned yet.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterates over `(TermId, &str)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.by_id
            .iter()
            .enumerate()
            .map(|(i, s)| (TermId(i as u32), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_ids() {
        let mut v = Vocabulary::new();
        assert_eq!(v.intern("a"), TermId(0));
        assert_eq!(v.intern("b"), TermId(1));
        assert_eq!(v.intern("c"), TermId(2));
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("news");
        let a2 = v.intern("news");
        assert_eq!(a, a2);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn get_does_not_intern() {
        let mut v = Vocabulary::new();
        assert_eq!(v.get("ghost"), None);
        assert_eq!(v.len(), 0);
        v.intern("ghost");
        assert_eq!(v.get("ghost"), Some(TermId(0)));
    }

    #[test]
    fn roundtrip_term_lookup() {
        let mut v = Vocabulary::new();
        let id = v.intern("tsukuba");
        assert_eq!(v.term(id), Some("tsukuba"));
        assert_eq!(v.term(TermId(99)), None);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut v = Vocabulary::new();
        for t in ["x", "y", "z"] {
            v.intern(t);
        }
        let collected: Vec<_> = v.iter().map(|(id, s)| (id.0, s.to_owned())).collect();
        assert_eq!(
            collected,
            vec![
                (0, "x".to_owned()),
                (1, "y".to_owned()),
                (2, "z".to_owned())
            ]
        );
    }

    #[test]
    fn empty_vocab_reports_empty() {
        let v = Vocabulary::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }

    #[test]
    fn display_term_id() {
        assert_eq!(TermId(7).to_string(), "t7");
    }
}
