//! The Porter stemming algorithm (M.F. Porter, 1980, "An algorithm for suffix
//! stripping", *Program* 14(3)).
//!
//! TDT-era document clustering pipelines (including the paper's lineage,
//! F²ICM / C²ICM / Scatter-Gather) conventionally index stemmed terms. This is
//! a complete, dependency-free implementation of the original algorithm,
//! validated against the published sample vocabulary behaviour in the unit
//! tests below.

/// A stateless Porter stemmer.
///
/// ```
/// use nidc_textproc::PorterStemmer;
///
/// let s = PorterStemmer::new();
/// assert_eq!(s.stem("caresses"), "caress");
/// assert_eq!(s.stem("ponies"), "poni");
/// assert_eq!(s.stem("relational"), "relat");
/// assert_eq!(s.stem("probate"), "probat");
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct PorterStemmer;

impl PorterStemmer {
    /// Creates a stemmer.
    pub fn new() -> Self {
        PorterStemmer
    }

    /// Stems `word`, returning the stem.
    ///
    /// The input is expected to be lower-case ASCII letters; words shorter
    /// than three characters and words containing non-ASCII-alphabetic bytes
    /// are returned unchanged (standard practice — Porter leaves 1–2 letter
    /// words alone and the algorithm is defined over a–z only).
    pub fn stem(&self, word: &str) -> String {
        if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
            return word.to_owned();
        }
        let mut w: Vec<u8> = word.as_bytes().to_vec();
        step_1a(&mut w);
        step_1b(&mut w);
        step_1c(&mut w);
        step_2(&mut w);
        step_3(&mut w);
        step_4(&mut w);
        step_5a(&mut w);
        step_5b(&mut w);
        String::from_utf8(w).expect("stem is ASCII")
    }
}

/// Is `w[i]` a consonant in Porter's sense?
fn is_consonant(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => {
            if i == 0 {
                true
            } else {
                // y is a consonant iff preceded by a vowel position
                !is_consonant(w, i - 1)
            }
        }
        _ => true,
    }
}

/// The measure m of `w[..len]`: the number of VC sequences in the form
/// `[C](VC)^m[V]`.
fn measure(w: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // skip initial consonants
    while i < len && is_consonant(w, i) {
        i += 1;
    }
    loop {
        // skip vowels
        while i < len && !is_consonant(w, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        // skip consonants: a VC boundary found
        while i < len && is_consonant(w, i) {
            i += 1;
        }
        m += 1;
        if i >= len {
            return m;
        }
    }
}

/// Does the stem `w[..len]` contain a vowel?
fn has_vowel(w: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_consonant(w, i))
}

/// Does `w[..len]` end in a double consonant?
fn ends_double_consonant(w: &[u8], len: usize) -> bool {
    len >= 2 && w[len - 1] == w[len - 2] && is_consonant(w, len - 1)
}

/// Does `w[..len]` end consonant-vowel-consonant, where the final consonant is
/// not w, x or y? (The `*o` condition.)
fn ends_cvc(w: &[u8], len: usize) -> bool {
    if len < 3 {
        return false;
    }
    let (a, b, c) = (len - 3, len - 2, len - 1);
    is_consonant(w, a)
        && !is_consonant(w, b)
        && is_consonant(w, c)
        && !matches!(w[c], b'w' | b'x' | b'y')
}

fn ends_with(w: &[u8], suffix: &[u8]) -> bool {
    w.len() >= suffix.len() && &w[w.len() - suffix.len()..] == suffix
}

/// If `w` ends with `suffix` and the stem before it has measure > `min_m`,
/// replace the suffix with `replacement` and return true.
fn replace_if_m(w: &mut Vec<u8>, suffix: &[u8], replacement: &[u8], min_m: usize) -> bool {
    if !ends_with(w, suffix) {
        return false;
    }
    let stem_len = w.len() - suffix.len();
    if measure(w, stem_len) > min_m {
        w.truncate(stem_len);
        w.extend_from_slice(replacement);
        true
    } else {
        false
    }
}

fn step_1a(w: &mut Vec<u8>) {
    if ends_with(w, b"sses") {
        w.truncate(w.len() - 2); // sses -> ss
    } else if ends_with(w, b"ies") {
        w.truncate(w.len() - 2); // ies -> i
    } else if ends_with(w, b"ss") {
        // unchanged
    } else if ends_with(w, b"s") {
        w.truncate(w.len() - 1);
    }
}

fn step_1b(w: &mut Vec<u8>) {
    if ends_with(w, b"eed") {
        let stem_len = w.len() - 3;
        if measure(w, stem_len) > 0 {
            w.truncate(w.len() - 1); // eed -> ee
        }
        return;
    }
    let stripped = if ends_with(w, b"ed") && has_vowel(w, w.len() - 2) {
        w.truncate(w.len() - 2);
        true
    } else if ends_with(w, b"ing") && has_vowel(w, w.len() - 3) {
        w.truncate(w.len() - 3);
        true
    } else {
        false
    };
    if stripped {
        if ends_with(w, b"at") || ends_with(w, b"bl") || ends_with(w, b"iz") {
            w.push(b'e');
        } else if ends_double_consonant(w, w.len()) && !matches!(w[w.len() - 1], b'l' | b's' | b'z')
        {
            w.truncate(w.len() - 1);
        } else if measure(w, w.len()) == 1 && ends_cvc(w, w.len()) {
            w.push(b'e');
        }
    }
}

fn step_1c(w: &mut [u8]) {
    if ends_with(w, b"y") && has_vowel(w, w.len() - 1) {
        let n = w.len();
        w[n - 1] = b'i';
    }
}

fn step_2(w: &mut Vec<u8>) {
    const RULES: &[(&[u8], &[u8])] = &[
        (b"ational", b"ate"),
        (b"tional", b"tion"),
        (b"enci", b"ence"),
        (b"anci", b"ance"),
        (b"izer", b"ize"),
        (b"abli", b"able"),
        (b"alli", b"al"),
        (b"entli", b"ent"),
        (b"eli", b"e"),
        (b"ousli", b"ous"),
        (b"ization", b"ize"),
        (b"ation", b"ate"),
        (b"ator", b"ate"),
        (b"alism", b"al"),
        (b"iveness", b"ive"),
        (b"fulness", b"ful"),
        (b"ousness", b"ous"),
        (b"aliti", b"al"),
        (b"iviti", b"ive"),
        (b"biliti", b"ble"),
    ];
    for &(suffix, replacement) in RULES {
        if ends_with(w, suffix) {
            replace_if_m(w, suffix, replacement, 0);
            return;
        }
    }
}

fn step_3(w: &mut Vec<u8>) {
    const RULES: &[(&[u8], &[u8])] = &[
        (b"icate", b"ic"),
        (b"ative", b""),
        (b"alize", b"al"),
        (b"iciti", b"ic"),
        (b"ical", b"ic"),
        (b"ful", b""),
        (b"ness", b""),
    ];
    for &(suffix, replacement) in RULES {
        if ends_with(w, suffix) {
            replace_if_m(w, suffix, replacement, 0);
            return;
        }
    }
}

fn step_4(w: &mut Vec<u8>) {
    const SUFFIXES: &[&[u8]] = &[
        b"al", b"ance", b"ence", b"er", b"ic", b"able", b"ible", b"ant", b"ement", b"ment", b"ent",
        b"ou", b"ism", b"ate", b"iti", b"ous", b"ive", b"ize",
    ];
    for &suffix in SUFFIXES {
        if ends_with(w, suffix) {
            let stem_len = w.len() - suffix.len();
            if measure(w, stem_len) > 1 {
                w.truncate(stem_len);
            }
            return;
        }
    }
    // (m>1 and (*S or *T)) ION ->
    if ends_with(w, b"ion") {
        let stem_len = w.len() - 3;
        if measure(w, stem_len) > 1 && stem_len > 0 && matches!(w[stem_len - 1], b's' | b't') {
            w.truncate(stem_len);
        }
    }
}

fn step_5a(w: &mut Vec<u8>) {
    if ends_with(w, b"e") {
        let stem_len = w.len() - 1;
        let m = measure(w, stem_len);
        if m > 1 || (m == 1 && !ends_cvc(w, stem_len)) {
            w.truncate(stem_len);
        }
    }
}

fn step_5b(w: &mut Vec<u8>) {
    if measure(w, w.len()) > 1 && ends_double_consonant(w, w.len()) && w[w.len() - 1] == b'l' {
        w.truncate(w.len() - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stem(s: &str) -> String {
        PorterStemmer::new().stem(s)
    }

    #[test]
    fn step1a_examples() {
        assert_eq!(stem("caresses"), "caress");
        assert_eq!(stem("ponies"), "poni");
        assert_eq!(stem("caress"), "caress");
        assert_eq!(stem("cats"), "cat");
    }

    #[test]
    fn step1b_examples() {
        assert_eq!(stem("feed"), "feed");
        assert_eq!(stem("agreed"), "agre");
        assert_eq!(stem("plastered"), "plaster");
        assert_eq!(stem("bled"), "bled");
        assert_eq!(stem("motoring"), "motor");
        assert_eq!(stem("sing"), "sing");
        assert_eq!(stem("conflated"), "conflat");
        assert_eq!(stem("troubled"), "troubl");
        assert_eq!(stem("sized"), "size");
        assert_eq!(stem("hopping"), "hop");
        assert_eq!(stem("tanned"), "tan");
        assert_eq!(stem("falling"), "fall");
        assert_eq!(stem("hissing"), "hiss");
        assert_eq!(stem("fizzed"), "fizz");
        assert_eq!(stem("failing"), "fail");
        assert_eq!(stem("filing"), "file");
    }

    #[test]
    fn step1c_examples() {
        assert_eq!(stem("happy"), "happi");
        assert_eq!(stem("sky"), "sky");
    }

    #[test]
    fn step2_examples() {
        assert_eq!(stem("relational"), "relat");
        assert_eq!(stem("conditional"), "condit");
        assert_eq!(stem("rational"), "ration");
        assert_eq!(stem("valenci"), "valenc");
        assert_eq!(stem("hesitanci"), "hesit");
        assert_eq!(stem("digitizer"), "digit");
        assert_eq!(stem("conformabli"), "conform");
        assert_eq!(stem("radicalli"), "radic");
        assert_eq!(stem("differentli"), "differ");
        assert_eq!(stem("vileli"), "vile");
        assert_eq!(stem("analogousli"), "analog");
        assert_eq!(stem("vietnamization"), "vietnam");
        assert_eq!(stem("predication"), "predic");
        assert_eq!(stem("operator"), "oper");
        assert_eq!(stem("feudalism"), "feudal");
        assert_eq!(stem("decisiveness"), "decis");
        assert_eq!(stem("hopefulness"), "hope");
        assert_eq!(stem("callousness"), "callous");
        assert_eq!(stem("formaliti"), "formal");
        assert_eq!(stem("sensitiviti"), "sensit");
        assert_eq!(stem("sensibiliti"), "sensibl");
    }

    #[test]
    fn step3_examples() {
        assert_eq!(stem("triplicate"), "triplic");
        assert_eq!(stem("formative"), "form");
        assert_eq!(stem("formalize"), "formal");
        assert_eq!(stem("electriciti"), "electr");
        assert_eq!(stem("electrical"), "electr");
        assert_eq!(stem("hopeful"), "hope");
        assert_eq!(stem("goodness"), "good");
    }

    #[test]
    fn step4_examples() {
        assert_eq!(stem("revival"), "reviv");
        assert_eq!(stem("allowance"), "allow");
        assert_eq!(stem("inference"), "infer");
        assert_eq!(stem("airliner"), "airlin");
        assert_eq!(stem("gyroscopic"), "gyroscop");
        assert_eq!(stem("adjustable"), "adjust");
        assert_eq!(stem("defensible"), "defens");
        assert_eq!(stem("irritant"), "irrit");
        assert_eq!(stem("replacement"), "replac");
        assert_eq!(stem("adjustment"), "adjust");
        assert_eq!(stem("dependent"), "depend");
        assert_eq!(stem("adoption"), "adopt");
        assert_eq!(stem("homologou"), "homolog");
        assert_eq!(stem("communism"), "commun");
        assert_eq!(stem("activate"), "activ");
        assert_eq!(stem("angulariti"), "angular");
        assert_eq!(stem("homologous"), "homolog");
        assert_eq!(stem("effective"), "effect");
        assert_eq!(stem("bowdlerize"), "bowdler");
    }

    #[test]
    fn step5_examples() {
        assert_eq!(stem("probate"), "probat");
        assert_eq!(stem("rate"), "rate");
        assert_eq!(stem("cease"), "ceas");
        assert_eq!(stem("controll"), "control");
        assert_eq!(stem("roll"), "roll");
    }

    #[test]
    fn short_and_non_alpha_words_pass_through() {
        assert_eq!(stem("a"), "a");
        assert_eq!(stem("at"), "at");
        assert_eq!(stem("c3po"), "c3po");
        assert_eq!(stem("Tokyo"), "Tokyo"); // uppercase not lowercased here
    }

    #[test]
    fn related_forms_share_a_stem() {
        for group in [
            vec![
                "connect",
                "connected",
                "connecting",
                "connection",
                "connections",
            ],
            vec!["cluster", "clusters", "clustered", "clustering"],
        ] {
            let stems: Vec<_> = group.iter().map(|w| stem(w)).collect();
            assert!(
                stems.windows(2).all(|w| w[0] == w[1]),
                "group {group:?} produced stems {stems:?}"
            );
        }
    }

    #[test]
    fn measure_function() {
        // From the paper: tr=1? Check canonical examples.
        let cases: &[(&str, usize)] = &[
            ("tr", 0),
            ("ee", 0),
            ("tree", 0),
            ("y", 0),
            ("by", 0),
            ("trouble", 1),
            ("oats", 1),
            ("trees", 1),
            ("ivy", 1),
            ("troubles", 2),
            ("private", 2),
            ("oaten", 2),
            ("orrery", 2),
        ];
        for &(w, m) in cases {
            assert_eq!(measure(w.as_bytes(), w.len()), m, "measure({w})");
        }
    }

    #[test]
    fn stemming_is_idempotent_on_common_words() {
        let s = PorterStemmer::new();
        for w in [
            "generalization",
            "oscillators",
            "characterization",
            "national",
            "governing",
        ] {
            let once = s.stem(w);
            let twice = s.stem(&once);
            // Porter is not idempotent in general, but the stem must be stable
            // enough not to collapse to empty.
            assert!(!twice.is_empty());
        }
    }
}
