//! Property tests for the text-processing substrate: the tokenizer, stemmer
//! and sparse-vector algebra must be total (no panics) and preserve their
//! invariants on arbitrary input.

use nidc_textproc::{Pipeline, PorterStemmer, SparseVector, TermId, Tokenizer, Vocabulary};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The tokenizer never panics and only emits tokens within its length
    /// bounds, free of separator characters.
    #[test]
    fn tokenizer_is_total_and_bounded(text in ".{0,400}") {
        let t = Tokenizer::default();
        for tok in t.tokenize(&text) {
            let n = tok.chars().count();
            prop_assert!((2..=40).contains(&n), "token length {n}: {tok:?}");
            prop_assert!(!tok.contains(' '));
            prop_assert!(!tok.contains('\n'));
        }
    }

    /// The stemmer never panics, never returns an empty string for
    /// non-empty input, and never grows a word by more than one character
    /// (the only growth rule appends 'e').
    #[test]
    fn stemmer_is_total(word in "[a-z]{1,30}") {
        let s = PorterStemmer::new().stem(&word);
        prop_assert!(!s.is_empty());
        prop_assert!(s.len() <= word.len() + 1, "{word} -> {s}");
        prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
    }

    /// Mixed-case and non-alphabetic words pass through unchanged.
    #[test]
    fn stemmer_passes_through_non_lowercase(word in "[A-Za-z0-9]{1,20}") {
        prop_assume!(!word.bytes().all(|b| b.is_ascii_lowercase()));
        prop_assert_eq!(PorterStemmer::new().stem(&word), word);
    }

    /// The analysis pipeline is deterministic and vocabulary interning is
    /// consistent across repeated runs.
    #[test]
    fn pipeline_is_deterministic(text in "[a-z ]{0,200}") {
        let p = Pipeline::english();
        let mut v1 = Vocabulary::new();
        let mut v2 = Vocabulary::new();
        let c1 = p.analyze(&text, &mut v1);
        let c2 = p.analyze(&text, &mut v2);
        prop_assert_eq!(c1.total(), c2.total());
        prop_assert_eq!(c1.distinct(), c2.distinct());
        prop_assert_eq!(v1.len(), v2.len());
    }

    /// Sparse-vector dot products are symmetric, bilinear in scaling, and
    /// bounded by Cauchy–Schwarz.
    #[test]
    fn sparse_algebra_invariants(
        a in prop::collection::vec((0u32..50, -5.0f64..5.0), 0..20),
        b in prop::collection::vec((0u32..50, -5.0f64..5.0), 0..20),
        scale in -3.0f64..3.0,
    ) {
        let va = SparseVector::from_entries(a.into_iter().map(|(t, w)| (TermId(t), w)).collect());
        let vb = SparseVector::from_entries(b.into_iter().map(|(t, w)| (TermId(t), w)).collect());
        prop_assert!((va.dot(&vb) - vb.dot(&va)).abs() < 1e-9);
        prop_assert!((va.scaled(scale).dot(&vb) - scale * va.dot(&vb)).abs() < 1e-9);
        // Cauchy–Schwarz
        prop_assert!(va.dot(&vb).abs() <= va.norm() * vb.norm() + 1e-9);
        // add_scaled distributes over dot
        let sum = va.add_scaled(&vb, scale);
        let direct = va.dot(&va) + scale * vb.dot(&va);
        prop_assert!((sum.dot(&va) - direct).abs() < 1e-9);
    }

    /// from_entries normalises any input into the canonical form: sorted,
    /// deduplicated, no zeros.
    #[test]
    fn sparse_canonical_form(
        entries in prop::collection::vec((0u32..30, -2.0f64..2.0), 0..40),
    ) {
        let v = SparseVector::from_entries(
            entries.into_iter().map(|(t, w)| (TermId(t), w)).collect());
        let e = v.entries();
        prop_assert!(e.windows(2).all(|w| w[0].0 < w[1].0), "not sorted/unique");
        prop_assert!(e.iter().all(|&(_, w)| w != 0.0), "stored zero");
    }

    /// Normalising any non-zero vector yields unit norm.
    #[test]
    fn normalization(entries in prop::collection::vec((0u32..30, 0.1f64..2.0), 1..20)) {
        let v = SparseVector::from_entries(
            entries.into_iter().map(|(t, w)| (TermId(t), w)).collect());
        let n = v.normalized().expect("non-zero");
        prop_assert!((n.norm() - 1.0).abs() < 1e-9);
    }
}
