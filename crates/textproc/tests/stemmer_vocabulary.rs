//! Extended Porter-stemmer vocabulary test: a curated table of canonical
//! (word, stem) pairs drawn from Porter's published examples and the
//! standard reference vocabulary, covering every rule of every step.

use nidc_textproc::PorterStemmer;

/// (input, expected stem)
const VOCABULARY: &[(&str, &str)] = &[
    // step 1a
    ("caresses", "caress"),
    ("ponies", "poni"),
    ("ties", "ti"),
    ("caress", "caress"),
    ("cats", "cat"),
    // step 1b
    ("feed", "feed"),
    ("agreed", "agre"),
    ("plastered", "plaster"),
    ("bled", "bled"),
    ("motoring", "motor"),
    ("sing", "sing"),
    ("conflated", "conflat"),
    ("troubled", "troubl"),
    ("sized", "size"),
    ("hopping", "hop"),
    ("tanned", "tan"),
    ("falling", "fall"),
    ("hissing", "hiss"),
    ("fizzed", "fizz"),
    ("failing", "fail"),
    ("filing", "file"),
    // step 1c
    ("happy", "happi"),
    ("sky", "sky"),
    // step 2
    ("relational", "relat"),
    ("conditional", "condit"),
    ("rational", "ration"),
    ("valenci", "valenc"),
    ("hesitanci", "hesit"),
    ("digitizer", "digit"),
    ("conformabli", "conform"),
    ("radicalli", "radic"),
    ("differentli", "differ"),
    ("vileli", "vile"),
    ("analogousli", "analog"),
    ("vietnamization", "vietnam"),
    ("predication", "predic"),
    ("operator", "oper"),
    ("feudalism", "feudal"),
    ("decisiveness", "decis"),
    ("hopefulness", "hope"),
    ("callousness", "callous"),
    ("formaliti", "formal"),
    ("sensitiviti", "sensit"),
    ("sensibiliti", "sensibl"),
    // step 3
    ("triplicate", "triplic"),
    ("formative", "form"),
    ("formalize", "formal"),
    ("electriciti", "electr"),
    ("electrical", "electr"),
    ("hopeful", "hope"),
    ("goodness", "good"),
    // step 4
    ("revival", "reviv"),
    ("allowance", "allow"),
    ("inference", "infer"),
    ("airliner", "airlin"),
    ("gyroscopic", "gyroscop"),
    ("adjustable", "adjust"),
    ("defensible", "defens"),
    ("irritant", "irrit"),
    ("replacement", "replac"),
    ("adjustment", "adjust"),
    ("dependent", "depend"),
    ("adoption", "adopt"),
    ("homologou", "homolog"),
    ("communism", "commun"),
    ("activate", "activ"),
    ("angulariti", "angular"),
    ("homologous", "homolog"),
    ("effective", "effect"),
    ("bowdlerize", "bowdler"),
    // step 5
    ("probate", "probat"),
    ("rate", "rate"),
    ("cease", "ceas"),
    ("controll", "control"),
    ("roll", "roll"),
    // common English, end-to-end through all steps
    ("abatements", "abat"),
    ("absorptions", "absorpt"),
    ("accompaniment", "accompani"),
    ("agreements", "agreement"),
    ("announcements", "announc"),
    ("capabilities", "capabl"),
    ("communications", "commun"),
    ("considerations", "consider"),
    ("continuations", "continu"),
    ("disagreements", "disagr"),
    ("electricity", "electr"),
    ("engineering", "engin"),
    ("generalizations", "gener"),
    ("governments", "govern"),
    ("independently", "independ"),
    ("investigations", "investig"),
    ("negotiations", "negoti"),
    ("observations", "observ"),
    ("organizations", "organ"),
    ("possibilities", "possibl"),
    ("presidencies", "presid"),
    ("probabilities", "probabl"),
    ("representatives", "repres"),
    ("responsibilities", "respons"),
    ("settlements", "settlement"),
    ("television", "televis"),
    ("universities", "univers"),
];

#[test]
fn canonical_vocabulary_stems() {
    let stemmer = PorterStemmer::new();
    let mut failures = Vec::new();
    for &(word, expected) in VOCABULARY {
        let got = stemmer.stem(word);
        if got != expected {
            failures.push(format!("{word}: expected {expected}, got {got}"));
        }
    }
    assert!(
        failures.is_empty(),
        "{} vocabulary mismatches:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn inflection_families_collapse() {
    // every family must stem to a single shared form
    let families: &[&[&str]] = &[
        &[
            "negotiate",
            "negotiated",
            "negotiating",
            "negotiation",
            "negotiations",
        ],
        &[
            "organize",
            "organized",
            "organizing",
            "organization",
            "organizations",
        ],
        &[
            "investigate",
            "investigated",
            "investigation",
            "investigations",
        ],
        &["settle", "settled", "settling"],
        &["elect", "elected", "electing", "election", "elections"],
    ];
    let stemmer = PorterStemmer::new();
    for family in families {
        let stems: std::collections::HashSet<String> =
            family.iter().map(|w| stemmer.stem(w)).collect();
        assert_eq!(
            stems.len(),
            1,
            "family {family:?} produced multiple stems: {stems:?}"
        );
    }
}

#[test]
fn distinct_roots_stay_distinct() {
    // stemming must not conflate these unrelated roots (guards against
    // over-stripping regressions)
    let pairs = [
        ("police", "policy"),
        ("arm", "army"),
        ("probe", "probability"),
        ("iraq", "iran"),
    ];
    let stemmer = PorterStemmer::new();
    for (a, b) in pairs {
        let (sa, sb) = (stemmer.stem(a), stemmer.stem(b));
        assert_ne!(sa, sb, "{a} and {b} conflated to {sa}");
    }
}

#[test]
fn famous_porter_conflations_are_reproduced() {
    // Porter deliberately over-stems these pairs; reproducing them pins our
    // implementation to the canonical algorithm rather than a softened one.
    let pairs = [
        ("university", "universe"),
        ("organ", "organic"),
        ("general", "generous"),
        ("new", "news"),
    ];
    let stemmer = PorterStemmer::new();
    for (a, b) in pairs {
        assert_eq!(
            stemmer.stem(a),
            stemmer.stem(b),
            "canonical Porter conflates {a}/{b}"
        );
    }
}
