//! Property tests for the cluster-representative algebra (§4.4): the O(|φ|)
//! incremental formulas must agree with brute-force pairwise computation for
//! arbitrary clusters and arbitrary add/remove sequences.

use nidc_similarity::{ClusterRep, RepBackend};
use nidc_textproc::{SparseVector, TermId};
use proptest::prelude::*;

const DIM: u32 = 12;

fn phi_strategy() -> impl Strategy<Value = SparseVector> {
    prop::collection::vec((0u32..DIM, 0.01f64..1.0), 1..6).prop_map(|pairs| {
        SparseVector::from_entries(pairs.into_iter().map(|(t, w)| (TermId(t), w)).collect())
    })
}

fn brute_avg_sim(members: &[SparseVector]) -> f64 {
    let n = members.len();
    if n < 2 {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                acc += members[i].dot(&members[j]);
            }
        }
    }
    acc / (n as f64 * (n as f64 - 1.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// eq. 24: representative-based avg_sim equals pairwise avg_sim.
    #[test]
    fn avg_sim_matches_brute_force(members in prop::collection::vec(phi_strategy(), 0..12)) {
        let rep = ClusterRep::from_members(members.iter());
        let brute = brute_avg_sim(&members);
        prop_assert!((rep.avg_sim() - brute).abs() < 1e-9,
            "rep={} brute={brute}", rep.avg_sim());
    }

    /// eq. 26: the append preview equals the post-append value.
    #[test]
    fn append_preview_is_exact(
        members in prop::collection::vec(phi_strategy(), 1..10),
        newcomer in phi_strategy(),
    ) {
        let mut rep = ClusterRep::from_members(members.iter());
        let preview = rep.avg_sim_if_added(&newcomer);
        rep.add(&newcomer);
        prop_assert!((preview - rep.avg_sim()).abs() < 1e-9);
    }

    /// Deletion analogue of eq. 26: the removal preview equals the
    /// post-removal value.
    #[test]
    fn removal_preview_is_exact(
        members in prop::collection::vec(phi_strategy(), 3..10),
        idx in 0usize..3,
    ) {
        let mut rep = ClusterRep::from_members(members.iter());
        let preview = rep.avg_sim_if_removed(&members[idx]);
        rep.remove(&members[idx]);
        prop_assert!((preview - rep.avg_sim()).abs() < 1e-9);
    }

    /// Long interleaved add/remove chains do not drift from exact recompute.
    #[test]
    fn incremental_chain_has_bounded_drift(
        initial in prop::collection::vec(phi_strategy(), 1..8),
        churn in prop::collection::vec(phi_strategy(), 0..20),
    ) {
        let mut rep = ClusterRep::from_members(initial.iter());
        // add every churn doc then remove them again, in reverse
        for d in &churn {
            rep.add(d);
        }
        for d in churn.iter().rev() {
            rep.remove(d);
        }
        let mut exact = rep.clone();
        exact.recompute_exact(initial.iter());
        prop_assert!((rep.cr_self() - exact.cr_self()).abs() < 1e-8);
        prop_assert!((rep.ss() - exact.ss()).abs() < 1e-8);
        prop_assert_eq!(rep.size(), exact.size());
    }

    /// cr_sim between disjoint clusters obeys the merge identity (eq. 25).
    #[test]
    fn merge_identity(
        p_members in prop::collection::vec(phi_strategy(), 1..6),
        q_members in prop::collection::vec(phi_strategy(), 1..6),
    ) {
        let p = ClusterRep::from_members(p_members.iter());
        let q = ClusterRep::from_members(q_members.iter());
        let np = p.size() as f64;
        let nq = q.size() as f64;
        if np + nq < 2.0 {
            return Ok(());
        }
        let merged = (p.cr_self() + 2.0 * p.dot_rep(&q) + q.cr_self() - p.ss() - q.ss())
            / ((np + nq) * (np + nq - 1.0));
        let mut all = p_members.clone();
        all.extend(q_members.iter().cloned());
        prop_assert!((merged - brute_avg_sim(&all)).abs() < 1e-9);
    }

    /// avg_sim is never negative and g_term is consistent.
    #[test]
    fn invariants(members in prop::collection::vec(phi_strategy(), 0..10)) {
        let rep = ClusterRep::from_members(members.iter());
        prop_assert!(rep.avg_sim() >= 0.0);
        prop_assert!((rep.g_term() - rep.size() as f64 * rep.avg_sim()).abs() < 1e-12);
    }

    /// The dense and sparse backends are **bit-identical** (not merely
    /// close) through arbitrary interleaved add/remove churn — the property
    /// that lets the sparse backend be the default without touching the
    /// workspace's determinism contract.
    #[test]
    fn backends_bit_identical_under_churn(
        initial in prop::collection::vec(phi_strategy(), 0..8),
        churn in prop::collection::vec((phi_strategy(), prop::bool::ANY), 0..24),
        probe in phi_strategy(),
    ) {
        let mut dense = ClusterRep::from_members_with(RepBackend::Dense, initial.iter());
        let mut sparse = ClusterRep::from_members_with(RepBackend::Sparse, initial.iter());
        // replay the same add/remove sequence through both; removals only
        // target documents currently in the cluster (mirrors the algorithm)
        let mut present: Vec<&SparseVector> = initial.iter().collect();
        for (d, is_add) in &churn {
            if *is_add || present.is_empty() {
                dense.add(d);
                sparse.add(d);
                present.push(d);
            } else {
                let victim = present.remove(present.len() / 2);
                dense.remove(victim);
                sparse.remove(victim);
            }
        }
        prop_assert_eq!(dense.size(), sparse.size());
        prop_assert!(dense.cr_self() == sparse.cr_self(),
            "cr_self: {} vs {}", dense.cr_self(), sparse.cr_self());
        prop_assert!(dense.ss() == sparse.ss());
        prop_assert!(dense.avg_sim() == sparse.avg_sim());
        prop_assert!(dense.g_term() == sparse.g_term());
        prop_assert!(dense.dot_doc(&probe) == sparse.dot_doc(&probe),
            "dot_doc: {} vs {}", dense.dot_doc(&probe), sparse.dot_doc(&probe));
        prop_assert!(dense.avg_sim_if_added(&probe) == sparse.avg_sim_if_added(&probe));
        prop_assert!(dense.g_term_if_added(&probe) == sparse.g_term_if_added(&probe));
        if dense.size() >= 2 && !present.is_empty() {
            let d = present[0];
            prop_assert!(dense.avg_sim_if_removed(d) == sparse.avg_sim_if_removed(d));
        }
    }
}
