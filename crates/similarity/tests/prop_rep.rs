//! Property tests for the cluster-representative algebra (§4.4): the O(|φ|)
//! incremental formulas must agree with brute-force pairwise computation for
//! arbitrary clusters and arbitrary add/remove sequences.

use nidc_similarity::ClusterRep;
use nidc_textproc::{SparseVector, TermId};
use proptest::prelude::*;

const DIM: u32 = 12;

fn phi_strategy() -> impl Strategy<Value = SparseVector> {
    prop::collection::vec((0u32..DIM, 0.01f64..1.0), 1..6).prop_map(|pairs| {
        SparseVector::from_entries(pairs.into_iter().map(|(t, w)| (TermId(t), w)).collect())
    })
}

fn brute_avg_sim(members: &[SparseVector]) -> f64 {
    let n = members.len();
    if n < 2 {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                acc += members[i].dot(&members[j]);
            }
        }
    }
    acc / (n as f64 * (n as f64 - 1.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// eq. 24: representative-based avg_sim equals pairwise avg_sim.
    #[test]
    fn avg_sim_matches_brute_force(members in prop::collection::vec(phi_strategy(), 0..12)) {
        let rep = ClusterRep::from_members(DIM as usize, members.iter());
        let brute = brute_avg_sim(&members);
        prop_assert!((rep.avg_sim() - brute).abs() < 1e-9,
            "rep={} brute={brute}", rep.avg_sim());
    }

    /// eq. 26: the append preview equals the post-append value.
    #[test]
    fn append_preview_is_exact(
        members in prop::collection::vec(phi_strategy(), 1..10),
        newcomer in phi_strategy(),
    ) {
        let mut rep = ClusterRep::from_members(DIM as usize, members.iter());
        let preview = rep.avg_sim_if_added(&newcomer);
        rep.add(&newcomer);
        prop_assert!((preview - rep.avg_sim()).abs() < 1e-9);
    }

    /// Deletion analogue of eq. 26: the removal preview equals the
    /// post-removal value.
    #[test]
    fn removal_preview_is_exact(
        members in prop::collection::vec(phi_strategy(), 3..10),
        idx in 0usize..3,
    ) {
        let mut rep = ClusterRep::from_members(DIM as usize, members.iter());
        let preview = rep.avg_sim_if_removed(&members[idx]);
        rep.remove(&members[idx]);
        prop_assert!((preview - rep.avg_sim()).abs() < 1e-9);
    }

    /// Long interleaved add/remove chains do not drift from exact recompute.
    #[test]
    fn incremental_chain_has_bounded_drift(
        initial in prop::collection::vec(phi_strategy(), 1..8),
        churn in prop::collection::vec(phi_strategy(), 0..20),
    ) {
        let mut rep = ClusterRep::from_members(DIM as usize, initial.iter());
        // add every churn doc then remove them again, in reverse
        for d in &churn {
            rep.add(d);
        }
        for d in churn.iter().rev() {
            rep.remove(d);
        }
        let mut exact = rep.clone();
        exact.recompute_exact(initial.iter());
        prop_assert!((rep.cr_self() - exact.cr_self()).abs() < 1e-8);
        prop_assert!((rep.ss() - exact.ss()).abs() < 1e-8);
        prop_assert_eq!(rep.size(), exact.size());
    }

    /// cr_sim between disjoint clusters obeys the merge identity (eq. 25).
    #[test]
    fn merge_identity(
        p_members in prop::collection::vec(phi_strategy(), 1..6),
        q_members in prop::collection::vec(phi_strategy(), 1..6),
    ) {
        let p = ClusterRep::from_members(DIM as usize, p_members.iter());
        let q = ClusterRep::from_members(DIM as usize, q_members.iter());
        let np = p.size() as f64;
        let nq = q.size() as f64;
        if np + nq < 2.0 {
            return Ok(());
        }
        let merged = (p.cr_self() + 2.0 * p.dot_rep(&q) + q.cr_self() - p.ss() - q.ss())
            / ((np + nq) * (np + nq - 1.0));
        let mut all = p_members.clone();
        all.extend(q_members.iter().cloned());
        prop_assert!((merged - brute_avg_sim(&all)).abs() < 1e-9);
    }

    /// avg_sim is never negative and g_term is consistent.
    #[test]
    fn invariants(members in prop::collection::vec(phi_strategy(), 0..10)) {
        let rep = ClusterRep::from_members(DIM as usize, members.iter());
        prop_assert!(rep.avg_sim() >= 0.0);
        prop_assert!((rep.g_term() - rep.size() as f64 * rep.avg_sim()).abs() < 1e-12);
    }
}
