//! The novelty-based similarity function and the cluster-representative
//! algebra of Khy, Ishikawa & Kitagawa (ICDE 2006, §3–§4.4).
//!
//! # The similarity function
//!
//! The paper defines document similarity as a co-occurrence probability
//! (eq. 7) that reduces (eq. 16) to
//!
//! ```text
//! sim(d_i, d_j) = Pr(d_i)·Pr(d_j) · (d⃗_i · d⃗_j)/(len_i · len_j)
//! ```
//!
//! with tf·idf vectors `d⃗_i = (tf_i1·idf_1, …)`, `idf_k = 1/√Pr(t_k)`
//! (eq. 14). Defining the **contribution vector**
//!
//! ```text
//! φ_i = (Pr(d_i)/len_i) · d⃗_i           (the summand of eq. 20)
//! ```
//!
//! gives `sim(d_i, d_j) = φ_i · φ_j`, and the cluster representative of
//! eq. 19–20 is simply `c⃗_p = Σ_{d∈C_p} φ_d`. Every quantity in §4.4 is a
//! dot product of φ vectors:
//!
//! * `cr_sim(C_p, C_q) = c⃗_p · c⃗_q` (eq. 21),
//! * `cr_sim(C_p, C_p) = |C_p|(|C_p|−1)·avg_sim(C_p) + ss(C_p)` (eq. 22),
//! * appending a document to a cluster changes `avg_sim` by eq. 26 — an
//!   O(|φ_d|) update instead of an O(|C_p|²) recomputation.
//!
//! [`DocVectors`] materialises the φ vectors from a repository snapshot;
//! [`ClusterRep`] maintains `c⃗_p`, `cr_sim(C_p,C_p)`, `ss(C_p)` and `|C_p|`
//! under O(|φ|) additions/removals and answers the "what if d joined/left"
//! queries the extended K-means needs.
//!
//! ```
//! use nidc_forgetting::{DecayParams, Repository, Timestamp};
//! use nidc_similarity::{ClusterRep, DocVectors};
//! use nidc_textproc::{DocId, SparseVector, TermId};
//!
//! let mut repo = Repository::new(DecayParams::from_spans(7.0, 14.0).unwrap());
//! let tf = |p: &[(u32, f64)]| SparseVector::from_entries(
//!     p.iter().map(|&(i, w)| (TermId(i), w)).collect());
//! repo.insert(DocId(0), Timestamp(0.0), tf(&[(0, 2.0), (1, 1.0)])).unwrap();
//! repo.insert(DocId(1), Timestamp(0.0), tf(&[(0, 1.0), (2, 1.0)])).unwrap();
//!
//! let vecs = DocVectors::build(&repo);
//! let s = vecs.sim(DocId(0), DocId(1)).unwrap();
//! assert!(s > 0.0);
//!
//! let mut rep = ClusterRep::new();
//! rep.add(vecs.phi(DocId(0)).unwrap());
//! rep.add(vecs.phi(DocId(1)).unwrap());
//! // eq. 24: avg_sim from the representative equals the pairwise average.
//! assert!((rep.avg_sim() - s).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod docvec;
mod index;
mod rep;

pub use docvec::DocVectors;
pub use index::ClusterIndex;
pub use rep::{ClusterRep, RepBackend};

use nidc_forgetting::Repository;
use nidc_textproc::DocId;

/// Computes `sim(d_i, d_j)` directly from the definitional form (eq. 11):
///
/// ```text
/// sim ≈ Pr(d_i)Pr(d_j) / (len_i·len_j) · Σ_k f_ik·f_jk / Pr(t_k)
/// ```
///
/// This is the slow reference path used to validate the φ-vector fast path
/// ([`DocVectors::sim`]); production code should use the latter.
///
/// Returns `None` if either document is not in the repository.
pub fn sim_reference(repo: &Repository, i: DocId, j: DocId) -> Option<f64> {
    let (ei, ej) = (repo.doc(i)?, repo.doc(j)?);
    let pri = repo.pr_doc(i).ok()?;
    let prj = repo.pr_doc(j).ok()?;
    let mut acc = 0.0;
    // merge over the intersection of the two tf vectors
    let (a, b) = (ei.tf().entries(), ej.tf().entries());
    let (mut x, mut y) = (0, 0);
    while x < a.len() && y < b.len() {
        match a[x].0.cmp(&b[y].0) {
            std::cmp::Ordering::Less => x += 1,
            std::cmp::Ordering::Greater => y += 1,
            std::cmp::Ordering::Equal => {
                let p = repo.pr_term(a[x].0);
                if p > 0.0 {
                    acc += a[x].1 * b[y].1 / p;
                }
                x += 1;
                y += 1;
            }
        }
    }
    Some(pri * prj / (ei.len() * ej.len()) * acc)
}
