//! Materialised contribution vectors (φ) for one clustering session.

use std::collections::BTreeMap;

use nidc_forgetting::{Repository, StatsSnapshot};
use nidc_textproc::{DocId, SparseVector};

/// The φ vectors of every live document under one statistics snapshot.
///
/// `φ_i = (Pr(d_i)/len_i) · d⃗_i` where `d⃗_i` is the tf·idf vector, so that
/// `sim(d_i,d_j) = φ_i·φ_j` (paper eq. 16) and cluster representatives are
/// plain sums of φ vectors (eq. 20).
///
/// φ vectors are a function of the snapshot: after the statistics change
/// (new documents, decay), rebuild them with [`DocVectors::build`].
#[derive(Debug, Clone)]
pub struct DocVectors {
    phi: BTreeMap<DocId, SparseVector>,
    self_sim: BTreeMap<DocId, f64>,
    vocab_dim: usize,
}

impl DocVectors {
    /// Builds φ vectors for every document in `repo` under its current
    /// statistics.
    pub fn build(repo: &Repository) -> Self {
        let snapshot = repo.snapshot();
        Self::build_from_snapshot(
            &snapshot,
            repo.iter().map(|(id, e)| (id, e.tf(), e.len())),
            repo.vocab_dim(),
        )
    }

    /// Builds φ vectors from an explicit snapshot and `(id, tf, len)` triples.
    ///
    /// Documents unknown to the snapshot (no `Pr(d)`) are skipped.
    pub fn build_from_snapshot<'a, I>(snapshot: &StatsSnapshot, docs: I, vocab_dim: usize) -> Self
    where
        I: IntoIterator<Item = (DocId, &'a SparseVector, f64)>,
    {
        let mut phi = BTreeMap::new();
        let mut self_sim = BTreeMap::new();
        for (id, tf, len) in docs {
            let Some(pr) = snapshot.pr_doc(id) else {
                continue;
            };
            let scale = pr / len;
            let v = SparseVector::from_sorted(
                tf.iter()
                    .filter_map(|(t, f)| {
                        let idf = snapshot.idf(t);
                        (idf > 0.0).then_some((t, scale * f * idf))
                    })
                    .collect(),
            );
            self_sim.insert(id, v.norm_sq());
            phi.insert(id, v);
        }
        Self {
            phi,
            self_sim,
            vocab_dim,
        }
    }

    /// Builds φ vectors in parallel over `threads` scoped worker threads
    /// (`0` = all hardware threads, `1` = sequential; see `nidc-parallel`).
    ///
    /// Semantically identical to [`DocVectors::build`] (same vectors,
    /// deterministic result); worthwhile from a few thousand documents up.
    pub fn build_parallel(repo: &Repository, threads: usize) -> Self {
        let threads = nidc_parallel::resolve_threads(threads);
        if !nidc_parallel::should_fan_out(repo.len(), threads) {
            return Self::build(repo);
        }
        let snapshot = repo.snapshot();
        let docs: Vec<(DocId, &SparseVector, f64)> =
            repo.iter().map(|(id, e)| (id, e.tf(), e.len())).collect();
        let parts = nidc_parallel::par_chunks(docs.len(), threads, |range| {
            Self::build_from_snapshot(
                &snapshot,
                docs[range].iter().copied(),
                0, // placeholder; fixed when merging
            )
        });
        let mut phi = BTreeMap::new();
        let mut self_sim = BTreeMap::new();
        for part in parts {
            phi.extend(part.phi);
            self_sim.extend(part.self_sim);
        }
        Self {
            phi,
            self_sim,
            vocab_dim: repo.vocab_dim(),
        }
    }

    /// The φ vector of document `id`.
    pub fn phi(&self, id: DocId) -> Option<&SparseVector> {
        self.phi.get(&id)
    }

    /// `sim(d_i, d_j) = φ_i · φ_j` (eq. 16). `None` if either id is unknown.
    pub fn sim(&self, i: DocId, j: DocId) -> Option<f64> {
        Some(self.phi.get(&i)?.dot(self.phi.get(&j)?))
    }

    /// Self-similarity `sim(d, d) = |φ_d|²` — the summand of `ss(C_p)`
    /// (eq. 23).
    pub fn self_sim(&self, id: DocId) -> Option<f64> {
        self.self_sim.get(&id).copied()
    }

    /// Number of documents with materialised vectors.
    pub fn len(&self) -> usize {
        self.phi.len()
    }

    /// Whether no vectors were materialised.
    pub fn is_empty(&self) -> bool {
        self.phi.is_empty()
    }

    /// Dimension of the underlying term space (for sizing dense
    /// representatives).
    pub fn vocab_dim(&self) -> usize {
        self.vocab_dim
    }

    /// Document ids in ascending order.
    pub fn ids(&self) -> Vec<DocId> {
        self.phi.keys().copied().collect()
    }

    /// Iterates `(DocId, &φ)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (DocId, &SparseVector)> {
        self.phi.iter().map(|(&id, v)| (id, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim_reference;
    use nidc_forgetting::{DecayParams, Timestamp};
    use nidc_textproc::TermId;

    fn tf(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
    }

    fn small_repo() -> Repository {
        let mut repo = Repository::new(DecayParams::from_spans(7.0, 14.0).unwrap());
        repo.insert(DocId(0), Timestamp(0.0), tf(&[(0, 2.0), (1, 1.0)]))
            .unwrap();
        repo.insert(DocId(1), Timestamp(1.0), tf(&[(0, 1.0), (2, 3.0)]))
            .unwrap();
        repo.insert(
            DocId(2),
            Timestamp(2.0),
            tf(&[(1, 1.0), (2, 1.0), (3, 1.0)]),
        )
        .unwrap();
        repo
    }

    #[test]
    fn phi_dot_equals_reference_similarity() {
        let repo = small_repo();
        let vecs = DocVectors::build(&repo);
        for &i in &[0u64, 1, 2] {
            for &j in &[0u64, 1, 2] {
                let fast = vecs.sim(DocId(i), DocId(j)).unwrap();
                let slow = sim_reference(&repo, DocId(i), DocId(j)).unwrap();
                assert!(
                    (fast - slow).abs() < 1e-12,
                    "sim({i},{j}): fast={fast} slow={slow}"
                );
            }
        }
    }

    #[test]
    fn self_sim_matches_diagonal() {
        let repo = small_repo();
        let vecs = DocVectors::build(&repo);
        for id in vecs.ids() {
            assert!((vecs.self_sim(id).unwrap() - vecs.sim(id, id).unwrap()).abs() < 1e-15);
        }
    }

    #[test]
    fn similarity_is_symmetric_and_nonnegative() {
        let repo = small_repo();
        let vecs = DocVectors::build(&repo);
        for i in vecs.ids() {
            for j in vecs.ids() {
                let s = vecs.sim(i, j).unwrap();
                assert!(s >= 0.0);
                assert_eq!(s, vecs.sim(j, i).unwrap());
            }
        }
    }

    #[test]
    fn older_documents_have_smaller_similarities() {
        // Same content, different ages: the newer pair must be more similar.
        let mut repo = Repository::new(DecayParams::from_spans(7.0, 28.0).unwrap());
        repo.insert(DocId(0), Timestamp(0.0), tf(&[(0, 1.0)]))
            .unwrap();
        repo.insert(DocId(1), Timestamp(0.0), tf(&[(0, 1.0)]))
            .unwrap();
        repo.insert(DocId(2), Timestamp(14.0), tf(&[(0, 1.0)]))
            .unwrap();
        repo.insert(DocId(3), Timestamp(14.0), tf(&[(0, 1.0)]))
            .unwrap();
        let vecs = DocVectors::build(&repo);
        let old_pair = vecs.sim(DocId(0), DocId(1)).unwrap();
        let new_pair = vecs.sim(DocId(2), DocId(3)).unwrap();
        assert!(
            new_pair > old_pair,
            "novelty bias violated: new={new_pair} old={old_pair}"
        );
    }

    #[test]
    fn unknown_ids_yield_none() {
        let repo = small_repo();
        let vecs = DocVectors::build(&repo);
        assert!(vecs.sim(DocId(0), DocId(99)).is_none());
        assert!(vecs.phi(DocId(99)).is_none());
        assert!(vecs.self_sim(DocId(99)).is_none());
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let mut repo = Repository::new(DecayParams::from_spans(7.0, 300.0).unwrap());
        for i in 0..50u64 {
            repo.insert(
                DocId(i),
                Timestamp(0.01 * i as f64),
                tf(&[
                    ((i % 7) as u32, 1.0 + (i % 3) as f64),
                    (10 + (i % 5) as u32, 2.0),
                ]),
            )
            .unwrap();
        }
        let seq = DocVectors::build(&repo);
        for threads in [0, 1, 2, 4, 7] {
            let par = DocVectors::build_parallel(&repo, threads);
            assert_eq!(par.len(), seq.len());
            assert_eq!(par.vocab_dim(), seq.vocab_dim());
            for id in seq.ids() {
                assert_eq!(
                    par.phi(id).unwrap().entries(),
                    seq.phi(id).unwrap().entries(),
                    "threads={threads}, doc {id}"
                );
            }
        }
    }

    #[test]
    fn build_covers_all_live_documents() {
        let repo = small_repo();
        let vecs = DocVectors::build(&repo);
        assert_eq!(vecs.len(), repo.len());
        assert_eq!(vecs.vocab_dim(), repo.vocab_dim());
        assert!(!vecs.is_empty());
    }
}
