//! Term→cluster inverted index over the K cluster representatives.
//!
//! The extended K-means spends almost all of its time in the step-1 scoring
//! sweep, where every document is dotted against every representative. With
//! per-cluster dot products that costs O(K·nnz(φ_d)) lookups per document.
//! The [`ClusterIndex`] turns the sweep inside out: one postings list per
//! term, `TermId → [(cluster, weight)]`, so a single pass over φ_d's terms
//! accumulates `c⃗_q · φ_d` for **all** K clusters at once into a scratch
//! row — O(Σ_t |postings(t)|) work, which for topical vocabularies is far
//! below K·nnz (most terms live in few clusters' representatives). The same
//! cluster-side indexing idea appears in the short-text-stream literature
//! (Rakib et al. 2021; Karkali et al. 2014).
//!
//! # Bit-identity contract
//!
//! For each cluster `q`, [`ClusterIndex::dot_all`] accumulates
//! `weight(q,t)·φ[t]` in φ's term order — exactly the order
//! [`ClusterRep::dot_doc`] uses — and every posting weight is maintained by
//! the same scalar operations, in the same sequence, as the corresponding
//! sparse-representative entry. The scores are therefore bit-identical to
//! per-cluster dot products, which is what preserves the workspace's
//! thread-count determinism contract end to end.

use nidc_obs::{buckets, DeepSize, LazyCounter, LazyGauge, LazyHistogram};
use nidc_textproc::{SparseVector, TermId};

use crate::ClusterRep;

/// Postings visited by [`ClusterIndex::dot_all`] — the realised
/// `Σ_t |postings(t)|` work of the step-1 sweep (compare against
/// `nidc_kmeans_step1_candidates_total`, the dense-equivalent K·rows bound,
/// to see the inverted-index win per run).
static POSTINGS_TOUCHED: LazyCounter = LazyCounter::new("nidc_index_postings_touched_total");
/// Incremental `add(cluster, φ)` maintenance operations.
static ADD_OPS: LazyCounter = LazyCounter::new("nidc_index_add_ops_total");
/// Incremental `remove(cluster, φ)` maintenance operations.
static REMOVE_OPS: LazyCounter = LazyCounter::new("nidc_index_remove_ops_total");
/// Full rebuilds from the representatives (once per K-means iteration).
static REBUILDS: LazyCounter = LazyCounter::new("nidc_index_rebuilds_total");
/// Wall time of one full rebuild — re-mirroring every representative entry
/// into the postings spine. Fine buckets: a rebuild over a window-sized
/// vocabulary runs in microseconds.
static REBUILD_SECONDS: LazyHistogram =
    LazyHistogram::new("nidc_index_rebuild_seconds", buckets::FINE_SECONDS);
/// Heap bytes held by the postings spine and lists, sampled after each
/// rebuild (last-rebuild semantics — incremental add/remove drift between
/// rebuilds is not tracked; the K-means loop rebuilds once per iteration).
static POSTINGS_BYTES: LazyGauge = LazyGauge::new("nidc_mem_index_postings_bytes");

/// An inverted postings map `TermId → [(cluster, weight)]` mirroring the
/// sparse representatives of K clusters.
///
/// The postings spine is a `Vec` indexed directly by term id — term ids are
/// contiguous vocabulary indices, so the per-term lookup in the hot
/// [`ClusterIndex::dot_all`] loop is a single array access (a `BTreeMap`
/// spine was measured ~5× slower there; the log-depth pointer chase
/// swamped the postings savings). Spine memory is O(max term id), like one
/// dense representative — the K multiplier the sparse backend removes.
///
/// Postings lists are kept sorted by cluster id; weights mirror the
/// representatives' stored entries bit-exactly (entries that cancel to
/// exactly `0.0` are pruned on both sides).
#[derive(Debug, Clone, Default)]
pub struct ClusterIndex {
    k: usize,
    postings: Vec<Vec<(u32, f64)>>,
}

impl ClusterIndex {
    /// Registers the index metric family at its current value (zero on
    /// first call), so runs that never build a `ClusterIndex` — e.g. when
    /// the small-K sweep heuristic picks the dense path — still export the
    /// full schema. `remove_ops` is deliberately excluded, mirroring the
    /// metrics manifest (it is not guaranteed even on index-backed runs).
    pub fn register_metrics() {
        POSTINGS_TOUCHED.add(0);
        ADD_OPS.add(0);
        REBUILDS.add(0);
        REBUILD_SECONDS.touch();
        POSTINGS_BYTES.touch();
    }

    /// An empty index over `k` cluster slots.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            postings: Vec::new(),
        }
    }

    /// Number of cluster slots.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of terms with at least one posting.
    pub fn term_count(&self) -> usize {
        self.postings.iter().filter(|l| !l.is_empty()).count()
    }

    /// Length of the postings spine (highest term id ever stored + 1) —
    /// the O(|V|) part of the index's memory footprint.
    pub fn term_slots(&self) -> usize {
        self.postings.len()
    }

    /// Total number of `(cluster, weight)` postings across all terms — the
    /// memory footprint driver, and the per-sweep work bound `Σ_t |postings|`
    /// when summed over a document's terms.
    pub fn postings_len(&self) -> usize {
        self.postings.iter().map(Vec::len).sum()
    }

    /// Whether no postings are stored.
    pub fn is_empty(&self) -> bool {
        self.postings.iter().all(Vec::is_empty)
    }

    /// The mirrored weight of `(term, cluster)` (0.0 if absent).
    pub fn weight(&self, t: TermId, cluster: usize) -> f64 {
        self.postings
            .get(t.index())
            .and_then(|list| {
                list.binary_search_by_key(&(cluster as u32), |&(q, _)| q)
                    .ok()
                    .map(|i| list[i].1)
            })
            .unwrap_or(0.0)
    }

    fn update(&mut self, cluster: usize, phi: &SparseVector, scale: f64) {
        debug_assert!(
            cluster < self.k,
            "cluster {cluster} out of range {}",
            self.k
        );
        let q = cluster as u32;
        for (t, w) in phi.iter() {
            let idx = t.index();
            if idx >= self.postings.len() {
                self.postings.resize_with(idx + 1, Vec::new);
            }
            let list = &mut self.postings[idx];
            match list.binary_search_by_key(&q, |&(c, _)| c) {
                Ok(i) => {
                    // same scalar op as the sparse rep's axpy: a + scale·b
                    list[i].1 += scale * w;
                    if list[i].1 == 0.0 {
                        // prune at the same condition the sparse rep prunes
                        // its entries, so the two stay exact mirrors and an
                        // emptied cluster returns to exact emptiness
                        list.remove(i);
                    }
                }
                Err(i) => {
                    let scaled = scale * w;
                    if scaled != 0.0 {
                        list.insert(i, (q, scaled));
                    }
                }
            }
        }
    }

    /// Mirrors `reps[cluster].add(φ)`: folds `+φ` into the cluster's
    /// postings.
    pub fn add(&mut self, cluster: usize, phi: &SparseVector) {
        ADD_OPS.inc();
        self.update(cluster, phi, 1.0);
    }

    /// Mirrors `reps[cluster].remove(φ)`: folds `−φ` into the cluster's
    /// postings. Expiration and step-1 reassignments both feed through here.
    pub fn remove(&mut self, cluster: usize, phi: &SparseVector) {
        REMOVE_OPS.inc();
        self.update(cluster, phi, -1.0);
    }

    /// Rebuilds all postings from the representatives' stored entries (used
    /// after `recompute_exact` clears floating-point drift from the reps, so
    /// index and reps stay bit-identical mirrors of each other).
    pub fn rebuild(&mut self, reps: &[ClusterRep]) {
        REBUILDS.inc();
        let _span = nidc_obs::span!("index.rebuild");
        let _timer = REBUILD_SECONDS.start_timer();
        self.k = reps.len();
        // keep the spine and list allocations; the K-means loop rebuilds
        // once per iteration
        self.postings.iter_mut().for_each(Vec::clear);
        for (q, rep) in reps.iter().enumerate() {
            rep.for_each_entry(|t, w| {
                let idx = t.index();
                if idx >= self.postings.len() {
                    self.postings.resize_with(idx + 1, Vec::new);
                }
                // clusters are visited in ascending q, so each list stays
                // sorted by construction
                self.postings[idx].push((q as u32, w));
            });
        }
        POSTINGS_BYTES.set(self.deep_size_bytes());
    }

    /// Scores `φ` against **all** K clusters in one pass over its terms:
    /// `out[q] = c⃗_q · φ`, with `out` (length ≥ k) used as the scratch row.
    ///
    /// Cost: O(Σ_{t∈φ} |postings(t)|). Per cluster, contributions accumulate
    /// in φ's term order, so each `out[q]` is bit-identical to
    /// `reps[q].dot_doc(φ)`.
    pub fn dot_all(&self, phi: &SparseVector, out: &mut [f64]) {
        debug_assert!(out.len() >= self.k, "scratch row shorter than k");
        out[..self.k].fill(0.0);
        // Accumulated locally and published once per call, so the hot
        // posting loop never touches an atomic.
        let mut touched = 0usize;
        for (t, w) in phi.iter() {
            if let Some(list) = self.postings.get(t.index()) {
                touched += list.len();
                for &(q, cw) in list {
                    out[q as usize] += cw * w;
                }
            }
        }
        POSTINGS_TOUCHED.add(touched as u64);
    }
}

impl DeepSize for ClusterIndex {
    /// Heap footprint: the spine's capacity plus every posting list's
    /// capacity (spare capacity is kept deliberately across rebuilds, so the
    /// gauge should see it).
    fn deep_size_bytes(&self) -> u64 {
        let spine = self.postings.capacity() * std::mem::size_of::<Vec<(u32, f64)>>();
        let lists: usize = self
            .postings
            .iter()
            .map(|l| l.capacity() * std::mem::size_of::<(u32, f64)>())
            .sum();
        (spine + lists) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phi(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
    }

    fn docs() -> Vec<SparseVector> {
        vec![
            phi(&[(0, 0.5), (1, 0.2)]),
            phi(&[(0, 0.3), (2, 0.4)]),
            phi(&[(1, 0.6), (2, 0.1), (3, 0.2)]),
            phi(&[(0, 0.1), (3, 0.7)]),
            phi(&[(4, 0.9)]),
        ]
    }

    /// Mirrored reps + index, documents dealt round-robin over k clusters.
    fn mirrored(k: usize) -> (Vec<ClusterRep>, ClusterIndex, Vec<SparseVector>) {
        let ds = docs();
        let mut reps = vec![ClusterRep::new(); k];
        let mut index = ClusterIndex::new(k);
        for (i, d) in ds.iter().enumerate() {
            reps[i % k].add(d);
            index.add(i % k, d);
        }
        (reps, index, ds)
    }

    #[test]
    fn dot_all_is_bit_identical_to_per_cluster_dots() {
        let (reps, index, ds) = mirrored(3);
        let mut row = vec![0.0; 3];
        for d in &ds {
            index.dot_all(d, &mut row);
            for (q, rep) in reps.iter().enumerate() {
                assert_eq!(row[q], rep.dot_doc(d), "cluster {q}");
            }
        }
    }

    #[test]
    fn remove_mirrors_rep_remove() {
        let (mut reps, mut index, ds) = mirrored(2);
        reps[0].remove(&ds[0]);
        index.remove(0, &ds[0]);
        let mut row = vec![0.0; 2];
        for d in &ds {
            index.dot_all(d, &mut row);
            assert_eq!(row[0], reps[0].dot_doc(d));
            assert_eq!(row[1], reps[1].dot_doc(d));
        }
    }

    #[test]
    fn removing_last_member_restores_exact_emptiness() {
        // regression: the zeroing-on-empty invariant holds for the index too
        let d = phi(&[(0, 0.3), (2, 0.7)]);
        let mut index = ClusterIndex::new(1);
        index.add(0, &d);
        assert_eq!(index.postings_len(), 2);
        index.remove(0, &d);
        assert!(index.is_empty(), "all postings must cancel exactly");
        assert_eq!(index.term_count(), 0);
        assert_eq!(index.postings_len(), 0);
        let mut row = vec![1.0; 1];
        index.dot_all(&d, &mut row);
        assert_eq!(row[0], 0.0);
    }

    #[test]
    fn rebuild_matches_incremental_postings() {
        let (reps, index, ds) = mirrored(3);
        let mut rebuilt = ClusterIndex::new(3);
        rebuilt.rebuild(&reps);
        assert_eq!(rebuilt.postings_len(), index.postings_len());
        assert_eq!(rebuilt.term_count(), index.term_count());
        let mut a = vec![0.0; 3];
        let mut b = vec![0.0; 3];
        for d in &ds {
            index.dot_all(d, &mut a);
            rebuilt.dot_all(d, &mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn weight_lookup_and_counts() {
        let mut index = ClusterIndex::new(2);
        index.add(0, &phi(&[(3, 1.5)]));
        index.add(1, &phi(&[(3, 2.0), (7, 0.5)]));
        assert_eq!(index.k(), 2);
        assert_eq!(index.weight(TermId(3), 0), 1.5);
        assert_eq!(index.weight(TermId(3), 1), 2.0);
        assert_eq!(index.weight(TermId(7), 0), 0.0);
        assert_eq!(index.weight(TermId(9), 1), 0.0);
        assert_eq!(index.term_count(), 2);
        assert_eq!(index.postings_len(), 3);
    }

    #[test]
    fn deep_size_covers_spine_and_lists() {
        let mut index = ClusterIndex::new(2);
        assert_eq!(index.deep_size_bytes(), 0);
        index.add(0, &phi(&[(3, 1.5)]));
        index.add(1, &phi(&[(3, 2.0), (7, 0.5)]));
        // spine reaches term 7 → ≥8 slots × 24B, plus ≥3 postings × 16B.
        assert!(index.deep_size_bytes() >= (8 * 24 + 3 * 16) as u64);
    }

    #[test]
    fn dot_all_uses_only_first_k_slots() {
        let mut index = ClusterIndex::new(2);
        index.add(0, &phi(&[(0, 1.0)]));
        let mut row = vec![7.0; 4]; // oversized scratch: slots beyond k untouched
        index.dot_all(&phi(&[(0, 2.0)]), &mut row);
        assert_eq!(row, vec![2.0, 0.0, 7.0, 7.0]);
    }
}
