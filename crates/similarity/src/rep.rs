//! Cluster representatives with O(|φ|) membership updates (paper §4.4).

use nidc_textproc::{SparseVector, TermId};

/// A cluster representative `c⃗_p = Σ_{d∈C_p} φ_d` (eq. 19–20) together with
/// the cached quantities of §4.4:
///
/// * `cr_self = cr_sim(C_p, C_p) = |c⃗_p|²` (eq. 21 with p = q),
/// * `ss = ss(C_p) = Σ_{d∈C_p} sim(d, d)` (eq. 23),
/// * `size = |C_p|`.
///
/// These make `avg_sim(C_p)` an O(1) read (eq. 24), and both the
/// "what if d is appended" (eq. 26) and "what if d is removed" queries
/// O(|φ_d|) — the efficiency trick that makes the extended K-means viable.
///
/// The representative is stored densely (`Vec<f64>` over the term space) so
/// that a document-representative dot product costs O(nnz(φ_d)).
#[derive(Debug, Clone)]
pub struct ClusterRep {
    rep: Vec<f64>,
    size: usize,
    cr_self: f64,
    ss: f64,
}

impl ClusterRep {
    /// An empty cluster over a term space of dimension `vocab_dim`.
    pub fn new(vocab_dim: usize) -> Self {
        Self {
            rep: vec![0.0; vocab_dim],
            size: 0,
            cr_self: 0.0,
            ss: 0.0,
        }
    }

    /// Builds a representative from a set of member φ vectors.
    pub fn from_members<'a, I>(vocab_dim: usize, members: I) -> Self
    where
        I: IntoIterator<Item = &'a SparseVector>,
    {
        let mut rep = Self::new(vocab_dim);
        for phi in members {
            rep.add(phi);
        }
        rep
    }

    /// Number of member documents `|C_p|`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Whether the cluster has no members.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// `cr_sim(C_p, C_p)` (eq. 21/22).
    pub fn cr_self(&self) -> f64 {
        self.cr_self
    }

    /// `ss(C_p)` (eq. 23).
    pub fn ss(&self) -> f64 {
        self.ss
    }

    /// The dense representative vector `c⃗_p`.
    pub fn vector(&self) -> &[f64] {
        &self.rep
    }

    /// `cr_sim(C_p, {d}) = c⃗_p · φ_d` — the only quantity that must be
    /// computed fresh per (cluster, document) pair (see the discussion
    /// following eq. 26).
    pub fn dot_doc(&self, phi: &SparseVector) -> f64 {
        let mut acc = 0.0;
        for (t, w) in phi.iter() {
            if let Some(&r) = self.rep.get(t.index()) {
                acc += r * w;
            }
        }
        acc
    }

    /// `cr_sim(C_p, C_q)` between two representatives (eq. 21).
    pub fn dot_rep(&self, other: &ClusterRep) -> f64 {
        self.rep
            .iter()
            .zip(other.rep.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Adds document `φ` to the cluster, maintaining all cached quantities in
    /// O(nnz(φ)).
    pub fn add(&mut self, phi: &SparseVector) {
        let dot = self.dot_doc(phi);
        let norm_sq = phi.norm_sq();
        // |c + φ|² = |c|² + 2 c·φ + |φ|²
        self.cr_self += 2.0 * dot + norm_sq;
        self.ss += norm_sq;
        self.size += 1;
        for (t, w) in phi.iter() {
            let idx = t.index();
            if idx >= self.rep.len() {
                self.rep.resize(idx + 1, 0.0);
            }
            self.rep[idx] += w;
        }
    }

    /// Removes document `φ` from the cluster (the deletion analogue the paper
    /// omits "for simplicity"), in O(nnz(φ)):
    ///
    /// ```text
    /// |c − φ|² = |c|² − 2 c·φ + |φ|²
    /// ```
    ///
    /// The caller must ensure `φ` is a current member; removing a non-member
    /// corrupts the cached statistics (debug builds assert `size > 0`).
    pub fn remove(&mut self, phi: &SparseVector) {
        debug_assert!(self.size > 0, "remove from empty cluster");
        let dot = self.dot_doc(phi);
        let norm_sq = phi.norm_sq();
        self.cr_self += -2.0 * dot + norm_sq;
        // Both clamps absorb only floating-point residue (|c−φ|² and ss are
        // nonnegative by construction); a substantially negative value means
        // a non-member was removed and must not be silently zeroed.
        debug_assert!(
            self.cr_self >= -1e-9 * (1.0 + 2.0 * dot.abs() + norm_sq),
            "cr_self went negative beyond fp drift: {}",
            self.cr_self
        );
        if self.cr_self < 0.0 {
            self.cr_self = 0.0; // clamp fp drift
        }
        self.ss -= norm_sq;
        debug_assert!(
            self.ss >= -1e-9 * (1.0 + norm_sq),
            "ss went negative beyond fp drift: {}",
            self.ss
        );
        if self.ss < 0.0 {
            self.ss = 0.0;
        }
        self.size -= 1;
        for (t, w) in phi.iter() {
            if let Some(r) = self.rep.get_mut(t.index()) {
                *r -= w;
            }
        }
        if self.size == 0 {
            // restore exact emptiness so drift cannot accumulate across reuse
            self.rep.iter_mut().for_each(|r| *r = 0.0);
            self.cr_self = 0.0;
            self.ss = 0.0;
        }
    }

    /// `avg_sim(C_p)` — the intra-cluster similarity, via eq. 24:
    ///
    /// ```text
    /// avg_sim = (cr_sim(C,C) − ss(C)) / (|C|(|C|−1))
    /// ```
    ///
    /// Defined as 0 for clusters with fewer than two members.
    pub fn avg_sim(&self) -> f64 {
        if self.size < 2 {
            return 0.0;
        }
        let n = self.size as f64;
        ((self.cr_self - self.ss) / (n * (n - 1.0))).max(0.0)
    }

    /// The cluster's contribution to the clustering index `G`:
    /// `|C_p| · avg_sim(C_p)` (eq. 17).
    pub fn g_term(&self) -> f64 {
        self.size as f64 * self.avg_sim()
    }

    /// `avg_sim(C_p ∪ {d})` without mutating the cluster (eq. 26):
    ///
    /// ```text
    /// (cr_sim(C,C) + 2·cr_sim(C,{d}) − ss(C)) / (|C|(|C|+1))
    /// ```
    ///
    /// Returns 0 for an empty cluster (a singleton has no pairs).
    pub fn avg_sim_if_added(&self, phi: &SparseVector) -> f64 {
        if self.size == 0 {
            return 0.0;
        }
        let n = self.size as f64;
        let num = self.cr_self + 2.0 * self.dot_doc(phi) - self.ss;
        (num / (n * (n + 1.0))).max(0.0)
    }

    /// `|C_p ∪ {d}|·avg_sim(C_p ∪ {d})` without mutating the cluster — the
    /// cluster's contribution to the clustering index `G` (eq. 17) if `d`
    /// joined:
    ///
    /// ```text
    /// (cr_sim(C,C) + 2·cr_sim(C,{d}) − ss(C)) / |C|      (|C| ≥ 1)
    /// ```
    ///
    /// Returns 0 for an empty cluster. Assigning each document to the
    /// cluster whose *G-term* increases the most greedily maximises the
    /// paper's clustering index; see the discussion of the two assignment
    /// criteria in `nidc-core`.
    pub fn g_term_if_added(&self, phi: &SparseVector) -> f64 {
        if self.size == 0 {
            return 0.0;
        }
        let n = self.size as f64;
        ((self.cr_self + 2.0 * self.dot_doc(phi) - self.ss) / n).max(0.0)
    }

    /// `avg_sim(C_p \ {d})` without mutating the cluster — the deletion
    /// analogue of eq. 26. `φ` must be a current member.
    pub fn avg_sim_if_removed(&self, phi: &SparseVector) -> f64 {
        if self.size <= 2 {
            return 0.0;
        }
        let n = self.size as f64;
        let norm_sq = phi.norm_sq();
        let cr_new = self.cr_self - 2.0 * self.dot_doc(phi) + norm_sq;
        let ss_new = self.ss - norm_sq;
        ((cr_new - ss_new) / ((n - 1.0) * (n - 2.0))).max(0.0)
    }

    /// Rebuilds every cached quantity exactly from the member φ vectors
    /// (removes floating-point drift after long add/remove chains).
    pub fn recompute_exact<'a, I>(&mut self, members: I)
    where
        I: IntoIterator<Item = &'a SparseVector>,
    {
        self.rep.iter_mut().for_each(|r| *r = 0.0);
        self.size = 0;
        self.ss = 0.0;
        for phi in members {
            for (t, w) in phi.iter() {
                let idx = t.index();
                if idx >= self.rep.len() {
                    self.rep.resize(idx + 1, 0.0);
                }
                self.rep[idx] += w;
            }
            self.ss += phi.norm_sq();
            self.size += 1;
        }
        self.cr_self = self.rep.iter().map(|r| r * r).sum();
    }

    /// The `n` heaviest terms of the representative, descending — a cheap
    /// cluster label for display ("hot topic" keywords).
    pub fn top_terms(&self, n: usize) -> Vec<(TermId, f64)> {
        let mut terms: Vec<(TermId, f64)> = self
            .rep
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w > 0.0)
            .map(|(i, &w)| (TermId(i as u32), w))
            .collect();
        terms.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        terms.truncate(n);
        terms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phi(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
    }

    /// Brute-force pairwise avg_sim (eq. 18) for validation.
    fn brute_avg_sim(members: &[SparseVector]) -> f64 {
        let n = members.len();
        if n < 2 {
            return 0.0;
        }
        let mut acc = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    acc += members[i].dot(&members[j]);
                }
            }
        }
        acc / (n as f64 * (n as f64 - 1.0))
    }

    fn sample_members() -> Vec<SparseVector> {
        vec![
            phi(&[(0, 0.5), (1, 0.2)]),
            phi(&[(0, 0.3), (2, 0.4)]),
            phi(&[(1, 0.6), (2, 0.1), (3, 0.2)]),
            phi(&[(0, 0.1), (3, 0.7)]),
        ]
    }

    #[test]
    fn eq22_identity_cr_self_decomposition() {
        let members = sample_members();
        let rep = ClusterRep::from_members(4, members.iter());
        let n = members.len() as f64;
        // eq. 22: cr_sim(C,C) = n(n−1)·avg_sim + ss
        let lhs = rep.cr_self();
        let rhs = n * (n - 1.0) * brute_avg_sim(&members) + rep.ss();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn eq24_avg_sim_matches_brute_force() {
        let members = sample_members();
        let rep = ClusterRep::from_members(4, members.iter());
        assert!((rep.avg_sim() - brute_avg_sim(&members)).abs() < 1e-12);
    }

    #[test]
    fn eq26_append_preview_matches_actual_append() {
        let members = sample_members();
        let newcomer = phi(&[(1, 0.3), (2, 0.3)]);
        let mut rep = ClusterRep::from_members(4, members.iter());
        let predicted = rep.avg_sim_if_added(&newcomer);
        rep.add(&newcomer);
        assert!((predicted - rep.avg_sim()).abs() < 1e-12);
        // and against brute force
        let mut all = members;
        all.push(newcomer);
        assert!((rep.avg_sim() - brute_avg_sim(&all)).abs() < 1e-12);
    }

    #[test]
    fn removal_preview_matches_actual_removal() {
        let members = sample_members();
        let mut rep = ClusterRep::from_members(4, members.iter());
        let predicted = rep.avg_sim_if_removed(&members[1]);
        rep.remove(&members[1]);
        assert!((predicted - rep.avg_sim()).abs() < 1e-12);
        let remaining: Vec<_> = members
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 1)
            .map(|(_, m)| m.clone())
            .collect();
        assert!((rep.avg_sim() - brute_avg_sim(&remaining)).abs() < 1e-12);
    }

    #[test]
    fn add_then_remove_is_identity() {
        let members = sample_members();
        let mut rep = ClusterRep::from_members(4, members.iter());
        let before = (rep.size(), rep.cr_self(), rep.ss(), rep.avg_sim());
        let d = phi(&[(0, 0.9), (3, 0.1)]);
        rep.add(&d);
        rep.remove(&d);
        assert_eq!(rep.size(), before.0);
        assert!((rep.cr_self() - before.1).abs() < 1e-12);
        assert!((rep.ss() - before.2).abs() < 1e-12);
        assert!((rep.avg_sim() - before.3).abs() < 1e-12);
    }

    #[test]
    fn merge_formula_eq25() {
        // avg_sim(C_p ∪ C_q) from representative quantities, two disjoint sets.
        let p_members = vec![phi(&[(0, 0.4)]), phi(&[(0, 0.2), (1, 0.5)])];
        let q_members = vec![phi(&[(1, 0.3), (2, 0.2)]), phi(&[(2, 0.6)])];
        let p = ClusterRep::from_members(3, p_members.iter());
        let q = ClusterRep::from_members(3, q_members.iter());
        let np = p.size() as f64;
        let nq = q.size() as f64;
        let merged_avg = (p.cr_self() + 2.0 * p.dot_rep(&q) + q.cr_self() - p.ss() - q.ss())
            / ((np + nq) * (np + nq - 1.0));
        let mut all = p_members;
        all.extend(q_members);
        assert!((merged_avg - brute_avg_sim(&all)).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_clusters() {
        let mut rep = ClusterRep::new(3);
        assert_eq!(rep.avg_sim(), 0.0);
        assert_eq!(rep.g_term(), 0.0);
        assert_eq!(rep.avg_sim_if_added(&phi(&[(0, 1.0)])), 0.0);
        rep.add(&phi(&[(0, 1.0)]));
        assert_eq!(rep.size(), 1);
        assert_eq!(rep.avg_sim(), 0.0); // singleton: no pairs
    }

    #[test]
    fn removing_last_member_restores_exact_emptiness() {
        let d = phi(&[(0, 0.3), (2, 0.7)]);
        let mut rep = ClusterRep::new(3);
        rep.add(&d);
        rep.remove(&d);
        assert!(rep.is_empty());
        assert_eq!(rep.cr_self(), 0.0);
        assert_eq!(rep.ss(), 0.0);
        assert!(rep.vector().iter().all(|&w| w == 0.0));
    }

    #[test]
    fn dot_doc_handles_terms_beyond_vocab_dim() {
        let rep = ClusterRep::from_members(2, [phi(&[(0, 1.0)])].iter());
        // φ mentions term 5, beyond the rep's dimension: contributes 0.
        assert_eq!(rep.dot_doc(&phi(&[(0, 2.0), (5, 3.0)])), 2.0);
    }

    #[test]
    fn add_grows_vocab_dim_on_demand() {
        let mut rep = ClusterRep::new(1);
        rep.add(&phi(&[(4, 1.5)]));
        assert_eq!(rep.vector().len(), 5);
        assert_eq!(rep.vector()[4], 1.5);
    }

    #[test]
    fn recompute_exact_matches_incremental() {
        let members = sample_members();
        let mut rep = ClusterRep::new(4);
        for m in &members {
            rep.add(m);
        }
        let mut exact = rep.clone();
        exact.recompute_exact(members.iter());
        assert!((rep.cr_self() - exact.cr_self()).abs() < 1e-12);
        assert!((rep.ss() - exact.ss()).abs() < 1e-12);
        assert_eq!(rep.size(), exact.size());
    }

    #[test]
    fn top_terms_are_sorted_descending() {
        let rep = ClusterRep::from_members(4, [phi(&[(0, 0.1), (1, 0.9), (2, 0.5)])].iter());
        let top = rep.top_terms(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, TermId(1));
        assert_eq!(top[1].0, TermId(2));
    }

    #[test]
    fn g_term_if_added_preview_matches_actual() {
        let members = sample_members();
        let newcomer = phi(&[(0, 0.2), (2, 0.4)]);
        let mut rep = ClusterRep::from_members(4, members.iter());
        let preview = rep.g_term_if_added(&newcomer);
        rep.add(&newcomer);
        assert!((preview - rep.g_term()).abs() < 1e-12);
    }

    #[test]
    fn g_term_if_added_to_empty_is_zero() {
        let rep = ClusterRep::new(3);
        assert_eq!(rep.g_term_if_added(&phi(&[(0, 1.0)])), 0.0);
    }

    #[test]
    fn g_term_if_added_to_singleton_is_twice_sim() {
        let seed = phi(&[(0, 0.6), (1, 0.2)]);
        let rep = ClusterRep::from_members(2, [seed.clone()].iter());
        let d = phi(&[(0, 0.5), (1, 0.5)]);
        assert!((rep.g_term_if_added(&d) - 2.0 * seed.dot(&d)).abs() < 1e-12);
    }

    #[test]
    fn g_term_is_size_times_avg_sim() {
        let members = sample_members();
        let rep = ClusterRep::from_members(4, members.iter());
        assert!((rep.g_term() - 4.0 * rep.avg_sim()).abs() < 1e-12);
    }
}
