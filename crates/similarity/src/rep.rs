//! Cluster representatives with O(|φ|) membership updates (paper §4.4).

use nidc_obs::LazyCounter;
use nidc_textproc::{SparseVector, TermId};

/// Times a clamp-to-zero actually absorbed negative floating-point residue
/// in a cached representative statistic (`cr_self` or `ss`). Shares its
/// name with the repository-side counter in `nidc-forgetting`, so one
/// metric reports fp drift across both layers — always-on, because the
/// accompanying `debug_assert!`s compile out of release builds.
static FP_RESIDUE_CLAMPS: LazyCounter = LazyCounter::new("nidc_fp_residue_clamps_total");

/// How a [`ClusterRep`] stores its vector `c⃗_p`.
///
/// Both backends produce **bit-identical** statistics and clusterings: every
/// weight is accumulated by the same scalar operations in the same order,
/// only the storage (and therefore the asymptotics) differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepBackend {
    /// `Vec<f64>` over the full term space: O(|V|) memory per cluster,
    /// O(1) per-term lookup. The original implementation, kept for A/B
    /// verification against the sparse path.
    Dense,
    /// Sorted `Vec<(TermId, f64)>` (the [`SparseVector`] idiom): O(nnz)
    /// memory, O(log nnz) lookup, and merge-join rep↔rep products. The
    /// default, and the backend the term→cluster inverted index
    /// ([`crate::ClusterIndex`]) mirrors.
    #[default]
    Sparse,
}

impl std::str::FromStr for RepBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dense" => Ok(RepBackend::Dense),
            "sparse" => Ok(RepBackend::Sparse),
            other => Err(format!("unknown rep backend '{other}' (dense|sparse)")),
        }
    }
}

impl std::fmt::Display for RepBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RepBackend::Dense => "dense",
            RepBackend::Sparse => "sparse",
        })
    }
}

#[derive(Debug, Clone)]
enum Storage {
    Dense(Vec<f64>),
    Sparse(SparseVector),
}

impl Storage {
    fn weight(&self, t: TermId) -> f64 {
        match self {
            Storage::Dense(v) => v.get(t.index()).copied().unwrap_or(0.0),
            Storage::Sparse(s) => s.get(t),
        }
    }
}

/// A cluster representative `c⃗_p = Σ_{d∈C_p} φ_d` (eq. 19–20) together with
/// the cached quantities of §4.4:
///
/// * `cr_self = cr_sim(C_p, C_p) = |c⃗_p|²` (eq. 21 with p = q),
/// * `ss = ss(C_p) = Σ_{d∈C_p} sim(d, d)` (eq. 23),
/// * `size = |C_p|`.
///
/// These make `avg_sim(C_p)` an O(1) read (eq. 24), and both the
/// "what if d is appended" (eq. 26) and "what if d is removed" queries
/// O(|φ_d|) — the efficiency trick that makes the extended K-means viable.
///
/// The representative vector is stored per [`RepBackend`]: sparse (sorted
/// `Vec<(TermId, f64)>`, the default) or dense (`Vec<f64>` over the term
/// space, for A/B verification). A document-representative dot product
/// costs O(nnz(φ_d)) dense and O(nnz(φ_d)·log nnz(c⃗_p)) sparse; both
/// accumulate term contributions in φ's term order, so every derived
/// statistic is bit-identical across backends.
#[derive(Debug, Clone)]
pub struct ClusterRep {
    storage: Storage,
    size: usize,
    cr_self: f64,
    ss: f64,
}

impl Default for ClusterRep {
    fn default() -> Self {
        Self::new()
    }
}

impl ClusterRep {
    /// An empty cluster on the default (sparse) backend.
    pub fn new() -> Self {
        Self::new_with(RepBackend::default())
    }

    /// An empty cluster on an explicit backend.
    pub fn new_with(backend: RepBackend) -> Self {
        Self {
            storage: match backend {
                RepBackend::Dense => Storage::Dense(Vec::new()),
                RepBackend::Sparse => Storage::Sparse(SparseVector::new()),
            },
            size: 0,
            cr_self: 0.0,
            ss: 0.0,
        }
    }

    /// Builds a representative from a set of member φ vectors (sparse
    /// backend).
    pub fn from_members<'a, I>(members: I) -> Self
    where
        I: IntoIterator<Item = &'a SparseVector>,
    {
        Self::from_members_with(RepBackend::default(), members)
    }

    /// Builds a representative from member φ vectors on an explicit backend.
    pub fn from_members_with<'a, I>(backend: RepBackend, members: I) -> Self
    where
        I: IntoIterator<Item = &'a SparseVector>,
    {
        let mut rep = Self::new_with(backend);
        for phi in members {
            rep.add(phi);
        }
        rep
    }

    /// Rebuilds a representative from persisted parts: the stored non-zero
    /// entries (ascending term order, as [`ClusterRep::for_each_entry`]
    /// yields them) plus the cached statistics **verbatim**.
    ///
    /// This is the checkpoint-restore constructor: `cr_self` and `ss` are
    /// taken as given rather than recomputed, so a restored representative
    /// produces bit-identical similarity scores to the one that was saved
    /// (recomputing `Σw²` could differ in the last bit from the
    /// incrementally-maintained value). Always sparse-backed; use
    /// [`ClusterRep::to_backend`] afterwards if a dense copy is needed.
    pub fn from_parts(entries: Vec<(TermId, f64)>, size: usize, cr_self: f64, ss: f64) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        Self {
            storage: Storage::Sparse(SparseVector::from_sorted(entries)),
            size,
            cr_self,
            ss,
        }
    }

    /// Which backend stores this representative.
    pub fn backend(&self) -> RepBackend {
        match self.storage {
            Storage::Dense(_) => RepBackend::Dense,
            Storage::Sparse(_) => RepBackend::Sparse,
        }
    }

    /// Number of member documents `|C_p|`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Whether the cluster has no members.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// `cr_sim(C_p, C_p)` (eq. 21/22).
    pub fn cr_self(&self) -> f64 {
        self.cr_self
    }

    /// `ss(C_p)` (eq. 23).
    pub fn ss(&self) -> f64 {
        self.ss
    }

    /// Number of stored non-zero terms of `c⃗_p`.
    pub fn nnz(&self) -> usize {
        match &self.storage {
            Storage::Dense(v) => v.iter().filter(|&&w| w != 0.0).count(),
            Storage::Sparse(s) => s.nnz(),
        }
    }

    /// The weight of term `t` in `c⃗_p` (0.0 if absent).
    pub fn weight(&self, t: TermId) -> f64 {
        self.storage.weight(t)
    }

    /// Calls `f` for every stored non-zero `(term, weight)` entry of `c⃗_p`,
    /// in ascending term order.
    pub fn for_each_entry(&self, mut f: impl FnMut(TermId, f64)) {
        match &self.storage {
            Storage::Dense(v) => {
                for (i, &w) in v.iter().enumerate() {
                    if w != 0.0 {
                        f(TermId(i as u32), w);
                    }
                }
            }
            Storage::Sparse(s) => {
                for (t, w) in s.iter() {
                    f(t, w);
                }
            }
        }
    }

    /// `cr_sim(C_p, {d}) = c⃗_p · φ_d` — the only quantity that must be
    /// computed fresh per (cluster, document) pair (see the discussion
    /// following eq. 26).
    ///
    /// Both backends accumulate `rep[t]·φ[t]` over φ's terms in term order
    /// (absent terms contribute an exact ±0.0), so the result is
    /// bit-identical across backends — and to the per-cluster rows of
    /// [`crate::ClusterIndex::dot_all`].
    pub fn dot_doc(&self, phi: &SparseVector) -> f64 {
        match &self.storage {
            Storage::Dense(v) => {
                let mut acc = 0.0;
                for (t, w) in phi.iter() {
                    if let Some(&r) = v.get(t.index()) {
                        acc += r * w;
                    }
                }
                acc
            }
            Storage::Sparse(s) => {
                let mut acc = 0.0;
                for (t, w) in phi.iter() {
                    acc += s.get(t) * w;
                }
                acc
            }
        }
    }

    /// `cr_sim(C_p, C_q)` between two representatives (eq. 21).
    ///
    /// Sparse×sparse is a merge-join over the stored entries —
    /// O(nnz_p + nnz_q) instead of the dense backend's O(|V|) zip.
    pub fn dot_rep(&self, other: &ClusterRep) -> f64 {
        match (&self.storage, &other.storage) {
            (Storage::Dense(a), Storage::Dense(b)) => {
                a.iter().zip(b.iter()).map(|(a, b)| a * b).sum()
            }
            (Storage::Sparse(a), Storage::Sparse(b)) => a.dot(b),
            (Storage::Sparse(a), Storage::Dense(b)) => a
                .iter()
                .map(|(t, w)| b.get(t.index()).copied().unwrap_or(0.0) * w)
                .sum(),
            (Storage::Dense(a), Storage::Sparse(b)) => b
                .iter()
                .map(|(t, w)| a.get(t.index()).copied().unwrap_or(0.0) * w)
                .sum(),
        }
    }

    /// Adds document `φ` to the cluster, maintaining all cached quantities in
    /// O(nnz(φ)) (dense) / O(nnz(φ) + nnz(c⃗_p)) worst case (sparse merge).
    pub fn add(&mut self, phi: &SparseVector) {
        let dot = self.dot_doc(phi);
        let norm_sq = phi.norm_sq();
        // |c + φ|² = |c|² + 2 c·φ + |φ|²
        self.cr_self += 2.0 * dot + norm_sq;
        self.ss += norm_sq;
        self.size += 1;
        match &mut self.storage {
            Storage::Dense(v) => {
                for (t, w) in phi.iter() {
                    let idx = t.index();
                    if idx >= v.len() {
                        v.resize(idx + 1, 0.0);
                    }
                    v[idx] += w;
                }
            }
            Storage::Sparse(s) => s.axpy_in_place(phi, 1.0),
        }
    }

    /// Removes document `φ` from the cluster (the deletion analogue the paper
    /// omits "for simplicity"), in O(nnz(φ)) / O(nnz(φ) + nnz(c⃗_p)):
    ///
    /// ```text
    /// |c − φ|² = |c|² − 2 c·φ + |φ|²
    /// ```
    ///
    /// The caller must ensure `φ` is a current member; removing a non-member
    /// corrupts the cached statistics (debug builds assert `size > 0`).
    pub fn remove(&mut self, phi: &SparseVector) {
        debug_assert!(self.size > 0, "remove from empty cluster");
        let mut clamps = 0u64;
        let dot = self.dot_doc(phi);
        let norm_sq = phi.norm_sq();
        self.cr_self += -2.0 * dot + norm_sq;
        // Both clamps absorb only floating-point residue (|c−φ|² and ss are
        // nonnegative by construction); a substantially negative value means
        // a non-member was removed and must not be silently zeroed.
        debug_assert!(
            self.cr_self >= -1e-9 * (1.0 + 2.0 * dot.abs() + norm_sq),
            "cr_self went negative beyond fp drift: {}",
            self.cr_self
        );
        if self.cr_self < 0.0 {
            self.cr_self = 0.0; // clamp fp drift
            clamps += 1;
        }
        self.ss -= norm_sq;
        debug_assert!(
            self.ss >= -1e-9 * (1.0 + norm_sq),
            "ss went negative beyond fp drift: {}",
            self.ss
        );
        if self.ss < 0.0 {
            self.ss = 0.0;
            clamps += 1;
        }
        FP_RESIDUE_CLAMPS.add(clamps);
        self.size -= 1;
        match &mut self.storage {
            Storage::Dense(v) => {
                for (t, w) in phi.iter() {
                    if let Some(r) = v.get_mut(t.index()) {
                        *r -= w;
                    }
                }
            }
            Storage::Sparse(s) => s.axpy_in_place(phi, -1.0),
        }
        if self.size == 0 {
            // restore exact emptiness so drift cannot accumulate across reuse
            match &mut self.storage {
                Storage::Dense(v) => v.iter_mut().for_each(|r| *r = 0.0),
                Storage::Sparse(s) => *s = SparseVector::new(),
            }
            self.cr_self = 0.0;
            self.ss = 0.0;
        }
    }

    /// Merges another representative into this one — the cross-shard merge
    /// primitive: `C_p ∪ C_q` for **disjoint** member sets, maintaining all
    /// cached quantities without touching any member φ vector:
    ///
    /// ```text
    /// |c⃗_p + c⃗_q|² = cr_sim(C_p,C_p) + 2·cr_sim(C_p,C_q) + cr_sim(C_q,C_q)
    /// ss(C_p ∪ C_q) = ss(C_p) + ss(C_q)
    /// ```
    ///
    /// (the eq. 21/25 identity validated by the `merge_formula_eq25` test).
    /// Cost: one rep↔rep dot plus one vector add — O(nnz_p + nnz_q) sparse,
    /// O(|V|) dense. The merged rep keeps `self`'s backend; merging across
    /// backends accumulates `other`'s stored entries in ascending term order,
    /// so the result is bit-identical to a same-backend merge.
    ///
    /// The caller must ensure the two clusters share no member; overlapping
    /// sets double-count the shared documents in every statistic.
    pub fn merge_from(&mut self, other: &ClusterRep) {
        let dot = self.dot_rep(other);
        self.cr_self += 2.0 * dot + other.cr_self;
        self.ss += other.ss;
        self.size += other.size;
        match (&mut self.storage, &other.storage) {
            (Storage::Dense(a), Storage::Dense(b)) => {
                if b.len() > a.len() {
                    a.resize(b.len(), 0.0);
                }
                for (slot, w) in a.iter_mut().zip(b.iter()) {
                    *slot += w;
                }
            }
            (Storage::Sparse(a), Storage::Sparse(b)) => a.axpy_in_place(b, 1.0),
            (Storage::Sparse(a), Storage::Dense(b)) => {
                let entries: Vec<(TermId, f64)> = b
                    .iter()
                    .enumerate()
                    .filter(|&(_, &w)| w != 0.0)
                    .map(|(i, &w)| (TermId(i as u32), w))
                    .collect();
                a.axpy_in_place(&SparseVector::from_sorted(entries), 1.0);
            }
            (Storage::Dense(a), Storage::Sparse(b)) => {
                for (t, w) in b.iter() {
                    let idx = t.index();
                    if idx >= a.len() {
                        a.resize(idx + 1, 0.0);
                    }
                    a[idx] += w;
                }
            }
        }
    }

    /// Re-homes the representative onto `backend`, copying the stored
    /// entries and every cached statistic verbatim.
    ///
    /// Because the two backends are exact bit-level mirrors of each other
    /// (see [`RepBackend`]), the converted representative produces
    /// bit-identical dot products and statistics — only the storage (and
    /// its asymptotics) changes. Cost: O(nnz) sparse target, O(max term id)
    /// dense target.
    pub fn to_backend(&self, backend: RepBackend) -> ClusterRep {
        if self.backend() == backend {
            return self.clone();
        }
        let storage = match backend {
            RepBackend::Dense => {
                let mut v = Vec::new();
                self.for_each_entry(|t, w| {
                    let idx = t.index();
                    if idx >= v.len() {
                        v.resize(idx + 1, 0.0);
                    }
                    v[idx] = w;
                });
                Storage::Dense(v)
            }
            RepBackend::Sparse => {
                let mut entries: Vec<(TermId, f64)> = Vec::with_capacity(self.nnz());
                // for_each_entry yields ascending term order, so the entry
                // list is sorted by construction
                self.for_each_entry(|t, w| entries.push((t, w)));
                Storage::Sparse(SparseVector::from_sorted(entries))
            }
        };
        ClusterRep {
            storage,
            size: self.size,
            cr_self: self.cr_self,
            ss: self.ss,
        }
    }

    /// `avg_sim(C_p)` — the intra-cluster similarity, via eq. 24:
    ///
    /// ```text
    /// avg_sim = (cr_sim(C,C) − ss(C)) / (|C|(|C|−1))
    /// ```
    ///
    /// Defined as 0 for clusters with fewer than two members.
    pub fn avg_sim(&self) -> f64 {
        if self.size < 2 {
            return 0.0;
        }
        let n = self.size as f64;
        ((self.cr_self - self.ss) / (n * (n - 1.0))).max(0.0)
    }

    /// The cluster's contribution to the clustering index `G`:
    /// `|C_p| · avg_sim(C_p)` (eq. 17).
    pub fn g_term(&self) -> f64 {
        self.size as f64 * self.avg_sim()
    }

    /// `avg_sim(C_p ∪ {d})` without mutating the cluster (eq. 26):
    ///
    /// ```text
    /// (cr_sim(C,C) + 2·cr_sim(C,{d}) − ss(C)) / (|C|(|C|+1))
    /// ```
    ///
    /// Returns 0 for an empty cluster (a singleton has no pairs).
    pub fn avg_sim_if_added(&self, phi: &SparseVector) -> f64 {
        self.avg_sim_if_added_from_dot(self.dot_doc(phi))
    }

    /// [`ClusterRep::avg_sim_if_added`] with `cr_sim(C,{d})` supplied by the
    /// caller (e.g. from one [`crate::ClusterIndex::dot_all`] sweep).
    pub fn avg_sim_if_added_from_dot(&self, dot: f64) -> f64 {
        if self.size == 0 {
            return 0.0;
        }
        let n = self.size as f64;
        let num = self.cr_self + 2.0 * dot - self.ss;
        (num / (n * (n + 1.0))).max(0.0)
    }

    /// `|C_p ∪ {d}|·avg_sim(C_p ∪ {d})` without mutating the cluster — the
    /// cluster's contribution to the clustering index `G` (eq. 17) if `d`
    /// joined:
    ///
    /// ```text
    /// (cr_sim(C,C) + 2·cr_sim(C,{d}) − ss(C)) / |C|      (|C| ≥ 1)
    /// ```
    ///
    /// Returns 0 for an empty cluster. Assigning each document to the
    /// cluster whose *G-term* increases the most greedily maximises the
    /// paper's clustering index; see the discussion of the two assignment
    /// criteria in `nidc-core`.
    pub fn g_term_if_added(&self, phi: &SparseVector) -> f64 {
        self.g_term_if_added_from_dot(self.dot_doc(phi))
    }

    /// [`ClusterRep::g_term_if_added`] with `cr_sim(C,{d})` supplied by the
    /// caller.
    pub fn g_term_if_added_from_dot(&self, dot: f64) -> f64 {
        if self.size == 0 {
            return 0.0;
        }
        let n = self.size as f64;
        ((self.cr_self + 2.0 * dot - self.ss) / n).max(0.0)
    }

    /// `avg_sim(C_p \ {d})` without mutating the cluster — the deletion
    /// analogue of eq. 26. `φ` must be a current member.
    pub fn avg_sim_if_removed(&self, phi: &SparseVector) -> f64 {
        self.avg_sim_if_removed_from_dot(self.dot_doc(phi), phi.norm_sq())
    }

    /// [`ClusterRep::avg_sim_if_removed`] with `cr_sim(C,{d})` and `|φ|²`
    /// supplied by the caller.
    pub fn avg_sim_if_removed_from_dot(&self, dot: f64, norm_sq: f64) -> f64 {
        if self.size <= 2 {
            return 0.0;
        }
        let n = self.size as f64;
        let cr_new = self.cr_self - 2.0 * dot + norm_sq;
        let ss_new = self.ss - norm_sq;
        ((cr_new - ss_new) / ((n - 1.0) * (n - 2.0))).max(0.0)
    }

    /// Rebuilds every cached quantity exactly from the member φ vectors
    /// (removes floating-point drift after long add/remove chains).
    pub fn recompute_exact<'a, I>(&mut self, members: I)
    where
        I: IntoIterator<Item = &'a SparseVector>,
    {
        self.size = 0;
        self.ss = 0.0;
        match &mut self.storage {
            Storage::Dense(v) => {
                v.iter_mut().for_each(|r| *r = 0.0);
                for phi in members {
                    for (t, w) in phi.iter() {
                        let idx = t.index();
                        if idx >= v.len() {
                            v.resize(idx + 1, 0.0);
                        }
                        v[idx] += w;
                    }
                    self.ss += phi.norm_sq();
                    self.size += 1;
                }
                self.cr_self = v.iter().map(|r| r * r).sum();
            }
            Storage::Sparse(s) => {
                // Accumulate per term in member order — the same scalar-op
                // sequence the dense backend's slot accumulation performs —
                // into a hash map, then sort once. An axpy per member would
                // rewrite the whole entry list each time (O(|C|·nnz(c⃗))).
                // Map iteration order is never observed: entries are sorted
                // before use.
                let mut acc: std::collections::HashMap<TermId, f64> =
                    std::collections::HashMap::with_capacity(s.nnz());
                for phi in members {
                    for (t, w) in phi.iter() {
                        *acc.entry(t).or_insert(0.0) += w;
                    }
                    self.ss += phi.norm_sq();
                    self.size += 1;
                }
                let mut entries: Vec<(TermId, f64)> =
                    acc.into_iter().filter(|&(_, w)| w != 0.0).collect();
                entries.sort_unstable_by_key(|&(t, _)| t);
                *s = SparseVector::from_sorted(entries);
                self.cr_self = s.iter().map(|(_, w)| w * w).sum();
            }
        }
    }

    /// The `n` heaviest terms of the representative, descending — a cheap
    /// cluster label for display ("hot topic" keywords).
    ///
    /// Cost is O(nnz log nnz): only the stored non-zero entries are
    /// collected and sorted, never a vocabulary-sized buffer.
    pub fn top_terms(&self, n: usize) -> Vec<(TermId, f64)> {
        let mut terms: Vec<(TermId, f64)> = Vec::with_capacity(self.nnz().min(1024));
        self.for_each_entry(|t, w| {
            if w > 0.0 {
                terms.push((t, w));
            }
        });
        terms.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        terms.truncate(n);
        terms
    }
}

impl nidc_obs::DeepSize for ClusterRep {
    /// Heap footprint of the stored vector (full buffer capacity on both
    /// backends); the cached scalar statistics are inline and excluded.
    fn deep_size_bytes(&self) -> u64 {
        match &self.storage {
            Storage::Dense(v) => (v.capacity() * std::mem::size_of::<f64>()) as u64,
            Storage::Sparse(s) => s.deep_size_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BACKENDS: [RepBackend; 2] = [RepBackend::Dense, RepBackend::Sparse];

    fn phi(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
    }

    /// Brute-force pairwise avg_sim (eq. 18) for validation.
    fn brute_avg_sim(members: &[SparseVector]) -> f64 {
        let n = members.len();
        if n < 2 {
            return 0.0;
        }
        let mut acc = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    acc += members[i].dot(&members[j]);
                }
            }
        }
        acc / (n as f64 * (n as f64 - 1.0))
    }

    fn sample_members() -> Vec<SparseVector> {
        vec![
            phi(&[(0, 0.5), (1, 0.2)]),
            phi(&[(0, 0.3), (2, 0.4)]),
            phi(&[(1, 0.6), (2, 0.1), (3, 0.2)]),
            phi(&[(0, 0.1), (3, 0.7)]),
        ]
    }

    #[test]
    fn eq22_identity_cr_self_decomposition() {
        for backend in BACKENDS {
            let members = sample_members();
            let rep = ClusterRep::from_members_with(backend, members.iter());
            let n = members.len() as f64;
            // eq. 22: cr_sim(C,C) = n(n−1)·avg_sim + ss
            let lhs = rep.cr_self();
            let rhs = n * (n - 1.0) * brute_avg_sim(&members) + rep.ss();
            assert!((lhs - rhs).abs() < 1e-12, "{backend}");
        }
    }

    #[test]
    fn eq24_avg_sim_matches_brute_force() {
        for backend in BACKENDS {
            let members = sample_members();
            let rep = ClusterRep::from_members_with(backend, members.iter());
            assert!(
                (rep.avg_sim() - brute_avg_sim(&members)).abs() < 1e-12,
                "{backend}"
            );
        }
    }

    #[test]
    fn eq26_append_preview_matches_actual_append() {
        for backend in BACKENDS {
            let members = sample_members();
            let newcomer = phi(&[(1, 0.3), (2, 0.3)]);
            let mut rep = ClusterRep::from_members_with(backend, members.iter());
            let predicted = rep.avg_sim_if_added(&newcomer);
            rep.add(&newcomer);
            assert!((predicted - rep.avg_sim()).abs() < 1e-12, "{backend}");
            // and against brute force
            let mut all = members;
            all.push(newcomer);
            assert!(
                (rep.avg_sim() - brute_avg_sim(&all)).abs() < 1e-12,
                "{backend}"
            );
        }
    }

    #[test]
    fn removal_preview_matches_actual_removal() {
        for backend in BACKENDS {
            let members = sample_members();
            let mut rep = ClusterRep::from_members_with(backend, members.iter());
            let predicted = rep.avg_sim_if_removed(&members[1]);
            rep.remove(&members[1]);
            assert!((predicted - rep.avg_sim()).abs() < 1e-12, "{backend}");
            let remaining: Vec<_> = members
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != 1)
                .map(|(_, m)| m.clone())
                .collect();
            assert!(
                (rep.avg_sim() - brute_avg_sim(&remaining)).abs() < 1e-12,
                "{backend}"
            );
        }
    }

    #[test]
    fn add_then_remove_is_identity() {
        for backend in BACKENDS {
            let members = sample_members();
            let mut rep = ClusterRep::from_members_with(backend, members.iter());
            let before = (rep.size(), rep.cr_self(), rep.ss(), rep.avg_sim());
            let d = phi(&[(0, 0.9), (3, 0.1)]);
            rep.add(&d);
            rep.remove(&d);
            assert_eq!(rep.size(), before.0);
            assert!((rep.cr_self() - before.1).abs() < 1e-12);
            assert!((rep.ss() - before.2).abs() < 1e-12);
            assert!((rep.avg_sim() - before.3).abs() < 1e-12);
        }
    }

    #[test]
    fn merge_formula_eq25() {
        // avg_sim(C_p ∪ C_q) from representative quantities, two disjoint sets.
        for backend in BACKENDS {
            let p_members = vec![phi(&[(0, 0.4)]), phi(&[(0, 0.2), (1, 0.5)])];
            let q_members = vec![phi(&[(1, 0.3), (2, 0.2)]), phi(&[(2, 0.6)])];
            let p = ClusterRep::from_members_with(backend, p_members.iter());
            let q = ClusterRep::from_members_with(backend, q_members.iter());
            let np = p.size() as f64;
            let nq = q.size() as f64;
            let merged_avg = (p.cr_self() + 2.0 * p.dot_rep(&q) + q.cr_self() - p.ss() - q.ss())
                / ((np + nq) * (np + nq - 1.0));
            let mut all = p_members;
            all.extend(q_members);
            assert!(
                (merged_avg - brute_avg_sim(&all)).abs() < 1e-12,
                "{backend}"
            );
        }
    }

    #[test]
    fn merge_from_matches_from_members_on_both_backends() {
        for backend in BACKENDS {
            let p_members = vec![phi(&[(0, 0.4)]), phi(&[(0, 0.2), (1, 0.5)])];
            let q_members = vec![phi(&[(1, 0.3), (2, 0.2)]), phi(&[(2, 0.6)])];
            let mut merged = ClusterRep::from_members_with(backend, p_members.iter());
            let q = ClusterRep::from_members_with(backend, q_members.iter());
            merged.merge_from(&q);
            let mut all = p_members;
            all.extend(q_members);
            let reference = ClusterRep::from_members_with(backend, all.iter());
            assert_eq!(merged.size(), reference.size(), "{backend}");
            assert!(
                (merged.cr_self() - reference.cr_self()).abs() < 1e-12,
                "{backend}"
            );
            assert_eq!(merged.ss(), reference.ss(), "{backend}");
            assert!(
                (merged.avg_sim() - brute_avg_sim(&all)).abs() < 1e-12,
                "{backend}"
            );
            // the merged vector itself matches term by term
            let probe = phi(&[(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0)]);
            assert!((merged.dot_doc(&probe) - reference.dot_doc(&probe)).abs() < 1e-12);
        }
    }

    #[test]
    fn merge_from_across_backends_matches_same_backend() {
        let p_members = sample_members();
        let q_members = [phi(&[(1, 0.3), (5, 0.2)]), phi(&[(2, 0.6)])];
        for self_backend in BACKENDS {
            let reference = {
                let mut r = ClusterRep::from_members_with(self_backend, p_members.iter());
                r.merge_from(&ClusterRep::from_members_with(
                    self_backend,
                    q_members.iter(),
                ));
                r
            };
            for other_backend in BACKENDS {
                let mut merged = ClusterRep::from_members_with(self_backend, p_members.iter());
                merged.merge_from(&ClusterRep::from_members_with(
                    other_backend,
                    q_members.iter(),
                ));
                assert_eq!(merged.backend(), self_backend, "keeps self's backend");
                assert_eq!(merged.size(), reference.size());
                assert_eq!(merged.cr_self(), reference.cr_self());
                assert_eq!(merged.ss(), reference.ss());
                let probe = phi(&[(0, 0.2), (1, 0.4), (2, 0.1), (5, 0.9)]);
                assert_eq!(merged.dot_doc(&probe), reference.dot_doc(&probe));
            }
        }
    }

    #[test]
    fn merge_from_empty_is_identity_and_into_empty_is_copy() {
        for backend in BACKENDS {
            let members = sample_members();
            let rep = ClusterRep::from_members_with(backend, members.iter());
            let mut with_empty = rep.clone();
            with_empty.merge_from(&ClusterRep::new_with(backend));
            assert_eq!(with_empty.size(), rep.size());
            assert_eq!(with_empty.cr_self(), rep.cr_self());
            assert_eq!(with_empty.ss(), rep.ss());

            let mut from_empty = ClusterRep::new_with(backend);
            from_empty.merge_from(&rep);
            assert_eq!(from_empty.size(), rep.size());
            assert_eq!(from_empty.cr_self(), rep.cr_self());
            assert_eq!(from_empty.ss(), rep.ss());
        }
    }

    #[test]
    fn dot_rep_mixed_backends_agree() {
        let p_members = sample_members();
        let q_members = [phi(&[(1, 0.3), (2, 0.2)]), phi(&[(3, 0.6)])];
        let pd = ClusterRep::from_members_with(RepBackend::Dense, p_members.iter());
        let ps = ClusterRep::from_members_with(RepBackend::Sparse, p_members.iter());
        let qd = ClusterRep::from_members_with(RepBackend::Dense, q_members.iter());
        let qs = ClusterRep::from_members_with(RepBackend::Sparse, q_members.iter());
        let reference = pd.dot_rep(&qd);
        for (a, b) in [(&ps, &qs), (&ps, &qd), (&pd, &qs)] {
            assert!((a.dot_rep(b) - reference).abs() < 1e-15);
        }
    }

    #[test]
    fn empty_and_singleton_clusters() {
        for backend in BACKENDS {
            let mut rep = ClusterRep::new_with(backend);
            assert_eq!(rep.avg_sim(), 0.0);
            assert_eq!(rep.g_term(), 0.0);
            assert_eq!(rep.avg_sim_if_added(&phi(&[(0, 1.0)])), 0.0);
            rep.add(&phi(&[(0, 1.0)]));
            assert_eq!(rep.size(), 1);
            assert_eq!(rep.avg_sim(), 0.0); // singleton: no pairs
        }
    }

    #[test]
    fn removing_last_member_restores_exact_emptiness() {
        for backend in BACKENDS {
            let d = phi(&[(0, 0.3), (2, 0.7)]);
            let mut rep = ClusterRep::new_with(backend);
            rep.add(&d);
            rep.remove(&d);
            assert!(rep.is_empty(), "{backend}");
            assert_eq!(rep.cr_self(), 0.0);
            assert_eq!(rep.ss(), 0.0);
            assert_eq!(rep.nnz(), 0, "{backend}: stored weights must be zeroed");
            let mut seen = 0;
            rep.for_each_entry(|_, _| seen += 1);
            assert_eq!(seen, 0);
        }
    }

    #[test]
    fn dot_doc_handles_terms_beyond_stored_range() {
        for backend in BACKENDS {
            let rep = ClusterRep::from_members_with(backend, [phi(&[(0, 1.0)])].iter());
            // φ mentions term 5, beyond the rep's support: contributes 0.
            assert_eq!(rep.dot_doc(&phi(&[(0, 2.0), (5, 3.0)])), 2.0);
        }
    }

    #[test]
    fn add_grows_support_on_demand() {
        for backend in BACKENDS {
            let mut rep = ClusterRep::new_with(backend);
            rep.add(&phi(&[(4, 1.5)]));
            assert_eq!(rep.nnz(), 1);
            assert_eq!(rep.weight(TermId(4)), 1.5);
            assert_eq!(rep.weight(TermId(3)), 0.0);
        }
    }

    #[test]
    fn recompute_exact_matches_incremental() {
        for backend in BACKENDS {
            let members = sample_members();
            let mut rep = ClusterRep::new_with(backend);
            for m in &members {
                rep.add(m);
            }
            let mut exact = rep.clone();
            exact.recompute_exact(members.iter());
            assert!((rep.cr_self() - exact.cr_self()).abs() < 1e-12);
            assert!((rep.ss() - exact.ss()).abs() < 1e-12);
            assert_eq!(rep.size(), exact.size());
        }
    }

    #[test]
    fn top_terms_are_sorted_descending() {
        for backend in BACKENDS {
            let rep = ClusterRep::from_members_with(
                backend,
                [phi(&[(0, 0.1), (1, 0.9), (2, 0.5)])].iter(),
            );
            let top = rep.top_terms(2);
            assert_eq!(top.len(), 2);
            assert_eq!(top[0].0, TermId(1));
            assert_eq!(top[1].0, TermId(2));
        }
    }

    #[test]
    fn top_terms_is_nnz_bounded_on_high_dimension_rep() {
        // A sparse rep whose largest term id is in the tens of millions must
        // not allocate or scan a vocabulary-sized buffer: the candidate list
        // is bounded by nnz, not by the term-id range.
        let mut rep = ClusterRep::new();
        rep.add(&phi(&[(30_000_000, 1.0), (5, 3.0), (17_000_000, 2.0)]));
        assert_eq!(rep.nnz(), 3);
        let all = rep.top_terms(usize::MAX);
        assert_eq!(all.len(), 3, "candidate list must be nnz-bounded");
        assert_eq!(all[0].0, TermId(5));
        assert_eq!(all[1].0, TermId(17_000_000));
    }

    #[test]
    fn g_term_if_added_preview_matches_actual() {
        for backend in BACKENDS {
            let members = sample_members();
            let newcomer = phi(&[(0, 0.2), (2, 0.4)]);
            let mut rep = ClusterRep::from_members_with(backend, members.iter());
            let preview = rep.g_term_if_added(&newcomer);
            rep.add(&newcomer);
            assert!((preview - rep.g_term()).abs() < 1e-12);
        }
    }

    #[test]
    fn g_term_if_added_to_empty_is_zero() {
        let rep = ClusterRep::new();
        assert_eq!(rep.g_term_if_added(&phi(&[(0, 1.0)])), 0.0);
    }

    #[test]
    fn g_term_if_added_to_singleton_is_twice_sim() {
        for backend in BACKENDS {
            let seed = phi(&[(0, 0.6), (1, 0.2)]);
            let rep = ClusterRep::from_members_with(backend, [seed.clone()].iter());
            let d = phi(&[(0, 0.5), (1, 0.5)]);
            assert!((rep.g_term_if_added(&d) - 2.0 * seed.dot(&d)).abs() < 1e-12);
        }
    }

    #[test]
    fn g_term_is_size_times_avg_sim() {
        for backend in BACKENDS {
            let members = sample_members();
            let rep = ClusterRep::from_members_with(backend, members.iter());
            assert!((rep.g_term() - 4.0 * rep.avg_sim()).abs() < 1e-12);
        }
    }

    #[test]
    fn backends_are_bit_identical_through_churn() {
        let members = sample_members();
        let churn = [phi(&[(0, 0.9), (3, 0.1)]), phi(&[(2, 0.5)])];
        let mut dense = ClusterRep::new_with(RepBackend::Dense);
        let mut sparse = ClusterRep::new_with(RepBackend::Sparse);
        for m in &members {
            dense.add(m);
            sparse.add(m);
        }
        for d in &churn {
            dense.add(d);
            sparse.add(d);
        }
        for d in churn.iter().rev() {
            dense.remove(d);
            sparse.remove(d);
        }
        assert_eq!(
            dense.cr_self(),
            sparse.cr_self(),
            "cr_self must be bitwise equal"
        );
        assert_eq!(dense.ss(), sparse.ss());
        assert_eq!(dense.avg_sim(), sparse.avg_sim());
        let probe = phi(&[(0, 0.2), (1, 0.4), (3, 0.3)]);
        assert_eq!(dense.dot_doc(&probe), sparse.dot_doc(&probe));
        assert_eq!(
            dense.avg_sim_if_added(&probe),
            sparse.avg_sim_if_added(&probe)
        );
    }

    #[test]
    fn to_backend_is_bit_identical_in_every_direction() {
        let members = sample_members();
        let probe = phi(&[(0, 0.2), (1, 0.4), (2, 0.1), (3, 0.9)]);
        for src in BACKENDS {
            for dst in BACKENDS {
                let rep = ClusterRep::from_members_with(src, members.iter());
                let conv = rep.to_backend(dst);
                assert_eq!(conv.backend(), dst, "{src}→{dst}");
                assert_eq!(conv.size(), rep.size());
                assert_eq!(conv.cr_self(), rep.cr_self(), "{src}→{dst}");
                assert_eq!(conv.ss(), rep.ss());
                assert_eq!(conv.nnz(), rep.nnz());
                assert_eq!(conv.dot_doc(&probe), rep.dot_doc(&probe), "{src}→{dst}");
            }
        }
    }

    #[test]
    fn from_parts_round_trips_entries_and_stats_verbatim() {
        for backend in BACKENDS {
            let rep = ClusterRep::from_members_with(backend, sample_members().iter());
            let mut entries = Vec::new();
            rep.for_each_entry(|t, w| entries.push((t, w)));
            let restored = ClusterRep::from_parts(entries, rep.size(), rep.cr_self(), rep.ss());
            assert_eq!(restored.backend(), RepBackend::Sparse);
            assert_eq!(restored.size(), rep.size());
            assert_eq!(restored.cr_self().to_bits(), rep.cr_self().to_bits());
            assert_eq!(restored.ss().to_bits(), rep.ss().to_bits());
            let probe = phi(&[(0, 0.2), (1, 0.4), (2, 0.1), (3, 0.9)]);
            assert!((restored.dot_doc(&probe) - rep.dot_doc(&probe)).abs() < 1e-15);
        }
    }

    #[test]
    fn deep_size_reflects_backend_storage() {
        use nidc_obs::DeepSize;
        let members = sample_members();
        let dense = ClusterRep::from_members_with(RepBackend::Dense, members.iter());
        let sparse = ClusterRep::from_members_with(RepBackend::Sparse, members.iter());
        // dense: 4 term slots × 8 bytes minimum; sparse: 4 nnz × 16 bytes.
        assert!(
            dense.deep_size_bytes() >= 4 * 8,
            "{}",
            dense.deep_size_bytes()
        );
        assert!(sparse.deep_size_bytes() >= 4 * 16);
        assert_eq!(ClusterRep::new().deep_size_bytes(), 0);
    }

    #[test]
    fn backend_parsing_and_display() {
        assert_eq!("dense".parse::<RepBackend>().unwrap(), RepBackend::Dense);
        assert_eq!("sparse".parse::<RepBackend>().unwrap(), RepBackend::Sparse);
        assert!("fancy".parse::<RepBackend>().is_err());
        assert_eq!(RepBackend::default(), RepBackend::Sparse);
        assert_eq!(RepBackend::Dense.to_string(), "dense");
    }
}
