//! The clustering result types.

use std::collections::BTreeMap;

use nidc_similarity::ClusterRep;
use nidc_textproc::DocId;

/// One cluster: its members and its maintained representative.
#[derive(Debug, Clone)]
pub struct Cluster {
    members: Vec<DocId>,
    rep: ClusterRep,
}

impl Cluster {
    pub(crate) fn new(members: Vec<DocId>, rep: ClusterRep) -> Self {
        debug_assert_eq!(members.len(), rep.size());
        Self { members, rep }
    }

    /// Member document ids, ascending.
    pub fn members(&self) -> &[DocId] {
        &self.members
    }

    /// Number of members `|C_p|`.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The cluster representative (eq. 19–20) with its cached statistics.
    pub fn rep(&self) -> &ClusterRep {
        &self.rep
    }

    /// The intra-cluster similarity `avg_sim(C_p)` (eq. 18/24).
    pub fn avg_sim(&self) -> f64 {
        self.rep.avg_sim()
    }
}

/// A complete clustering: K clusters, the outlier list, and the clustering
/// index `G` (eq. 17).
#[derive(Debug, Clone)]
pub struct Clustering {
    clusters: Vec<Cluster>,
    outliers: Vec<DocId>,
    g: f64,
    iterations: usize,
}

impl Clustering {
    pub(crate) fn new(
        clusters: Vec<Cluster>,
        outliers: Vec<DocId>,
        g: f64,
        iterations: usize,
    ) -> Self {
        Self {
            clusters,
            outliers,
            g,
            iterations,
        }
    }

    /// The clusters, including empty ones (stable K-slot indexing).
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Documents that increased no cluster's intra-cluster similarity in the
    /// final iteration (§4.3 outlier list).
    pub fn outliers(&self) -> &[DocId] {
        &self.outliers
    }

    /// The clustering index `G = Σ_p |C_p|·avg_sim(C_p)` (eq. 17).
    pub fn g(&self) -> f64 {
        self.g
    }

    /// Repetition-process iterations executed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Number of non-empty clusters.
    pub fn non_empty_clusters(&self) -> usize {
        self.clusters.iter().filter(|c| !c.is_empty()).count()
    }

    /// Total documents assigned to clusters (excludes outliers).
    pub fn assigned_docs(&self) -> usize {
        self.clusters.iter().map(Cluster::len).sum()
    }

    /// Member lists per cluster (the shape evaluation code consumes).
    pub fn member_lists(&self) -> Vec<Vec<DocId>> {
        self.clusters.iter().map(|c| c.members.clone()).collect()
    }

    /// The assignment map `DocId → cluster index` (outliers absent).
    pub fn assignment(&self) -> BTreeMap<DocId, usize> {
        let mut map = BTreeMap::new();
        for (p, c) in self.clusters.iter().enumerate() {
            for &d in &c.members {
                map.insert(d, p);
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nidc_textproc::{SparseVector, TermId};

    fn phi(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
    }

    fn sample() -> Clustering {
        let m0 = [phi(&[(0, 0.5)]), phi(&[(0, 0.4), (1, 0.1)])];
        let rep0 = ClusterRep::from_members(m0.iter());
        let c0 = Cluster::new(vec![DocId(0), DocId(1)], rep0);
        let c1 = Cluster::new(vec![], ClusterRep::new());
        let g = c0.rep().g_term();
        Clustering::new(vec![c0, c1], vec![DocId(9)], g, 3)
    }

    #[test]
    fn accessors() {
        let c = sample();
        assert_eq!(c.clusters().len(), 2);
        assert_eq!(c.non_empty_clusters(), 1);
        assert_eq!(c.assigned_docs(), 2);
        assert_eq!(c.outliers(), &[DocId(9)]);
        assert_eq!(c.iterations(), 3);
        assert!(c.g() > 0.0);
    }

    #[test]
    fn member_lists_and_assignment_agree() {
        let c = sample();
        let lists = c.member_lists();
        assert_eq!(lists[0], vec![DocId(0), DocId(1)]);
        assert!(lists[1].is_empty());
        let assign = c.assignment();
        assert_eq!(assign[&DocId(0)], 0);
        assert_eq!(assign[&DocId(1)], 0);
        assert!(!assign.contains_key(&DocId(9)));
    }

    #[test]
    fn g_matches_cluster_terms() {
        let c = sample();
        let sum: f64 = c.clusters().iter().map(|cl| cl.rep().g_term()).sum();
        assert!((c.g() - sum).abs() < 1e-12);
    }
}
