//! The on-line pipeline: ingest → decay/expire → (incrementally) recluster
//! (paper §5.2).

use std::collections::BTreeMap;

use nidc_forgetting::{DecayParams, Repository, Timestamp};
use nidc_obs::{buckets, DeepSize, LazyCounter, LazyGauge, LazyHistogram};
use nidc_similarity::DocVectors;
use nidc_textproc::{DocId, SparseVector};

use crate::lineage::{LineageState, LineageTracker};
use crate::{cluster_with_initial, Clustering, ClusteringConfig, InitialState, Result};

/// Wall-clock seconds per `ingest`/`ingest_batch` call (§5.1 incremental
/// statistics update). Single-document ingests run in microseconds, so
/// this sits on the sub-millisecond bucket family.
static INGEST_SECONDS: LazyHistogram =
    LazyHistogram::new("nidc_pipeline_ingest_seconds", buckets::FINE_SECONDS);
/// Documents handed to the pipeline (single and batch ingests combined).
static INGESTED_DOCS: LazyCounter = LazyCounter::new("nidc_pipeline_ingested_docs_total");
/// Wall-clock seconds per pure-decay `advance_to` call (sub-ms buckets).
static ADVANCE_SECONDS: LazyHistogram =
    LazyHistogram::new("nidc_pipeline_advance_seconds", buckets::FINE_SECONDS);
/// Wall-clock seconds per `expire` pass (§5.2 step 2; sub-ms buckets).
static EXPIRE_SECONDS: LazyHistogram =
    LazyHistogram::new("nidc_pipeline_expire_seconds", buckets::FINE_SECONDS);
/// Documents expired below `ε = λ^γ`.
static EXPIRED_DOCS: LazyCounter = LazyCounter::new("nidc_pipeline_expired_docs_total");
/// Wall-clock seconds per re-clustering (expire + vector build + K-means).
static RECLUSTER_SECONDS: LazyHistogram =
    LazyHistogram::new("nidc_pipeline_recluster_seconds", buckets::LATENCY_SECONDS);
/// Re-clustering requests served (incremental and from-scratch combined).
static RECLUSTERS: LazyCounter = LazyCounter::new("nidc_pipeline_reclusters_total");
/// Heap bytes held by the document repository (document map, tf vectors,
/// term-statistics table), sampled once per re-clustering. On a sharded
/// pipeline the value is the sum across shards.
static MEM_REPOSITORY_BYTES: LazyGauge = LazyGauge::new("nidc_mem_repository_bytes");
/// Heap bytes held by the K cluster representatives of the latest
/// clustering, sampled once per re-clustering (summed across shards).
static MEM_REPS_BYTES: LazyGauge = LazyGauge::new("nidc_mem_reps_bytes");
/// Heap bytes held by the warm-start assignment map carried between
/// incremental re-clusterings (summed across shards).
static MEM_WARMSTART_BYTES: LazyGauge = LazyGauge::new("nidc_mem_warmstart_bytes");

/// The stateful novelty-based clustering pipeline.
///
/// Drives the three steps of §5.2 on every re-clustering request:
///
/// 1. new documents have been incorporated by [`NoveltyPipeline::ingest`]
///    (incremental statistics update, §5.1);
/// 2. documents with `dw < ε` are expired;
/// 3. the extended K-means runs, warm-started from the previous clustering
///    (incremental mode) or from random seeds (non-incremental mode).
#[derive(Debug, Clone)]
pub struct NoveltyPipeline {
    repo: Repository,
    config: ClusteringConfig,
    previous: Option<BTreeMap<DocId, usize>>,
    last: Option<Clustering>,
    /// Matches clusters across re-clusterings (persistent lineage ids,
    /// lifecycle events). `None` on the shards of a [`crate::ShardedPipeline`],
    /// which tracks lineage over merged/stitched ids at the top level instead
    /// — otherwise every cross-shard stitch would double-report as per-shard
    /// deaths plus a top-level continuation.
    lineage: Option<LineageTracker>,
}

impl NoveltyPipeline {
    /// Creates an empty pipeline.
    pub fn new(decay: DecayParams, config: ClusteringConfig) -> Self {
        register_mem_gauges();
        Self {
            repo: Repository::new(decay),
            config,
            previous: None,
            last: None,
            lineage: Some(LineageTracker::new()),
        }
    }

    /// The underlying repository (statistics, documents, clock).
    pub fn repository(&self) -> &Repository {
        &self.repo
    }

    /// The clustering configuration.
    pub fn config(&self) -> &ClusteringConfig {
        &self.config
    }

    /// The most recent clustering, if any.
    pub fn last(&self) -> Option<&Clustering> {
        self.last.as_ref()
    }

    /// The previous clustering's assignment (warm-start state of §5.2).
    pub fn previous_assignment(&self) -> Option<&BTreeMap<DocId, usize>> {
        self.previous.as_ref()
    }

    /// Reassembles a pipeline from parts (used by state restoration).
    pub fn from_parts(
        repo: Repository,
        config: ClusteringConfig,
        previous: Option<BTreeMap<DocId, usize>>,
    ) -> Self {
        Self {
            repo,
            config,
            previous,
            last: None,
            lineage: Some(LineageTracker::new()),
        }
    }

    /// The lineage tracker, if this pipeline tracks lineage itself (always,
    /// except on the shards of a [`crate::ShardedPipeline`]).
    pub fn lineage(&self) -> Option<&LineageTracker> {
        self.lineage.as_ref()
    }

    /// Stops per-pipeline lineage tracking. The sharded pipeline calls this
    /// on its shards so lifecycle events are classified once, over
    /// merged/stitched cluster ids, not once per shard.
    pub fn disable_lineage(&mut self) {
        self.lineage = None;
    }

    /// Captures the lineage tracker's state for checkpointing (`None` when
    /// lineage tracking is disabled or no window has been observed yet).
    pub fn lineage_state(&self) -> Option<LineageState> {
        self.lineage
            .as_ref()
            .filter(|t| t.windows_observed() > 0)
            .map(LineageTracker::to_state)
    }

    /// Restores the lineage tracker from a checkpointed state, so lineage
    /// ids continue across save → load → resume.
    pub fn restore_lineage_state(&mut self, state: &LineageState) {
        self.lineage = Some(LineageTracker::from_state(state));
    }

    /// Ingests one document acquired at `t` (statistics update is
    /// incremental, §5.1).
    pub fn ingest(&mut self, id: DocId, t: Timestamp, tf: SparseVector) -> Result<()> {
        let _span = nidc_obs::span!("pipeline.ingest");
        let _timer = INGEST_SECONDS.start_timer();
        self.repo.insert(id, t, tf)?;
        INGESTED_DOCS.inc();
        Ok(())
    }

    /// Ingests a batch that arrived at `t`.
    ///
    /// Insert semantics are the repository's: documents are applied in
    /// iteration order and the first failure stops the batch, leaving the
    /// earlier inserts in place. `INGESTED_DOCS` counts the insert
    /// operations that actually succeeded — including those preceding a
    /// failure — rather than being derived from a `len()` delta.
    pub fn ingest_batch<I>(&mut self, t: Timestamp, docs: I) -> Result<()>
    where
        I: IntoIterator<Item = (DocId, SparseVector)>,
    {
        let _span = nidc_obs::span!("pipeline.ingest_batch");
        let _timer = INGEST_SECONDS.start_timer();
        let (inserted, result) = self.ingest_batch_counted(t, docs);
        INGESTED_DOCS.add(inserted);
        result
    }

    /// Applies the batch and returns how many insert operations succeeded —
    /// exactly the figure `INGESTED_DOCS` records.
    fn ingest_batch_counted<I>(&mut self, t: Timestamp, docs: I) -> (u64, Result<()>)
    where
        I: IntoIterator<Item = (DocId, SparseVector)>,
    {
        let mut inserted = 0u64;
        for (id, tf) in docs {
            match self.repo.insert(id, t, tf) {
                Ok(()) => inserted += 1,
                Err(e) => return (inserted, Err(e.into())),
            }
        }
        (inserted, Ok(()))
    }

    /// Advances the clock without ingesting (pure decay).
    pub fn advance_to(&mut self, t: Timestamp) -> Result<()> {
        let _span = nidc_obs::span!("pipeline.advance");
        let _timer = ADVANCE_SECONDS.start_timer();
        self.repo.advance_to(t)?;
        Ok(())
    }

    /// Expires documents below `ε = λ^γ` (§5.2 step 2) and returns them,
    /// sorted ascending by document id.
    ///
    /// Expired documents are pruned from the warm-start assignment in the
    /// same pass (via [`Repository::expire_with`]), so the next incremental
    /// re-clustering never carries dead keys into the K-means initial state.
    ///
    /// The returned order is sorted *by construction* — not by relying on
    /// the repository's internal iteration order — so downstream consumers
    /// (checkpoint diffs, cross-shard merges, logs) see a stable order even
    /// if the repository's document storage changes.
    pub fn expire(&mut self) -> Vec<DocId> {
        let _span = nidc_obs::span!("pipeline.expire");
        let _timer = EXPIRE_SECONDS.start_timer();
        let previous = &mut self.previous;
        let mut dead = Vec::new();
        self.repo.expire_with(|id| {
            if let Some(prev) = previous.as_mut() {
                prev.remove(&id);
            }
            dead.push(id);
        });
        dead.sort_unstable();
        // add(0) keeps the counter registered over windows where nothing ages
        // out, so per-window snapshots stay schema-stable
        EXPIRED_DOCS.add(dead.len() as u64);
        dead
    }

    /// Incremental re-clustering (§5.2 step 3): expire, then warm-start the
    /// extended K-means from the previous clustering's assignment. Falls
    /// back to random seeding the first time.
    pub fn recluster_incremental(&mut self) -> Result<Clustering> {
        let span = nidc_obs::span!("pipeline.recluster");
        let timer = RECLUSTER_SECONDS.start_timer();
        RECLUSTERS.inc();
        self.expire();
        let vecs = {
            let _span = nidc_obs::span!("pipeline.build_vectors");
            DocVectors::build_parallel(&self.repo, self.config.threads)
        };
        // the effective K shrinks with the live population (K = min(k, n));
        // after heavy expiration the previous assignment may reference
        // cluster slots that no longer exist — those documents re-enter as
        // unassigned (they reseed slots like any new document)
        let k = self.config.k.min(vecs.len());
        let initial = match self.previous.take() {
            Some(mut prev) => {
                prev.retain(|_, p| *p < k);
                if prev.is_empty() {
                    InitialState::Random
                } else {
                    InitialState::Assignment(prev)
                }
            }
            None => InitialState::Random,
        };
        let clustering = cluster_with_initial(&vecs, &self.config, initial)?;
        self.previous = Some(clustering.assignment());
        self.last = Some(clustering.clone());
        timer.stop();
        drop(span);
        self.observe_lineage(&clustering);
        self.sample_mem_gauges();
        self.log_recluster("incremental", &clustering);
        Ok(clustering)
    }

    /// Non-incremental re-clustering (the paper's Experiment 1 baseline):
    /// rebuilds every statistic from scratch and seeds randomly, ignoring
    /// any previous clustering.
    pub fn recluster_from_scratch(&mut self) -> Result<Clustering> {
        let span = nidc_obs::span!("pipeline.recluster");
        let timer = RECLUSTER_SECONDS.start_timer();
        RECLUSTERS.inc();
        self.expire();
        self.repo.recompute_from_scratch_with(self.config.threads);
        let vecs = {
            let _span = nidc_obs::span!("pipeline.build_vectors");
            DocVectors::build_parallel(&self.repo, self.config.threads)
        };
        let clustering = cluster_with_initial(&vecs, &self.config, InitialState::Random)?;
        self.previous = Some(clustering.assignment());
        self.last = Some(clustering.clone());
        timer.stop();
        drop(span);
        self.observe_lineage(&clustering);
        self.sample_mem_gauges();
        self.log_recluster("from_scratch", &clustering);
        Ok(clustering)
    }

    /// Feeds a finished clustering to the lineage tracker (pure observer:
    /// nothing it computes flows back into the algorithm).
    fn observe_lineage(&mut self, clustering: &Clustering) {
        if let Some(tracker) = self.lineage.as_mut() {
            let _span = nidc_obs::span!("pipeline.lineage");
            tracker.observe_clustering(clustering);
        }
    }

    /// Samples this pipeline's heap footprint: repository, last clustering's
    /// representatives, and the warm-start assignment map, in bytes.
    pub fn mem_sample(&self) -> (u64, u64, u64) {
        let repo = self.repo.deep_size_bytes();
        let reps = self.last.as_ref().map_or(0, |c| {
            c.clusters()
                .iter()
                .map(|cl| cl.rep().deep_size_bytes())
                .sum()
        });
        let warm = self
            .previous
            .as_ref()
            .map_or(0, |prev| nidc_obs::btree_map_size_bytes(prev, |_| 0));
        (repo, reps, warm)
    }

    /// Publishes [`NoveltyPipeline::mem_sample`] into the `nidc_mem_*`
    /// gauges. The sharded pipeline overwrites these with cross-shard sums
    /// after its fan-out joins (see [`crate::ShardedPipeline`]).
    fn sample_mem_gauges(&self) {
        let (repo, reps, warm) = self.mem_sample();
        set_mem_gauges(repo, reps, warm);
    }

    /// One info-level summary line per re-clustering.
    fn log_recluster(&self, mode: &str, clustering: &Clustering) {
        if nidc_obs::log_on(nidc_obs::Level::Info) {
            nidc_obs::info(
                "pipeline",
                "recluster",
                &[
                    ("mode", &mode),
                    ("day", &self.repo.now().0),
                    ("docs", &self.repo.len()),
                    ("clusters", &clustering.non_empty_clusters()),
                    ("outliers", &clustering.outliers().len()),
                    ("iters", &clustering.iterations()),
                    ("g", &clustering.g()),
                ],
            );
        }
    }
}

/// Sets the pipeline memory gauges directly — the sharded pipeline calls
/// this with cross-shard sums so a multi-shard run reports whole-stream
/// totals rather than whichever shard reclustered last.
pub(crate) fn set_mem_gauges(repo_bytes: u64, reps_bytes: u64, warmstart_bytes: u64) {
    MEM_REPOSITORY_BYTES.set(repo_bytes);
    MEM_REPS_BYTES.set(reps_bytes);
    MEM_WARMSTART_BYTES.set(warmstart_bytes);
}

/// Registers the pipeline memory gauges at zero (no-op while recording is
/// disabled), so snapshots carry the full schema before the first
/// re-clustering samples real values.
pub(crate) fn register_mem_gauges() {
    MEM_REPOSITORY_BYTES.touch();
    MEM_REPS_BYTES.touch();
    MEM_WARMSTART_BYTES.touch();
}

#[cfg(test)]
mod tests {
    use super::*;
    use nidc_textproc::TermId;

    fn tf(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
    }

    fn pipeline() -> NoveltyPipeline {
        NoveltyPipeline::new(
            DecayParams::from_spans(7.0, 14.0).unwrap(),
            ClusteringConfig {
                k: 2,
                seed: 1, // a seed whose two random nuclei fall in different topics
                ..ClusteringConfig::default()
            },
        )
    }

    fn seed_two_topics(p: &mut NoveltyPipeline, start_day: f64, id_base: u64) {
        for i in 0..4u64 {
            p.ingest(
                DocId(id_base + i),
                Timestamp(start_day + 0.01 * i as f64),
                tf(&[(0, 3.0), (1, 1.0 + (i % 2) as f64)]),
            )
            .unwrap();
        }
        for i in 4..8u64 {
            p.ingest(
                DocId(id_base + i),
                Timestamp(start_day + 0.01 * i as f64),
                tf(&[(8, 3.0), (9, 1.0 + (i % 2) as f64)]),
            )
            .unwrap();
        }
    }

    #[test]
    fn first_reclustering_uses_random_init() {
        let mut p = pipeline();
        seed_two_topics(&mut p, 0.0, 0);
        let c = p.recluster_incremental().unwrap();
        assert_eq!(c.non_empty_clusters(), 2);
        assert!(p.last().is_some());
    }

    #[test]
    fn mem_sample_is_zero_empty_and_nonzero_after_reclustering() {
        let mut p = pipeline();
        assert_eq!(p.mem_sample(), (0, 0, 0));
        seed_two_topics(&mut p, 0.0, 0);
        let (repo, reps, warm) = p.mem_sample();
        assert!(repo > 0, "8 documents are stored");
        assert_eq!(reps, 0, "no clustering yet");
        assert_eq!(warm, 0, "no warm-start assignment yet");
        p.recluster_incremental().unwrap();
        let (repo, reps, warm) = p.mem_sample();
        assert!(repo > 0);
        assert!(reps > 0, "representatives hold entries");
        // 8 assignment entries × (8B key + 8B value + node overhead)
        assert!(warm >= 8 * 16, "{warm}");
    }

    #[test]
    fn incremental_reclustering_is_stable_with_no_change() {
        let mut p = pipeline();
        seed_two_topics(&mut p, 0.0, 0);
        let first = p.recluster_incremental().unwrap().member_lists();
        let second = p.recluster_incremental().unwrap();
        assert_eq!(second.member_lists(), first);
        assert_eq!(
            second.iterations(),
            1,
            "warm restart should converge at once"
        );
    }

    #[test]
    fn new_documents_join_existing_topics() {
        let mut p = pipeline();
        seed_two_topics(&mut p, 0.0, 0);
        p.recluster_incremental().unwrap();
        // a new doc of topic A arrives the next day
        p.ingest(DocId(100), Timestamp(1.0), tf(&[(0, 3.0), (1, 1.0)]))
            .unwrap();
        let c = p.recluster_incremental().unwrap();
        let assign = c.assignment();
        // The newcomer must be clustered, and never with topic-B documents
        // (ids 4..8). (Old topic-A docs may individually fall to the outlier
        // list as their decayed weights stop increasing avg_sim — that is
        // the paper's §4.3 criterion at work.)
        let new_cluster = assign
            .get(&DocId(100))
            .copied()
            .expect("fresh document must be clustered");
        for (d, &p) in &assign {
            if p == new_cluster {
                assert!(
                    d.0 >= 100 || d.0 < 4,
                    "topic-B doc {d} clustered with the topic-A newcomer"
                );
            }
        }
    }

    #[test]
    fn old_documents_expire_from_clusters() {
        let mut p = pipeline();
        seed_two_topics(&mut p, 0.0, 0);
        p.recluster_incremental().unwrap();
        // 20 days later (γ = 14): everything old expires; fresh docs arrive
        seed_two_topics(&mut p, 20.0, 200);
        let c = p.recluster_incremental().unwrap();
        for cl in c.clusters() {
            for d in cl.members() {
                assert!(d.0 >= 200, "expired doc {d} still clustered");
            }
        }
        assert_eq!(p.repository().len(), 8);
    }

    #[test]
    fn from_scratch_mode_matches_incremental_structure() {
        let mut p1 = pipeline();
        seed_two_topics(&mut p1, 0.0, 0);
        let inc = p1.recluster_incremental().unwrap().member_lists();

        let mut p2 = pipeline();
        seed_two_topics(&mut p2, 0.0, 0);
        let scratch = p2.recluster_from_scratch().unwrap().member_lists();

        // same seed, same data, same init mode on first run → same result
        assert_eq!(inc, scratch);
    }

    #[test]
    fn advance_without_documents_is_fine() {
        let mut p = pipeline();
        p.advance_to(Timestamp(5.0)).unwrap();
        let c = p.recluster_incremental().unwrap();
        assert_eq!(c.clusters().len(), 0);
    }

    #[test]
    fn duplicate_ingest_is_an_error() {
        let mut p = pipeline();
        p.ingest(DocId(0), Timestamp(0.0), tf(&[(0, 1.0)])).unwrap();
        assert!(p.ingest(DocId(0), Timestamp(1.0), tf(&[(0, 1.0)])).is_err());
    }

    #[test]
    fn partial_batch_failure_still_counts_its_successful_inserts() {
        let mut p = pipeline();
        p.ingest(DocId(5), Timestamp(0.0), tf(&[(0, 1.0)])).unwrap();
        // two fresh docs succeed, the duplicate fails, doc 8 is never reached
        let batch = vec![
            (DocId(6), tf(&[(0, 1.0)])),
            (DocId(7), tf(&[(1, 1.0)])),
            (DocId(5), tf(&[(2, 1.0)])), // duplicate → error
            (DocId(8), tf(&[(3, 1.0)])),
        ];
        let (inserted, result) = p.ingest_batch_counted(Timestamp(1.0), batch);
        assert!(result.is_err());
        assert_eq!(
            inserted, 2,
            "the metric must count actual insert operations, not a len() delta"
        );
        assert_eq!(p.repository().len(), 3);
        assert!(!p.repository().contains(DocId(8)));
    }

    #[test]
    fn all_success_batch_counts_every_insert() {
        let mut p = pipeline();
        let batch: Vec<_> = (0..5u64)
            .map(|i| (DocId(i), tf(&[(i as u32, 1.0)])))
            .collect();
        let (inserted, result) = p.ingest_batch_counted(Timestamp(0.0), batch);
        assert!(result.is_ok());
        assert_eq!(inserted, 5);
    }

    #[test]
    fn warm_start_survives_population_shrinking_below_previous_k() {
        // regression: with K = min(config.k, live docs), heavy expiration can
        // shrink the effective K below cluster ids still referenced by the
        // previous assignment — those must be dropped from the warm start,
        // not rejected as InvalidInitialAssignment
        let mut p = NoveltyPipeline::new(
            DecayParams::from_spans(7.0, 14.0).unwrap(),
            ClusteringConfig {
                k: 16,
                seed: 3,
                ..ClusteringConfig::default()
            },
        );
        // 13 early single-topic docs, then 3 late arrivals on fresh topics
        for i in 0..13u64 {
            p.ingest(DocId(i), Timestamp(0.0), tf(&[(i as u32, 2.0)]))
                .unwrap();
        }
        for i in 13..16u64 {
            p.ingest(DocId(i), Timestamp(4.0), tf(&[(i as u32, 2.0)]))
                .unwrap();
        }
        // 16 live docs → effective K = 16, one cluster per doc
        let first = p.recluster_incremental().unwrap();
        let prev = first.assignment();
        assert!(
            prev.iter().any(|(d, c)| d.0 >= 13 && *c >= 3),
            "construction must leave a survivor on a high cluster slot"
        );
        // day 15: the early docs (age 15 > 14d span) expire, the 3 late
        // ones survive, so the effective K collapses from 16 to 3
        p.advance_to(Timestamp(15.0)).unwrap();
        let c = p.recluster_incremental().unwrap();
        assert_eq!(c.assigned_docs() + c.outliers().len(), 3);
    }

    #[test]
    fn expire_returns_sorted_ids_by_construction() {
        let mut p = pipeline();
        // insert in descending id order so sortedness cannot come from
        // insertion order alone
        for id in (0..16u64).rev() {
            p.ingest(DocId(id), Timestamp(0.0), tf(&[(0, 1.0)]))
                .unwrap();
        }
        p.advance_to(Timestamp(20.0)).unwrap(); // past the 14-day life span
        let dead = p.expire();
        assert_eq!(dead.len(), 16);
        assert!(
            dead.windows(2).all(|w| w[0] < w[1]),
            "expire() must return strictly ascending DocIds, got {dead:?}"
        );
    }
}
