//! Pipeline persistence: snapshot and restore a running [`NoveltyPipeline`]
//! — repository, configuration, and the previous clustering's assignment
//! (the warm-start state of §5.2) — so an on-line clustering service can
//! survive restarts without replaying its history.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use nidc_forgetting::RepositoryState;
use nidc_textproc::DocId;

use crate::config::Criterion;
use crate::lineage::LineageState;
use crate::{ClusteringConfig, Error, NoveltyPipeline, Result, ShardedPipeline};

/// The sharded checkpoint format version this build reads and writes.
/// Bumped on any incompatible change to [`ShardedPipelineState`]; loading a
/// state with a different version fails with
/// [`Error::StateVersionMismatch`] instead of misinterpreting the bytes.
pub const SHARDED_STATE_VERSION: u32 = 1;

/// Serialisable form of [`ClusteringConfig`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigState {
    /// K.
    pub k: usize,
    /// Convergence constant δ.
    pub delta: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// RNG seed.
    pub seed: u64,
    /// Keep-last-member behaviour.
    pub keep_last_member: bool,
    /// `"g_term"` or `"avg_sim"`.
    pub criterion: String,
}

impl From<&ClusteringConfig> for ConfigState {
    fn from(c: &ClusteringConfig) -> Self {
        Self {
            k: c.k,
            delta: c.delta,
            max_iters: c.max_iters,
            seed: c.seed,
            keep_last_member: c.keep_last_member,
            criterion: match c.criterion {
                Criterion::GTerm => "g_term".to_owned(),
                Criterion::AvgSim => "avg_sim".to_owned(),
            },
        }
    }
}

impl From<&ConfigState> for ClusteringConfig {
    fn from(s: &ConfigState) -> Self {
        Self {
            k: s.k,
            delta: s.delta,
            max_iters: s.max_iters,
            seed: s.seed,
            keep_last_member: s.keep_last_member,
            criterion: if s.criterion == "avg_sim" {
                Criterion::AvgSim
            } else {
                Criterion::GTerm
            },
            // threads and rep_backend are properties of the host, not of
            // the clustering (results are bit-identical for any value of
            // either), so they are not persisted; restored pipelines use
            // the defaults.
            threads: ClusteringConfig::default().threads,
            rep_backend: ClusteringConfig::default().rep_backend,
        }
    }
}

/// The complete serialisable state of a [`NoveltyPipeline`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineState {
    /// The repository (documents, clock, decay parameters).
    pub repository: RepositoryState,
    /// The clustering configuration.
    pub config: ConfigState,
    /// The previous clustering's assignment (`doc id → cluster index`),
    /// used to warm-start the next re-clustering.
    pub previous_assignment: Option<Vec<(u64, usize)>>,
    /// The lineage tracker's state, so persistent lineage ids survive
    /// save → load → resume. `None` in checkpoints written before lineage
    /// tracking existed (missing fields deserialise as `None`) or when the
    /// tracker had observed no window yet.
    pub lineage: Option<LineageState>,
}

/// One shard's persisted state: its repository and its warm-start
/// assignment. The shard's index is its position in
/// [`ShardedPipelineState::shard_states`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardState {
    /// The shard's repository (documents, clock, decay parameters).
    pub repository: RepositoryState,
    /// The shard's previous clustering assignment (`doc id → local cluster
    /// index`), used to warm-start its next re-clustering.
    pub previous_assignment: Option<Vec<(u64, usize)>>,
}

/// The complete serialisable state of a [`ShardedPipeline`]: the shard
/// topology plus every shard's state. The router is a pure function of the
/// shard count, so persisting `shards` is enough to restore identical
/// routing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardedPipelineState {
    /// Format version ([`SHARDED_STATE_VERSION`]).
    pub version: u32,
    /// The shard count (must equal `shard_states.len()`).
    pub shards: usize,
    /// The clustering configuration (shared by every shard).
    pub config: ConfigState,
    /// Per-shard states, in shard-index order.
    pub shard_states: Vec<ShardState>,
    /// The top-level lineage tracker's state (over merged/stitched cluster
    /// ids). Additive and optional, so version-1 checkpoints from before
    /// lineage tracking still load (missing fields deserialise as `None`).
    pub lineage: Option<LineageState>,
}

impl NoveltyPipeline {
    /// Captures the pipeline's full state (repository + config + warm-start
    /// assignment). The last clustering *result* object is not persisted —
    /// re-clustering after a restore reproduces it.
    pub fn to_state(&self) -> PipelineState {
        PipelineState {
            repository: self.repository().to_state(),
            config: ConfigState::from(self.config()),
            previous_assignment: self
                .previous_assignment()
                .map(|m| m.iter().map(|(&d, &p)| (d.0, p)).collect()),
            lineage: self.lineage_state(),
        }
    }

    /// Restores a pipeline from a captured state.
    ///
    /// # Errors
    /// Propagates repository-restore failures (invalid parameters,
    /// duplicate documents, …).
    pub fn from_state(state: &PipelineState) -> Result<NoveltyPipeline> {
        let repo = nidc_forgetting::Repository::from_state(&state.repository)?;
        let config = ClusteringConfig::from(&state.config);
        let previous: Option<BTreeMap<DocId, usize>> = state
            .previous_assignment
            .as_ref()
            .map(|v| v.iter().map(|&(d, p)| (DocId(d), p)).collect());
        let mut pipeline = NoveltyPipeline::from_parts(repo, config, previous);
        if let Some(lineage) = &state.lineage {
            pipeline.restore_lineage_state(lineage);
        }
        Ok(pipeline)
    }

    /// Serialises the pipeline state as JSON.
    pub fn save_json<W: std::io::Write>(&self, writer: W) -> std::io::Result<()> {
        serde_json::to_writer(writer, &self.to_state()).map_err(std::io::Error::from)
    }

    /// Restores a pipeline from JSON written by
    /// [`NoveltyPipeline::save_json`].
    pub fn load_json<R: std::io::Read>(reader: R) -> std::io::Result<NoveltyPipeline> {
        let state: PipelineState = serde_json::from_reader(reader)?;
        NoveltyPipeline::from_state(&state)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

impl ShardedPipeline {
    /// Captures the sharded pipeline's full state: topology (shard count),
    /// shared configuration, and every shard's repository + warm-start
    /// assignment.
    pub fn to_state(&self) -> ShardedPipelineState {
        ShardedPipelineState {
            version: SHARDED_STATE_VERSION,
            shards: self.num_shards(),
            config: ConfigState::from(self.config()),
            shard_states: self
                .shards()
                .iter()
                .map(|s| ShardState {
                    repository: s.repository().to_state(),
                    previous_assignment: s
                        .pipeline()
                        .previous_assignment()
                        .map(|m| m.iter().map(|(&d, &p)| (d.0, p)).collect()),
                })
                .collect(),
            lineage: self.lineage_state(),
        }
    }

    /// Restores a sharded pipeline from a captured state.
    ///
    /// # Errors
    /// [`Error::StateVersionMismatch`] if the state was written by an
    /// incompatible format version, [`Error::ShardCountMismatch`] if the
    /// declared topology disagrees with the per-shard states carried, plus
    /// any repository-restore failure.
    pub fn from_state(state: &ShardedPipelineState) -> Result<ShardedPipeline> {
        if state.version != SHARDED_STATE_VERSION {
            return Err(Error::StateVersionMismatch {
                found: state.version,
                expected: SHARDED_STATE_VERSION,
            });
        }
        if state.shards != state.shard_states.len() {
            return Err(Error::ShardCountMismatch {
                declared: state.shards,
                found: state.shard_states.len(),
            });
        }
        let config = ClusteringConfig::from(&state.config);
        let pipelines = state
            .shard_states
            .iter()
            .map(|s| {
                let repo = nidc_forgetting::Repository::from_state(&s.repository)?;
                let previous: Option<BTreeMap<DocId, usize>> = s
                    .previous_assignment
                    .as_ref()
                    .map(|v| v.iter().map(|&(d, p)| (DocId(d), p)).collect());
                Ok(NoveltyPipeline::from_parts(repo, config.clone(), previous))
            })
            .collect::<Result<Vec<_>>>()?;
        let mut sharded = ShardedPipeline::from_shard_pipelines(pipelines, config)?;
        if let Some(lineage) = &state.lineage {
            sharded.restore_lineage_state(lineage);
        }
        Ok(sharded)
    }

    /// Serialises the sharded pipeline state as JSON.
    pub fn save_json<W: std::io::Write>(&self, writer: W) -> std::io::Result<()> {
        serde_json::to_writer(writer, &self.to_state()).map_err(std::io::Error::from)
    }

    /// Restores a sharded pipeline from JSON.
    ///
    /// Accepts both the sharded format (written by
    /// [`ShardedPipeline::save_json`]) and the legacy single-pipeline format
    /// (written by [`NoveltyPipeline::save_json`]), which loads as a
    /// one-shard pipeline — the migration path for checkpoints that predate
    /// sharding.
    pub fn load_json<R: std::io::Read>(reader: R) -> std::io::Result<ShardedPipeline> {
        let value: serde_json::Value = serde_json::from_reader(reader)?;
        let invalid = |e: String| std::io::Error::new(std::io::ErrorKind::InvalidData, e);
        if value.get("shard_states").is_some() {
            let state: ShardedPipelineState =
                serde_json::from_value(value).map_err(std::io::Error::from)?;
            ShardedPipeline::from_state(&state).map_err(|e| invalid(e.to_string()))
        } else {
            let state: PipelineState =
                serde_json::from_value(value).map_err(std::io::Error::from)?;
            let pipeline =
                NoveltyPipeline::from_state(&state).map_err(|e| invalid(e.to_string()))?;
            let config = pipeline.config().clone();
            let mut sharded = ShardedPipeline::from_shard_pipelines(vec![pipeline], config)
                .map_err(|e| invalid(e.to_string()))?;
            // A single pipeline's lineage keys are already shard-0 global
            // ids, so the one-shard migration continues the same lineages.
            if let Some(lineage) = &state.lineage {
                sharded.restore_lineage_state(lineage);
            }
            Ok(sharded)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RepBackend;
    use nidc_forgetting::{DecayParams, Timestamp};
    use nidc_textproc::{SparseVector, TermId};

    fn tf(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
    }

    fn running_pipeline() -> NoveltyPipeline {
        let decay = DecayParams::from_spans(7.0, 21.0).unwrap();
        let config = ClusteringConfig {
            k: 2,
            seed: 1,
            ..ClusteringConfig::default()
        };
        let mut p = NoveltyPipeline::new(decay, config);
        for i in 0..4u64 {
            p.ingest(
                DocId(i),
                Timestamp(0.1 * i as f64),
                tf(&[(0, 3.0), (1, 1.0 + i as f64 * 0.1)]),
            )
            .unwrap();
        }
        for i in 4..8u64 {
            p.ingest(
                DocId(i),
                Timestamp(0.1 * i as f64),
                tf(&[(7, 3.0), (8, 1.0 + i as f64 * 0.1)]),
            )
            .unwrap();
        }
        p.recluster_incremental().unwrap();
        p
    }

    #[test]
    fn pipeline_roundtrip_preserves_clustering_behaviour() {
        let mut original = running_pipeline();
        let mut buf = Vec::new();
        original.save_json(&mut buf).unwrap();
        let mut restored = NoveltyPipeline::load_json(buf.as_slice()).unwrap();

        assert_eq!(restored.repository().len(), original.repository().len());
        assert_eq!(restored.config().k, original.config().k);

        // both continue identically: same ingest, same re-clustering
        for p in [&mut original, &mut restored] {
            p.ingest(DocId(100), Timestamp(1.0), tf(&[(0, 2.0), (1, 2.0)]))
                .unwrap();
        }
        let a = original.recluster_incremental().unwrap();
        let b = restored.recluster_incremental().unwrap();
        assert_eq!(a.member_lists(), b.member_lists());
        assert_eq!(a.outliers(), b.outliers());
        assert!((a.g() - b.g()).abs() < 1e-12);
    }

    #[test]
    fn config_state_roundtrip_both_criteria() {
        for criterion in [Criterion::GTerm, Criterion::AvgSim] {
            let config = ClusteringConfig {
                k: 5,
                delta: 0.01,
                max_iters: 9,
                seed: 77,
                keep_last_member: false,
                criterion,
                threads: 3,
                rep_backend: RepBackend::Dense,
            };
            let back = ClusteringConfig::from(&ConfigState::from(&config));
            assert_eq!(back.k, 5);
            assert_eq!(back.delta, 0.01);
            assert_eq!(back.max_iters, 9);
            assert_eq!(back.seed, 77);
            assert!(!back.keep_last_member);
            assert_eq!(back.criterion, criterion);
            // threads and rep_backend are host properties, deliberately
            // not persisted
            assert_eq!(back.threads, ClusteringConfig::default().threads);
            assert_eq!(back.rep_backend, ClusteringConfig::default().rep_backend);
        }
    }

    #[test]
    fn fresh_pipeline_roundtrips_without_assignment() {
        let decay = DecayParams::from_spans(7.0, 14.0).unwrap();
        let p = NoveltyPipeline::new(decay, ClusteringConfig::default());
        let state = p.to_state();
        assert!(state.previous_assignment.is_none());
        let restored = NoveltyPipeline::from_state(&state).unwrap();
        assert!(restored.repository().is_empty());
    }

    #[test]
    fn corrupt_state_is_rejected() {
        assert!(NoveltyPipeline::load_json(&b"[]"[..]).is_err());
        assert!(ShardedPipeline::load_json(&b"[]"[..]).is_err());
    }

    fn running_sharded(shards: usize) -> ShardedPipeline {
        let decay = DecayParams::from_spans(7.0, 21.0).unwrap();
        let config = ClusteringConfig {
            k: 2,
            seed: 1,
            ..ClusteringConfig::default()
        };
        let mut p = ShardedPipeline::new(decay, config, shards).unwrap();
        for i in 0..4u64 {
            p.ingest(
                DocId(i),
                Timestamp(0.1 * i as f64),
                tf(&[(0, 3.0), (1, 1.0 + i as f64 * 0.1)]),
            )
            .unwrap();
        }
        for i in 4..8u64 {
            p.ingest(
                DocId(i),
                Timestamp(0.1 * i as f64),
                tf(&[(7, 3.0), (8, 1.0 + i as f64 * 0.1)]),
            )
            .unwrap();
        }
        p.recluster_incremental().unwrap();
        p
    }

    #[test]
    fn sharded_roundtrip_preserves_topology_and_warm_start() {
        let mut original = running_sharded(3);
        let mut buf = Vec::new();
        original.save_json(&mut buf).unwrap();
        let mut restored = ShardedPipeline::load_json(buf.as_slice()).unwrap();

        assert_eq!(restored.num_shards(), 3);
        assert_eq!(restored.num_docs(), original.num_docs());
        // warm-start state survives per shard
        for (a, b) in original.shards().iter().zip(restored.shards()) {
            assert_eq!(
                a.pipeline().previous_assignment(),
                b.pipeline().previous_assignment()
            );
        }
        // both continue identically
        for p in [&mut original, &mut restored] {
            p.ingest(DocId(100), Timestamp(1.0), tf(&[(0, 2.0), (1, 2.0)]))
                .unwrap();
        }
        let a = original.recluster_incremental().unwrap();
        let b = restored.recluster_incremental().unwrap();
        assert_eq!(a.member_lists(), b.member_lists());
        assert_eq!(a.outliers(), b.outliers());
        assert_eq!(a.g().to_bits(), b.g().to_bits());
    }

    #[test]
    fn sharded_state_version_bump_is_rejected() {
        let p = running_sharded(2);
        let mut state = p.to_state();
        state.version = SHARDED_STATE_VERSION + 1;
        match ShardedPipeline::from_state(&state) {
            Err(Error::StateVersionMismatch { found, expected }) => {
                assert_eq!(found, SHARDED_STATE_VERSION + 1);
                assert_eq!(expected, SHARDED_STATE_VERSION);
            }
            other => panic!("expected StateVersionMismatch, got {other:?}"),
        }
        // the JSON path surfaces the same failure as InvalidData
        let mut json = Vec::new();
        serde_json::to_writer(&mut json, &state).unwrap();
        let err = ShardedPipeline::load_json(json.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn sharded_state_topology_mismatch_is_rejected() {
        let p = running_sharded(2);
        let mut state = p.to_state();
        state.shard_states.pop();
        assert!(matches!(
            ShardedPipeline::from_state(&state),
            Err(Error::ShardCountMismatch {
                declared: 2,
                found: 1
            })
        ));
    }

    #[test]
    fn legacy_unsharded_checkpoint_loads_as_one_shard() {
        let mut single = running_pipeline();
        let mut buf = Vec::new();
        single.save_json(&mut buf).unwrap();
        let mut sharded = ShardedPipeline::load_json(buf.as_slice()).unwrap();

        assert_eq!(sharded.num_shards(), 1);
        assert_eq!(sharded.num_docs(), single.repository().len());
        // the migrated pipeline continues exactly like the original
        single
            .ingest(DocId(100), Timestamp(1.0), tf(&[(0, 2.0), (1, 2.0)]))
            .unwrap();
        sharded
            .ingest(DocId(100), Timestamp(1.0), tf(&[(0, 2.0), (1, 2.0)]))
            .unwrap();
        let a = single.recluster_incremental().unwrap();
        let b = sharded.recluster_incremental().unwrap();
        assert_eq!(a.member_lists(), b.member_lists());
        assert_eq!(a.outliers().to_vec(), b.outliers());
    }
}
