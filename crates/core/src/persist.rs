//! Pipeline persistence: snapshot and restore a running [`NoveltyPipeline`]
//! — repository, configuration, and the previous clustering's assignment
//! (the warm-start state of §5.2) — so an on-line clustering service can
//! survive restarts without replaying its history.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use nidc_forgetting::RepositoryState;
use nidc_textproc::DocId;

use crate::config::Criterion;
use crate::{ClusteringConfig, NoveltyPipeline, Result};

/// Serialisable form of [`ClusteringConfig`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigState {
    /// K.
    pub k: usize,
    /// Convergence constant δ.
    pub delta: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// RNG seed.
    pub seed: u64,
    /// Keep-last-member behaviour.
    pub keep_last_member: bool,
    /// `"g_term"` or `"avg_sim"`.
    pub criterion: String,
}

impl From<&ClusteringConfig> for ConfigState {
    fn from(c: &ClusteringConfig) -> Self {
        Self {
            k: c.k,
            delta: c.delta,
            max_iters: c.max_iters,
            seed: c.seed,
            keep_last_member: c.keep_last_member,
            criterion: match c.criterion {
                Criterion::GTerm => "g_term".to_owned(),
                Criterion::AvgSim => "avg_sim".to_owned(),
            },
        }
    }
}

impl From<&ConfigState> for ClusteringConfig {
    fn from(s: &ConfigState) -> Self {
        Self {
            k: s.k,
            delta: s.delta,
            max_iters: s.max_iters,
            seed: s.seed,
            keep_last_member: s.keep_last_member,
            criterion: if s.criterion == "avg_sim" {
                Criterion::AvgSim
            } else {
                Criterion::GTerm
            },
            // threads and rep_backend are properties of the host, not of
            // the clustering (results are bit-identical for any value of
            // either), so they are not persisted; restored pipelines use
            // the defaults.
            threads: ClusteringConfig::default().threads,
            rep_backend: ClusteringConfig::default().rep_backend,
        }
    }
}

/// The complete serialisable state of a [`NoveltyPipeline`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineState {
    /// The repository (documents, clock, decay parameters).
    pub repository: RepositoryState,
    /// The clustering configuration.
    pub config: ConfigState,
    /// The previous clustering's assignment (`doc id → cluster index`),
    /// used to warm-start the next re-clustering.
    pub previous_assignment: Option<Vec<(u64, usize)>>,
}

impl NoveltyPipeline {
    /// Captures the pipeline's full state (repository + config + warm-start
    /// assignment). The last clustering *result* object is not persisted —
    /// re-clustering after a restore reproduces it.
    pub fn to_state(&self) -> PipelineState {
        PipelineState {
            repository: self.repository().to_state(),
            config: ConfigState::from(self.config()),
            previous_assignment: self
                .previous_assignment()
                .map(|m| m.iter().map(|(&d, &p)| (d.0, p)).collect()),
        }
    }

    /// Restores a pipeline from a captured state.
    ///
    /// # Errors
    /// Propagates repository-restore failures (invalid parameters,
    /// duplicate documents, …).
    pub fn from_state(state: &PipelineState) -> Result<NoveltyPipeline> {
        let repo = nidc_forgetting::Repository::from_state(&state.repository)?;
        let config = ClusteringConfig::from(&state.config);
        let previous: Option<BTreeMap<DocId, usize>> = state
            .previous_assignment
            .as_ref()
            .map(|v| v.iter().map(|&(d, p)| (DocId(d), p)).collect());
        Ok(NoveltyPipeline::from_parts(repo, config, previous))
    }

    /// Serialises the pipeline state as JSON.
    pub fn save_json<W: std::io::Write>(&self, writer: W) -> std::io::Result<()> {
        serde_json::to_writer(writer, &self.to_state()).map_err(std::io::Error::from)
    }

    /// Restores a pipeline from JSON written by
    /// [`NoveltyPipeline::save_json`].
    pub fn load_json<R: std::io::Read>(reader: R) -> std::io::Result<NoveltyPipeline> {
        let state: PipelineState = serde_json::from_reader(reader)?;
        NoveltyPipeline::from_state(&state)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RepBackend;
    use nidc_forgetting::{DecayParams, Timestamp};
    use nidc_textproc::{SparseVector, TermId};

    fn tf(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
    }

    fn running_pipeline() -> NoveltyPipeline {
        let decay = DecayParams::from_spans(7.0, 21.0).unwrap();
        let config = ClusteringConfig {
            k: 2,
            seed: 1,
            ..ClusteringConfig::default()
        };
        let mut p = NoveltyPipeline::new(decay, config);
        for i in 0..4u64 {
            p.ingest(
                DocId(i),
                Timestamp(0.1 * i as f64),
                tf(&[(0, 3.0), (1, 1.0 + i as f64 * 0.1)]),
            )
            .unwrap();
        }
        for i in 4..8u64 {
            p.ingest(
                DocId(i),
                Timestamp(0.1 * i as f64),
                tf(&[(7, 3.0), (8, 1.0 + i as f64 * 0.1)]),
            )
            .unwrap();
        }
        p.recluster_incremental().unwrap();
        p
    }

    #[test]
    fn pipeline_roundtrip_preserves_clustering_behaviour() {
        let mut original = running_pipeline();
        let mut buf = Vec::new();
        original.save_json(&mut buf).unwrap();
        let mut restored = NoveltyPipeline::load_json(buf.as_slice()).unwrap();

        assert_eq!(restored.repository().len(), original.repository().len());
        assert_eq!(restored.config().k, original.config().k);

        // both continue identically: same ingest, same re-clustering
        for p in [&mut original, &mut restored] {
            p.ingest(DocId(100), Timestamp(1.0), tf(&[(0, 2.0), (1, 2.0)]))
                .unwrap();
        }
        let a = original.recluster_incremental().unwrap();
        let b = restored.recluster_incremental().unwrap();
        assert_eq!(a.member_lists(), b.member_lists());
        assert_eq!(a.outliers(), b.outliers());
        assert!((a.g() - b.g()).abs() < 1e-12);
    }

    #[test]
    fn config_state_roundtrip_both_criteria() {
        for criterion in [Criterion::GTerm, Criterion::AvgSim] {
            let config = ClusteringConfig {
                k: 5,
                delta: 0.01,
                max_iters: 9,
                seed: 77,
                keep_last_member: false,
                criterion,
                threads: 3,
                rep_backend: RepBackend::Dense,
            };
            let back = ClusteringConfig::from(&ConfigState::from(&config));
            assert_eq!(back.k, 5);
            assert_eq!(back.delta, 0.01);
            assert_eq!(back.max_iters, 9);
            assert_eq!(back.seed, 77);
            assert!(!back.keep_last_member);
            assert_eq!(back.criterion, criterion);
            // threads and rep_backend are host properties, deliberately
            // not persisted
            assert_eq!(back.threads, ClusteringConfig::default().threads);
            assert_eq!(back.rep_backend, ClusteringConfig::default().rep_backend);
        }
    }

    #[test]
    fn fresh_pipeline_roundtrips_without_assignment() {
        let decay = DecayParams::from_spans(7.0, 14.0).unwrap();
        let p = NoveltyPipeline::new(decay, ClusteringConfig::default());
        let state = p.to_state();
        assert!(state.previous_assignment.is_none());
        let restored = NoveltyPipeline::from_state(&state).unwrap();
        assert!(restored.repository().is_empty());
    }

    #[test]
    fn corrupt_state_is_rejected() {
        assert!(NoveltyPipeline::load_json(&b"[]"[..]).is_err());
    }
}
