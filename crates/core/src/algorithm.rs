//! The extended K-means repetition process (paper §4.3).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use nidc_obs::{buckets, LazyCounter, LazyHistogram};
use nidc_similarity::{ClusterIndex, ClusterRep, DocVectors};
use nidc_textproc::DocId;

use crate::{Cluster, Clustering, ClusteringConfig, Error, RepBackend, Result};

/// Extended K-means runs (one per `cluster_with_initial` call on non-empty
/// input).
static RUNS: LazyCounter = LazyCounter::new("nidc_kmeans_runs_total");
/// Runs warm-started from a previous assignment (§5.2 incremental mode).
static WARM_STARTS: LazyCounter = LazyCounter::new("nidc_kmeans_warm_starts_total");
/// Runs seeded randomly (the paper's initial process, §4.3).
static COLD_STARTS: LazyCounter = LazyCounter::new("nidc_kmeans_cold_starts_total");
/// Repetitions until convergence, one observation per run.
static ITERATIONS_HIST: LazyHistogram =
    LazyHistogram::new("nidc_kmeans_iterations", buckets::ITERATIONS);
/// Clustering index G after each repetition — the per-iteration convergence
/// trace.
static OBJECTIVE_G: LazyHistogram =
    LazyHistogram::new("nidc_kmeans_objective_g", buckets::OBJECTIVE_G);
/// Documents reassigned to a different cluster (step 1(b) moves).
static MOVED_DOCS: LazyCounter = LazyCounter::new("nidc_kmeans_moved_docs_total");
/// Documents demoted to the outlier list during an iteration.
static OUTLIER_DOCS: LazyCounter = LazyCounter::new("nidc_kmeans_outlier_docs_total");
/// `(document, cluster)` candidate pairs scored by the step-1 sweep — the
/// dense-equivalent `K·rows` work bound. Compare against
/// `nidc_index_postings_touched_total` for the inverted-index saving.
static STEP1_CANDIDATES: LazyCounter = LazyCounter::new("nidc_kmeans_step1_candidates_total");
/// Wall time of one step-1 assignment sweep (parallel preview + sequential
/// apply), per repetition. Fine buckets: a converged warm-start sweep over a
/// small window sits well under a millisecond.
static STEP1_SECONDS: LazyHistogram =
    LazyHistogram::new("nidc_kmeans_step1_seconds", buckets::FINE_SECONDS);
/// Wall time of one full repetition (sweep + representative rebuild +
/// convergence test).
static ITERATION_SECONDS: LazyHistogram =
    LazyHistogram::new("nidc_kmeans_iteration_seconds", buckets::FINE_SECONDS);

/// Minimum estimated dense-sweep work per document — `K · avg nnz(φ)`,
/// in multiply-adds — below which the term→cluster inverted index does not
/// pay for its maintenance (a rebuild per iteration plus postings churn on
/// every move) and the step-1 sweep runs on dense representatives instead.
///
/// Calibrated on the standard benchmark corpus (`results/BENCH_step1.json`),
/// where avg nnz(φ) ≈ 83 puts the work units at ≈ 670 / 1340 / 2000 for
/// K = 8 / 16 / 24 and the measured sparse-vs-dense crossover sits between
/// K = 16 and K = 32: the cutoff flips K ≤ 16 to the dense sweep and keeps
/// K = 24 (the sharding bench) and up on the index.
const INDEX_MIN_SWEEP_WORK: f64 = 1500.0;

/// Which backend the in-run sweep should use. The sparse backend's inverted
/// index wins only when the dense sweep would do enough work per document;
/// for small `K · avg nnz(φ)` the run uses dense representatives internally
/// — legal because the two backends are bit-identical by contract (see
/// [`RepBackend`]) — and converts the final representatives back to the
/// configured backend on exit.
fn sweep_backend(
    config: &ClusteringConfig,
    vecs: &DocVectors,
    ids: &[DocId],
    k: usize,
) -> RepBackend {
    if config.rep_backend == RepBackend::Dense {
        return RepBackend::Dense;
    }
    let total_nnz: usize = ids
        .iter()
        .map(|&d| vecs.phi(d).map_or(0, |phi| phi.nnz()))
        .sum();
    let avg_nnz = total_nnz as f64 / ids.len() as f64;
    if (k as f64) * avg_nnz < INDEX_MIN_SWEEP_WORK {
        RepBackend::Dense
    } else {
        RepBackend::Sparse
    }
}

/// How the repetition process is initialised.
#[derive(Debug, Clone)]
pub enum InitialState {
    /// Select K documents at random as singleton clusters (the paper's
    /// initial process, §4.3).
    Random,
    /// Start from a previous assignment `DocId → cluster index < K`
    /// (the incremental warm start, §5.2 step 3). Documents absent from the
    /// map start unassigned; empty cluster slots are reseeded with the
    /// newest unassigned documents.
    Assignment(BTreeMap<DocId, usize>),
}

/// Runs the full extended K-means with random initialisation (the
/// *non-incremental* mode of the paper's experiments).
pub fn cluster_batch(vecs: &DocVectors, config: &ClusteringConfig) -> Result<Clustering> {
    cluster_with_initial(vecs, config, InitialState::Random)
}

/// The step-1 assignment score of one `(document, cluster)` pair, given the
/// already-computed dot product `c⃗ · φ_d`: the change of the cluster's
/// criterion value if `d` joined (`is_current = false`), or `d`'s present
/// contribution — `score(C) − score(C \ {d})` (`is_current = true`). One
/// function so the parallel preview, the inverted-index sweep, and the
/// sequential apply all compute bit-identical values.
fn assignment_delta_from_dot(
    criterion: crate::Criterion,
    rep: &ClusterRep,
    dot: f64,
    norm_sq: f64,
    is_current: bool,
) -> f64 {
    if is_current {
        match criterion {
            crate::Criterion::AvgSim => {
                rep.avg_sim() - rep.avg_sim_if_removed_from_dot(dot, norm_sq)
            }
            crate::Criterion::GTerm => {
                rep.g_term()
                    - (rep.size().saturating_sub(1)) as f64
                        * rep.avg_sim_if_removed_from_dot(dot, norm_sq)
            }
        }
    } else {
        match criterion {
            crate::Criterion::AvgSim => rep.avg_sim_if_added_from_dot(dot) - rep.avg_sim(),
            crate::Criterion::GTerm => rep.g_term_if_added_from_dot(dot) - rep.g_term(),
        }
    }
}

/// [`assignment_delta_from_dot`] with the dot product computed against one
/// representative directly. Used whenever a cluster's previewed score is
/// stale (the `dirty` path) and by the dense backend's sweep.
fn assignment_delta(
    criterion: crate::Criterion,
    rep: &ClusterRep,
    phi: &nidc_textproc::SparseVector,
    is_current: bool,
) -> f64 {
    assignment_delta_from_dot(criterion, rep, rep.dot_doc(phi), phi.norm_sq(), is_current)
}

/// Fills `row[q]` with the step-1 assignment delta of `phi` against every
/// cluster `q < reps.len()`.
///
/// With an inverted [`ClusterIndex`] this is the tentpole fast path: one
/// [`ClusterIndex::dot_all`] pass over φ's terms produces all K dot products
/// at once — O(Σ_t |postings(t)|) instead of O(K·nnz(φ)) — and each dot is
/// bit-identical to `reps[q].dot_doc(phi)` (the index mirrors the sparse
/// representatives entry for entry), so the deltas, and therefore the argmax
/// winner, match the dense backend exactly.
fn score_row_into(
    criterion: crate::Criterion,
    reps: &[ClusterRep],
    index: Option<&ClusterIndex>,
    phi: &nidc_textproc::SparseVector,
    current: Option<usize>,
    row: &mut [f64],
) {
    STEP1_CANDIDATES.add(reps.len() as u64);
    match index {
        Some(ix) => {
            ix.dot_all(phi, row);
            let norm_sq = phi.norm_sq();
            for (q, rep) in reps.iter().enumerate() {
                row[q] =
                    assignment_delta_from_dot(criterion, rep, row[q], norm_sq, current == Some(q));
            }
        }
        None => {
            for (q, rep) in reps.iter().enumerate() {
                row[q] = assignment_delta(criterion, rep, phi, current == Some(q));
            }
        }
    }
}

/// Runs the extended K-means from an explicit [`InitialState`].
pub fn cluster_with_initial(
    vecs: &DocVectors,
    config: &ClusteringConfig,
    initial: InitialState,
) -> Result<Clustering> {
    if config.k == 0 {
        return Err(Error::ZeroClusters);
    }
    let ids = vecs.ids();
    if ids.is_empty() {
        return Ok(Clustering::new(Vec::new(), Vec::new(), 0.0, 0));
    }
    let k = config.k.min(ids.len());
    RUNS.inc();
    let _run_span = nidc_obs::span!("kmeans.run");

    // --- Initial process -------------------------------------------------
    let run_backend = sweep_backend(config, vecs, &ids, k);
    let mut reps: Vec<ClusterRep> = (0..k).map(|_| ClusterRep::new_with(run_backend)).collect();
    let mut assign: BTreeMap<DocId, usize> = BTreeMap::new();
    let mut sizes = vec![0usize; k];

    match initial {
        InitialState::Random => {
            COLD_STARTS.inc();
            WARM_STARTS.add(0); // register the sibling so snapshots list both
            let mut rng = StdRng::seed_from_u64(config.seed);
            let mut pool = ids.clone();
            pool.shuffle(&mut rng);
            for (p, &seed_doc) in pool.iter().take(k).enumerate() {
                assign.insert(seed_doc, p);
            }
        }
        InitialState::Assignment(prev) => {
            WARM_STARTS.inc();
            COLD_STARTS.add(0);
            for (&d, &p) in &prev {
                if p >= k {
                    return Err(Error::InvalidInitialAssignment { cluster: p, k });
                }
                if vecs.phi(d).is_some() {
                    assign.insert(d, p);
                }
            }
            // reseed empty slots with the newest unassigned documents (new
            // documents are the likeliest nuclei of new topics)
            let mut used = vec![false; k];
            for &p in assign.values() {
                used[p] = true;
            }
            let fresh: Vec<DocId> = ids
                .iter()
                .rev()
                .filter(|d| !assign.contains_key(d))
                .copied()
                .collect();
            let mut fresh = fresh.into_iter();
            for (p, _) in used.iter().enumerate().filter(|(_, &u)| !u) {
                if let Some(d) = fresh.next() {
                    assign.insert(d, p);
                }
            }
        }
    }
    for (&d, &p) in &assign {
        reps[p].add(vecs.phi(d).expect("assigned doc has a vector"));
        sizes[p] += 1;
    }

    // The sparse sweep routes step 1 through a term→cluster inverted index
    // mirroring the representatives; the dense sweep keeps per-cluster dot
    // products (no index to maintain).
    let mut index: Option<ClusterIndex> = (run_backend == RepBackend::Sparse).then(|| {
        let mut ix = ClusterIndex::new(k);
        ix.rebuild(&reps);
        ix
    });
    if index.is_none() && config.rep_backend == RepBackend::Sparse {
        // the heuristic skipped the index: keep the metric schema stable
        ClusterIndex::register_metrics();
    }

    let mut g_old: f64 = reps.iter().map(ClusterRep::g_term).sum();

    // --- Repetition process ----------------------------------------------
    let threads = nidc_parallel::resolve_threads(config.threads);
    let mut outliers: Vec<DocId> = Vec::new();
    let mut iterations = 0usize;
    let mut scratch = vec![0.0; k];
    loop {
        iterations += 1;
        // Span first, timer second: drop order closes the span *after* the
        // timer has observed, so the span fully covers the measured work.
        let _iter_span = nidc_obs::span!("kmeans.iteration");
        let _iter_timer = ITERATION_SECONDS.start_timer();
        outliers.clear();
        // Per-iteration tallies, published once at the bottom of the loop so
        // the sweep itself never touches an atomic.
        let mut moved = 0u64;
        let mut demoted = 0u64;
        // Parallel preview of step 1(a): score every (document, cluster)
        // pair against the representatives as they stand at the top of the
        // iteration. The sequential apply below uses a previewed score only
        // while the cluster's representative is untouched this iteration
        // (`dirty` check) and recomputes it live otherwise, so the sweep is
        // bit-identical to the fully sequential one for any thread count.
        // A document's own assignment only changes at its own turn, so the
        // `current == Some(q)` branch previewed here is the one the apply
        // loop takes. On converged iterations nothing moves and every score
        // comes from the preview — the common case for warm restarts (§5.2).
        let step1_span = nidc_obs::span!("kmeans.step1");
        let step1_timer = STEP1_SECONDS.start_timer();
        let preview: Option<Vec<Vec<f64>>> = nidc_parallel::should_fan_out(ids.len(), threads)
            .then(|| {
                let assign = &assign;
                let reps = &reps;
                let index = index.as_ref();
                nidc_parallel::par_chunks(ids.len(), threads, |range| {
                    // one scratch row per chunk, cloned per document
                    let mut row = vec![0.0; k];
                    range
                        .map(|di| {
                            let d = ids[di];
                            let phi = vecs.phi(d).expect("id comes from vecs");
                            let current = assign.get(&d).copied();
                            score_row_into(config.criterion, reps, index, phi, current, &mut row);
                            row.clone()
                        })
                        .collect::<Vec<Vec<f64>>>()
                })
                .into_iter()
                .flatten()
                .collect()
            });
        let mut dirty = vec![false; k];
        let mut any_dirty = false;
        for (di, &d) in ids.iter().enumerate() {
            let phi = vecs.phi(d).expect("id comes from vecs");
            let current = assign.get(&d).copied();
            if let Some(p) = current {
                if config.keep_last_member && sizes[p] == 1 {
                    continue; // keep the cluster alive; d stays its nucleus
                }
            }
            // step 1(a): preview every cluster's intra-cluster similarity
            // with d appended (eq. 26 / its G-term variant). Conceptually d
            // is first removed from its current cluster (§4.4 speaks of
            // documents being removed and appended during this step); for
            // the current cluster the "remove then re-append" preview equals
            // d's present contribution, so no mutation is needed unless d
            // actually moves — this keeps converged iterations cheap, which
            // is what makes warm restarts (§5.2) fast.
            let mut best: Option<(usize, f64)> = None;
            match &preview {
                // nothing has moved yet: every previewed row is still exact
                Some(rows) if !any_dirty => {
                    for (q, &delta) in rows[di].iter().enumerate() {
                        if best.is_none_or(|(_, bd)| delta > bd) {
                            best = Some((q, delta));
                        }
                    }
                }
                Some(rows) => {
                    for (q, rep) in reps.iter().enumerate() {
                        let delta = if dirty[q] {
                            assignment_delta(config.criterion, rep, phi, current == Some(q))
                        } else {
                            rows[di][q]
                        };
                        if best.is_none_or(|(_, bd)| delta > bd) {
                            best = Some((q, delta));
                        }
                    }
                }
                None => {
                    score_row_into(
                        config.criterion,
                        &reps,
                        index.as_ref(),
                        phi,
                        current,
                        &mut scratch,
                    );
                    for (q, &delta) in scratch[..k].iter().enumerate() {
                        if best.is_none_or(|(_, bd)| delta > bd) {
                            best = Some((q, delta));
                        }
                    }
                }
            }
            // step 1(b): largest strictly-positive increase wins, else outlier
            match best {
                Some((q, delta)) if delta > 0.0 => {
                    if current != Some(q) {
                        if let Some(p) = current {
                            reps[p].remove(phi);
                            if let Some(ix) = index.as_mut() {
                                ix.remove(p, phi);
                            }
                            sizes[p] -= 1;
                            dirty[p] = true;
                        }
                        reps[q].add(phi);
                        if let Some(ix) = index.as_mut() {
                            ix.add(q, phi);
                        }
                        sizes[q] += 1;
                        dirty[q] = true;
                        any_dirty = true;
                        assign.insert(d, q);
                        moved += 1;
                    }
                }
                _ => {
                    if let Some(p) = current {
                        reps[p].remove(phi);
                        if let Some(ix) = index.as_mut() {
                            ix.remove(p, phi);
                        }
                        sizes[p] -= 1;
                        dirty[p] = true;
                        any_dirty = true;
                        assign.remove(&d);
                        demoted += 1;
                    }
                    outliers.push(d);
                }
            }
        }
        step1_timer.stop();
        drop(step1_span);

        // steps 2–3: representatives are maintained online; rebuild exactly
        // to clear floating-point drift, then recompute G
        let mut members: Vec<Vec<DocId>> = vec![Vec::new(); k];
        for (&d, &p) in &assign {
            members[p].push(d);
        }
        for (p, rep) in reps.iter_mut().enumerate() {
            rep.recompute_exact(
                members[p]
                    .iter()
                    .map(|d| vecs.phi(*d).expect("member has a vector")),
            );
        }
        if any_dirty {
            // re-mirror the recomputed representatives (incremental updates
            // above tracked them exactly, but recompute_exact may shed
            // floating-point drift the postings still carry)
            if let Some(ix) = index.as_mut() {
                ix.rebuild(&reps);
            }
        }
        let g_new: f64 = reps.iter().map(ClusterRep::g_term).sum();

        // Publish the per-iteration tallies (moved=0 on converged iterations
        // still registers the counter) and trace convergence.
        MOVED_DOCS.add(moved);
        OUTLIER_DOCS.add(demoted);
        OBJECTIVE_G.observe(g_new);
        if nidc_obs::log_on(nidc_obs::Level::Debug) {
            nidc_obs::debug(
                "kmeans",
                "iteration",
                &[
                    ("iter", &iterations),
                    ("moved", &moved),
                    ("outliers", &outliers.len()),
                    ("g", &g_new),
                ],
            );
        }

        // step 4: convergence test (G_new − G_old)/G_old < δ
        let converged = if g_old > 0.0 {
            (g_new - g_old) / g_old < config.delta
        } else {
            g_new <= 0.0
        };
        g_old = g_new;
        if converged || iterations >= config.max_iters {
            ITERATIONS_HIST.observe(iterations as f64);
            let clusters = members
                .into_iter()
                .zip(reps)
                .map(|(m, rep)| {
                    // re-home heuristic-chosen sweep backends onto the
                    // configured one; a bit-exact copy (see to_backend)
                    let rep = if rep.backend() == config.rep_backend {
                        rep
                    } else {
                        rep.to_backend(config.rep_backend)
                    };
                    Cluster::new(m, rep)
                })
                .collect();
            return Ok(Clustering::new(clusters, outliers, g_new, iterations));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nidc_forgetting::{DecayParams, Repository, Timestamp};
    use nidc_textproc::{SparseVector, TermId};

    fn tf(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
    }

    /// Builds vectors for two clean topic groups plus (optionally) one
    /// unrelated document.
    fn two_topic_vectors(with_stray: bool) -> DocVectors {
        let mut repo = Repository::new(DecayParams::from_spans(7.0, 30.0).unwrap());
        // topic A: terms 0..3, docs 0..5
        for i in 0..5u64 {
            repo.insert(
                DocId(i),
                Timestamp(0.0),
                tf(&[(0, 3.0), (1, 2.0), (2 + (i % 2) as u32, 1.0)]),
            )
            .unwrap();
        }
        // topic B: terms 10..13, docs 5..10
        for i in 5..10u64 {
            repo.insert(
                DocId(i),
                Timestamp(0.1),
                tf(&[(10, 3.0), (11, 2.0), (12 + (i % 2) as u32, 1.0)]),
            )
            .unwrap();
        }
        if with_stray {
            repo.insert(DocId(99), Timestamp(0.2), tf(&[(30, 1.0)]))
                .unwrap();
        }
        DocVectors::build(&repo)
    }

    #[test]
    fn separates_two_topics() {
        let vecs = two_topic_vectors(false);
        let config = ClusteringConfig {
            k: 2,
            seed: 3,
            ..ClusteringConfig::default()
        };
        let clustering = cluster_batch(&vecs, &config).unwrap();
        assert_eq!(clustering.non_empty_clusters(), 2);
        for c in clustering.clusters() {
            if c.is_empty() {
                continue;
            }
            let group_a = c.members().iter().filter(|d| d.0 < 5).count();
            assert!(
                group_a == 0 || group_a == c.len(),
                "mixed cluster {:?}",
                c.members()
            );
        }
        assert!(clustering.g() > 0.0);
    }

    #[test]
    fn stray_document_becomes_outlier() {
        let vecs = two_topic_vectors(true);
        let config = ClusteringConfig {
            k: 2,
            seed: 3,
            ..ClusteringConfig::default()
        };
        let clustering = cluster_batch(&vecs, &config).unwrap();
        // The stray shares no term with either topic: adding it to any
        // cluster cannot increase avg_sim, unless it seeded a cluster itself.
        let is_outlier = clustering.outliers().contains(&DocId(99));
        let seeded_own = clustering
            .clusters()
            .iter()
            .any(|c| c.members() == [DocId(99)]);
        assert!(
            is_outlier || seeded_own,
            "stray doc neither outlier nor own cluster: outliers={:?}",
            clustering.outliers()
        );
    }

    #[test]
    fn zero_k_is_rejected() {
        let vecs = two_topic_vectors(false);
        let config = ClusteringConfig {
            k: 0,
            ..ClusteringConfig::default()
        };
        assert!(matches!(
            cluster_batch(&vecs, &config),
            Err(Error::ZeroClusters)
        ));
    }

    #[test]
    fn empty_input_yields_empty_clustering() {
        let repo = Repository::new(DecayParams::from_spans(7.0, 14.0).unwrap());
        let vecs = DocVectors::build(&repo);
        let clustering = cluster_batch(&vecs, &ClusteringConfig::default()).unwrap();
        assert_eq!(clustering.clusters().len(), 0);
        assert_eq!(clustering.iterations(), 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let vecs = two_topic_vectors(true);
        let config = ClusteringConfig {
            k: 3,
            seed: 11,
            ..ClusteringConfig::default()
        };
        let a = cluster_batch(&vecs, &config).unwrap();
        let b = cluster_batch(&vecs, &config).unwrap();
        assert_eq!(a.member_lists(), b.member_lists());
        assert_eq!(a.g(), b.g());
        assert_eq!(a.iterations(), b.iterations());
    }

    #[test]
    fn warm_start_converges_fast_and_respects_assignment() {
        let vecs = two_topic_vectors(false);
        let config = ClusteringConfig {
            k: 2,
            seed: 5,
            ..ClusteringConfig::default()
        };
        let cold = cluster_batch(&vecs, &config).unwrap();
        let warm =
            cluster_with_initial(&vecs, &config, InitialState::Assignment(cold.assignment()))
                .unwrap();
        assert!(
            warm.iterations() <= cold.iterations(),
            "warm start took more iterations ({} > {})",
            warm.iterations(),
            cold.iterations()
        );
        assert_eq!(warm.member_lists(), cold.member_lists());
    }

    #[test]
    fn warm_start_rejects_out_of_range_cluster() {
        let vecs = two_topic_vectors(false);
        let config = ClusteringConfig {
            k: 2,
            ..ClusteringConfig::default()
        };
        let mut bad = BTreeMap::new();
        bad.insert(DocId(0), 7usize);
        let err = cluster_with_initial(&vecs, &config, InitialState::Assignment(bad));
        assert!(matches!(
            err,
            Err(Error::InvalidInitialAssignment { cluster: 7, k: 2 })
        ));
    }

    #[test]
    fn warm_start_ignores_dead_documents_and_reseeds_empty_slots() {
        let vecs = two_topic_vectors(false);
        let config = ClusteringConfig {
            k: 2,
            ..ClusteringConfig::default()
        };
        // previous assignment references only documents that no longer exist
        let mut prev = BTreeMap::new();
        prev.insert(DocId(500), 0usize);
        prev.insert(DocId(501), 1usize);
        let clustering =
            cluster_with_initial(&vecs, &config, InitialState::Assignment(prev)).unwrap();
        // both slots must have been reseeded and clustering still works
        assert_eq!(clustering.non_empty_clusters(), 2);
        assert_eq!(clustering.assigned_docs() + clustering.outliers().len(), 10);
    }

    #[test]
    fn all_documents_accounted_for() {
        let vecs = two_topic_vectors(true);
        let config = ClusteringConfig {
            k: 3,
            seed: 2,
            ..ClusteringConfig::default()
        };
        let clustering = cluster_batch(&vecs, &config).unwrap();
        assert_eq!(clustering.assigned_docs() + clustering.outliers().len(), 11);
        // no document appears twice
        let mut seen = std::collections::HashSet::new();
        for c in clustering.clusters() {
            for d in c.members() {
                assert!(seen.insert(*d), "{d} assigned twice");
            }
        }
        for d in clustering.outliers() {
            assert!(seen.insert(*d), "{d} both assigned and outlier");
        }
    }

    #[test]
    fn g_is_nonnegative_and_matches_definition() {
        let vecs = two_topic_vectors(false);
        let config = ClusteringConfig {
            k: 2,
            ..ClusteringConfig::default()
        };
        let clustering = cluster_batch(&vecs, &config).unwrap();
        let g_direct: f64 = clustering
            .clusters()
            .iter()
            .map(|c| c.len() as f64 * c.avg_sim())
            .sum();
        assert!(clustering.g() >= 0.0);
        assert!((clustering.g() - g_direct).abs() < 1e-12);
    }
}
