//! Query-time merge of per-shard clusterings.
//!
//! A [`crate::ShardedPipeline`] clusters every shard independently; nothing
//! global exists until a caller asks. This module provides that global view:
//! cluster identity becomes [`GlobalClusterId`] `(shard, local index)`, the
//! per-shard [`Clustering`]s are held side by side, and global aggregates
//! (`G`, outliers, assignment, member lists) are derived on demand. Member
//! sets across shards are disjoint by construction (the router partitions
//! `DocId`s), so cross-shard representative merges via
//! [`ClusterRep::merge_from`] are exact (eq. 21/25).
//!
//! # Id stability
//!
//! Both views guarantee **id stability across identical inputs**: a
//! [`MergedClustering`] keys every cluster by its `(shard, local)` slot
//! verbatim, and a stitching pass deterministically keeps the *lowest*
//! shard-major source id as the surviving [`StitchedCluster::id`] no
//! matter the agglomeration order (fragments always fold into the
//! lower-id slot). Two queries over the same per-shard clusterings
//! therefore name every cluster identically — the property the
//! [`crate::LineageTracker`] relies on to match clusters across windows
//! without reading deaths+births into a mere re-query. Pinned by
//! `stitched_clusters_keep_the_lowest_shard_major_source_id` in
//! `tests/shard_determinism.rs`.

use std::collections::BTreeMap;

use nidc_obs::{buckets, LazyCounter, LazyHistogram};
use nidc_similarity::{ClusterRep, RepBackend};
use nidc_textproc::DocId;

use crate::{Cluster, Clustering};

/// Stitching passes executed (one per [`MergedClustering::stitch`] call).
static STITCH_RUNS: LazyCounter = LazyCounter::new("nidc_stitch_runs_total");
/// Cluster fragments folded into another cluster across all passes — the
/// repair volume (0 on a well-separated or single-shard stream).
static STITCH_MERGED_FRAGMENTS: LazyCounter =
    LazyCounter::new("nidc_stitch_merged_fragments_total");
/// Wall-clock seconds per stitching pass (dot matrix + agglomeration).
static STITCH_SECONDS: LazyHistogram =
    LazyHistogram::new("nidc_stitch_seconds", buckets::LATENCY_SECONDS);
/// Non-empty clusters surviving each pass (compare against
/// `nidc_stitch_merged_fragments_total` for the input count).
static STITCH_OUTPUT_CLUSTERS: LazyHistogram =
    LazyHistogram::new("nidc_stitch_output_clusters", buckets::SIZES);

/// Registers the stitch metric family at zero so per-window snapshots carry
/// the full schema even on runs that never stitch (e.g. one shard).
pub(crate) fn register_stitch_metrics() {
    STITCH_RUNS.add(0);
    STITCH_MERGED_FRAGMENTS.add(0);
    STITCH_SECONDS.touch();
    STITCH_OUTPUT_CLUSTERS.touch();
}

/// The default normalized-`cr_sim` stitching threshold τ.
///
/// Fragments of one topic routed to different shards score far above this
/// (they share the topic vocabulary), while distinct topics score near zero;
/// the value is calibrated on the sharding benchmark
/// (`results/BENCH_shards.json`), where it recovers ≥ 90% of the unsharded
/// micro-F1 at 2–8 shards.
pub const DEFAULT_STITCH_THRESHOLD: f64 = 0.2;

/// Global identity of a cluster in a sharded deployment: which shard owns
/// it, and its index inside that shard's K-slot clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalClusterId {
    /// The owning shard's index.
    pub shard: usize,
    /// The cluster's slot index within the shard's clustering (`0..K`).
    pub local: usize,
}

impl std::fmt::Display for GlobalClusterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.shard, self.local)
    }
}

/// The merged, query-time view over per-shard clusterings.
///
/// Holds one [`Clustering`] per shard (shard order is fixed by the
/// pipeline), and exposes the same aggregate surface as a single
/// [`Clustering`] — `g()` sums the shard indices (`G` is itself a sum over
/// clusters, eq. 17, so summing shard partial sums is exact), `outliers()`
/// merges and sorts, `assignment()` maps to [`GlobalClusterId`]s.
#[derive(Debug, Clone)]
pub struct MergedClustering {
    shards: Vec<Clustering>,
    stitched: Option<StitchedClustering>,
}

impl MergedClustering {
    /// Wraps per-shard clusterings (index = shard id).
    pub fn new(shards: Vec<Clustering>) -> Self {
        Self {
            shards,
            stitched: None,
        }
    }

    /// Number of shards merged.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard clusterings, in shard order.
    pub fn shards(&self) -> &[Clustering] {
        &self.shards
    }

    /// One shard's clustering.
    pub fn shard(&self, s: usize) -> &Clustering {
        &self.shards[s]
    }

    /// Looks up a cluster by its global id.
    pub fn cluster(&self, id: GlobalClusterId) -> Option<&Cluster> {
        self.shards.get(id.shard)?.clusters().get(id.local)
    }

    /// All global cluster ids, shard-major (includes empty K-slots, so ids
    /// are stable across queries).
    pub fn cluster_ids(&self) -> Vec<GlobalClusterId> {
        self.shards
            .iter()
            .enumerate()
            .flat_map(|(s, c)| {
                (0..c.clusters().len()).map(move |local| GlobalClusterId { shard: s, local })
            })
            .collect()
    }

    /// Iterates the non-empty clusters with their global ids, shard-major.
    pub fn iter_non_empty(&self) -> impl Iterator<Item = (GlobalClusterId, &Cluster)> {
        self.shards.iter().enumerate().flat_map(|(s, c)| {
            c.clusters()
                .iter()
                .enumerate()
                .filter(|(_, cl)| !cl.is_empty())
                .map(move |(local, cl)| (GlobalClusterId { shard: s, local }, cl))
        })
    }

    /// The global clustering index `G = Σ_shards G_s` (eq. 17 is a sum over
    /// clusters, so the sum over shard partial sums is the exact global
    /// index).
    pub fn g(&self) -> f64 {
        self.shards.iter().map(Clustering::g).sum()
    }

    /// The slowest shard's repetition-process iteration count (the
    /// wall-clock-relevant figure under fan-out).
    pub fn iterations(&self) -> usize {
        self.shards
            .iter()
            .map(Clustering::iterations)
            .max()
            .unwrap_or(0)
    }

    /// Number of non-empty clusters across all shards.
    pub fn non_empty_clusters(&self) -> usize {
        self.shards.iter().map(Clustering::non_empty_clusters).sum()
    }

    /// Total documents assigned to clusters (excludes outliers).
    pub fn assigned_docs(&self) -> usize {
        self.shards.iter().map(Clustering::assigned_docs).sum()
    }

    /// All shards' outliers, merged and sorted ascending.
    pub fn outliers(&self) -> Vec<DocId> {
        let mut all: Vec<DocId> = self
            .shards
            .iter()
            .flat_map(|c| c.outliers().iter().copied())
            .collect();
        all.sort_unstable();
        all
    }

    /// Member lists of every cluster, shard-major (includes empty K-slots,
    /// matching [`Clustering::member_lists`] per shard). This is the shape
    /// the evaluation code consumes — cluster marking and the merged
    /// micro/macro-F1 are computed over exactly this concatenation.
    pub fn member_lists(&self) -> Vec<Vec<DocId>> {
        self.shards.iter().flat_map(|c| c.member_lists()).collect()
    }

    /// The global assignment map `DocId → global cluster id` (outliers
    /// absent). Shards partition the document space, so no key collides.
    pub fn assignment(&self) -> BTreeMap<DocId, GlobalClusterId> {
        let mut map = BTreeMap::new();
        for (s, clustering) in self.shards.iter().enumerate() {
            for (local, cluster) in clustering.clusters().iter().enumerate() {
                for &d in cluster.members() {
                    map.insert(d, GlobalClusterId { shard: s, local });
                }
            }
        }
        map
    }

    /// Merges the representatives of the given clusters into one
    /// [`ClusterRep`] on the sparse backend (the cross-shard merge of
    /// eq. 21/25 via [`ClusterRep::merge_from`]). The router guarantees the
    /// member sets are disjoint, which is exactly the precondition
    /// `merge_from` needs. Unknown ids are skipped.
    pub fn merged_rep(&self, ids: &[GlobalClusterId]) -> ClusterRep {
        let mut rep = ClusterRep::new_with(RepBackend::Sparse);
        for &id in ids {
            if let Some(cluster) = self.cluster(id) {
                rep.merge_from(cluster.rep());
            }
        }
        rep
    }

    /// Runs the cross-shard stitching pass (see [`StitchedClustering`]) at
    /// threshold τ and returns the result without attaching it.
    pub fn stitch(&self, threshold: f64) -> StitchedClustering {
        stitch_shards(&self.shards, threshold)
    }

    /// Runs the stitching pass and attaches the result, so query paths can
    /// read it back via [`MergedClustering::stitched`].
    pub fn stitch_in_place(&mut self, threshold: f64) {
        self.stitched = Some(self.stitch(threshold));
    }

    /// The attached stitched view, if a stitching pass ran.
    pub fn stitched(&self) -> Option<&StitchedClustering> {
        self.stitched.as_ref()
    }
}

/// One cluster of a [`StitchedClustering`]: the union of one or more
/// per-shard cluster fragments.
#[derive(Debug, Clone)]
pub struct StitchedCluster {
    id: GlobalClusterId,
    sources: Vec<GlobalClusterId>,
    members: Vec<DocId>,
    rep: ClusterRep,
}

impl StitchedCluster {
    /// The stable stitched id: the lowest (shard-major) global id among the
    /// folded fragments — the slot that absorbed the others.
    pub fn id(&self) -> GlobalClusterId {
        self.id
    }

    /// Every folded fragment's global id, sorted ascending (shard-major).
    /// A single-element list means the cluster passed through unstitched.
    pub fn sources(&self) -> &[GlobalClusterId] {
        &self.sources
    }

    /// Member documents, sorted ascending.
    pub fn members(&self) -> &[DocId] {
        &self.members
    }

    /// The merged representative over the union of the fragments' members —
    /// exact, via [`ClusterRep::merge_from`] (eq. 21/25), and always on the
    /// sparse backend.
    pub fn rep(&self) -> &ClusterRep {
        &self.rep
    }

    /// Number of member documents.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster (an empty preserved K-slot) has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// `avg_sim` over the union (eq. 24, exact).
    pub fn avg_sim(&self) -> f64 {
        self.rep.avg_sim()
    }
}

/// The cross-shard stitched view: the repair pass for the sharding quality
/// cliff.
///
/// The router partitions documents by id, so one topic's documents scatter
/// across shards and each shard grows its own fragment of the topic's
/// cluster. [`MergedClustering`] alone keeps those fragments separate, which
/// is why the merged F1 collapses as shards grow. Stitching reunites them:
/// group-average agglomeration over the merged representatives, merging the
/// most similar pair while its **normalized `cr_sim`**
///
/// ```text
/// sim(A, B) = cr_sim(A, B) / √(cr_sim(A,A) · cr_sim(B,B))      (eq. 21)
/// ```
///
/// stays ≥ τ. The normalization makes τ scale-free: forgetting decays every
/// φ's magnitude over time, but the representatives' *directions* — and so
/// a fixed τ — stay meaningful across windows. Each merge folds fragments
/// exactly via [`ClusterRep::merge_from`] (eq. 25), so every stitched
/// cluster's `avg_sim`, and therefore the stitched `G` (eq. 17), is exact.
///
/// Ids are stable: every input K-slot (including empty ones) keeps its
/// shard-major position, a merge folds the higher slot into the lower one,
/// and the survivor keeps its [`GlobalClusterId`]. With a single shard the
/// pass is the identity — there are no cross-shard fragments to reunite —
/// and the stitched view is bit-identical to the unsharded clustering.
/// With several shards, pairs from the *same* shard may also merge if they
/// clear τ; the threshold, not the topology, governs.
///
/// Complexity: O(N²) representative dot products up front plus an O(N²)
/// scan per merge, N = Σ_shards K. Merging `j` into `i` updates the cached
/// dot row additively (`c⃗_{i∪j}·c⃗_x = c⃗_i·c⃗_x + c⃗_j·c⃗_x`), so no dot
/// product is ever recomputed. The pass is sequential and therefore
/// trivially thread-count invariant; representatives are folded onto the
/// sparse backend first, so it is also bit-identical across
/// [`RepBackend`]s.
#[derive(Debug, Clone)]
pub struct StitchedClustering {
    clusters: Vec<StitchedCluster>,
    outliers: Vec<DocId>,
    g: f64,
    threshold: f64,
    input_clusters: usize,
    merges: usize,
}

impl StitchedClustering {
    /// The stitched clusters, shard-major by surviving slot (empty input
    /// K-slots are preserved, so positions are stable across queries).
    pub fn clusters(&self) -> &[StitchedCluster] {
        &self.clusters
    }

    /// Looks up a stitched cluster by its (surviving) global id.
    pub fn cluster(&self, id: GlobalClusterId) -> Option<&StitchedCluster> {
        self.clusters.iter().find(|c| c.id == id)
    }

    /// All shards' outliers, merged and sorted ascending (stitching never
    /// promotes or demotes outliers).
    pub fn outliers(&self) -> &[DocId] {
        &self.outliers
    }

    /// The exact stitched clustering index `G = Σ |C|·avg_sim(C)` (eq. 17)
    /// over the stitched clusters.
    pub fn g(&self) -> f64 {
        self.g
    }

    /// The threshold τ the pass ran at.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Non-empty clusters fed into the pass.
    pub fn input_clusters(&self) -> usize {
        self.input_clusters
    }

    /// Fragments folded into another cluster (`input_clusters −
    /// non_empty_clusters`).
    pub fn merges(&self) -> usize {
        self.merges
    }

    /// Number of non-empty stitched clusters.
    pub fn non_empty_clusters(&self) -> usize {
        self.clusters.iter().filter(|c| !c.is_empty()).count()
    }

    /// Total documents assigned to stitched clusters (excludes outliers).
    pub fn assigned_docs(&self) -> usize {
        self.clusters.iter().map(StitchedCluster::len).sum()
    }

    /// Member lists of every stitched cluster, in cluster order (includes
    /// preserved empty K-slots) — the shape the evaluation code consumes.
    pub fn member_lists(&self) -> Vec<Vec<DocId>> {
        self.clusters.iter().map(|c| c.members.clone()).collect()
    }

    /// The stitched assignment map `DocId → stitched cluster id`.
    pub fn assignment(&self) -> BTreeMap<DocId, GlobalClusterId> {
        let mut map = BTreeMap::new();
        for c in &self.clusters {
            for &d in &c.members {
                map.insert(d, c.id);
            }
        }
        map
    }
}

/// The stitching pass itself. Kept free so [`MergedClustering::stitch`] can
/// borrow `self.shards` while the caller holds `&mut self`.
fn stitch_shards(shards: &[Clustering], threshold: f64) -> StitchedClustering {
    // Span first, timer second: drop order closes the span after the timer
    // has observed. The span opens while `sharded.merge` is current on the
    // re-clustering path, so it nests under the merge span in the trace.
    let _span = nidc_obs::span!("sharded.stitch");
    let _timer = STITCH_SECONDS.start_timer();
    STITCH_RUNS.inc();

    // Fold every input slot onto a fresh sparse rep: `merge_from` into an
    // empty rep copies size/cr_self/ss bitwise, and all later dot products
    // are sparse merge-joins regardless of the shards' configured backend.
    let mut clusters: Vec<StitchedCluster> = Vec::new();
    for (s, clustering) in shards.iter().enumerate() {
        for (local, cl) in clustering.clusters().iter().enumerate() {
            let id = GlobalClusterId { shard: s, local };
            let mut rep = ClusterRep::new_with(RepBackend::Sparse);
            rep.merge_from(cl.rep());
            clusters.push(StitchedCluster {
                id,
                sources: vec![id],
                members: cl.members().to_vec(),
                rep,
            });
        }
    }
    let input_clusters = clusters.iter().filter(|c| !c.is_empty()).count();

    let mut merges = 0usize;
    if shards.len() > 1 {
        let n = clusters.len();
        let mut alive = vec![true; n];
        // full dot matrix up front; empty slots never participate
        let mut dot = vec![0.0f64; n * n];
        for i in 0..n {
            if clusters[i].is_empty() {
                continue;
            }
            for j in (i + 1)..n {
                if clusters[j].is_empty() {
                    continue;
                }
                let d = clusters[i].rep.dot_rep(&clusters[j].rep);
                dot[i * n + j] = d;
                dot[j * n + i] = d;
            }
        }
        loop {
            // best surviving pair, strict `>` in (i, j) scan order so ties
            // resolve to the first pair — the GAC baseline's idiom
            let mut best: Option<(usize, usize, f64)> = None;
            for i in 0..n {
                if !alive[i] || clusters[i].is_empty() {
                    continue;
                }
                let cr_i = clusters[i].rep.cr_self();
                for j in (i + 1)..n {
                    if !alive[j] || clusters[j].is_empty() {
                        continue;
                    }
                    let denom = (cr_i * clusters[j].rep.cr_self()).sqrt();
                    if denom <= 0.0 {
                        continue;
                    }
                    let sim = dot[i * n + j] / denom;
                    if best.is_none_or(|(_, _, b)| sim > b) {
                        best = Some((i, j, sim));
                    }
                }
            }
            let Some((i, j, sim)) = best else { break };
            if sim < threshold {
                break;
            }
            // fold slot j into slot i (i < j: the survivor keeps the lower,
            // therefore stable, global id)
            let (left, right) = clusters.split_at_mut(j);
            left[i].rep.merge_from(&right[0].rep);
            let moved_members = std::mem::take(&mut right[0].members);
            left[i].members.extend(moved_members);
            let moved_sources = std::mem::take(&mut right[0].sources);
            left[i].sources.extend(moved_sources);
            // dot products are linear in the reps: c⃗_{i∪j}·c⃗_x = c⃗_i·c⃗_x
            // + c⃗_j·c⃗_x — update row i additively, no recomputation
            for x in 0..n {
                if x == i || x == j {
                    continue;
                }
                dot[i * n + x] += dot[j * n + x];
                dot[x * n + i] = dot[i * n + x];
            }
            alive[j] = false;
            merges += 1;
        }
        clusters = clusters
            .into_iter()
            .zip(alive)
            .filter_map(|(c, keep)| keep.then_some(c))
            .collect();
    }
    for c in &mut clusters {
        c.members.sort_unstable();
        c.sources.sort_unstable();
    }

    let mut outliers: Vec<DocId> = shards
        .iter()
        .flat_map(|c| c.outliers().iter().copied())
        .collect();
    outliers.sort_unstable();

    // exact stitched G, summed in slot order — for a single shard this is
    // the same accumulation sequence the K-means ran, hence bit-identical
    let g: f64 = clusters.iter().map(|c| c.rep.g_term()).sum();

    STITCH_MERGED_FRAGMENTS.add(merges as u64);
    STITCH_OUTPUT_CLUSTERS.observe(clusters.iter().filter(|c| !c.is_empty()).count() as f64);
    StitchedClustering {
        clusters,
        outliers,
        g,
        threshold,
        input_clusters,
        merges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cluster_batch, ClusteringConfig};
    use nidc_forgetting::{DecayParams, Repository, Timestamp};
    use nidc_similarity::DocVectors;
    use nidc_textproc::{SparseVector, TermId};

    fn tf(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
    }

    /// Two shards, each clustered over its own repository, with the φ
    /// vectors each shard's clustering was built from.
    fn two_shard_merge_with_vecs() -> (MergedClustering, Vec<DocVectors>) {
        let decay = DecayParams::from_spans(7.0, 14.0).unwrap();
        let config = ClusteringConfig {
            k: 2,
            seed: 1,
            ..ClusteringConfig::default()
        };
        let mut shards = Vec::new();
        let mut all_vecs = Vec::new();
        for base in [0u64, 100u64] {
            let mut repo = Repository::new(decay);
            for i in 0..3 {
                repo.insert(
                    DocId(base + i),
                    Timestamp(0.01 * i as f64),
                    tf(&[(0, 3.0), (1, 1.0 + (i % 2) as f64)]),
                )
                .unwrap();
            }
            for i in 3..6 {
                repo.insert(
                    DocId(base + i),
                    Timestamp(0.01 * i as f64),
                    tf(&[(8, 3.0), (9, 1.0 + (i % 2) as f64)]),
                )
                .unwrap();
            }
            let vecs = DocVectors::build(&repo);
            shards.push(cluster_batch(&vecs, &config).unwrap());
            all_vecs.push(vecs);
        }
        (MergedClustering::new(shards), all_vecs)
    }

    fn two_shard_merge() -> MergedClustering {
        two_shard_merge_with_vecs().0
    }

    #[test]
    fn aggregates_sum_over_shards() {
        let m = two_shard_merge();
        assert_eq!(m.shard_count(), 2);
        let g_sum: f64 = m.shards().iter().map(Clustering::g).sum();
        assert_eq!(m.g(), g_sum);
        assert_eq!(
            m.non_empty_clusters(),
            m.shard(0).non_empty_clusters() + m.shard(1).non_empty_clusters()
        );
        assert_eq!(
            m.assigned_docs(),
            m.shard(0).assigned_docs() + m.shard(1).assigned_docs()
        );
        assert!(m.iterations() >= m.shard(0).iterations().min(m.shard(1).iterations()));
    }

    #[test]
    fn member_lists_are_shard_major_and_assignment_uses_global_ids() {
        let m = two_shard_merge();
        let lists = m.member_lists();
        assert_eq!(lists.len(), 4); // K = 2 slots per shard
                                    // shard 0 members come first, shard 1 members after
        let k = m.shard(0).clusters().len();
        for (slot, members) in lists.iter().enumerate() {
            for d in members {
                assert_eq!(d.0 >= 100, slot >= k, "doc {d} in slot {slot}");
            }
        }
        let assign = m.assignment();
        for (d, gid) in &assign {
            assert_eq!(gid.shard, usize::from(d.0 >= 100));
            let members = m.cluster(*gid).unwrap().members();
            assert!(members.contains(d));
        }
        // every assigned doc is in exactly one list
        assert_eq!(assign.len(), m.assigned_docs());
    }

    #[test]
    fn outliers_merge_sorted() {
        let a = Clustering::new(vec![], vec![DocId(7), DocId(9)], 0.0, 1);
        let b = Clustering::new(vec![], vec![DocId(3), DocId(8)], 0.0, 2);
        let m = MergedClustering::new(vec![a, b]);
        assert_eq!(m.outliers(), vec![DocId(3), DocId(7), DocId(8), DocId(9)]);
        assert_eq!(m.iterations(), 2);
    }

    #[test]
    fn merged_rep_matches_monolithic_rep_over_union() {
        let m = two_shard_merge();
        // merge the topic-A cluster of each shard; compare against a rep
        // built from the union of their members' φ vectors
        let ids: Vec<GlobalClusterId> = m.iter_non_empty().map(|(id, _)| id).collect();
        let merged = m.merged_rep(&ids);
        let total_size: usize = ids
            .iter()
            .map(|&id| m.cluster(id).unwrap().rep().size())
            .sum();
        assert_eq!(merged.size(), total_size);
        let ss_sum: f64 = ids
            .iter()
            .map(|&id| m.cluster(id).unwrap().rep().ss())
            .sum();
        assert!((merged.ss() - ss_sum).abs() < 1e-12);
        assert_eq!(merged.backend(), RepBackend::Sparse);
        // unknown ids are skipped
        let same = m.merged_rep(&[ids[0], GlobalClusterId { shard: 9, local: 9 }]);
        assert_eq!(same.size(), m.cluster(ids[0]).unwrap().rep().size());
    }

    #[test]
    fn stitch_tau_infinity_is_the_identity() {
        // normalized cr_sim is ≤ ~1, so τ = ∞ can never merge anything
        let m = two_shard_merge();
        let s = m.stitch(f64::INFINITY);
        assert_eq!(s.merges(), 0);
        assert_eq!(s.member_lists(), m.member_lists());
        assert_eq!(s.outliers(), m.outliers());
        assert_eq!(s.non_empty_clusters(), m.non_empty_clusters());
        assert!((s.g() - m.g()).abs() < 1e-12);
        // ids pass through untouched, one source each
        for (c, id) in s.clusters().iter().zip(m.cluster_ids()) {
            assert_eq!(c.id(), id);
            assert_eq!(c.sources(), [id]);
        }
    }

    #[test]
    fn stitch_tau_zero_collapses_to_a_single_cluster() {
        // φ weights are nonnegative, so every pairwise normalized cr_sim is
        // ≥ 0 and τ = 0 agglomerates every non-empty cluster into one
        let m = two_shard_merge();
        let s = m.stitch(0.0);
        assert_eq!(s.non_empty_clusters(), 1);
        let all: Vec<DocId> = s
            .clusters()
            .iter()
            .flat_map(|c| c.members().iter().copied())
            .collect();
        assert_eq!(all.len(), m.assigned_docs());
        assert_eq!(s.merges(), s.input_clusters() - 1);
        // the survivor keeps the lowest global id
        let survivor = s.clusters().iter().find(|c| !c.is_empty()).unwrap();
        assert_eq!(survivor.id(), *survivor.sources().first().unwrap());
    }

    #[test]
    fn stitch_reunites_cross_shard_fragments_of_one_topic() {
        // each shard has a topic-A cluster (terms 0/1) and a topic-B cluster
        // (terms 8/9); at a moderate τ the same-topic fragments merge across
        // shards and the two topics stay apart
        let m = two_shard_merge();
        let s = m.stitch(0.5);
        assert_eq!(s.non_empty_clusters(), 2);
        assert_eq!(s.merges(), 2);
        for c in s.clusters().iter().filter(|c| !c.is_empty()) {
            assert_eq!(c.sources().len(), 2, "one fragment from each shard");
            assert_eq!(c.len(), 6);
            // stitched ids are stable: the lowest folded fragment's id
            assert_eq!(c.id(), *c.sources().first().unwrap());
            // members arrive sorted
            let mut sorted = c.members().to_vec();
            sorted.sort_unstable();
            assert_eq!(c.members(), sorted);
        }
        // assignment maps every assigned doc to its stitched cluster
        let assign = s.assignment();
        assert_eq!(assign.len(), s.assigned_docs());
        for (d, id) in &assign {
            assert!(s.cluster(*id).unwrap().members().contains(d));
        }
    }

    #[test]
    fn stitched_rep_is_exact_versus_from_members_on_the_union() {
        let (m, vecs) = two_shard_merge_with_vecs();
        let s = m.stitch(0.5);
        for c in s.clusters().iter().filter(|c| c.sources().len() > 1) {
            let phis = c.members().iter().map(|d| {
                let shard = usize::from(d.0 >= 100);
                vecs[shard].phi(*d).expect("member has a vector")
            });
            let reference = ClusterRep::from_members(phis);
            assert_eq!(c.rep().size(), reference.size());
            // merge_from folds fragments in a different floating-point
            // order than sequential adds; exact in value, not in bits
            let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-300);
            assert!(rel(c.rep().cr_self(), reference.cr_self()) < 1e-9);
            assert!(rel(c.rep().ss(), reference.ss()) < 1e-9);
            assert!(rel(c.avg_sim(), reference.avg_sim()) < 1e-9);
        }
    }

    #[test]
    fn stitch_single_shard_is_a_no_op_even_at_tau_zero() {
        let (m, _) = two_shard_merge_with_vecs();
        // re-wrap just the first shard as a 1-shard merged view
        let single = MergedClustering::new(vec![m.shard(0).clone()]);
        let s = single.stitch(0.0);
        assert_eq!(s.merges(), 0);
        assert_eq!(s.member_lists(), single.member_lists());
        assert_eq!(s.outliers(), single.outliers());
        assert_eq!(
            s.g().to_bits(),
            single.shard(0).g().to_bits(),
            "single-shard stitched G must be bit-identical"
        );
    }

    #[test]
    fn stitch_in_place_attaches_the_view() {
        let mut m = two_shard_merge();
        assert!(m.stitched().is_none());
        m.stitch_in_place(0.5);
        let s = m.stitched().expect("attached");
        assert_eq!(s.threshold(), 0.5);
    }

    #[test]
    fn global_ids_are_ordered_and_displayable() {
        let a = GlobalClusterId { shard: 0, local: 5 };
        let b = GlobalClusterId { shard: 1, local: 0 };
        assert!(a < b);
        assert_eq!(a.to_string(), "0:5");
    }
}
