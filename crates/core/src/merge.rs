//! Query-time merge of per-shard clusterings.
//!
//! A [`crate::ShardedPipeline`] clusters every shard independently; nothing
//! global exists until a caller asks. This module provides that global view:
//! cluster identity becomes [`GlobalClusterId`] `(shard, local index)`, the
//! per-shard [`Clustering`]s are held side by side, and global aggregates
//! (`G`, outliers, assignment, member lists) are derived on demand. Member
//! sets across shards are disjoint by construction (the router partitions
//! `DocId`s), so cross-shard representative merges via
//! [`ClusterRep::merge_from`] are exact (eq. 21/25).

use std::collections::BTreeMap;

use nidc_similarity::{ClusterRep, RepBackend};
use nidc_textproc::DocId;

use crate::{Cluster, Clustering};

/// Global identity of a cluster in a sharded deployment: which shard owns
/// it, and its index inside that shard's K-slot clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalClusterId {
    /// The owning shard's index.
    pub shard: usize,
    /// The cluster's slot index within the shard's clustering (`0..K`).
    pub local: usize,
}

impl std::fmt::Display for GlobalClusterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.shard, self.local)
    }
}

/// The merged, query-time view over per-shard clusterings.
///
/// Holds one [`Clustering`] per shard (shard order is fixed by the
/// pipeline), and exposes the same aggregate surface as a single
/// [`Clustering`] — `g()` sums the shard indices (`G` is itself a sum over
/// clusters, eq. 17, so summing shard partial sums is exact), `outliers()`
/// merges and sorts, `assignment()` maps to [`GlobalClusterId`]s.
#[derive(Debug, Clone)]
pub struct MergedClustering {
    shards: Vec<Clustering>,
}

impl MergedClustering {
    /// Wraps per-shard clusterings (index = shard id).
    pub fn new(shards: Vec<Clustering>) -> Self {
        Self { shards }
    }

    /// Number of shards merged.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard clusterings, in shard order.
    pub fn shards(&self) -> &[Clustering] {
        &self.shards
    }

    /// One shard's clustering.
    pub fn shard(&self, s: usize) -> &Clustering {
        &self.shards[s]
    }

    /// Looks up a cluster by its global id.
    pub fn cluster(&self, id: GlobalClusterId) -> Option<&Cluster> {
        self.shards.get(id.shard)?.clusters().get(id.local)
    }

    /// All global cluster ids, shard-major (includes empty K-slots, so ids
    /// are stable across queries).
    pub fn cluster_ids(&self) -> Vec<GlobalClusterId> {
        self.shards
            .iter()
            .enumerate()
            .flat_map(|(s, c)| {
                (0..c.clusters().len()).map(move |local| GlobalClusterId { shard: s, local })
            })
            .collect()
    }

    /// Iterates the non-empty clusters with their global ids, shard-major.
    pub fn iter_non_empty(&self) -> impl Iterator<Item = (GlobalClusterId, &Cluster)> {
        self.shards.iter().enumerate().flat_map(|(s, c)| {
            c.clusters()
                .iter()
                .enumerate()
                .filter(|(_, cl)| !cl.is_empty())
                .map(move |(local, cl)| (GlobalClusterId { shard: s, local }, cl))
        })
    }

    /// The global clustering index `G = Σ_shards G_s` (eq. 17 is a sum over
    /// clusters, so the sum over shard partial sums is the exact global
    /// index).
    pub fn g(&self) -> f64 {
        self.shards.iter().map(Clustering::g).sum()
    }

    /// The slowest shard's repetition-process iteration count (the
    /// wall-clock-relevant figure under fan-out).
    pub fn iterations(&self) -> usize {
        self.shards
            .iter()
            .map(Clustering::iterations)
            .max()
            .unwrap_or(0)
    }

    /// Number of non-empty clusters across all shards.
    pub fn non_empty_clusters(&self) -> usize {
        self.shards.iter().map(Clustering::non_empty_clusters).sum()
    }

    /// Total documents assigned to clusters (excludes outliers).
    pub fn assigned_docs(&self) -> usize {
        self.shards.iter().map(Clustering::assigned_docs).sum()
    }

    /// All shards' outliers, merged and sorted ascending.
    pub fn outliers(&self) -> Vec<DocId> {
        let mut all: Vec<DocId> = self
            .shards
            .iter()
            .flat_map(|c| c.outliers().iter().copied())
            .collect();
        all.sort_unstable();
        all
    }

    /// Member lists of every cluster, shard-major (includes empty K-slots,
    /// matching [`Clustering::member_lists`] per shard). This is the shape
    /// the evaluation code consumes — cluster marking and the merged
    /// micro/macro-F1 are computed over exactly this concatenation.
    pub fn member_lists(&self) -> Vec<Vec<DocId>> {
        self.shards.iter().flat_map(|c| c.member_lists()).collect()
    }

    /// The global assignment map `DocId → global cluster id` (outliers
    /// absent). Shards partition the document space, so no key collides.
    pub fn assignment(&self) -> BTreeMap<DocId, GlobalClusterId> {
        let mut map = BTreeMap::new();
        for (s, clustering) in self.shards.iter().enumerate() {
            for (local, cluster) in clustering.clusters().iter().enumerate() {
                for &d in cluster.members() {
                    map.insert(d, GlobalClusterId { shard: s, local });
                }
            }
        }
        map
    }

    /// Merges the representatives of the given clusters into one
    /// [`ClusterRep`] on the sparse backend (the cross-shard merge of
    /// eq. 21/25 via [`ClusterRep::merge_from`]). The router guarantees the
    /// member sets are disjoint, which is exactly the precondition
    /// `merge_from` needs. Unknown ids are skipped.
    pub fn merged_rep(&self, ids: &[GlobalClusterId]) -> ClusterRep {
        let mut rep = ClusterRep::new_with(RepBackend::Sparse);
        for &id in ids {
            if let Some(cluster) = self.cluster(id) {
                rep.merge_from(cluster.rep());
            }
        }
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cluster_batch, ClusteringConfig};
    use nidc_forgetting::{DecayParams, Repository, Timestamp};
    use nidc_similarity::DocVectors;
    use nidc_textproc::{SparseVector, TermId};

    fn tf(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
    }

    /// Two shards, each clustered over its own repository.
    fn two_shard_merge() -> MergedClustering {
        let decay = DecayParams::from_spans(7.0, 14.0).unwrap();
        let config = ClusteringConfig {
            k: 2,
            seed: 1,
            ..ClusteringConfig::default()
        };
        let mut shards = Vec::new();
        for base in [0u64, 100u64] {
            let mut repo = Repository::new(decay);
            for i in 0..3 {
                repo.insert(
                    DocId(base + i),
                    Timestamp(0.01 * i as f64),
                    tf(&[(0, 3.0), (1, 1.0 + (i % 2) as f64)]),
                )
                .unwrap();
            }
            for i in 3..6 {
                repo.insert(
                    DocId(base + i),
                    Timestamp(0.01 * i as f64),
                    tf(&[(8, 3.0), (9, 1.0 + (i % 2) as f64)]),
                )
                .unwrap();
            }
            let vecs = DocVectors::build(&repo);
            shards.push(cluster_batch(&vecs, &config).unwrap());
        }
        MergedClustering::new(shards)
    }

    #[test]
    fn aggregates_sum_over_shards() {
        let m = two_shard_merge();
        assert_eq!(m.shard_count(), 2);
        let g_sum: f64 = m.shards().iter().map(Clustering::g).sum();
        assert_eq!(m.g(), g_sum);
        assert_eq!(
            m.non_empty_clusters(),
            m.shard(0).non_empty_clusters() + m.shard(1).non_empty_clusters()
        );
        assert_eq!(
            m.assigned_docs(),
            m.shard(0).assigned_docs() + m.shard(1).assigned_docs()
        );
        assert!(m.iterations() >= m.shard(0).iterations().min(m.shard(1).iterations()));
    }

    #[test]
    fn member_lists_are_shard_major_and_assignment_uses_global_ids() {
        let m = two_shard_merge();
        let lists = m.member_lists();
        assert_eq!(lists.len(), 4); // K = 2 slots per shard
                                    // shard 0 members come first, shard 1 members after
        let k = m.shard(0).clusters().len();
        for (slot, members) in lists.iter().enumerate() {
            for d in members {
                assert_eq!(d.0 >= 100, slot >= k, "doc {d} in slot {slot}");
            }
        }
        let assign = m.assignment();
        for (d, gid) in &assign {
            assert_eq!(gid.shard, usize::from(d.0 >= 100));
            let members = m.cluster(*gid).unwrap().members();
            assert!(members.contains(d));
        }
        // every assigned doc is in exactly one list
        assert_eq!(assign.len(), m.assigned_docs());
    }

    #[test]
    fn outliers_merge_sorted() {
        let a = Clustering::new(vec![], vec![DocId(7), DocId(9)], 0.0, 1);
        let b = Clustering::new(vec![], vec![DocId(3), DocId(8)], 0.0, 2);
        let m = MergedClustering::new(vec![a, b]);
        assert_eq!(m.outliers(), vec![DocId(3), DocId(7), DocId(8), DocId(9)]);
        assert_eq!(m.iterations(), 2);
    }

    #[test]
    fn merged_rep_matches_monolithic_rep_over_union() {
        let m = two_shard_merge();
        // merge the topic-A cluster of each shard; compare against a rep
        // built from the union of their members' φ vectors
        let ids: Vec<GlobalClusterId> = m.iter_non_empty().map(|(id, _)| id).collect();
        let merged = m.merged_rep(&ids);
        let total_size: usize = ids
            .iter()
            .map(|&id| m.cluster(id).unwrap().rep().size())
            .sum();
        assert_eq!(merged.size(), total_size);
        let ss_sum: f64 = ids
            .iter()
            .map(|&id| m.cluster(id).unwrap().rep().ss())
            .sum();
        assert!((merged.ss() - ss_sum).abs() < 1e-12);
        assert_eq!(merged.backend(), RepBackend::Sparse);
        // unknown ids are skipped
        let same = m.merged_rep(&[ids[0], GlobalClusterId { shard: 9, local: 9 }]);
        assert_eq!(same.size(), m.cluster(ids[0]).unwrap().rep().size());
    }

    #[test]
    fn global_ids_are_ordered_and_displayable() {
        let a = GlobalClusterId { shard: 0, local: 5 };
        let b = GlobalClusterId { shard: 1, local: 0 };
        assert!(a < b);
        assert_eq!(a.to_string(), "0:5");
    }
}
