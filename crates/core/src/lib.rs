//! Novelty-based incremental document clustering — the core algorithm of
//! Khy, Ishikawa & Kitagawa (ICDE 2006).
//!
//! # The extended K-means (§4.2–4.3)
//!
//! The method clusters documents under the novelty-based similarity of
//! [`nidc_similarity`] with an extension of the K-means method:
//!
//! 1. **Initial process** — select K documents at random as singleton
//!    clusters and compute their representatives and the clustering index
//!    `G = Σ_p |C_p|·avg_sim(C_p)` (eq. 17).
//! 2. **Repetition process** — for every document `d`: compute, for every
//!    cluster, the intra-cluster similarity *if `d` were appended*
//!    (the O(|φ_d|) preview of eq. 26); assign `d` to the cluster whose
//!    intra-cluster similarity *increases the most*; if no assignment
//!    increases any cluster's intra-cluster similarity, `d` goes to the
//!    **outlier list** for this iteration. Recompute `G` and terminate when
//!    `(G_new − G_old)/G_old < δ`.
//!
//! Outliers are re-considered in the next iteration ("regarded as normal
//! documents", §4.3) and reported as unclustered if the process ends while
//! they are still unassigned.
//!
//! # The incremental pipeline (§5.2)
//!
//! [`NoveltyPipeline`] wires the algorithm to the forgetting-model
//! repository: new documents are ingested (incremental statistics update,
//! §5.1), expired documents (`dw < ε`) are dropped, and re-clustering starts
//! from the **previous clustering's assignment** instead of fresh random
//! seeds — the paper's representative-reuse acceleration. (The paper reuses
//! the representative *vectors*; since representatives are exact sums of
//! member φ vectors and the φ scaling changes with every statistics update,
//! we reuse the *membership* and rebuild the representatives under the new
//! statistics, which is the same warm start expressed soundly.)
//!
//! # Sharding
//!
//! [`ShardedPipeline`] runs N independent pipelines behind a deterministic
//! [`ShardRouter`] and merges the per-shard clusterings into one
//! [`MergedClustering`] at query time (global cluster ids =
//! `(shard, local)` [`GlobalClusterId`]s). `shards = 1` reproduces the
//! single pipeline bit for bit.
//!
//! # Example
//!
//! ```
//! use nidc_core::{ClusteringConfig, NoveltyPipeline};
//! use nidc_forgetting::{DecayParams, Timestamp};
//! use nidc_textproc::{DocId, SparseVector, TermId};
//!
//! let decay = DecayParams::from_spans(7.0, 14.0).unwrap();
//! let config = ClusteringConfig { k: 2, seed: 1, ..ClusteringConfig::default() };
//! let mut pipeline = NoveltyPipeline::new(decay, config);
//!
//! let tf = |p: &[(u32, f64)]| SparseVector::from_entries(
//!     p.iter().map(|&(i, w)| (TermId(i), w)).collect());
//! // two "topics": terms {0,1} and terms {5,6}
//! pipeline.ingest(DocId(0), Timestamp(0.0), tf(&[(0, 3.0), (1, 1.0)])).unwrap();
//! pipeline.ingest(DocId(1), Timestamp(0.0), tf(&[(0, 2.0), (1, 2.0)])).unwrap();
//! pipeline.ingest(DocId(2), Timestamp(0.1), tf(&[(5, 3.0), (6, 1.0)])).unwrap();
//! pipeline.ingest(DocId(3), Timestamp(0.1), tf(&[(5, 1.0), (6, 2.0)])).unwrap();
//!
//! let clustering = pipeline.recluster_incremental().unwrap();
//! assert!(clustering.non_empty_clusters() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
mod clustering;
mod config;
mod error;
mod lineage;
mod merge;
mod persist;
mod pipeline;
mod shard;

pub use algorithm::{cluster_batch, cluster_with_initial, InitialState};
pub use clustering::{Cluster, Clustering};
pub use config::{ClusteringConfig, Criterion, RepBackend};
pub use error::Error;
pub use lineage::{
    DeathCause, LifecycleEvent, LineageSlotState, LineageState, LineageTracker, ObservedCluster,
};
pub use merge::{
    GlobalClusterId, MergedClustering, StitchedCluster, StitchedClustering,
    DEFAULT_STITCH_THRESHOLD,
};
pub use persist::{ConfigState, PipelineState, ShardState, ShardedPipelineState};
pub use pipeline::NoveltyPipeline;
pub use shard::{ShardRouter, ShardedPipeline, StreamShard};

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;
