//! Algorithm configuration.

pub use nidc_similarity::RepBackend;

/// How a document's candidate assignment is scored (paper §4.3 step 1).
///
/// The paper says a document is "assigned to the cluster of which the
/// increase of intra-cluster similarity is the largest", while the
/// convergence criterion is defined on the clustering index
/// `G = Σ_p |C_p|·avg_sim(C_p)` (eq. 17). The two readings of "increase":
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Criterion {
    /// Δ = `avg_sim(C ∪ {d}) − avg_sim(C)`, the literal reading. A document
    /// joins only if its mean similarity to the members *exceeds* the
    /// current intra-cluster average — extremely conservative; clusters stay
    /// tight and small and many documents land in the outlier list.
    AvgSim,
    /// Δ = `|C∪{d}|·avg_sim(C∪{d}) − |C|·avg_sim(C)`, the increase of the
    /// cluster's G-term — a greedy ascent of the index the algorithm's own
    /// convergence test is defined on (join iff mean similarity to members
    /// exceeds *half* the current average). This reading grows clusters the
    /// way the paper's reported cluster sizes require, and is the default.
    #[default]
    GTerm,
}

/// Configuration of the extended K-means (§4.3) and the incremental driver
/// (§5.2).
#[derive(Debug, Clone)]
pub struct ClusteringConfig {
    /// Number of clusters K. The paper uses K = 32 (Experiment 1) and
    /// K = 24 (Experiment 2).
    pub k: usize,
    /// Convergence constant δ: terminate when `(G_new − G_old)/G_old < δ`.
    pub delta: f64,
    /// Hard cap on repetition-process iterations (safety net; the paper's
    /// criterion normally fires first).
    pub max_iters: usize,
    /// RNG seed for the random selection of initial documents.
    pub seed: u64,
    /// Keep a cluster's last member in place instead of re-evaluating it
    /// (prevents cluster death during the online repetition process; the
    /// paper implicitly maintains K clusters). Disable for the ablation.
    pub keep_last_member: bool,
    /// The assignment criterion (see [`Criterion`]).
    pub criterion: Criterion,
    /// Worker threads for the parallel hot paths (φ-vector build and the
    /// step-1 scoring sweep): `0` = all hardware threads, `1` = sequential.
    /// The clustering, its statistics, and the iteration count are
    /// bit-identical for any value — see `nidc-parallel` for the contract.
    pub threads: usize,
    /// How cluster representatives are stored ([`RepBackend`]). `Sparse`
    /// (the default) also routes the step-1 scoring sweep through the
    /// term→cluster inverted index (`ClusterIndex`); `Dense` keeps the
    /// original O(K·|V|) storage for A/B verification. Like `threads`, this
    /// is a performance knob: results are bit-identical for either value.
    pub rep_backend: RepBackend,
}

impl Default for ClusteringConfig {
    fn default() -> Self {
        Self {
            k: 24,
            delta: 1e-3,
            max_iters: 30,
            seed: 19980104,
            keep_last_member: true,
            criterion: Criterion::GTerm,
            threads: 0,
            rep_backend: RepBackend::default(),
        }
    }
}

impl ClusteringConfig {
    /// The paper's Experiment 1 setting (K = 32).
    pub fn experiment1() -> Self {
        Self {
            k: 32,
            ..Self::default()
        }
    }

    /// The paper's Experiment 2 setting (K = 24).
    pub fn experiment2() -> Self {
        Self {
            k: 24,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        assert_eq!(ClusteringConfig::experiment1().k, 32);
        assert_eq!(ClusteringConfig::experiment2().k, 24);
    }

    #[test]
    fn default_is_sane() {
        let c = ClusteringConfig::default();
        assert!(c.k > 0);
        assert!(c.delta > 0.0);
        assert!(c.max_iters > 0);
        assert!(c.keep_last_member);
    }
}
