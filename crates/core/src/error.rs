//! Error type for the core clustering crate.

/// Errors raised by the clustering algorithm and pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// K was zero.
    ZeroClusters,
    /// A forgetting-model operation failed.
    Forgetting(nidc_forgetting::Error),
    /// An initial assignment referenced a cluster index ≥ K.
    InvalidInitialAssignment {
        /// The offending cluster index.
        cluster: usize,
        /// The configured K.
        k: usize,
    },
    /// A sharded pipeline was configured with zero shards.
    ZeroShards,
    /// A persisted sharded state carries an unsupported format version.
    StateVersionMismatch {
        /// The version found in the state file.
        found: u32,
        /// The version this build reads and writes.
        expected: u32,
    },
    /// A persisted sharded state's declared shard count disagrees with the
    /// number of per-shard states it actually carries.
    ShardCountMismatch {
        /// The declared shard count.
        declared: usize,
        /// The number of per-shard states present.
        found: usize,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::ZeroClusters => write!(f, "K must be at least 1"),
            Error::Forgetting(e) => write!(f, "forgetting model error: {e}"),
            Error::InvalidInitialAssignment { cluster, k } => {
                write!(f, "initial assignment uses cluster {cluster} but K = {k}")
            }
            Error::ZeroShards => write!(f, "shard count must be at least 1"),
            Error::StateVersionMismatch { found, expected } => {
                write!(
                    f,
                    "sharded state version {found} is not supported (expected {expected})"
                )
            }
            Error::ShardCountMismatch { declared, found } => {
                write!(
                    f,
                    "sharded state declares {declared} shards but carries {found} shard states"
                )
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Forgetting(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nidc_forgetting::Error> for Error {
    fn from(e: nidc_forgetting::Error) -> Self {
        Error::Forgetting(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        assert!(Error::ZeroClusters.to_string().contains("K"));
        let e = Error::from(nidc_forgetting::Error::UnknownDocument(
            nidc_textproc::DocId(1),
        ));
        assert!(e.to_string().contains("d1"));
        assert!(e.source().is_some());
        assert!(Error::ZeroClusters.source().is_none());
    }

    #[test]
    fn shard_errors_display() {
        use std::error::Error as _;
        assert!(Error::ZeroShards.to_string().contains("shard"));
        let v = Error::StateVersionMismatch {
            found: 9,
            expected: 1,
        };
        assert!(v.to_string().contains('9') && v.to_string().contains('1'));
        let c = Error::ShardCountMismatch {
            declared: 4,
            found: 2,
        };
        assert!(c.to_string().contains('4') && c.to_string().contains('2'));
        assert!(v.source().is_none());
    }
}
