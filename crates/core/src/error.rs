//! Error type for the core clustering crate.

/// Errors raised by the clustering algorithm and pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// K was zero.
    ZeroClusters,
    /// A forgetting-model operation failed.
    Forgetting(nidc_forgetting::Error),
    /// An initial assignment referenced a cluster index ≥ K.
    InvalidInitialAssignment {
        /// The offending cluster index.
        cluster: usize,
        /// The configured K.
        k: usize,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::ZeroClusters => write!(f, "K must be at least 1"),
            Error::Forgetting(e) => write!(f, "forgetting model error: {e}"),
            Error::InvalidInitialAssignment { cluster, k } => {
                write!(f, "initial assignment uses cluster {cluster} but K = {k}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Forgetting(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nidc_forgetting::Error> for Error {
    fn from(e: nidc_forgetting::Error) -> Self {
        Error::Forgetting(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        assert!(Error::ZeroClusters.to_string().contains("K"));
        let e = Error::from(nidc_forgetting::Error::UnknownDocument(
            nidc_textproc::DocId(1),
        ));
        assert!(e.to_string().contains("d1"));
        assert!(e.source().is_some());
        assert!(Error::ZeroClusters.source().is_none());
    }
}
