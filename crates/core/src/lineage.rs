//! Cluster lineage tracking across consecutive re-clusterings.
//!
//! A re-clustering replaces the whole clustering object, so K-slot indices
//! (and [`GlobalClusterId`]s) carry no identity *between* windows: slot 3
//! today and slot 3 tomorrow may hold unrelated topics. The
//! [`LineageTracker`] restores that identity. After every re-clustering it
//! matches the new clusters against the previous window's clusters and
//! assigns each a **persistent lineage id** that survives as long as the
//! underlying topic does — across incremental re-clusterings, cross-shard
//! stitching, and checkpoint save/load.
//!
//! # Matching rule
//!
//! Candidate pairs `(previous cluster, current cluster)` are scored by the
//! normalized representative similarity
//! `cr_sim(a,b) / √(cr_sim(a,a)·cr_sim(b,b))` — the same eq. 21/25
//! machinery the stitcher uses — and matched greedily one-to-one in
//! descending score order. Ties break on member overlap (descending), then
//! on `(previous index, current index)` so the matching is deterministic.
//! Only pairs with positive similarity are candidates.
//!
//! # Event classification
//!
//! With the matching fixed, every cluster's fate is one typed event:
//!
//! * matched current cluster → [`Continuation`](LifecycleEvent::Continuation)
//!   carrying **drift** (1 − normalized rep similarity vs the previous
//!   window) and membership churn (`joined`/`left` counts);
//! * unmatched current cluster that inherited ≥ 1 member from some previous
//!   cluster → [`Split`](LifecycleEvent::Split) (new lineage, parent
//!   recorded, `from_parent` = members inherited from the largest donor);
//! * unmatched current cluster with no inherited members →
//!   [`Birth`](LifecycleEvent::Birth);
//! * unmatched previous cluster whose members flowed into current clusters →
//!   [`Merge`](LifecycleEvent::Merge) into the largest recipient, then
//!   [`Death`](LifecycleEvent::Death) with cause `absorbed`;
//! * unmatched previous cluster none of whose members remain in the current
//!   universe (clusters ∪ outlier list) → `Death` with cause `expired` —
//!   documents only leave the repository through forgetting-driven expiry,
//!   so absence means the forgetting model reclaimed them. A dead cluster
//!   whose members survive *only* on the outlier list is reported as
//!   `absorbed` (its documents live on) without a `merge` companion event.
//!
//! Per-document deltas ride along: a document whose cluster *lineage*
//! changed emits [`Moved`](LifecycleEvent::Moved), one demoted to the
//! outlier list emits [`Outliered`](LifecycleEvent::Outliered).
//!
//! # Determinism contract
//!
//! The tracker is a pure observer: it reads finished clusterings and never
//! feeds anything back into the algorithm, so clustering results are
//! bit-identical whether lineage tracking, metrics, or the event stream are
//! on or off (`tests/obs_determinism.rs`). The tracker itself always runs —
//! lineage ids are pipeline state and must stay continuous across windows
//! where no consumer happened to be attached — but event *serialisation* is
//! gated on [`nidc_obs::events::enabled`] and gauge computation on
//! [`nidc_obs::enabled`], so the disabled cost per window is two relaxed
//! loads plus the matching itself.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use nidc_obs::{self as obs, LazyCounter, LazyFloatGauge};
use nidc_similarity::ClusterRep;
use nidc_textproc::{DocId, TermId};

use crate::merge::GlobalClusterId;
use crate::Clustering;

static LIFECYCLE_BIRTHS: LazyCounter = LazyCounter::new("nidc_lifecycle_births_total");
static LIFECYCLE_DEATHS: LazyCounter = LazyCounter::new("nidc_lifecycle_deaths_total");
static LIFECYCLE_SPLITS: LazyCounter = LazyCounter::new("nidc_lifecycle_splits_total");
static LIFECYCLE_MERGES: LazyCounter = LazyCounter::new("nidc_lifecycle_merges_total");
static LIFECYCLE_DRIFT_MAX: LazyFloatGauge = LazyFloatGauge::new("nidc_lifecycle_drift_max");
static QUALITY_COHESION: LazyFloatGauge = LazyFloatGauge::new("nidc_quality_cohesion");
static QUALITY_SEPARATION: LazyFloatGauge = LazyFloatGauge::new("nidc_quality_separation");
static QUALITY_NOVELTY_RATE: LazyFloatGauge = LazyFloatGauge::new("nidc_quality_novelty_rate");
static QUALITY_OUTLIER_RATE: LazyFloatGauge = LazyFloatGauge::new("nidc_quality_outlier_rate");
static QUALITY_CHURN_RATE: LazyFloatGauge = LazyFloatGauge::new("nidc_quality_churn_rate");

/// Registers every lifecycle counter and quality gauge (at zero) so that
/// metric snapshots taken before the first re-clustering — and the metrics
/// manifest check — see the full set. Called at tracker construction,
/// following the registration-at-construction pattern of
/// `register_sharded_metrics`.
pub(crate) fn register_lifecycle_metrics() {
    LIFECYCLE_BIRTHS.add(0);
    LIFECYCLE_DEATHS.add(0);
    LIFECYCLE_SPLITS.add(0);
    LIFECYCLE_MERGES.add(0);
    LIFECYCLE_DRIFT_MAX.touch();
    QUALITY_COHESION.touch();
    QUALITY_SEPARATION.touch();
    QUALITY_NOVELTY_RATE.touch();
    QUALITY_OUTLIER_RATE.touch();
    QUALITY_CHURN_RATE.touch();
}

/// Why a lineage ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeathCause {
    /// Every member left the repository through forgetting-driven expiry.
    Expired,
    /// The members live on — in other clusters (see the paired
    /// [`LifecycleEvent::Merge`]) or on the outlier list.
    Absorbed,
}

impl DeathCause {
    fn as_str(self) -> &'static str {
        match self {
            DeathCause::Expired => "expired",
            DeathCause::Absorbed => "absorbed",
        }
    }
}

/// One typed lifecycle event, produced by [`LineageTracker::observe`].
///
/// `window` is the 0-based re-clustering index at which the event was
/// observed; `lineage` ids are persistent across windows (and checkpoints).
#[derive(Debug, Clone, PartialEq)]
pub enum LifecycleEvent {
    /// A cluster with no ancestor appeared.
    Birth {
        /// Observation window.
        window: u64,
        /// The newly assigned lineage id.
        lineage: u64,
        /// The cluster's id in this window's clustering.
        cluster: GlobalClusterId,
        /// Member count.
        size: usize,
    },
    /// A lineage ended.
    Death {
        /// Observation window.
        window: u64,
        /// The ended lineage.
        lineage: u64,
        /// Why it ended.
        cause: DeathCause,
        /// Member count in its final window.
        last_size: usize,
    },
    /// A previous cluster matched a current one: the lineage continues.
    Continuation {
        /// Observation window.
        window: u64,
        /// The continuing lineage.
        lineage: u64,
        /// The cluster's id in this window's clustering.
        cluster: GlobalClusterId,
        /// Member count this window.
        size: usize,
        /// `1 −` normalized representative similarity vs the previous
        /// window, clamped to `[0, 1]`. 0 = identical topic vector.
        drift: f64,
        /// Members present now that were not members last window.
        joined: usize,
        /// Members present last window that are gone now.
        left: usize,
    },
    /// An unmatched cluster that inherited members from a surviving parent.
    Split {
        /// Observation window.
        window: u64,
        /// The newly assigned lineage id.
        lineage: u64,
        /// The lineage of the largest donor of members.
        parent: u64,
        /// The cluster's id in this window's clustering.
        cluster: GlobalClusterId,
        /// Member count.
        size: usize,
        /// Members inherited from `parent`.
        from_parent: usize,
    },
    /// A dying cluster's members flowed into another lineage.
    Merge {
        /// Observation window.
        window: u64,
        /// The lineage being absorbed (its `Death` follows).
        absorbed: u64,
        /// The absorbing lineage (largest recipient of members).
        into: u64,
        /// Members the absorber received from the absorbed cluster.
        from_absorbed: usize,
    },
    /// A document's cluster lineage changed between windows.
    Moved {
        /// Observation window.
        window: u64,
        /// The document.
        doc: DocId,
        /// Lineage it belonged to last window.
        from: u64,
        /// Lineage it belongs to now.
        to: u64,
    },
    /// A previously clustered document fell to the outlier list.
    Outliered {
        /// Observation window.
        window: u64,
        /// The document.
        doc: DocId,
        /// Lineage it belonged to last window.
        from: u64,
    },
}

impl LifecycleEvent {
    /// Serialises the event as one single-line JSON object (the wire format
    /// of the `--events` stream, schema `nidc-events` v1).
    pub fn to_json_line(&self) -> String {
        match self {
            LifecycleEvent::Birth {
                window,
                lineage,
                cluster,
                size,
            } => format!(
                "{{\"kind\":\"birth\",\"window\":{window},\"lineage\":{lineage},\
                 \"cluster\":\"{cluster}\",\"size\":{size}}}"
            ),
            LifecycleEvent::Death {
                window,
                lineage,
                cause,
                last_size,
            } => format!(
                "{{\"kind\":\"death\",\"window\":{window},\"lineage\":{lineage},\
                 \"cause\":\"{}\",\"last_size\":{last_size}}}",
                cause.as_str()
            ),
            LifecycleEvent::Continuation {
                window,
                lineage,
                cluster,
                size,
                drift,
                joined,
                left,
            } => format!(
                "{{\"kind\":\"continuation\",\"window\":{window},\"lineage\":{lineage},\
                 \"cluster\":\"{cluster}\",\"size\":{size},\"drift\":{drift},\
                 \"joined\":{joined},\"left\":{left}}}"
            ),
            LifecycleEvent::Split {
                window,
                lineage,
                parent,
                cluster,
                size,
                from_parent,
            } => format!(
                "{{\"kind\":\"split\",\"window\":{window},\"lineage\":{lineage},\
                 \"parent\":{parent},\"cluster\":\"{cluster}\",\"size\":{size},\
                 \"from_parent\":{from_parent}}}"
            ),
            LifecycleEvent::Merge {
                window,
                absorbed,
                into,
                from_absorbed,
            } => format!(
                "{{\"kind\":\"merge\",\"window\":{window},\"absorbed\":{absorbed},\
                 \"into\":{into},\"from_absorbed\":{from_absorbed}}}"
            ),
            LifecycleEvent::Moved {
                window,
                doc,
                from,
                to,
            } => format!(
                "{{\"kind\":\"moved\",\"window\":{window},\"doc\":{},\"from\":{from},\
                 \"to\":{to}}}",
                doc.0
            ),
            LifecycleEvent::Outliered { window, doc, from } => format!(
                "{{\"kind\":\"outliered\",\"window\":{window},\"doc\":{},\"from\":{from}}}",
                doc.0
            ),
        }
    }
}

/// A borrowed view of one current-window cluster, the tracker's input shape.
/// Unsharded pipelines pass `shard = 0` slots; sharded pipelines pass
/// merged — and, when stitching is active, *stitched* — cluster ids, so a
/// cross-shard stitch reads as one continuing lineage instead of a
/// death + birth pair.
#[derive(Debug, Clone, Copy)]
pub struct ObservedCluster<'a> {
    /// The cluster's stable id within this window.
    pub id: GlobalClusterId,
    /// Member document ids, ascending.
    pub members: &'a [DocId],
    /// The cluster representative with cached statistics.
    pub rep: &'a ClusterRep,
}

/// One previous-window cluster the tracker remembers.
#[derive(Debug, Clone)]
struct LineageSlot {
    lineage: u64,
    key: GlobalClusterId,
    /// Sorted ascending.
    members: Vec<DocId>,
    rep: ClusterRep,
}

/// Serialisable form of one [`LineageSlot`]. The representative is persisted
/// **verbatim** — entries in ascending term order plus the cached `size`,
/// `cr_sim(c,c)` and `ss` statistics — and restored through
/// [`ClusterRep::from_parts`] without recomputation, so a restored tracker
/// scores candidate pairs bit-identically to the uninterrupted run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LineageSlotState {
    /// Persistent lineage id.
    pub lineage: u64,
    /// Owning shard of the cluster's id last window.
    pub shard: usize,
    /// Local slot of the cluster's id last window.
    pub local: usize,
    /// Member document ids, ascending.
    pub members: Vec<u64>,
    /// Representative entries `(term id, weight)`, ascending term order.
    pub rep_entries: Vec<(u32, f64)>,
    /// Cached member count of the representative.
    pub rep_size: usize,
    /// Cached `cr_sim(c, c)`.
    pub rep_cr_self: f64,
    /// Cached sum of member self-similarities `ss`.
    pub rep_ss: f64,
}

/// The complete serialisable state of a [`LineageTracker`], embedded in
/// pipeline checkpoints so lineage ids survive save → load → resume.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LineageState {
    /// Next lineage id to assign.
    pub next_lineage: u64,
    /// Next observation window index.
    pub window: u64,
    /// Every document alive last window (clustered or outliered), ascending.
    pub universe: Vec<u64>,
    /// Previous-window clusters in observation order.
    pub slots: Vec<LineageSlotState>,
}

/// Matches clusters across consecutive re-clusterings and classifies what
/// happened to each (see the module docs for the rule).
#[derive(Debug, Clone)]
pub struct LineageTracker {
    next_lineage: u64,
    window: u64,
    prev: Vec<LineageSlot>,
    prev_universe: BTreeSet<DocId>,
}

impl Default for LineageTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl LineageTracker {
    /// A tracker with no history; the first observed window is window 0 and
    /// every cluster in it is a [`LifecycleEvent::Birth`].
    pub fn new() -> Self {
        register_lifecycle_metrics();
        Self {
            next_lineage: 0,
            window: 0,
            prev: Vec::new(),
            prev_universe: BTreeSet::new(),
        }
    }

    /// Windows observed so far (also the index the *next* observation gets).
    pub fn windows_observed(&self) -> u64 {
        self.window
    }

    /// The lineage id currently assigned to cluster `id`, if `id` was a
    /// non-empty cluster in the last observed window.
    pub fn lineage_of(&self, id: GlobalClusterId) -> Option<u64> {
        self.prev.iter().find(|s| s.key == id).map(|s| s.lineage)
    }

    /// `(cluster id, lineage id)` for every cluster of the last observed
    /// window, in observation order.
    pub fn current_lineages(&self) -> Vec<(GlobalClusterId, u64)> {
        self.prev.iter().map(|s| (s.key, s.lineage)).collect()
    }

    /// Observes an unsharded [`Clustering`] (cluster ids become
    /// `shard 0` [`GlobalClusterId`]s, matching what a one-shard
    /// `ShardedPipeline` produces).
    pub fn observe_clustering(&mut self, clustering: &Clustering) -> Vec<LifecycleEvent> {
        let observed: Vec<ObservedCluster<'_>> = clustering
            .clusters()
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_empty())
            .map(|(local, c)| ObservedCluster {
                id: GlobalClusterId { shard: 0, local },
                members: c.members(),
                rep: c.rep(),
            })
            .collect();
        self.observe(&observed, clustering.outliers(), clustering.g())
    }

    /// Observes one re-clustering: matches `clusters` against the previous
    /// window, classifies lifecycle events, samples the
    /// `nidc_lifecycle_*`/`nidc_quality_*` metrics, emits the events to the
    /// active `--events` stream (if any), and advances the tracker's state.
    ///
    /// `clusters` must be the window's **non-empty** clusters; `outliers`
    /// the window's outlier list; `g` the clustering index (eq. 17) used
    /// for the cohesion gauge. Returns the events in emission order.
    pub fn observe(
        &mut self,
        clusters: &[ObservedCluster<'_>],
        outliers: &[DocId],
        g: f64,
    ) -> Vec<LifecycleEvent> {
        let window = self.window;

        let outlier_set: BTreeSet<DocId> = outliers.iter().copied().collect();
        let mut universe: BTreeSet<DocId> = outlier_set.clone();
        for c in clusters {
            universe.extend(c.members.iter().copied());
        }

        // Previous ownership and member flows between windows.
        let mut prev_owner: BTreeMap<DocId, usize> = BTreeMap::new();
        for (i, slot) in self.prev.iter().enumerate() {
            for &d in &slot.members {
                prev_owner.insert(d, i);
            }
        }
        let mut overlap: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        let mut cur_owner: BTreeMap<DocId, usize> = BTreeMap::new();
        for (j, c) in clusters.iter().enumerate() {
            for &d in c.members {
                cur_owner.insert(d, j);
                if let Some(&i) = prev_owner.get(&d) {
                    *overlap.entry((i, j)).or_insert(0) += 1;
                }
            }
        }

        // Candidate scores: normalized cr_sim, positive pairs only.
        let mut candidates: Vec<(f64, usize, usize, usize)> = Vec::new();
        for (i, slot) in self.prev.iter().enumerate() {
            for (j, c) in clusters.iter().enumerate() {
                let denom = slot.rep.cr_self() * c.rep.cr_self();
                if denom <= 0.0 {
                    continue;
                }
                let sim = slot.rep.dot_rep(c.rep) / denom.sqrt();
                if sim > 0.0 {
                    let ov = overlap.get(&(i, j)).copied().unwrap_or(0);
                    candidates.push((sim, ov, i, j));
                }
            }
        }
        candidates.sort_by(|a, b| {
            b.0.total_cmp(&a.0)
                .then(b.1.cmp(&a.1))
                .then(a.2.cmp(&b.2))
                .then(a.3.cmp(&b.3))
        });

        // Greedy one-to-one matching.
        let mut prev_match: Vec<Option<usize>> = vec![None; self.prev.len()];
        let mut cur_match: Vec<Option<usize>> = vec![None; clusters.len()];
        let mut cur_sim: Vec<f64> = vec![0.0; clusters.len()];
        for &(sim, _, i, j) in &candidates {
            if prev_match[i].is_none() && cur_match[j].is_none() {
                prev_match[i] = Some(j);
                cur_match[j] = Some(i);
                cur_sim[j] = sim;
            }
        }

        let mut events = Vec::new();
        let mut cur_lineage: Vec<u64> = vec![0; clusters.len()];
        let mut drift_max = 0.0f64;

        // Continuations, in current order.
        for (j, c) in clusters.iter().enumerate() {
            if let Some(i) = cur_match[j] {
                let slot = &self.prev[i];
                cur_lineage[j] = slot.lineage;
                let joined = c
                    .members
                    .iter()
                    .filter(|d| slot.members.binary_search(d).is_err())
                    .count();
                let left = slot
                    .members
                    .iter()
                    .filter(|d| c.members.binary_search(d).is_err())
                    .count();
                let drift = (1.0 - cur_sim[j]).clamp(0.0, 1.0);
                drift_max = drift_max.max(drift);
                events.push(LifecycleEvent::Continuation {
                    window,
                    lineage: slot.lineage,
                    cluster: c.id,
                    size: c.members.len(),
                    drift,
                    joined,
                    left,
                });
            }
        }

        // Births and splits for unmatched current clusters, ids assigned in
        // current order so the numbering is deterministic.
        let mut births = 0u64;
        let mut splits = 0u64;
        for (j, c) in clusters.iter().enumerate() {
            if cur_match[j].is_some() {
                continue;
            }
            let lineage = self.next_lineage;
            self.next_lineage += 1;
            cur_lineage[j] = lineage;
            // Largest donor of members, ties to the lowest previous index.
            let mut parent: Option<(usize, usize)> = None; // (count, i)
            for i in 0..self.prev.len() {
                if let Some(&n) = overlap.get(&(i, j)) {
                    if parent.is_none_or(|(best, _)| n > best) {
                        parent = Some((n, i));
                    }
                }
            }
            match parent {
                Some((from_parent, i)) => {
                    splits += 1;
                    events.push(LifecycleEvent::Split {
                        window,
                        lineage,
                        parent: self.prev[i].lineage,
                        cluster: c.id,
                        size: c.members.len(),
                        from_parent,
                    });
                }
                None => {
                    births += 1;
                    events.push(LifecycleEvent::Birth {
                        window,
                        lineage,
                        cluster: c.id,
                        size: c.members.len(),
                    });
                }
            }
        }

        // Merges and deaths for unmatched previous clusters.
        let mut merges = 0u64;
        let mut deaths = 0u64;
        for (i, slot) in self.prev.iter().enumerate() {
            if prev_match[i].is_some() {
                continue;
            }
            deaths += 1;
            // Largest recipient among current clusters, ties to the lowest
            // current index.
            let mut absorber: Option<(usize, usize)> = None; // (count, j)
            for j in 0..clusters.len() {
                if let Some(&n) = overlap.get(&(i, j)) {
                    if absorber.is_none_or(|(best, _)| n > best) {
                        absorber = Some((n, j));
                    }
                }
            }
            let cause = match absorber {
                Some((from_absorbed, j)) => {
                    merges += 1;
                    events.push(LifecycleEvent::Merge {
                        window,
                        absorbed: slot.lineage,
                        into: cur_lineage[j],
                        from_absorbed,
                    });
                    DeathCause::Absorbed
                }
                None if slot.members.iter().any(|d| universe.contains(d)) => {
                    // Survivors sit on the outlier list only: the documents
                    // live on but no cluster absorbed them.
                    DeathCause::Absorbed
                }
                None => DeathCause::Expired,
            };
            events.push(LifecycleEvent::Death {
                window,
                lineage: slot.lineage,
                cause,
                last_size: slot.members.len(),
            });
        }

        // Per-document deltas and churn.
        let mut moved = 0usize;
        let mut outliered = 0usize;
        let mut surviving = 0usize;
        for (&d, &i) in &prev_owner {
            let from = self.prev[i].lineage;
            if let Some(&j) = cur_owner.get(&d) {
                surviving += 1;
                if cur_lineage[j] != from {
                    moved += 1;
                    events.push(LifecycleEvent::Moved {
                        window,
                        doc: d,
                        from,
                        to: cur_lineage[j],
                    });
                }
            } else if outlier_set.contains(&d) {
                surviving += 1;
                outliered += 1;
                events.push(LifecycleEvent::Outliered {
                    window,
                    doc: d,
                    from,
                });
            }
            // else: expired — covered by the Death{expired}/expiry counters.
        }

        // Lifecycle counters (internally gated) and quality gauges (guarded
        // here because separation is an O(k²) rep-similarity scan).
        LIFECYCLE_BIRTHS.add(births);
        LIFECYCLE_DEATHS.add(deaths);
        LIFECYCLE_SPLITS.add(splits);
        LIFECYCLE_MERGES.add(merges);
        LIFECYCLE_DRIFT_MAX.set(drift_max);
        if obs::enabled() {
            let assigned: usize = clusters.iter().map(|c| c.members.len()).sum();
            let cohesion = if assigned > 0 {
                g / assigned as f64
            } else {
                0.0
            };
            QUALITY_COHESION.set(cohesion);
            QUALITY_SEPARATION.set(separation(clusters));
            let novel = universe.difference(&self.prev_universe).count();
            let novelty_rate = if universe.is_empty() {
                0.0
            } else {
                novel as f64 / universe.len() as f64
            };
            QUALITY_NOVELTY_RATE.set(novelty_rate);
            let total = assigned + outliers.len();
            let outlier_rate = if total > 0 {
                outliers.len() as f64 / total as f64
            } else {
                0.0
            };
            QUALITY_OUTLIER_RATE.set(outlier_rate);
            let churn_rate = if surviving > 0 {
                (moved + outliered) as f64 / surviving as f64
            } else {
                0.0
            };
            QUALITY_CHURN_RATE.set(churn_rate);
        }

        if nidc_obs::events::enabled() {
            for e in &events {
                nidc_obs::events::emit_line(&e.to_json_line());
            }
        }

        // Advance.
        self.prev = clusters
            .iter()
            .enumerate()
            .map(|(j, c)| {
                let mut members = c.members.to_vec();
                members.sort_unstable();
                LineageSlot {
                    lineage: cur_lineage[j],
                    key: c.id,
                    members,
                    rep: c.rep.clone(),
                }
            })
            .collect();
        self.prev_universe = universe;
        self.window += 1;
        events
    }

    /// Captures the tracker's state for checkpointing.
    pub fn to_state(&self) -> LineageState {
        LineageState {
            next_lineage: self.next_lineage,
            window: self.window,
            universe: self.prev_universe.iter().map(|d| d.0).collect(),
            slots: self
                .prev
                .iter()
                .map(|s| {
                    let mut rep_entries = Vec::with_capacity(s.rep.nnz());
                    s.rep.for_each_entry(|t, w| rep_entries.push((t.0, w)));
                    LineageSlotState {
                        lineage: s.lineage,
                        shard: s.key.shard,
                        local: s.key.local,
                        members: s.members.iter().map(|d| d.0).collect(),
                        rep_entries,
                        rep_size: s.rep.size(),
                        rep_cr_self: s.rep.cr_self(),
                        rep_ss: s.rep.ss(),
                    }
                })
                .collect(),
        }
    }

    /// Restores a tracker from a checkpointed state. Representatives are
    /// rebuilt verbatim (no recomputation), so the restored tracker matches
    /// the uninterrupted run bit for bit.
    pub fn from_state(state: &LineageState) -> Self {
        register_lifecycle_metrics();
        Self {
            next_lineage: state.next_lineage,
            window: state.window,
            prev: state
                .slots
                .iter()
                .map(|s| {
                    let entries = s.rep_entries.iter().map(|&(t, w)| (TermId(t), w)).collect();
                    LineageSlot {
                        lineage: s.lineage,
                        key: GlobalClusterId {
                            shard: s.shard,
                            local: s.local,
                        },
                        members: s.members.iter().map(|&d| DocId(d)).collect(),
                        rep: ClusterRep::from_parts(entries, s.rep_size, s.rep_cr_self, s.rep_ss),
                    }
                })
                .collect(),
            prev_universe: state.universe.iter().map(|&d| DocId(d)).collect(),
        }
    }
}

/// `1 −` the maximum pairwise normalized rep similarity between distinct
/// clusters; 1.0 for fewer than two clusters. Higher = better separated.
fn separation(clusters: &[ObservedCluster<'_>]) -> f64 {
    let mut max_sim = 0.0f64;
    for (a_idx, a) in clusters.iter().enumerate() {
        for b in clusters.iter().skip(a_idx + 1) {
            let denom = a.rep.cr_self() * b.rep.cr_self();
            if denom <= 0.0 {
                continue;
            }
            max_sim = max_sim.max(a.rep.dot_rep(b.rep) / denom.sqrt());
        }
    }
    (1.0 - max_sim).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built representative whose entries act as plain vectors:
    /// `cr_self` is the self dot product, so normalized similarities are
    /// ordinary cosines.
    fn rep(entries: &[(u32, f64)], size: usize) -> ClusterRep {
        let cr_self: f64 = entries.iter().map(|&(_, w)| w * w).sum();
        ClusterRep::from_parts(
            entries.iter().map(|&(t, w)| (TermId(t), w)).collect(),
            size,
            cr_self,
            0.0,
        )
    }

    fn docs(ids: &[u64]) -> Vec<DocId> {
        ids.iter().map(|&d| DocId(d)).collect()
    }

    fn gid(local: usize) -> GlobalClusterId {
        GlobalClusterId { shard: 0, local }
    }

    #[test]
    fn first_window_is_all_births_with_sequential_lineages() {
        let mut t = LineageTracker::new();
        let ra = rep(&[(0, 2.0)], 2);
        let rb = rep(&[(5, 3.0)], 1);
        let ma = docs(&[1, 2]);
        let mb = docs(&[3]);
        let events = t.observe(
            &[
                ObservedCluster {
                    id: gid(0),
                    members: &ma,
                    rep: &ra,
                },
                ObservedCluster {
                    id: gid(1),
                    members: &mb,
                    rep: &rb,
                },
            ],
            &[],
            1.0,
        );
        assert_eq!(
            events,
            vec![
                LifecycleEvent::Birth {
                    window: 0,
                    lineage: 0,
                    cluster: gid(0),
                    size: 2
                },
                LifecycleEvent::Birth {
                    window: 0,
                    lineage: 1,
                    cluster: gid(1),
                    size: 1
                },
            ]
        );
        assert_eq!(t.lineage_of(gid(0)), Some(0));
        assert_eq!(t.lineage_of(gid(1)), Some(1));
        assert_eq!(t.windows_observed(), 1);
    }

    #[test]
    fn continuation_tracks_drift_and_churn_even_across_slot_moves() {
        let mut t = LineageTracker::new();
        let r0 = rep(&[(0, 1.0), (1, 1.0)], 3);
        let m0 = docs(&[1, 2, 3]);
        t.observe(
            &[ObservedCluster {
                id: gid(0),
                members: &m0,
                rep: &r0,
            }],
            &[],
            1.0,
        );
        // Same topic, different K-slot, one member swapped for another.
        let r1 = rep(&[(0, 1.0), (1, 0.5)], 3);
        let m1 = docs(&[1, 2, 9]);
        let events = t.observe(
            &[ObservedCluster {
                id: gid(2),
                members: &m1,
                rep: &r1,
            }],
            &[],
            1.0,
        );
        match &events[0] {
            LifecycleEvent::Continuation {
                window,
                lineage,
                cluster,
                size,
                drift,
                joined,
                left,
            } => {
                assert_eq!((*window, *lineage, *cluster, *size), (1, 0, gid(2), 3));
                assert_eq!((*joined, *left), (1, 1));
                // cos between (1,1) and (1,0.5) ≈ 0.9487 → drift ≈ 0.0513
                assert!(*drift > 0.0 && *drift < 0.1, "drift {drift}");
            }
            other => panic!("expected continuation, got {other:?}"),
        }
        assert_eq!(events.len(), 1, "no birth/death for a slot move");
        assert_eq!(t.lineage_of(gid(2)), Some(0));
    }

    #[test]
    fn split_assigns_new_lineage_and_records_parent_flow() {
        let mut t = LineageTracker::new();
        let r0 = rep(&[(0, 2.0), (7, 2.0)], 4);
        let m0 = docs(&[1, 2, 3, 4]);
        t.observe(
            &[ObservedCluster {
                id: gid(0),
                members: &m0,
                rep: &r0,
            }],
            &[],
            1.0,
        );
        // The cluster splits along its two vocabularies.
        let ra = rep(&[(0, 2.0)], 2);
        let rb = rep(&[(7, 2.0)], 2);
        let ma = docs(&[1, 2]);
        let mb = docs(&[3, 4]);
        let events = t.observe(
            &[
                ObservedCluster {
                    id: gid(0),
                    members: &ma,
                    rep: &ra,
                },
                ObservedCluster {
                    id: gid(1),
                    members: &mb,
                    rep: &rb,
                },
            ],
            &[],
            1.0,
        );
        // One half continues the lineage (greedy best match), the other is
        // a split with the old lineage as parent.
        let continuation = events
            .iter()
            .find(|e| matches!(e, LifecycleEvent::Continuation { .. }))
            .expect("one half continues");
        let split = events
            .iter()
            .find(|e| matches!(e, LifecycleEvent::Split { .. }))
            .expect("other half splits");
        if let LifecycleEvent::Continuation { lineage, .. } = continuation {
            assert_eq!(*lineage, 0);
        }
        if let LifecycleEvent::Split {
            lineage,
            parent,
            from_parent,
            size,
            ..
        } = split
        {
            assert_eq!(*parent, 0);
            assert_eq!(*lineage, 1, "split gets a fresh lineage id");
            assert_eq!(*from_parent, 2);
            assert_eq!(*size, 2);
        }
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, LifecycleEvent::Death { .. })),
            "a split is not a death: {events:?}"
        );
        // The two moved documents (whichever half became the split) are
        // reported individually.
        let moved: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, LifecycleEvent::Moved { .. }))
            .collect();
        assert_eq!(moved.len(), 2);
    }

    #[test]
    fn merge_absorbs_lineage_and_death_cause_is_absorbed() {
        let mut t = LineageTracker::new();
        let ra = rep(&[(0, 2.0)], 2);
        let rb = rep(&[(0, 1.0), (1, 2.0)], 2);
        let ma = docs(&[1, 2]);
        let mb = docs(&[5, 6]);
        t.observe(
            &[
                ObservedCluster {
                    id: gid(0),
                    members: &ma,
                    rep: &ra,
                },
                ObservedCluster {
                    id: gid(1),
                    members: &mb,
                    rep: &rb,
                },
            ],
            &[],
            1.0,
        );
        // Both previous clusters collapse into one.
        let rm = rep(&[(0, 3.0), (1, 2.0)], 4);
        let mm = docs(&[1, 2, 5, 6]);
        let events = t.observe(
            &[ObservedCluster {
                id: gid(0),
                members: &mm,
                rep: &rm,
            }],
            &[],
            1.0,
        );
        let (mut merges, mut deaths) = (0, 0);
        for e in &events {
            match e {
                LifecycleEvent::Merge {
                    absorbed,
                    into,
                    from_absorbed,
                    ..
                } => {
                    merges += 1;
                    assert_eq!(*from_absorbed, 2);
                    // The survivor keeps its lineage; the other is absorbed
                    // into it.
                    assert!(*absorbed == 0 || *absorbed == 1);
                    assert_eq!(*into, 1 - *absorbed);
                }
                LifecycleEvent::Death { cause, .. } => {
                    deaths += 1;
                    assert_eq!(*cause, DeathCause::Absorbed);
                }
                _ => {}
            }
        }
        assert_eq!((merges, deaths), (1, 1));
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, LifecycleEvent::Birth { .. })),
            "a merge is not a birth: {events:?}"
        );
    }

    #[test]
    fn vanished_cluster_dies_expired_but_outliered_members_mean_absorbed() {
        let mut t = LineageTracker::new();
        let ra = rep(&[(0, 2.0)], 2);
        let rb = rep(&[(9, 2.0)], 2);
        let ma = docs(&[1, 2]);
        let mb = docs(&[5, 6]);
        t.observe(
            &[
                ObservedCluster {
                    id: gid(0),
                    members: &ma,
                    rep: &ra,
                },
                ObservedCluster {
                    id: gid(1),
                    members: &mb,
                    rep: &rb,
                },
            ],
            &[],
            1.0,
        );
        // Cluster 0's documents expired entirely; cluster 1's fell to the
        // outlier list.
        let events = t.observe(&[], &docs(&[5, 6]), 0.0);
        let causes: BTreeMap<u64, DeathCause> = events
            .iter()
            .filter_map(|e| match e {
                LifecycleEvent::Death { lineage, cause, .. } => Some((*lineage, *cause)),
                _ => None,
            })
            .collect();
        assert_eq!(causes.get(&0), Some(&DeathCause::Expired));
        assert_eq!(causes.get(&1), Some(&DeathCause::Absorbed));
        let outliered = events
            .iter()
            .filter(|e| matches!(e, LifecycleEvent::Outliered { .. }))
            .count();
        assert_eq!(outliered, 2);
    }

    #[test]
    fn state_roundtrip_preserves_matching_bit_for_bit() {
        let mut t = LineageTracker::new();
        let r0 = rep(&[(0, 1.5), (3, 0.25)], 3);
        let m0 = docs(&[1, 2, 3]);
        t.observe(
            &[ObservedCluster {
                id: gid(0),
                members: &m0,
                rep: &r0,
            }],
            &docs(&[9]),
            1.25,
        );

        let state = t.to_state();
        let json = serde_json::to_string(&state).unwrap();
        let back: LineageState = serde_json::from_str(&json).unwrap();
        let mut restored = LineageTracker::from_state(&back);

        let r1 = rep(&[(0, 1.0), (3, 0.5)], 4);
        let m1 = docs(&[1, 2, 3, 9]);
        let next = [ObservedCluster {
            id: gid(1),
            members: &m1,
            rep: &r1,
        }];
        let a = t.observe(&next, &[], 2.0);
        let b = restored.observe(&next, &[], 2.0);
        assert_eq!(a, b, "restored tracker diverged");
        if let LifecycleEvent::Continuation { drift, .. } = &a[0] {
            if let LifecycleEvent::Continuation { drift: d2, .. } = &b[0] {
                assert_eq!(drift.to_bits(), d2.to_bits());
            }
        }
        assert_eq!(t.lineage_of(gid(1)), restored.lineage_of(gid(1)));
    }

    #[test]
    fn event_json_lines_are_single_line_valid_json() {
        let samples = vec![
            LifecycleEvent::Birth {
                window: 0,
                lineage: 3,
                cluster: GlobalClusterId { shard: 1, local: 2 },
                size: 5,
            },
            LifecycleEvent::Death {
                window: 2,
                lineage: 3,
                cause: DeathCause::Expired,
                last_size: 4,
            },
            LifecycleEvent::Continuation {
                window: 1,
                lineage: 3,
                cluster: GlobalClusterId { shard: 0, local: 0 },
                size: 6,
                drift: 0.125,
                joined: 2,
                left: 1,
            },
            LifecycleEvent::Split {
                window: 2,
                lineage: 9,
                parent: 3,
                cluster: GlobalClusterId { shard: 0, local: 1 },
                size: 3,
                from_parent: 3,
            },
            LifecycleEvent::Merge {
                window: 2,
                absorbed: 4,
                into: 3,
                from_absorbed: 2,
            },
            LifecycleEvent::Moved {
                window: 2,
                doc: DocId(17),
                from: 4,
                to: 3,
            },
            LifecycleEvent::Outliered {
                window: 2,
                doc: DocId(9),
                from: 4,
            },
        ];
        for e in samples {
            let line = e.to_json_line();
            assert!(!line.contains('\n'));
            let v: serde_json::Value = serde_json::from_str(&line).unwrap();
            assert!(v.get("kind").is_some(), "{line}");
            assert!(v.get("window").is_some(), "{line}");
        }
        // Exact shape of one line, consumed by check_events/inspect.
        assert_eq!(
            LifecycleEvent::Merge {
                window: 2,
                absorbed: 4,
                into: 3,
                from_absorbed: 2
            }
            .to_json_line(),
            "{\"kind\":\"merge\",\"window\":2,\"absorbed\":4,\"into\":3,\"from_absorbed\":2}"
        );
    }
}
