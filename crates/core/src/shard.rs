//! Stream sharding: many independent pipelines, one query-time view.
//!
//! PR 1 parallelised *within* one window's hot paths; this module shards
//! *across* the stream. Each [`StreamShard`] owns a full
//! [`NoveltyPipeline`] — its own forgetting [`Repository`], warm-start
//! assignment, and last clustering — and a [`ShardedPipeline`] fans
//! `ingest_batch` / `advance_to` / `expire` / `recluster_*` out across the
//! shards via `nidc-parallel`, merging the per-shard results into a
//! [`MergedClustering`] on demand.
//!
//! Sharding is sound under the paper's model because every forgetting
//! statistic of §3 (`tdw`, the `S_k` numerators, `Pr(d)`, `Pr(t_k)`) is a
//! sum over documents, so the §5.1 incremental updates are valid per shard
//! and the global values are recovered exactly by
//! [`nidc_forgetting::sharding`]. Expiration (`dw < ε`, §5.2) is a
//! per-document predicate and needs no coordination at all.
//!
//! # Determinism
//!
//! Routing is a pure function of the [`DocId`] (or an explicit stream key),
//! so a fixed shard count always produces the same partition; each shard's
//! pipeline is bit-identical for any thread count (the PR 1 contract); and
//! the merge walks shards in index order. Hence a sharded run is
//! bit-identical across `threads ∈ {0, 1, 2, 4, 7, …}`, and `shards = 1`
//! routes everything to one pipeline, reproducing the unsharded pipeline
//! bit for bit.

use nidc_forgetting::{DecayParams, Repository, RepositoryStats, Timestamp};
use nidc_obs::{buckets, LazyCounter, LazyHistogram};
use nidc_textproc::{DocId, SparseVector, TermId};

use crate::lineage::{LineageState, LineageTracker, ObservedCluster};
use crate::merge::MergedClustering;
use crate::{Clustering, ClusteringConfig, Error, NoveltyPipeline, Result};

/// Documents routed through the sharded ingest paths.
static INGESTED_DOCS: LazyCounter = LazyCounter::new("nidc_sharded_ingest_docs_total");
/// Documents expired across all shards via the sharded expire path.
static EXPIRED_DOCS: LazyCounter = LazyCounter::new("nidc_sharded_expired_docs_total");
/// Sharded re-clustering requests (incremental and from-scratch combined).
static RECLUSTERS: LazyCounter = LazyCounter::new("nidc_sharded_reclusters_total");
/// Wall-clock seconds per sharded re-clustering (fan-out + per-shard work).
static RECLUSTER_SECONDS: LazyHistogram =
    LazyHistogram::new("nidc_sharded_recluster_seconds", buckets::LATENCY_SECONDS);
/// Wall-clock seconds assembling the merged query-time view.
static MERGE_SECONDS: LazyHistogram =
    LazyHistogram::new("nidc_sharded_merge_seconds", buckets::LATENCY_SECONDS);
/// Live documents per shard, observed at every re-clustering (a balance
/// check on the router: a skewed distribution shows up as a wide spread).
static DOCS_PER_SHARD: LazyHistogram =
    LazyHistogram::new("nidc_sharded_docs_per_shard", buckets::SIZES);

/// Registers every sharded metric at zero so per-window snapshots carry the
/// full schema. Called at construction and again at each re-clustering:
/// recording may have been enabled only after the pipeline was built, and
/// registration while disabled is a no-op.
fn register_sharded_metrics() {
    INGESTED_DOCS.add(0);
    EXPIRED_DOCS.add(0);
    RECLUSTERS.add(0);
    RECLUSTER_SECONDS.touch();
    MERGE_SECONDS.touch();
    DOCS_PER_SHARD.touch();
    crate::merge::register_stitch_metrics();
    crate::pipeline::register_mem_gauges();
    crate::lineage::register_lifecycle_metrics();
}

/// The trace track carrying shard `id`'s spans. Track 0 is the calling
/// thread's lane ("main"), so shard `s` renders on lane `s + 1` in Perfetto —
/// one lane per shard regardless of which worker thread ran it.
fn shard_track(id: usize) -> u32 {
    id as u32 + 1
}

/// Labels every shard's trace lane. A no-op (one relaxed load) while tracing
/// is off; idempotent while on, so the fan-out paths can call it every
/// window — a session enabled mid-stream still gets named lanes.
fn label_shard_tracks(n: usize) {
    if !nidc_obs::trace::trace_enabled() {
        return;
    }
    for s in 0..n {
        nidc_obs::trace::set_track_label(shard_track(s), &format!("shard {s}"));
    }
}

/// SplitMix64 finaliser — a well-mixed, platform-independent permutation of
/// `u64`, so shard assignment is stable across runs, machines, and shardings
/// of adjacent id ranges (sequential `DocId`s spread uniformly).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic document → shard routing.
///
/// The default route hashes the [`DocId`]; callers with a natural partition
/// key (a feed id, a tenant, a language) can route on an explicit key via
/// [`ShardRouter::route_key`] instead — any scheme works as long as a given
/// document always lands on the same shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// A router over `shards` shards.
    ///
    /// # Errors
    /// [`Error::ZeroShards`] when `shards` is zero.
    pub fn new(shards: usize) -> Result<Self> {
        if shards == 0 {
            return Err(Error::ZeroShards);
        }
        Ok(Self { shards })
    }

    /// The number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning document `id` (stable hash of the id).
    pub fn route(&self, id: DocId) -> usize {
        self.route_key(id.0)
    }

    /// The shard for an explicit stream key.
    pub fn route_key(&self, key: u64) -> usize {
        if self.shards == 1 {
            return 0;
        }
        (splitmix64(key) % self.shards as u64) as usize
    }
}

/// One shard of the stream: a full pipeline over the documents the router
/// assigns here — its own repository, warm-start assignment, and last
/// clustering.
#[derive(Debug, Clone)]
pub struct StreamShard {
    id: usize,
    pipeline: NoveltyPipeline,
}

impl StreamShard {
    pub(crate) fn new(id: usize, pipeline: NoveltyPipeline) -> Self {
        Self { id, pipeline }
    }

    /// This shard's index (the `shard` half of a
    /// [`crate::GlobalClusterId`]).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The shard's pipeline.
    pub fn pipeline(&self) -> &NoveltyPipeline {
        &self.pipeline
    }

    pub(crate) fn pipeline_mut(&mut self) -> &mut NoveltyPipeline {
        &mut self.pipeline
    }

    /// The shard's repository.
    pub fn repository(&self) -> &Repository {
        self.pipeline.repository()
    }

    /// The shard's most recent clustering, if any.
    pub fn last(&self) -> Option<&Clustering> {
        self.pipeline.last()
    }

    /// Live documents on this shard.
    pub fn num_docs(&self) -> usize {
        self.pipeline.repository().len()
    }
}

/// The sharded on-line pipeline: N independent [`StreamShard`]s behind a
/// deterministic [`ShardRouter`], with every lifecycle operation fanned out
/// via `nidc-parallel` and clusterings merged at query time.
///
/// `shards = 1` is today's behaviour — one pipeline, bit-identical to
/// [`NoveltyPipeline`] driven directly.
#[derive(Debug, Clone)]
pub struct ShardedPipeline {
    shards: Vec<StreamShard>,
    router: ShardRouter,
    config: ClusteringConfig,
    /// Stitching threshold τ for the query-time repair pass; `None`
    /// disables stitching. Only takes effect with more than one shard —
    /// a single shard has no cross-shard fragments to reunite.
    stitch: Option<f64>,
    /// Tracks cluster lineage over the *merged* (and, when stitching is on,
    /// *stitched*) cluster ids, so a topic whose fragments get reunited
    /// across shards reads as one continuing lineage instead of per-shard
    /// deaths and a birth. The per-shard pipelines have their own trackers
    /// disabled (see [`NoveltyPipeline::disable_lineage`]).
    lineage: Option<LineageTracker>,
}

impl ShardedPipeline {
    /// Creates an empty sharded pipeline: `shards` pipelines sharing the
    /// same decay parameters and clustering configuration.
    ///
    /// # Errors
    /// [`Error::ZeroShards`] when `shards` is zero.
    pub fn new(decay: DecayParams, config: ClusteringConfig, shards: usize) -> Result<Self> {
        let pipelines = (0..shards)
            .map(|_| NoveltyPipeline::new(decay, config.clone()))
            .collect();
        Self::from_shard_pipelines(pipelines, config)
    }

    /// Reassembles a sharded pipeline from per-shard pipelines (used by
    /// state restoration; shard index = position).
    ///
    /// # Errors
    /// [`Error::ZeroShards`] when `pipelines` is empty.
    pub fn from_shard_pipelines(
        pipelines: Vec<NoveltyPipeline>,
        config: ClusteringConfig,
    ) -> Result<Self> {
        let router = ShardRouter::new(pipelines.len())?;
        register_sharded_metrics();
        Ok(Self {
            shards: pipelines
                .into_iter()
                .enumerate()
                .map(|(id, mut p)| {
                    // Lineage is classified once, over the merged/stitched
                    // view — never per shard.
                    p.disable_lineage();
                    StreamShard::new(id, p)
                })
                .collect(),
            router,
            config,
            stitch: Some(crate::merge::DEFAULT_STITCH_THRESHOLD),
            lineage: Some(LineageTracker::new()),
        })
    }

    /// The top-level lineage tracker (over merged/stitched cluster ids).
    pub fn lineage(&self) -> Option<&LineageTracker> {
        self.lineage.as_ref()
    }

    /// Stops lineage tracking on this pipeline entirely.
    pub fn disable_lineage(&mut self) {
        self.lineage = None;
    }

    /// Captures the lineage tracker's state for checkpointing (`None` when
    /// disabled or before the first re-clustering).
    pub fn lineage_state(&self) -> Option<LineageState> {
        self.lineage
            .as_ref()
            .filter(|t| t.windows_observed() > 0)
            .map(LineageTracker::to_state)
    }

    /// Restores the lineage tracker from a checkpointed state, so lineage
    /// ids continue across save → load → resume.
    pub fn restore_lineage_state(&mut self, state: &LineageState) {
        self.lineage = Some(LineageTracker::from_state(state));
    }

    /// Sets the stitching threshold τ for the query-time repair pass:
    /// `Some(τ)` stitches every merged view at τ, `None` disables
    /// stitching. The default is `Some(DEFAULT_STITCH_THRESHOLD)`; with a
    /// single shard the setting is ignored (nothing to stitch).
    pub fn set_stitch(&mut self, threshold: Option<f64>) {
        self.stitch = threshold;
    }

    /// The configured stitching threshold (`None` = disabled).
    pub fn stitch_threshold(&self) -> Option<f64> {
        self.stitch
    }

    /// The threshold the merge paths will actually stitch at: the
    /// configured τ, gated on having more than one shard.
    fn effective_stitch(&self) -> Option<f64> {
        (self.shards.len() > 1).then_some(self.stitch).flatten()
    }

    /// The router in use.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The clustering configuration (shared by every shard).
    pub fn config(&self) -> &ClusteringConfig {
        &self.config
    }

    /// The shards, in index order.
    pub fn shards(&self) -> &[StreamShard] {
        &self.shards
    }

    /// One shard.
    pub fn shard(&self, s: usize) -> &StreamShard {
        &self.shards[s]
    }

    /// Live documents across all shards.
    pub fn num_docs(&self) -> usize {
        self.shards.iter().map(StreamShard::num_docs).sum()
    }

    /// Whether no shard holds any document.
    pub fn is_empty(&self) -> bool {
        self.num_docs() == 0
    }

    /// The latest shard clock (all clocks agree after a fan-out
    /// [`ShardedPipeline::advance_to`]).
    pub fn now(&self) -> Timestamp {
        self.shards
            .iter()
            .map(|s| s.repository().now())
            .fold(Timestamp::EPOCH, Timestamp::max)
    }

    /// Whether any shard stores `id`.
    pub fn contains(&self, id: DocId) -> bool {
        self.shards.iter().any(|s| s.repository().contains(id))
    }

    /// Merged repository statistics over all shards
    /// ([`nidc_forgetting::sharding::merge_stats`]).
    pub fn stats(&self) -> RepositoryStats {
        let stats: Vec<RepositoryStats> =
            self.shards.iter().map(|s| s.repository().stats()).collect();
        nidc_forgetting::sharding::merge_stats(&stats)
    }

    /// The global term occurrence probability `Pr(t_k)` (eq. 10) over the
    /// union of all shards ([`nidc_forgetting::sharding::merged_pr_term`]).
    pub fn pr_term(&self, term: TermId) -> f64 {
        let repos: Vec<&Repository> = self.shards.iter().map(StreamShard::repository).collect();
        nidc_forgetting::sharding::merged_pr_term(&repos, term)
    }

    /// Ingests one document, routed by its id.
    pub fn ingest(&mut self, id: DocId, t: Timestamp, tf: SparseVector) -> Result<()> {
        INGESTED_DOCS.inc();
        let s = self.router.route(id);
        self.shards[s].pipeline.ingest(id, t, tf)
    }

    /// Ingests one document under an explicit stream key (feed, tenant,
    /// language, …). The caller must use the same key for a given document
    /// every time — the shards only detect duplicates they own.
    pub fn ingest_with_key(
        &mut self,
        key: u64,
        id: DocId,
        t: Timestamp,
        tf: SparseVector,
    ) -> Result<()> {
        INGESTED_DOCS.inc();
        let s = self.router.route_key(key);
        self.shards[s].pipeline.ingest(id, t, tf)
    }

    /// Ingests a batch that arrived at `t`: partitions it by the router
    /// (preserving arrival order within each shard) and fans the per-shard
    /// sub-batches out in parallel.
    ///
    /// On error the first failing shard's error (in shard order) is
    /// returned; sub-batches on other shards may still have been applied —
    /// the same partial-application semantics as
    /// [`NoveltyPipeline::ingest_batch`] within one shard.
    pub fn ingest_batch<I>(&mut self, t: Timestamp, docs: I) -> Result<()>
    where
        I: IntoIterator<Item = (DocId, SparseVector)>,
    {
        let mut batches: Vec<Vec<(DocId, SparseVector)>> = vec![Vec::new(); self.shards.len()];
        let mut total = 0u64;
        for (id, tf) in docs {
            batches[self.router.route(id)].push((id, tf));
            total += 1;
        }
        INGESTED_DOCS.add(total);
        let _span = nidc_obs::span!("sharded.ingest_batch");
        label_shard_tracks(self.shards.len());
        let threads = self.config.threads;
        let mut work: Vec<(&mut StreamShard, Vec<(DocId, SparseVector)>)> =
            self.shards.iter_mut().zip(batches).collect();
        nidc_parallel::par_map_mut(&mut work, threads, |(shard, batch)| {
            if batch.is_empty() {
                return Ok(());
            }
            let _track = nidc_obs::trace::with_track(shard_track(shard.id));
            let _s = nidc_obs::span!("shard.ingest");
            shard.pipeline_mut().ingest_batch(t, std::mem::take(batch))
        })
        .into_iter()
        .collect()
    }

    /// Advances every shard's clock to `t` (pure decay, fanned out).
    pub fn advance_to(&mut self, t: Timestamp) -> Result<()> {
        let _span = nidc_obs::span!("sharded.advance");
        label_shard_tracks(self.shards.len());
        let threads = self.config.threads;
        nidc_parallel::par_map_mut(&mut self.shards, threads, |s| {
            let _track = nidc_obs::trace::with_track(shard_track(s.id));
            let _s = nidc_obs::span!("shard.advance");
            s.pipeline_mut().advance_to(t)
        })
        .into_iter()
        .collect()
    }

    /// Expires documents below `ε = λ^γ` on every shard (fanned out) and
    /// returns the union, sorted ascending.
    pub fn expire(&mut self) -> Vec<DocId> {
        let _span = nidc_obs::span!("sharded.expire");
        label_shard_tracks(self.shards.len());
        let threads = self.config.threads;
        let per_shard = nidc_parallel::par_map_mut(&mut self.shards, threads, |s| {
            let _track = nidc_obs::trace::with_track(shard_track(s.id));
            let _s = nidc_obs::span!("shard.expire");
            s.pipeline_mut().expire()
        });
        let mut all: Vec<DocId> = per_shard.into_iter().flatten().collect();
        EXPIRED_DOCS.add(all.len() as u64);
        all.sort_unstable();
        all
    }

    /// Incremental re-clustering on every shard (fanned out; each shard
    /// expires, rebuilds its φ vectors, and warm-starts its extended
    /// K-means), merged into one query-time view.
    pub fn recluster_incremental(&mut self) -> Result<MergedClustering> {
        self.recluster_with(|p| p.recluster_incremental())
    }

    /// Non-incremental re-clustering on every shard (statistics rebuilt
    /// from scratch, random seeding), merged into one query-time view.
    pub fn recluster_from_scratch(&mut self) -> Result<MergedClustering> {
        self.recluster_with(|p| p.recluster_from_scratch())
    }

    fn recluster_with<F>(&mut self, f: F) -> Result<MergedClustering>
    where
        F: Fn(&mut NoveltyPipeline) -> Result<Clustering> + Sync,
    {
        register_sharded_metrics();
        let span = nidc_obs::span!("sharded.recluster");
        label_shard_tracks(self.shards.len());
        let timer = RECLUSTER_SECONDS.start_timer();
        RECLUSTERS.inc();
        let threads = self.config.threads;
        let results = nidc_parallel::par_map_mut(&mut self.shards, threads, |s| {
            DOCS_PER_SHARD.observe(s.num_docs() as f64);
            // Everything the shard does — its window phases, its K-means
            // iterations — nests under this span on the shard's own lane.
            let _track = nidc_obs::trace::with_track(shard_track(s.id));
            let _s = nidc_obs::span!("shard.recluster");
            f(s.pipeline_mut())
        });
        let mut clusterings = Vec::with_capacity(results.len());
        for r in results {
            clusterings.push(r?);
        }
        timer.stop();
        drop(span);
        // Each shard's recluster published its own sizes (last shard wins);
        // overwrite with cross-shard sums so the gauges report the whole
        // stream's footprint.
        let (mut repo, mut reps, mut warm) = (0u64, 0u64, 0u64);
        for s in &self.shards {
            let (r, c, w) = s.pipeline().mem_sample();
            repo += r;
            reps += c;
            warm += w;
        }
        crate::pipeline::set_mem_gauges(repo, reps, warm);
        let merged = {
            let _merge_span = nidc_obs::span!("sharded.merge");
            let _merge_timer = MERGE_SECONDS.start_timer();
            let mut merged = MergedClustering::new(clusterings);
            if let Some(tau) = self.effective_stitch() {
                // inside the merge span, so `sharded.stitch` nests under it
                merged.stitch_in_place(tau);
            }
            merged
        };
        self.observe_lineage(&merged);
        Ok(merged)
    }

    /// Feeds the window's merged view to the lineage tracker. Stitched ids
    /// when stitching ran (so cross-shard stitches are one lineage), raw
    /// merged `(shard, local)` ids otherwise. Pure observer — nothing here
    /// feeds back into the clustering.
    fn observe_lineage(&mut self, merged: &MergedClustering) {
        let Some(tracker) = self.lineage.as_mut() else {
            return;
        };
        let _span = nidc_obs::span!("sharded.lineage");
        if let Some(stitched) = merged.stitched() {
            let observed: Vec<ObservedCluster<'_>> = stitched
                .clusters()
                .iter()
                .filter(|c| !c.members().is_empty())
                .map(|c| ObservedCluster {
                    id: c.id(),
                    members: c.members(),
                    rep: c.rep(),
                })
                .collect();
            tracker.observe(&observed, stitched.outliers(), stitched.g());
        } else {
            let observed: Vec<ObservedCluster<'_>> = merged
                .iter_non_empty()
                .map(|(id, c)| ObservedCluster {
                    id,
                    members: c.members(),
                    rep: c.rep(),
                })
                .collect();
            let outliers = merged.outliers();
            tracker.observe(&observed, &outliers, merged.g());
        }
    }

    /// The merged view of every shard's most recent clustering, or `None`
    /// until all shards have clustered at least once (every `recluster_*`
    /// call clusters all shards, so after the first one this is `Some`).
    pub fn last_merged(&self) -> Option<MergedClustering> {
        let mut shards = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            shards.push(s.last()?.clone());
        }
        let mut merged = MergedClustering::new(shards);
        if let Some(tau) = self.effective_stitch() {
            merged.stitch_in_place(tau);
        }
        Some(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tf(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
    }

    fn decay() -> DecayParams {
        DecayParams::from_spans(7.0, 14.0).unwrap()
    }

    fn config() -> ClusteringConfig {
        ClusteringConfig {
            k: 2,
            seed: 1,
            ..ClusteringConfig::default()
        }
    }

    fn seed_two_topics(p: &mut ShardedPipeline, start_day: f64, id_base: u64) {
        for i in 0..4u64 {
            p.ingest(
                DocId(id_base + i),
                Timestamp(start_day + 0.01 * i as f64),
                tf(&[(0, 3.0), (1, 1.0 + (i % 2) as f64)]),
            )
            .unwrap();
        }
        for i in 4..8u64 {
            p.ingest(
                DocId(id_base + i),
                Timestamp(start_day + 0.01 * i as f64),
                tf(&[(8, 3.0), (9, 1.0 + (i % 2) as f64)]),
            )
            .unwrap();
        }
    }

    #[test]
    fn zero_shards_is_rejected() {
        assert_eq!(ShardRouter::new(0), Err(Error::ZeroShards));
        assert!(matches!(
            ShardedPipeline::new(decay(), config(), 0),
            Err(Error::ZeroShards)
        ));
    }

    #[test]
    fn router_is_stable_and_covers_all_shards() {
        let r = ShardRouter::new(4).unwrap();
        let mut hit = [false; 4];
        for id in 0..256u64 {
            let s = r.route(DocId(id));
            assert!(s < 4);
            assert_eq!(s, r.route(DocId(id)), "routing must be a pure function");
            hit[s] = true;
        }
        assert!(
            hit.iter().all(|&h| h),
            "256 sequential ids must spread over 4 shards"
        );
        // one shard short-circuits
        let one = ShardRouter::new(1).unwrap();
        for id in 0..32u64 {
            assert_eq!(one.route(DocId(id)), 0);
        }
        // explicit keys route independently of the DocId
        let by_key = r.route_key(7);
        assert_eq!(by_key, r.route_key(7));
    }

    #[test]
    fn documents_land_on_their_routed_shard() {
        let mut p = ShardedPipeline::new(decay(), config(), 3).unwrap();
        seed_two_topics(&mut p, 0.0, 0);
        assert_eq!(p.num_docs(), 8);
        for id in 0..8u64 {
            let s = p.router().route(DocId(id));
            assert!(p.shard(s).repository().contains(DocId(id)));
            assert!(p.contains(DocId(id)));
        }
        assert!(!p.contains(DocId(99)));
    }

    #[test]
    fn explicit_key_overrides_id_routing() {
        let mut p = ShardedPipeline::new(decay(), config(), 4).unwrap();
        let key = 42u64;
        let target = p.router().route_key(key);
        for id in 0..8u64 {
            p.ingest_with_key(key, DocId(id), Timestamp(0.0), tf(&[(0, 1.0)]))
                .unwrap();
        }
        assert_eq!(p.shard(target).num_docs(), 8);
    }

    #[test]
    fn batch_ingest_matches_single_ingest() {
        let mut a = ShardedPipeline::new(decay(), config(), 3).unwrap();
        seed_two_topics(&mut a, 0.0, 0);

        let mut b = ShardedPipeline::new(decay(), config(), 3).unwrap();
        // same docs, all stamped per-doc times — batch uses one timestamp,
        // so replicate with two batches at the two distinct instants used
        for i in 0..8u64 {
            let terms: Vec<(u32, f64)> = if i < 4 {
                vec![(0, 3.0), (1, 1.0 + (i % 2) as f64)]
            } else {
                vec![(8, 3.0), (9, 1.0 + (i % 2) as f64)]
            };
            b.ingest_batch(Timestamp(0.01 * i as f64), vec![(DocId(i), tf(&terms))])
                .unwrap();
        }
        assert_eq!(a.num_docs(), b.num_docs());
        let ca = a.recluster_incremental().unwrap();
        let cb = b.recluster_incremental().unwrap();
        assert_eq!(ca.member_lists(), cb.member_lists());
    }

    #[test]
    fn duplicate_in_batch_surfaces_as_error() {
        let mut p = ShardedPipeline::new(decay(), config(), 2).unwrap();
        p.ingest(DocId(0), Timestamp(0.0), tf(&[(0, 1.0)])).unwrap();
        assert!(p
            .ingest_batch(Timestamp(1.0), vec![(DocId(0), tf(&[(0, 1.0)]))])
            .is_err());
    }

    #[test]
    fn recluster_merges_every_document_or_outlier() {
        let mut p = ShardedPipeline::new(decay(), config(), 2).unwrap();
        seed_two_topics(&mut p, 0.0, 0);
        let m = p.recluster_incremental().unwrap();
        assert_eq!(m.shard_count(), 2);
        let assigned = m.assignment().len();
        let outliers = m.outliers().len();
        assert_eq!(assigned + outliers, 8);
        // the merged view is also available as last_merged
        let again = p.last_merged().unwrap();
        assert_eq!(again.member_lists(), m.member_lists());
        assert_eq!(again.g(), m.g());
    }

    #[test]
    fn last_merged_is_none_before_first_recluster() {
        let mut p = ShardedPipeline::new(decay(), config(), 2).unwrap();
        assert!(p.last_merged().is_none());
        seed_two_topics(&mut p, 0.0, 0);
        assert!(p.last_merged().is_none());
        p.recluster_incremental().unwrap();
        assert!(p.last_merged().is_some());
    }

    #[test]
    fn expire_is_globally_sorted_and_prunes_all_shards() {
        let mut p = ShardedPipeline::new(decay(), config(), 3).unwrap();
        seed_two_topics(&mut p, 0.0, 0);
        p.advance_to(Timestamp(20.0)).unwrap(); // past the 14-day life span
        let dead = p.expire();
        assert_eq!(dead.len(), 8);
        let mut sorted = dead.clone();
        sorted.sort_unstable();
        assert_eq!(dead, sorted, "expired ids must come back sorted");
        assert!(p.is_empty());
    }

    #[test]
    fn merged_stats_and_pr_term_are_partition_invariant() {
        let mut one = ShardedPipeline::new(decay(), config(), 1).unwrap();
        let mut four = ShardedPipeline::new(decay(), config(), 4).unwrap();
        for p in [&mut one, &mut four] {
            seed_two_topics(p, 0.0, 0);
            p.advance_to(Timestamp(2.0)).unwrap();
        }
        let (a, b) = (one.stats(), four.stats());
        assert_eq!(a.num_docs, b.num_docs);
        assert_eq!(a.vocab_dim, b.vocab_dim);
        assert_eq!(a.now, b.now);
        assert!((a.tdw - b.tdw).abs() < 1e-12);
        assert_eq!(one.now(), four.now());
        for k in 0..10u32 {
            assert!(
                (one.pr_term(TermId(k)) - four.pr_term(TermId(k))).abs() < 1e-12,
                "term {k}"
            );
        }
    }
}
