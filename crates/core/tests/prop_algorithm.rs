//! Property tests for the extended K-means: conservation, determinism,
//! G-consistency, and warm-start sanity on random document collections.

use std::collections::BTreeMap;

use nidc_core::{cluster_batch, cluster_with_initial, ClusteringConfig, Criterion, InitialState};
use nidc_forgetting::{DecayParams, Repository, Timestamp};
use nidc_similarity::{ClusterRep, DocVectors};
use nidc_textproc::{DocId, SparseVector, TermId};
use proptest::prelude::*;

/// Random chronological repositories: up to 30 docs over up to 10 days.
fn repo_strategy() -> impl Strategy<Value = Repository> {
    prop::collection::vec(
        (
            prop::collection::vec((0u32..25, 1.0f64..4.0), 1..8),
            0.0f64..10.0,
        ),
        2..30,
    )
    .prop_map(|raw| {
        let mut docs: Vec<(f64, SparseVector)> = raw
            .into_iter()
            .map(|(pairs, day)| {
                (
                    day,
                    SparseVector::from_entries(
                        pairs.into_iter().map(|(t, w)| (TermId(t), w)).collect(),
                    ),
                )
            })
            .collect();
        docs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut repo = Repository::new(DecayParams::from_spans(7.0, 60.0).unwrap());
        for (i, (day, tf)) in docs.into_iter().enumerate() {
            repo.insert(DocId(i as u64), Timestamp(day), tf).unwrap();
        }
        repo
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every document ends either in exactly one cluster or in the outlier
    /// list, never both, never duplicated.
    #[test]
    fn conservation(repo in repo_strategy(), k in 1usize..6, seed in 0u64..4) {
        let vecs = DocVectors::build(&repo);
        let config = ClusteringConfig { k, seed, ..ClusteringConfig::default() };
        let c = cluster_batch(&vecs, &config).unwrap();
        let mut seen = std::collections::HashSet::new();
        for cl in c.clusters() {
            for d in cl.members() {
                prop_assert!(seen.insert(*d), "{d} appears twice");
            }
        }
        for d in c.outliers() {
            prop_assert!(seen.insert(*d), "{d} clustered and outlier");
        }
        prop_assert_eq!(seen.len(), repo.len());
    }

    /// Determinism: identical configuration → identical result.
    #[test]
    fn determinism(repo in repo_strategy(), k in 1usize..5) {
        let vecs = DocVectors::build(&repo);
        let config = ClusteringConfig { k, seed: 5, ..ClusteringConfig::default() };
        let a = cluster_batch(&vecs, &config).unwrap();
        let b = cluster_batch(&vecs, &config).unwrap();
        prop_assert_eq!(a.member_lists(), b.member_lists());
        prop_assert_eq!(a.outliers(), b.outliers());
        prop_assert!((a.g() - b.g()).abs() < 1e-15);
    }

    /// The reported G equals the definitional Σ |C_p|·avg_sim(C_p) computed
    /// from scratch over the final membership.
    #[test]
    fn g_matches_definition(repo in repo_strategy(), k in 1usize..5) {
        let vecs = DocVectors::build(&repo);
        let config = ClusteringConfig { k, seed: 2, ..ClusteringConfig::default() };
        let c = cluster_batch(&vecs, &config).unwrap();
        let mut g = 0.0;
        for cl in c.clusters() {
            let mut rep = ClusterRep::new();
            rep.recompute_exact(cl.members().iter().map(|d| vecs.phi(*d).unwrap()));
            g += rep.g_term();
        }
        prop_assert!((c.g() - g).abs() < 1e-9, "G {} vs definitional {g}", c.g());
    }

    /// Warm-starting from a finished clustering never lowers G and never
    /// takes more iterations.
    #[test]
    fn warm_start_monotonicity(repo in repo_strategy(), k in 1usize..5) {
        let vecs = DocVectors::build(&repo);
        let config = ClusteringConfig { k, seed: 7, ..ClusteringConfig::default() };
        let cold = cluster_batch(&vecs, &config).unwrap();
        let warm = cluster_with_initial(
            &vecs, &config, InitialState::Assignment(cold.assignment())).unwrap();
        prop_assert!(warm.g() >= cold.g() - 1e-9);
        prop_assert!(warm.iterations() <= cold.iterations());
    }

    /// Both assignment criteria terminate within the iteration cap and
    /// produce valid clusterings.
    #[test]
    fn both_criteria_terminate(repo in repo_strategy(), k in 1usize..5) {
        for criterion in [Criterion::GTerm, Criterion::AvgSim] {
            let vecs = DocVectors::build(&repo);
            let config = ClusteringConfig {
                k, seed: 3, criterion, ..ClusteringConfig::default()
            };
            let c = cluster_batch(&vecs, &config).unwrap();
            prop_assert!(c.iterations() <= config.max_iters);
            prop_assert!(c.g() >= 0.0);
        }
    }

    /// An explicit initial assignment over a subset of documents is
    /// accepted, and invalid cluster indices are rejected.
    #[test]
    fn initial_assignment_validation(repo in repo_strategy()) {
        let vecs = DocVectors::build(&repo);
        let config = ClusteringConfig { k: 3, seed: 1, ..ClusteringConfig::default() };
        let ids = vecs.ids();
        let mut good = BTreeMap::new();
        good.insert(ids[0], 0usize);
        prop_assert!(cluster_with_initial(
            &vecs, &config, InitialState::Assignment(good)).is_ok());
        let mut bad = BTreeMap::new();
        bad.insert(ids[0], 99usize);
        prop_assert!(cluster_with_initial(
            &vecs, &config, InitialState::Assignment(bad)).is_err());
    }
}
