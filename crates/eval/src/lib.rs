//! Clustering evaluation against ground-truth topic labels
//! (paper §6.2.3, Table 3, Table 4, Figures 1–4).
//!
//! The paper evaluates a clustering by comparing each system cluster to each
//! ground-truth topic through the 2×2 contingency table of its Table 3:
//!
//! ```text
//!                   on topic   not on topic
//! in cluster            a           b
//! not in cluster        c           d
//! ```
//!
//! from which precision `p = a/(a+b)`, recall `r = a/(a+c)` and
//! `F1 = 2a/(2a+b+c)`.
//!
//! A cluster is **marked** with a topic if that topic's precision in the
//! cluster is ≥ 0.60 (the paper's rule); the global **micro-average F1**
//! merges the marked clusters' tables cell-wise, while the **macro-average
//! F1** averages the per-cluster measures (Yang et al., 1999).
//!
//! Beyond the paper's measures, [`purity`] and [`nmi`] are provided for the
//! ablation experiments.
//!
//! # Example
//!
//! ```
//! use nidc_eval::{evaluate, Labeling};
//! use nidc_textproc::DocId;
//!
//! let labels: Labeling<u32> = [(DocId(0), 1), (DocId(1), 1), (DocId(2), 2)]
//!     .into_iter()
//!     .collect();
//! let clusters = vec![vec![DocId(0), DocId(1)], vec![DocId(2)]];
//! let eval = evaluate(&clusters, &labels, 0.60);
//! assert!((eval.micro_f1 - 1.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod contingency;
mod extra;
mod marking;
mod sharded;

pub use contingency::Contingency;
pub use extra::{ari, consecutive_stability, nmi, purity};
pub use marking::{evaluate, ClusterReport, Evaluation, Labeling};
pub use sharded::{evaluate_sharded, ShardedEvaluation};

/// The paper's cluster-marking precision threshold (§6.2.3).
pub const MARKING_THRESHOLD: f64 = 0.60;
