//! Evaluation of sharded clusterings: merged micro/macro-F1 over the union
//! of all shards' clusters, plus per-shard breakdowns.
//!
//! A sharded deployment clusters each shard independently; for evaluation
//! the per-shard clusterings are simply concatenated (shards partition the
//! document space, so clusters never share documents) and marked against
//! the ground truth exactly like a monolithic clustering. The per-shard
//! evaluations show how much each shard contributes and whether the
//! router's partition starves any shard of a topic.

use std::hash::Hash;

use nidc_textproc::DocId;

use crate::marking::{evaluate, Evaluation, Labeling};

/// The evaluation of a sharded clustering.
#[derive(Debug, Clone)]
pub struct ShardedEvaluation<L> {
    /// The merged evaluation over every shard's clusters — the headline
    /// micro/macro-F1 of the *unstitched* sharded system.
    pub merged: Evaluation<L>,
    /// One evaluation per shard, in shard order.
    pub per_shard: Vec<Evaluation<L>>,
    /// The evaluation of the stitched view (`StitchedClustering` in
    /// `nidc-core`), when the caller ran the stitching pass — the headline
    /// figures of the repaired system.
    pub stitched: Option<Evaluation<L>>,
}

/// Evaluates per-shard member lists (`shards[s][local] = members`) against
/// `labels`: the merged figures are computed over the concatenation of all
/// shards' clusters (shard-major, matching
/// `MergedClustering::member_lists` in `nidc-core`), and each shard is also
/// evaluated on its own. Pass the stitched view's member lists as
/// `stitched` (e.g. `StitchedClustering::member_lists`) to score the
/// repaired clustering alongside; `None` leaves
/// [`ShardedEvaluation::stitched`] unset.
pub fn evaluate_sharded<L: Copy + Ord + Hash>(
    shards: &[Vec<Vec<DocId>>],
    stitched: Option<&[Vec<DocId>]>,
    labels: &Labeling<L>,
    threshold: f64,
) -> ShardedEvaluation<L> {
    let merged_clusters: Vec<Vec<DocId>> = shards.iter().flatten().cloned().collect();
    ShardedEvaluation {
        merged: evaluate(&merged_clusters, labels, threshold),
        per_shard: shards
            .iter()
            .map(|s| evaluate(s, labels, threshold))
            .collect(),
        stitched: stitched.map(|lists| evaluate(lists, labels, threshold)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> Labeling<u32> {
        // topic 1: docs 0-5; topic 2: docs 6-9
        (0..10)
            .map(|i| (DocId(i), if i < 6 { 1 } else { 2 }))
            .collect()
    }

    #[test]
    fn one_shard_equals_monolithic_evaluation() {
        let clusters = vec![
            (0..6).map(DocId).collect::<Vec<_>>(),
            (6..10).map(DocId).collect(),
        ];
        let mono = evaluate(&clusters, &labels(), 0.6);
        let sharded = evaluate_sharded(&[clusters], None, &labels(), 0.6);
        assert_eq!(sharded.per_shard.len(), 1);
        assert_eq!(sharded.merged.micro_f1.to_bits(), mono.micro_f1.to_bits());
        assert_eq!(sharded.merged.macro_f1.to_bits(), mono.macro_f1.to_bits());
        assert_eq!(sharded.merged.detected_topics, mono.detected_topics);
    }

    #[test]
    fn merged_concatenation_matches_flat_evaluation() {
        // topic 1 split across two shards, topic 2 whole on shard 1
        let shard0 = vec![(0..3).map(DocId).collect::<Vec<_>>()];
        let shard1 = vec![
            (3..6).map(DocId).collect::<Vec<_>>(),
            (6..10).map(DocId).collect(),
        ];
        let flat: Vec<Vec<DocId>> = shard0.iter().chain(&shard1).cloned().collect();
        let mono = evaluate(&flat, &labels(), 0.6);
        let sharded = evaluate_sharded(&[shard0, shard1], None, &labels(), 0.6);
        assert_eq!(sharded.merged.micro_f1.to_bits(), mono.micro_f1.to_bits());
        assert_eq!(sharded.merged.macro_f1.to_bits(), mono.macro_f1.to_bits());
        // per-shard views only see their own clusters
        assert_eq!(sharded.per_shard[0].clusters.len(), 1);
        assert_eq!(sharded.per_shard[1].clusters.len(), 2);
        // shard 0 detects only topic 1, shard 1 detects both it holds
        assert_eq!(sharded.per_shard[0].detected_topics, vec![1]);
        assert_eq!(sharded.per_shard[1].detected_topics, vec![1, 2]);
    }

    #[test]
    fn empty_shard_list_scores_zero() {
        let e = evaluate_sharded::<u32>(&[], None, &labels(), 0.6);
        assert_eq!(e.merged.micro_f1, 0.0);
        assert!(e.per_shard.is_empty());
        assert!(e.stitched.is_none());
    }

    #[test]
    fn stitched_lists_are_scored_like_a_monolithic_clustering() {
        // topic 1 fragmented across shards, stitched back into one cluster
        let shard0 = vec![(0..3).map(DocId).collect::<Vec<_>>()];
        let shard1 = vec![
            (3..6).map(DocId).collect::<Vec<_>>(),
            (6..10).map(DocId).collect(),
        ];
        let stitched: Vec<Vec<DocId>> =
            vec![(0..6).map(DocId).collect(), (6..10).map(DocId).collect()];
        let mono = evaluate(&stitched, &labels(), 0.6);
        let e = evaluate_sharded(&[shard0, shard1], Some(&stitched), &labels(), 0.6);
        let s = e.stitched.expect("stitched view was passed");
        assert_eq!(s.micro_f1.to_bits(), mono.micro_f1.to_bits());
        assert_eq!(s.macro_f1.to_bits(), mono.macro_f1.to_bits());
        // the repair shows: stitched beats the fragmented merged view
        assert!(s.micro_f1 > e.merged.micro_f1);
    }
}
