//! The 2×2 contingency table (paper Table 3) and the measures derived
//! from it.

/// Counts of documents classified by (in cluster?) × (on topic?) —
/// the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Contingency {
    /// In cluster, on topic.
    pub a: usize,
    /// In cluster, not on topic.
    pub b: usize,
    /// Not in cluster, on topic.
    pub c: usize,
    /// Not in cluster, not on topic.
    pub d: usize,
}

impl Contingency {
    /// Builds a table from raw counts.
    pub fn new(a: usize, b: usize, c: usize, d: usize) -> Self {
        Self { a, b, c, d }
    }

    /// Builds the table for one (cluster, topic) pair given:
    /// `in_cluster_on_topic`, the cluster size, the topic's total document
    /// count, and the total number of documents.
    pub fn from_counts(
        in_cluster_on_topic: usize,
        cluster_size: usize,
        topic_size: usize,
        total_docs: usize,
    ) -> Self {
        let a = in_cluster_on_topic;
        let b = cluster_size - a;
        let c = topic_size - a;
        let d = total_docs - a - b - c;
        Self { a, b, c, d }
    }

    /// Precision `p = a/(a+b)`; 0 when the cluster is empty.
    pub fn precision(&self) -> f64 {
        if self.a + self.b == 0 {
            0.0
        } else {
            self.a as f64 / (self.a + self.b) as f64
        }
    }

    /// Recall `r = a/(a+c)`; 0 when the topic is empty.
    pub fn recall(&self) -> f64 {
        if self.a + self.c == 0 {
            0.0
        } else {
            self.a as f64 / (self.a + self.c) as f64
        }
    }

    /// `F1 = 2a/(2a+b+c)` — the harmonic mean of precision and recall;
    /// 0 when undefined.
    pub fn f1(&self) -> f64 {
        let denom = 2 * self.a + self.b + self.c;
        if denom == 0 {
            0.0
        } else {
            2.0 * self.a as f64 / denom as f64
        }
    }

    /// Cell-wise sum of two tables (used for micro-averaging).
    pub fn merged(&self, other: &Contingency) -> Contingency {
        Contingency {
            a: self.a + other.a,
            b: self.b + other.b,
            c: self.c + other.c,
            d: self.d + other.d,
        }
    }

    /// Total documents accounted for.
    pub fn total(&self) -> usize {
        self.a + self.b + self.c + self.d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_cluster() {
        let t = Contingency::new(10, 0, 0, 90);
        assert_eq!(t.precision(), 1.0);
        assert_eq!(t.recall(), 1.0);
        assert_eq!(t.f1(), 1.0);
    }

    #[test]
    fn from_counts_derives_cells() {
        // 6 of the topic's 10 docs in a cluster of size 8, corpus of 100.
        let t = Contingency::from_counts(6, 8, 10, 100);
        assert_eq!(t, Contingency::new(6, 2, 4, 88));
        assert!((t.precision() - 0.75).abs() < 1e-12);
        assert!((t.recall() - 0.6).abs() < 1e-12);
        assert_eq!(t.total(), 100);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let t = Contingency::new(6, 2, 4, 88);
        let (p, r) = (t.precision(), t.recall());
        assert!((t.f1() - 2.0 * p * r / (p + r)).abs() < 1e-12);
    }

    #[test]
    fn degenerate_tables_yield_zero() {
        let t = Contingency::new(0, 0, 0, 5);
        assert_eq!(t.precision(), 0.0);
        assert_eq!(t.recall(), 0.0);
        assert_eq!(t.f1(), 0.0);
    }

    #[test]
    fn merged_sums_cells() {
        let t = Contingency::new(1, 2, 3, 4).merged(&Contingency::new(10, 20, 30, 40));
        assert_eq!(t, Contingency::new(11, 22, 33, 44));
    }

    #[test]
    fn precision_recall_bounds() {
        let t = Contingency::new(3, 7, 2, 88);
        assert!((0.0..=1.0).contains(&t.precision()));
        assert!((0.0..=1.0).contains(&t.recall()));
        assert!((0.0..=1.0).contains(&t.f1()));
    }
}
