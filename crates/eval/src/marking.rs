//! Cluster↔topic marking and micro/macro-averaged F1 (paper §6.2.3).

use std::collections::BTreeMap;
use std::hash::Hash;

use nidc_textproc::DocId;

use crate::Contingency;

/// Ground-truth labels: `DocId → topic`.
#[derive(Debug, Clone, Default)]
pub struct Labeling<L> {
    map: BTreeMap<DocId, L>,
}

impl<L: Copy + Ord> Labeling<L> {
    /// An empty labeling.
    pub fn new() -> Self {
        Self {
            map: BTreeMap::new(),
        }
    }

    /// Sets the label of one document.
    pub fn insert(&mut self, id: DocId, label: L) {
        self.map.insert(id, label);
    }

    /// The label of `id`, if any.
    pub fn get(&self, id: DocId) -> Option<L> {
        self.map.get(&id).copied()
    }

    /// Number of labelled documents.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no documents are labelled.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Documents per topic.
    pub fn topic_sizes(&self) -> BTreeMap<L, usize> {
        let mut sizes = BTreeMap::new();
        for &label in self.map.values() {
            *sizes.entry(label).or_insert(0) += 1;
        }
        sizes
    }
}

impl<L: Copy + Ord> FromIterator<(DocId, L)> for Labeling<L> {
    fn from_iter<I: IntoIterator<Item = (DocId, L)>>(iter: I) -> Self {
        Self {
            map: iter.into_iter().collect(),
        }
    }
}

/// The evaluation outcome for one system cluster.
#[derive(Debug, Clone)]
pub struct ClusterReport<L> {
    /// Index of the cluster in the input clustering.
    pub cluster: usize,
    /// Cluster size (labelled documents only).
    pub size: usize,
    /// The topic the cluster was marked with (majority topic with precision ≥
    /// threshold), if any.
    pub marked_topic: Option<L>,
    /// The contingency table against the best-precision topic (marked or
    /// not).
    pub table: Contingency,
    /// Precision against the best topic.
    pub precision: f64,
    /// Recall against the best topic.
    pub recall: f64,
    /// F1 against the best topic.
    pub f1: f64,
}

/// The full evaluation of a clustering (paper Table 4 row, Figures 1–4
/// series).
#[derive(Debug, Clone)]
pub struct Evaluation<L> {
    /// Per-cluster reports, in cluster order.
    pub clusters: Vec<ClusterReport<L>>,
    /// Micro-average F1 over the *marked* clusters (merged tables).
    pub micro_f1: f64,
    /// Macro-average F1 over the *marked* clusters (mean of per-cluster F1).
    pub macro_f1: f64,
    /// Macro-average precision over marked clusters.
    pub macro_precision: f64,
    /// Macro-average recall over marked clusters.
    pub macro_recall: f64,
    /// Topics that were detected (appeared as some cluster's mark).
    pub detected_topics: Vec<L>,
}

impl<L: Copy + Ord> Evaluation<L> {
    /// Whether `topic` was detected (some cluster is marked with it).
    pub fn detects(&self, topic: L) -> bool {
        self.detected_topics.binary_search(&topic).is_ok()
    }
}

/// Evaluates `clusters` against `labels` with the given marking-precision
/// threshold (the paper uses 0.60, [`crate::MARKING_THRESHOLD`]).
///
/// Documents without a label are ignored (the paper's evaluation only covers
/// the annotated subset). Empty clusters are skipped.
pub fn evaluate<L: Copy + Ord + Hash>(
    clusters: &[Vec<DocId>],
    labels: &Labeling<L>,
    threshold: f64,
) -> Evaluation<L> {
    let topic_sizes = labels.topic_sizes();
    let total_docs = labels.len();

    let mut reports = Vec::with_capacity(clusters.len());
    let mut merged = Contingency::default();
    let mut marked_any = false;
    let mut detected: Vec<L> = Vec::new();
    let (mut sum_f1, mut sum_p, mut sum_r, mut n_marked) = (0.0, 0.0, 0.0, 0usize);

    for (idx, members) in clusters.iter().enumerate() {
        // count labelled members per topic
        let mut counts: BTreeMap<L, usize> = BTreeMap::new();
        let mut size = 0usize;
        for &d in members {
            if let Some(l) = labels.get(d) {
                *counts.entry(l).or_insert(0) += 1;
                size += 1;
            }
        }
        if size == 0 {
            continue;
        }
        // the topic with the highest in-cluster count = highest precision
        let (&best_topic, &best_count) = counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .expect("non-empty counts");
        let table =
            Contingency::from_counts(best_count, size, topic_sizes[&best_topic], total_docs);
        let precision = table.precision();
        let marked = precision >= threshold;
        if marked {
            marked_any = true;
            merged = merged.merged(&table);
            sum_f1 += table.f1();
            sum_p += precision;
            sum_r += table.recall();
            n_marked += 1;
            detected.push(best_topic);
        }
        reports.push(ClusterReport {
            cluster: idx,
            size,
            marked_topic: marked.then_some(best_topic),
            table,
            precision,
            recall: table.recall(),
            f1: table.f1(),
        });
    }

    detected.sort_unstable();
    detected.dedup();

    Evaluation {
        clusters: reports,
        micro_f1: if marked_any { merged.f1() } else { 0.0 },
        macro_f1: if n_marked > 0 {
            sum_f1 / n_marked as f64
        } else {
            0.0
        },
        macro_precision: if n_marked > 0 {
            sum_p / n_marked as f64
        } else {
            0.0
        },
        macro_recall: if n_marked > 0 {
            sum_r / n_marked as f64
        } else {
            0.0
        },
        detected_topics: detected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> Labeling<u32> {
        // topic 1: docs 0-5 (6 docs); topic 2: docs 6-9 (4 docs)
        (0..10)
            .map(|i| (DocId(i), if i < 6 { 1 } else { 2 }))
            .collect()
    }

    #[test]
    fn perfect_clustering_scores_one() {
        let clusters = vec![
            (0..6).map(DocId).collect::<Vec<_>>(),
            (6..10).map(DocId).collect(),
        ];
        let e = evaluate(&clusters, &labels(), 0.6);
        assert!((e.micro_f1 - 1.0).abs() < 1e-12);
        assert!((e.macro_f1 - 1.0).abs() < 1e-12);
        assert_eq!(e.detected_topics, vec![1, 2]);
        assert!(e.detects(1));
        assert!(!e.detects(3));
    }

    #[test]
    fn low_precision_cluster_is_unmarked() {
        // 50/50 mixed cluster: precision 0.5 < 0.6 → unmarked
        let clusters = vec![vec![DocId(0), DocId(1), DocId(6), DocId(7)]];
        let e = evaluate(&clusters, &labels(), 0.6);
        assert_eq!(e.clusters.len(), 1);
        assert!(e.clusters[0].marked_topic.is_none());
        assert_eq!(e.micro_f1, 0.0);
        assert!(e.detected_topics.is_empty());
    }

    #[test]
    fn split_topic_micro_vs_macro() {
        // topic 1 split into two pure clusters of 3
        let clusters = vec![
            (0..3).map(DocId).collect::<Vec<_>>(),
            (3..6).map(DocId).collect(),
            (6..10).map(DocId).collect(),
        ];
        let e = evaluate(&clusters, &labels(), 0.6);
        // each sub-cluster of topic 1: p=1, r=0.5, f1=2/3; topic 2: f1=1
        assert!((e.macro_f1 - (2.0 / 3.0 + 2.0 / 3.0 + 1.0) / 3.0).abs() < 1e-12);
        // micro: merged a=10, b=0, c=6 → f1 = 20/26
        assert!((e.micro_f1 - 20.0 / 26.0).abs() < 1e-12);
        // both marks point at topic 1 → detected once
        assert_eq!(e.detected_topics, vec![1, 2]);
    }

    #[test]
    fn unlabelled_documents_are_ignored() {
        let clusters = vec![vec![DocId(0), DocId(1), DocId(99)]];
        let e = evaluate(&clusters, &labels(), 0.6);
        assert_eq!(e.clusters[0].size, 2);
        assert_eq!(e.clusters[0].table.a, 2);
    }

    #[test]
    fn empty_clusters_are_skipped() {
        let clusters = vec![vec![], (0..6).map(DocId).collect::<Vec<_>>()];
        let e = evaluate(&clusters, &labels(), 0.6);
        assert_eq!(e.clusters.len(), 1);
        assert_eq!(e.clusters[0].cluster, 1);
    }

    #[test]
    fn no_clusters_yields_zero_scores() {
        let e = evaluate(&[], &labels(), 0.6);
        assert_eq!(e.micro_f1, 0.0);
        assert_eq!(e.macro_f1, 0.0);
        assert!(e.clusters.is_empty());
    }

    #[test]
    fn threshold_is_inclusive() {
        // precision exactly 0.6: 3 of 5 docs on topic
        let clusters = vec![vec![DocId(0), DocId(1), DocId(2), DocId(6), DocId(7)]];
        let e = evaluate(&clusters, &labels(), 0.6);
        assert_eq!(e.clusters[0].marked_topic, Some(1));
    }

    #[test]
    fn macro_precision_and_recall_reported() {
        let clusters = vec![
            (0..3).map(DocId).collect::<Vec<_>>(), // p=1, r=0.5
            (6..10).map(DocId).collect(),          // p=1, r=1
        ];
        let e = evaluate(&clusters, &labels(), 0.6);
        assert!((e.macro_precision - 1.0).abs() < 1e-12);
        assert!((e.macro_recall - 0.75).abs() < 1e-12);
    }

    #[test]
    fn labeling_topic_sizes() {
        let l = labels();
        let sizes = l.topic_sizes();
        assert_eq!(sizes[&1], 6);
        assert_eq!(sizes[&2], 4);
        assert_eq!(l.len(), 10);
        assert!(!l.is_empty());
    }
}
