//! Additional clustering-quality measures (purity, NMI) used by the
//! ablation experiments — not in the paper, but standard companions.

use std::collections::BTreeMap;

use nidc_textproc::DocId;

use crate::marking::Labeling;

/// Cluster purity: `(1/N) Σ_p max_topic |C_p ∩ topic|`.
///
/// 1.0 when every cluster is topically pure; undefined (0.0) for an empty
/// clustering.
pub fn purity<L: Copy + Ord>(clusters: &[Vec<DocId>], labels: &Labeling<L>) -> f64 {
    let mut total = 0usize;
    let mut agree = 0usize;
    for members in clusters {
        let mut counts: BTreeMap<L, usize> = BTreeMap::new();
        for &d in members {
            if let Some(l) = labels.get(d) {
                *counts.entry(l).or_insert(0) += 1;
                total += 1;
            }
        }
        agree += counts.values().copied().max().unwrap_or(0);
    }
    if total == 0 {
        0.0
    } else {
        agree as f64 / total as f64
    }
}

/// Normalised mutual information between the clustering and the labels,
/// `NMI = 2·I(C;T) / (H(C) + H(T))`, over the labelled documents.
///
/// 1.0 for a clustering identical to the labels; 0.0 for independence or
/// degenerate inputs.
pub fn nmi<L: Copy + Ord>(clusters: &[Vec<DocId>], labels: &Labeling<L>) -> f64 {
    // joint counts over labelled docs only
    let mut joint: BTreeMap<(usize, L), usize> = BTreeMap::new();
    let mut cluster_tot: BTreeMap<usize, usize> = BTreeMap::new();
    let mut topic_tot: BTreeMap<L, usize> = BTreeMap::new();
    let mut n = 0usize;
    for (p, members) in clusters.iter().enumerate() {
        for &d in members {
            if let Some(l) = labels.get(d) {
                *joint.entry((p, l)).or_insert(0) += 1;
                *cluster_tot.entry(p).or_insert(0) += 1;
                *topic_tot.entry(l).or_insert(0) += 1;
                n += 1;
            }
        }
    }
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    let mut mi = 0.0;
    for (&(p, l), &c) in &joint {
        let pj = c as f64 / nf;
        let pc = cluster_tot[&p] as f64 / nf;
        let pt = topic_tot[&l] as f64 / nf;
        mi += pj * (pj / (pc * pt)).ln();
    }
    let h = |tots: &BTreeMap<_, usize>| -> f64 {
        tots.values()
            .map(|&c| {
                let p = c as f64 / nf;
                -p * p.ln()
            })
            .sum()
    };
    let hc: f64 = cluster_tot
        .values()
        .map(|&c| {
            let p = c as f64 / nf;
            -p * p.ln()
        })
        .sum();
    let ht: f64 = h(&topic_tot);
    if hc + ht == 0.0 {
        // both partitions are single blocks: identical ⇒ perfect agreement
        return 1.0;
    }
    (2.0 * mi / (hc + ht)).clamp(0.0, 1.0)
}

/// Adjusted Rand Index between the clustering and the labels, over the
/// labelled documents that appear in some cluster.
///
/// 1.0 for identical partitions; ~0.0 for random agreement; can be negative
/// for worse-than-random. Documents in no cluster are ignored.
pub fn ari<L: Copy + Ord>(clusters: &[Vec<DocId>], labels: &Labeling<L>) -> f64 {
    let mut joint: BTreeMap<(usize, L), usize> = BTreeMap::new();
    let mut cluster_tot: BTreeMap<usize, usize> = BTreeMap::new();
    let mut topic_tot: BTreeMap<L, usize> = BTreeMap::new();
    let mut n = 0usize;
    for (p, members) in clusters.iter().enumerate() {
        for &d in members {
            if let Some(l) = labels.get(d) {
                *joint.entry((p, l)).or_insert(0) += 1;
                *cluster_tot.entry(p).or_insert(0) += 1;
                *topic_tot.entry(l).or_insert(0) += 1;
                n += 1;
            }
        }
    }
    if n < 2 {
        return 0.0;
    }
    let c2 = |x: usize| (x * x.saturating_sub(1)) as f64 / 2.0;
    let sum_joint: f64 = joint.values().map(|&c| c2(c)).sum();
    let sum_clusters: f64 = cluster_tot.values().map(|&c| c2(c)).sum();
    let sum_topics: f64 = topic_tot.values().map(|&c| c2(c)).sum();
    let total_pairs = c2(n);
    let expected = sum_clusters * sum_topics / total_pairs;
    let max_index = (sum_clusters + sum_topics) / 2.0;
    if (max_index - expected).abs() < 1e-15 {
        return if (sum_joint - expected).abs() < 1e-15 {
            1.0
        } else {
            0.0
        };
    }
    (sum_joint - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> Labeling<u32> {
        (0..8)
            .map(|i| (DocId(i), if i < 4 { 1 } else { 2 }))
            .collect()
    }

    #[test]
    fn purity_of_perfect_clustering() {
        let clusters = vec![
            (0..4).map(DocId).collect::<Vec<_>>(),
            (4..8).map(DocId).collect(),
        ];
        assert!((purity(&clusters, &labels()) - 1.0).abs() < 1e-12);
        assert!((nmi(&clusters, &labels()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn purity_of_mixed_clustering() {
        // two clusters, each half topic-1 half topic-2 → purity 0.5, NMI 0.
        let clusters = vec![
            vec![DocId(0), DocId(1), DocId(4), DocId(5)],
            vec![DocId(2), DocId(3), DocId(6), DocId(7)],
        ];
        assert!((purity(&clusters, &labels()) - 0.5).abs() < 1e-12);
        assert!(nmi(&clusters, &labels()) < 1e-9);
    }

    #[test]
    fn single_cluster_has_majority_purity() {
        let clusters = vec![(0..8).map(DocId).collect::<Vec<_>>()];
        assert!((purity(&clusters, &labels()) - 0.5).abs() < 1e-12);
        // one cluster carries no information
        assert!(nmi(&clusters, &labels()) < 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(purity::<u32>(&[], &Labeling::new()), 0.0);
        assert_eq!(nmi::<u32>(&[], &Labeling::new()), 0.0);
    }

    #[test]
    fn ari_perfect_and_random() {
        let l = labels();
        let perfect = vec![
            (0..4).map(DocId).collect::<Vec<_>>(),
            (4..8).map(DocId).collect(),
        ];
        assert!((ari(&perfect, &l) - 1.0).abs() < 1e-12);
        // anti-correlated split: each cluster half/half
        let mixed = vec![
            vec![DocId(0), DocId(1), DocId(4), DocId(5)],
            vec![DocId(2), DocId(3), DocId(6), DocId(7)],
        ];
        assert!(ari(&mixed, &l).abs() < 0.2, "ari = {}", ari(&mixed, &l));
    }

    #[test]
    fn ari_degenerate_inputs() {
        assert_eq!(ari::<u32>(&[], &Labeling::new()), 0.0);
        let l: Labeling<u32> = [(DocId(0), 1)].into_iter().collect();
        assert_eq!(ari(&[vec![DocId(0)]], &l), 0.0); // single doc: undefined → 0
                                                     // both partitions single block → identical → 1
        let l2: Labeling<u32> = [(DocId(0), 1), (DocId(1), 1)].into_iter().collect();
        assert_eq!(ari(&[vec![DocId(0), DocId(1)]], &l2), 1.0);
    }

    #[test]
    fn splitting_a_topic_keeps_purity_but_lowers_nmi() {
        let clusters_split = vec![
            vec![DocId(0), DocId(1)],
            vec![DocId(2), DocId(3)],
            (4..8).map(DocId).collect::<Vec<_>>(),
        ];
        let clusters_exact = vec![
            (0..4).map(DocId).collect::<Vec<_>>(),
            (4..8).map(DocId).collect(),
        ];
        let l = labels();
        assert!((purity(&clusters_split, &l) - 1.0).abs() < 1e-12);
        assert!(nmi(&clusters_split, &l) < nmi(&clusters_exact, &l));
    }
}
