//! Additional clustering-quality measures (purity, NMI) used by the
//! ablation experiments — not in the paper, but standard companions.

use std::collections::BTreeMap;

use nidc_textproc::DocId;

use crate::marking::Labeling;

/// Cluster purity: `(1/N) Σ_p max_topic |C_p ∩ topic|`.
///
/// 1.0 when every cluster is topically pure; undefined (0.0) for an empty
/// clustering.
pub fn purity<L: Copy + Ord>(clusters: &[Vec<DocId>], labels: &Labeling<L>) -> f64 {
    let mut total = 0usize;
    let mut agree = 0usize;
    for members in clusters {
        let mut counts: BTreeMap<L, usize> = BTreeMap::new();
        for &d in members {
            if let Some(l) = labels.get(d) {
                *counts.entry(l).or_insert(0) += 1;
                total += 1;
            }
        }
        agree += counts.values().copied().max().unwrap_or(0);
    }
    if total == 0 {
        0.0
    } else {
        agree as f64 / total as f64
    }
}

/// Normalised mutual information between the clustering and the labels,
/// `NMI = 2·I(C;T) / (H(C) + H(T))`, over the labelled documents.
///
/// 1.0 for a clustering identical to the labels; 0.0 for independence or
/// degenerate inputs.
pub fn nmi<L: Copy + Ord>(clusters: &[Vec<DocId>], labels: &Labeling<L>) -> f64 {
    // joint counts over labelled docs only
    let mut joint: BTreeMap<(usize, L), usize> = BTreeMap::new();
    let mut cluster_tot: BTreeMap<usize, usize> = BTreeMap::new();
    let mut topic_tot: BTreeMap<L, usize> = BTreeMap::new();
    let mut n = 0usize;
    for (p, members) in clusters.iter().enumerate() {
        for &d in members {
            if let Some(l) = labels.get(d) {
                *joint.entry((p, l)).or_insert(0) += 1;
                *cluster_tot.entry(p).or_insert(0) += 1;
                *topic_tot.entry(l).or_insert(0) += 1;
                n += 1;
            }
        }
    }
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    let mut mi = 0.0;
    for (&(p, l), &c) in &joint {
        let pj = c as f64 / nf;
        let pc = cluster_tot[&p] as f64 / nf;
        let pt = topic_tot[&l] as f64 / nf;
        mi += pj * (pj / (pc * pt)).ln();
    }
    let h = |tots: &BTreeMap<_, usize>| -> f64 {
        tots.values()
            .map(|&c| {
                let p = c as f64 / nf;
                -p * p.ln()
            })
            .sum()
    };
    let hc: f64 = cluster_tot
        .values()
        .map(|&c| {
            let p = c as f64 / nf;
            -p * p.ln()
        })
        .sum();
    let ht: f64 = h(&topic_tot);
    if hc + ht == 0.0 {
        // both partitions are single blocks: identical ⇒ perfect agreement
        return 1.0;
    }
    (2.0 * mi / (hc + ht)).clamp(0.0, 1.0)
}

/// Adjusted Rand Index between the clustering and the labels, over the
/// labelled documents that appear in some cluster.
///
/// 1.0 for identical partitions; ~0.0 for random agreement; can be negative
/// for worse-than-random. Documents in no cluster are ignored.
pub fn ari<L: Copy + Ord>(clusters: &[Vec<DocId>], labels: &Labeling<L>) -> f64 {
    let mut joint: BTreeMap<(usize, L), usize> = BTreeMap::new();
    let mut cluster_tot: BTreeMap<usize, usize> = BTreeMap::new();
    let mut topic_tot: BTreeMap<L, usize> = BTreeMap::new();
    let mut n = 0usize;
    for (p, members) in clusters.iter().enumerate() {
        for &d in members {
            if let Some(l) = labels.get(d) {
                *joint.entry((p, l)).or_insert(0) += 1;
                *cluster_tot.entry(p).or_insert(0) += 1;
                *topic_tot.entry(l).or_insert(0) += 1;
                n += 1;
            }
        }
    }
    if n < 2 {
        return 0.0;
    }
    let c2 = |x: usize| (x * x.saturating_sub(1)) as f64 / 2.0;
    let sum_joint: f64 = joint.values().map(|&c| c2(c)).sum();
    let sum_clusters: f64 = cluster_tot.values().map(|&c| c2(c)).sum();
    let sum_topics: f64 = topic_tot.values().map(|&c| c2(c)).sum();
    let total_pairs = c2(n);
    let expected = sum_clusters * sum_topics / total_pairs;
    let max_index = (sum_clusters + sum_topics) / 2.0;
    if (max_index - expected).abs() < 1e-15 {
        return if (sum_joint - expected).abs() < 1e-15 {
            1.0
        } else {
            0.0
        };
    }
    (sum_joint - expected) / (max_index - expected)
}

/// Co-membership stability between two consecutive partitions of an
/// evolving document set: the Rand index restricted to documents present
/// in both windows — the fraction of surviving document pairs whose
/// together/apart relation is preserved.
///
/// 1.0 means the new window re-partitions the surviving documents exactly
/// as the old one did; decay-driven expiry and fresh arrivals do not count
/// against it (a document in only one window simply drops out of the pair
/// population). This is the label-free companion of [`ari`] for online
/// streams, where consecutive windows have no shared ground truth but do
/// share documents. Degenerate inputs (fewer than two surviving documents)
/// score 1.0 — nothing observable moved.
pub fn consecutive_stability(prev: &[Vec<DocId>], next: &[Vec<DocId>]) -> f64 {
    let index_of = |partition: &[Vec<DocId>]| {
        let mut of: BTreeMap<DocId, usize> = BTreeMap::new();
        for (p, members) in partition.iter().enumerate() {
            for &d in members {
                of.insert(d, p);
            }
        }
        of
    };
    let prev_of = index_of(prev);
    let next_of = index_of(next);
    // contingency over the surviving documents: cell (p, q) counts docs in
    // prev cluster p and next cluster q
    let mut joint: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    let mut prev_tot: BTreeMap<usize, usize> = BTreeMap::new();
    let mut next_tot: BTreeMap<usize, usize> = BTreeMap::new();
    let mut n = 0usize;
    for (&d, &p) in &prev_of {
        if let Some(&q) = next_of.get(&d) {
            *joint.entry((p, q)).or_insert(0) += 1;
            *prev_tot.entry(p).or_insert(0) += 1;
            *next_tot.entry(q).or_insert(0) += 1;
            n += 1;
        }
    }
    if n < 2 {
        return 1.0;
    }
    let c2 = |x: usize| (x * x.saturating_sub(1)) as f64 / 2.0;
    let sum_joint: f64 = joint.values().map(|&c| c2(c)).sum();
    let sum_prev: f64 = prev_tot.values().map(|&c| c2(c)).sum();
    let sum_next: f64 = next_tot.values().map(|&c| c2(c)).sum();
    let total = c2(n);
    // Rand index: pairs together in both (sum_joint) plus pairs apart in
    // both (total − sum_prev − sum_next + sum_joint), over all pairs
    ((total + 2.0 * sum_joint - sum_prev - sum_next) / total).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> Labeling<u32> {
        (0..8)
            .map(|i| (DocId(i), if i < 4 { 1 } else { 2 }))
            .collect()
    }

    #[test]
    fn purity_of_perfect_clustering() {
        let clusters = vec![
            (0..4).map(DocId).collect::<Vec<_>>(),
            (4..8).map(DocId).collect(),
        ];
        assert!((purity(&clusters, &labels()) - 1.0).abs() < 1e-12);
        assert!((nmi(&clusters, &labels()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn purity_of_mixed_clustering() {
        // two clusters, each half topic-1 half topic-2 → purity 0.5, NMI 0.
        let clusters = vec![
            vec![DocId(0), DocId(1), DocId(4), DocId(5)],
            vec![DocId(2), DocId(3), DocId(6), DocId(7)],
        ];
        assert!((purity(&clusters, &labels()) - 0.5).abs() < 1e-12);
        assert!(nmi(&clusters, &labels()) < 1e-9);
    }

    #[test]
    fn single_cluster_has_majority_purity() {
        let clusters = vec![(0..8).map(DocId).collect::<Vec<_>>()];
        assert!((purity(&clusters, &labels()) - 0.5).abs() < 1e-12);
        // one cluster carries no information
        assert!(nmi(&clusters, &labels()) < 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(purity::<u32>(&[], &Labeling::new()), 0.0);
        assert_eq!(nmi::<u32>(&[], &Labeling::new()), 0.0);
    }

    #[test]
    fn ari_perfect_and_random() {
        let l = labels();
        let perfect = vec![
            (0..4).map(DocId).collect::<Vec<_>>(),
            (4..8).map(DocId).collect(),
        ];
        assert!((ari(&perfect, &l) - 1.0).abs() < 1e-12);
        // anti-correlated split: each cluster half/half
        let mixed = vec![
            vec![DocId(0), DocId(1), DocId(4), DocId(5)],
            vec![DocId(2), DocId(3), DocId(6), DocId(7)],
        ];
        assert!(ari(&mixed, &l).abs() < 0.2, "ari = {}", ari(&mixed, &l));
    }

    #[test]
    fn ari_degenerate_inputs() {
        assert_eq!(ari::<u32>(&[], &Labeling::new()), 0.0);
        let l: Labeling<u32> = [(DocId(0), 1)].into_iter().collect();
        assert_eq!(ari(&[vec![DocId(0)]], &l), 0.0); // single doc: undefined → 0
                                                     // both partitions single block → identical → 1
        let l2: Labeling<u32> = [(DocId(0), 1), (DocId(1), 1)].into_iter().collect();
        assert_eq!(ari(&[vec![DocId(0), DocId(1)]], &l2), 1.0);
    }

    #[test]
    fn splitting_a_topic_keeps_purity_but_lowers_nmi() {
        let clusters_split = vec![
            vec![DocId(0), DocId(1)],
            vec![DocId(2), DocId(3)],
            (4..8).map(DocId).collect::<Vec<_>>(),
        ];
        let clusters_exact = vec![
            (0..4).map(DocId).collect::<Vec<_>>(),
            (4..8).map(DocId).collect(),
        ];
        let l = labels();
        assert!((purity(&clusters_split, &l) - 1.0).abs() < 1e-12);
        assert!(nmi(&clusters_split, &l) < nmi(&clusters_exact, &l));
    }

    #[test]
    fn identical_consecutive_windows_are_perfectly_stable() {
        let w = vec![
            (0..4).map(DocId).collect::<Vec<_>>(),
            (4..8).map(DocId).collect(),
        ];
        assert_eq!(consecutive_stability(&w, &w), 1.0);
    }

    #[test]
    fn splitting_one_cluster_costs_exactly_the_broken_pairs() {
        // {1,2,3} → {1} + {2,3}: pairs (1,2) and (1,3) break, (2,3) holds
        let prev = vec![vec![DocId(1), DocId(2), DocId(3)]];
        let next = vec![vec![DocId(1)], vec![DocId(2), DocId(3)]];
        let s = consecutive_stability(&prev, &next);
        assert!((s - 1.0 / 3.0).abs() < 1e-12, "s = {s}");
        // symmetric: a merge breaks the same apart-pairs
        assert_eq!(consecutive_stability(&next, &prev), s);
    }

    #[test]
    fn expired_and_fresh_docs_do_not_count_against_stability() {
        // doc 9 expires, doc 10 arrives; the surviving pair population is
        // unchanged, so the score matches the fixture above exactly
        let prev = vec![vec![DocId(1), DocId(2), DocId(3)], vec![DocId(9)]];
        let next = vec![vec![DocId(1), DocId(10)], vec![DocId(2), DocId(3)]];
        let s = consecutive_stability(&prev, &next);
        assert!((s - 1.0 / 3.0).abs() < 1e-12, "s = {s}");
    }

    #[test]
    fn stability_degenerate_inputs_score_one() {
        assert_eq!(consecutive_stability(&[], &[]), 1.0);
        // disjoint windows: no surviving pairs, nothing observable moved
        let prev = vec![vec![DocId(0), DocId(1)]];
        let next = vec![vec![DocId(2), DocId(3)]];
        assert_eq!(consecutive_stability(&prev, &next), 1.0);
    }
}
