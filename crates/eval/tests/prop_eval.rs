//! Property tests for the evaluation framework: measure bounds, marking
//! consistency, and agreement between the aggregate measures.

use nidc_eval::{evaluate, nmi, purity, Contingency, Labeling};
use nidc_textproc::DocId;
use proptest::prelude::*;

/// Generates a random labelled universe and clustering over it.
fn scenario() -> impl Strategy<Value = (Vec<Vec<DocId>>, Labeling<u32>)> {
    // up to 40 docs, up to 5 topics, up to 6 clusters; some docs unclustered
    prop::collection::vec((0u32..5, 0usize..6, prop::bool::ANY), 1..40).prop_map(|docs| {
        let mut clusters: Vec<Vec<DocId>> = vec![Vec::new(); 6];
        let mut labels = Labeling::new();
        for (i, (topic, cluster, clustered)) in docs.into_iter().enumerate() {
            let id = DocId(i as u64);
            labels.insert(id, topic);
            if clustered {
                clusters[cluster].push(id);
            }
        }
        (clusters, labels)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// All aggregate measures stay in [0, 1].
    #[test]
    fn measures_are_bounded((clusters, labels) in scenario()) {
        let e = evaluate(&clusters, &labels, 0.6);
        for v in [e.micro_f1, e.macro_f1, e.macro_precision, e.macro_recall] {
            prop_assert!((0.0..=1.0).contains(&v), "measure out of range: {v}");
        }
        prop_assert!((0.0..=1.0).contains(&purity(&clusters, &labels)));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&nmi(&clusters, &labels)));
    }

    /// Every marked cluster clears the precision threshold; every unmarked
    /// non-empty cluster is below it.
    #[test]
    fn marking_respects_threshold((clusters, labels) in scenario(), threshold in 0.1f64..0.95) {
        let e = evaluate(&clusters, &labels, threshold);
        for r in &e.clusters {
            match r.marked_topic {
                Some(_) => prop_assert!(r.precision >= threshold - 1e-12),
                None => prop_assert!(r.precision < threshold),
            }
        }
    }

    /// detected_topics is exactly the set of marked topics, sorted and
    /// deduplicated.
    #[test]
    fn detected_topics_match_marks((clusters, labels) in scenario()) {
        let e = evaluate(&clusters, &labels, 0.6);
        let mut expected: Vec<u32> = e
            .clusters
            .iter()
            .filter_map(|r| r.marked_topic)
            .collect();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(&e.detected_topics, &expected);
        for &t in &expected {
            prop_assert!(e.detects(t));
        }
    }

    /// The ground-truth clustering scores perfectly on every measure.
    #[test]
    fn ground_truth_is_perfect(topics in prop::collection::vec(0u32..4, 2..30)) {
        let labels: Labeling<u32> = topics
            .iter()
            .enumerate()
            .map(|(i, &t)| (DocId(i as u64), t))
            .collect();
        let mut clusters: Vec<Vec<DocId>> = vec![Vec::new(); 4];
        for (i, &t) in topics.iter().enumerate() {
            clusters[t as usize].push(DocId(i as u64));
        }
        let e = evaluate(&clusters, &labels, 0.6);
        prop_assert!((e.micro_f1 - 1.0).abs() < 1e-12);
        prop_assert!((e.macro_f1 - 1.0).abs() < 1e-12);
        prop_assert!((purity(&clusters, &labels) - 1.0).abs() < 1e-12);
    }

    /// Contingency identities: precision/recall/F1 agree with the closed
    /// forms, and merging preserves the total.
    #[test]
    fn contingency_identities(a in 0usize..50, b in 0usize..50, c in 0usize..50, d in 0usize..50) {
        let t = Contingency::new(a, b, c, d);
        if a + b > 0 {
            prop_assert!((t.precision() - a as f64 / (a + b) as f64).abs() < 1e-12);
        }
        if a + c > 0 {
            prop_assert!((t.recall() - a as f64 / (a + c) as f64).abs() < 1e-12);
        }
        if 2 * a + b + c > 0 {
            let f1 = 2.0 * a as f64 / (2 * a + b + c) as f64;
            prop_assert!((t.f1() - f1).abs() < 1e-12);
        }
        let m = t.merged(&t);
        prop_assert_eq!(m.total(), 2 * t.total());
        // merging a table with itself preserves p, r, f1
        prop_assert!((m.precision() - t.precision()).abs() < 1e-12);
        prop_assert!((m.f1() - t.f1()).abs() < 1e-12);
    }

    /// Splitting one pure cluster in two never *increases* micro F1.
    #[test]
    fn splitting_never_helps_micro(n in 4usize..30, cut in 1usize..3) {
        let labels: Labeling<u32> = (0..n).map(|i| (DocId(i as u64), 1u32)).collect();
        let whole = vec![(0..n).map(|i| DocId(i as u64)).collect::<Vec<_>>()];
        let cut = cut.min(n - 1);
        let split = vec![
            (0..cut).map(|i| DocId(i as u64)).collect::<Vec<_>>(),
            (cut..n).map(|i| DocId(i as u64)).collect::<Vec<_>>(),
        ];
        let e_whole = evaluate(&whole, &labels, 0.6);
        let e_split = evaluate(&split, &labels, 0.6);
        prop_assert!(e_split.micro_f1 <= e_whole.micro_f1 + 1e-12);
    }
}
