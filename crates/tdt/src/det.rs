//! DET analysis and the TDT detection cost — the official evaluation
//! methodology of the TDT programme the paper situates itself in (§2.1).
//!
//! A detector that emits a *score* per trial (here: the first-story novelty
//! score, where **lower** means "more likely a first story") is evaluated by
//! sweeping the decision threshold and plotting the *miss rate* against the
//! *false-alarm rate* — the DET curve — and by the minimum of the TDT
//! detection cost
//!
//! ```text
//! C_det = C_miss·P_miss·P_target + C_fa·P_fa·(1 − P_target)
//! ```
//!
//! normalised by `min(C_miss·P_target, C_fa·(1 − P_target))` so that 1.0 is
//! the cost of the trivial detector. TDT used C_miss = 1, C_fa = 0.1,
//! P_target = 0.02; those are the defaults here.

/// One evaluated trial: ground truth plus the detector's score
/// (lower score = detector leans "target").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trial {
    /// Whether the trial really is a target (e.g. a true first story).
    pub target: bool,
    /// The detector's score; the decision rule is `score < threshold`.
    pub score: f64,
}

/// One point of a DET curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetPoint {
    /// Decision threshold producing this point.
    pub threshold: f64,
    /// Miss rate `P_miss` = missed targets / targets.
    pub p_miss: f64,
    /// False-alarm rate `P_fa` = false alarms / non-targets.
    pub p_fa: f64,
}

/// TDT cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Cost of a miss (TDT: 1.0).
    pub c_miss: f64,
    /// Cost of a false alarm (TDT: 0.1).
    pub c_fa: f64,
    /// Prior probability of a target (TDT: 0.02).
    pub p_target: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        Self {
            c_miss: 1.0,
            c_fa: 0.1,
            p_target: 0.02,
        }
    }
}

impl CostParams {
    /// The normalised detection cost at one DET point.
    pub fn normalized_cost(&self, point: &DetPoint) -> f64 {
        let raw = self.c_miss * point.p_miss * self.p_target
            + self.c_fa * point.p_fa * (1.0 - self.p_target);
        let norm = (self.c_miss * self.p_target).min(self.c_fa * (1.0 - self.p_target));
        raw / norm
    }
}

/// Sweeps every distinct score as a threshold and returns the DET curve
/// (sorted by threshold, including the two trivial endpoints).
///
/// Returns an empty curve when the trials contain no targets or no
/// non-targets (both rates would be degenerate).
pub fn det_curve(trials: &[Trial]) -> Vec<DetPoint> {
    let n_target = trials.iter().filter(|t| t.target).count();
    let n_other = trials.len() - n_target;
    if n_target == 0 || n_other == 0 {
        return Vec::new();
    }
    let mut thresholds: Vec<f64> = trials.iter().map(|t| t.score).collect();
    thresholds.push(f64::INFINITY); // declare-everything endpoint
    thresholds.push(0.0); // declare-nothing endpoint (scores are ≥ 0)
    thresholds.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    thresholds.dedup();
    thresholds
        .into_iter()
        .map(|threshold| {
            let mut misses = 0usize;
            let mut fas = 0usize;
            for t in trials {
                let declared = t.score < threshold;
                if t.target && !declared {
                    misses += 1;
                }
                if !t.target && declared {
                    fas += 1;
                }
            }
            DetPoint {
                threshold,
                p_miss: misses as f64 / n_target as f64,
                p_fa: fas as f64 / n_other as f64,
            }
        })
        .collect()
}

/// The DET point minimising the normalised TDT detection cost, with the
/// cost value. `None` for degenerate trial sets.
pub fn min_cost(trials: &[Trial], params: &CostParams) -> Option<(DetPoint, f64)> {
    det_curve(trials)
        .into_iter()
        .map(|p| (p, params.normalized_cost(&p)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trials() -> Vec<Trial> {
        // targets score low, non-targets high — a good detector
        vec![
            Trial {
                target: true,
                score: 0.05,
            },
            Trial {
                target: true,
                score: 0.10,
            },
            Trial {
                target: true,
                score: 0.30,
            },
            Trial {
                target: false,
                score: 0.40,
            },
            Trial {
                target: false,
                score: 0.60,
            },
            Trial {
                target: false,
                score: 0.80,
            },
        ]
    }

    #[test]
    fn curve_endpoints_are_trivial_detectors() {
        let curve = det_curve(&trials());
        let first = curve.first().unwrap(); // threshold 0: declare nothing
        assert_eq!(first.p_miss, 1.0);
        assert_eq!(first.p_fa, 0.0);
        let last = curve.last().unwrap(); // threshold ∞: declare everything
        assert_eq!(last.p_miss, 0.0);
        assert_eq!(last.p_fa, 1.0);
    }

    #[test]
    fn perfectly_separable_scores_reach_zero_cost() {
        let (point, cost) = min_cost(&trials(), &CostParams::default()).unwrap();
        assert_eq!(point.p_miss, 0.0);
        assert_eq!(point.p_fa, 0.0);
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn overlapping_scores_have_positive_cost() {
        let mixed = vec![
            Trial {
                target: true,
                score: 0.5,
            },
            Trial {
                target: false,
                score: 0.4,
            },
            Trial {
                target: true,
                score: 0.3,
            },
            Trial {
                target: false,
                score: 0.6,
            },
        ];
        let (_, cost) = min_cost(&mixed, &CostParams::default()).unwrap();
        assert!(cost > 0.0);
        // and never worse than the trivial detector
        assert!(cost <= 1.0 + 1e-12);
    }

    #[test]
    fn miss_rate_decreases_with_threshold() {
        let curve = det_curve(&trials());
        for w in curve.windows(2) {
            assert!(w[0].p_miss >= w[1].p_miss);
            assert!(w[0].p_fa <= w[1].p_fa);
        }
    }

    #[test]
    fn degenerate_trials_yield_empty_curve() {
        assert!(det_curve(&[]).is_empty());
        let only_targets = vec![Trial {
            target: true,
            score: 0.1,
        }];
        assert!(det_curve(&only_targets).is_empty());
        assert!(min_cost(&only_targets, &CostParams::default()).is_none());
    }

    #[test]
    fn cost_normalisation_bounds() {
        // the all-or-nothing detectors both cost ≥ 1 under TDT weights
        let p = CostParams::default();
        let declare_nothing = DetPoint {
            threshold: 0.0,
            p_miss: 1.0,
            p_fa: 0.0,
        };
        let declare_all = DetPoint {
            threshold: f64::INFINITY,
            p_miss: 0.0,
            p_fa: 1.0,
        };
        assert!((p.normalized_cost(&declare_nothing) - 1.0).abs() < 1e-12);
        assert!(p.normalized_cost(&declare_all) >= 1.0);
    }
}
