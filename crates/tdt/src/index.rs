//! An inverted index over φ vectors for fast maximum-similarity search.

use std::collections::BTreeMap;

use nidc_textproc::{DocId, SparseVector, TermId};

/// Inverted index `term → [(doc, φ weight)]` over contribution vectors.
///
/// `sim(q, d) = φ_q · φ_d` only receives contributions from terms the two
/// documents share, so scoring a query against *all* indexed documents costs
/// `Σ_{t ∈ q} |postings(t)|` — independent of corpus size for rare terms.
///
/// The index holds plain copies of the φ weights; it is rebuilt (or edited
/// with [`SimIndex::insert`]/[`SimIndex::remove`]) whenever the caller's φ
/// vectors are refreshed.
#[derive(Debug, Clone, Default)]
pub struct SimIndex {
    postings: BTreeMap<TermId, Vec<(DocId, f64)>>,
    docs: BTreeMap<DocId, f64>, // id → |φ|² (self similarity)
}

impl SimIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an index over `(id, φ)` pairs.
    pub fn build<'a, I>(entries: I) -> Self
    where
        I: IntoIterator<Item = (DocId, &'a SparseVector)>,
    {
        let mut index = Self::new();
        for (id, phi) in entries {
            index.insert(id, phi);
        }
        index
    }

    /// Adds one document's φ vector.
    pub fn insert(&mut self, id: DocId, phi: &SparseVector) {
        for (t, w) in phi.iter() {
            self.postings.entry(t).or_default().push((id, w));
        }
        self.docs.insert(id, phi.norm_sq());
    }

    /// Removes a document (postings are pruned lazily but completely).
    pub fn remove(&mut self, id: DocId, phi: &SparseVector) {
        for (t, _) in phi.iter() {
            if let Some(list) = self.postings.get_mut(&t) {
                list.retain(|&(d, _)| d != id);
                if list.is_empty() {
                    self.postings.remove(&t);
                }
            }
        }
        self.docs.remove(&id);
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Whether `id` is indexed.
    pub fn contains(&self, id: DocId) -> bool {
        self.docs.contains_key(&id)
    }

    /// Document frequency of `term` among the indexed documents.
    pub fn df(&self, term: TermId) -> usize {
        self.postings.get(&term).map_or(0, Vec::len)
    }

    /// The portion of `‖query‖²` carried by terms at least one indexed
    /// document shares — the maximum similarity mass the indexed collection
    /// could possibly "see" of `query`. Terms unknown to the index cannot
    /// contribute to any similarity and are excluded.
    pub fn shareable_norm_sq(&self, query: &SparseVector) -> f64 {
        query
            .iter()
            .filter(|&(t, _)| self.postings.contains_key(&t))
            .map(|(_, w)| w * w)
            .sum()
    }

    /// Scores `query` against every indexed document it shares a term with,
    /// returning the accumulated `φ_q·φ_d` per document.
    pub fn scores(&self, query: &SparseVector) -> BTreeMap<DocId, f64> {
        let mut acc: BTreeMap<DocId, f64> = BTreeMap::new();
        for (t, qw) in query.iter() {
            if let Some(list) = self.postings.get(&t) {
                for &(d, w) in list {
                    *acc.entry(d).or_insert(0.0) += qw * w;
                }
            }
        }
        acc
    }

    /// The most similar indexed document to `query` (excluding `exclude`,
    /// typically the query document itself), with its similarity.
    /// `None` when nothing shares a term.
    pub fn nearest(&self, query: &SparseVector, exclude: Option<DocId>) -> Option<(DocId, f64)> {
        self.scores(query)
            .into_iter()
            .filter(|&(d, _)| Some(d) != exclude)
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// The `n` most similar documents, descending.
    pub fn top_n(
        &self,
        query: &SparseVector,
        n: usize,
        exclude: Option<DocId>,
    ) -> Vec<(DocId, f64)> {
        let mut hits: Vec<(DocId, f64)> = self
            .scores(query)
            .into_iter()
            .filter(|&(d, _)| Some(d) != exclude)
            .collect();
        hits.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        hits.truncate(n);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phi(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
    }

    fn sample() -> (SimIndex, Vec<SparseVector>) {
        let vecs = vec![
            phi(&[(0, 0.5), (1, 0.3)]),
            phi(&[(0, 0.4), (2, 0.2)]),
            phi(&[(5, 0.9)]),
        ];
        let index = SimIndex::build(vecs.iter().enumerate().map(|(i, v)| (DocId(i as u64), v)));
        (index, vecs)
    }

    #[test]
    fn scores_match_brute_force_dots() {
        let (index, vecs) = sample();
        let q = phi(&[(0, 1.0), (2, 1.0)]);
        let scores = index.scores(&q);
        for (i, v) in vecs.iter().enumerate() {
            let expected = q.dot(v);
            let got = scores.get(&DocId(i as u64)).copied().unwrap_or(0.0);
            assert!((got - expected).abs() < 1e-12, "doc {i}");
        }
    }

    #[test]
    fn nearest_excludes_self() {
        let (index, vecs) = sample();
        let (d, s) = index.nearest(&vecs[0], Some(DocId(0))).unwrap();
        assert_eq!(d, DocId(1)); // shares term 0
        assert!((s - vecs[0].dot(&vecs[1])).abs() < 1e-12);
    }

    #[test]
    fn nearest_none_when_disjoint() {
        let (index, _) = sample();
        assert!(index.nearest(&phi(&[(9, 1.0)]), None).is_none());
    }

    #[test]
    fn top_n_is_sorted_and_truncated() {
        let (index, _) = sample();
        let q = phi(&[(0, 1.0), (5, 1.0)]);
        let top = index.top_n(&q, 2, None);
        assert_eq!(top.len(), 2);
        assert!(top[0].1 >= top[1].1);
    }

    #[test]
    fn remove_erases_document_completely() {
        let (mut index, vecs) = sample();
        index.remove(DocId(0), &vecs[0]);
        assert!(!index.contains(DocId(0)));
        assert_eq!(index.len(), 2);
        let q = phi(&[(1, 1.0)]); // term 1 only appeared in doc 0
        assert!(index.scores(&q).is_empty());
    }

    #[test]
    fn insert_after_remove_works() {
        let (mut index, vecs) = sample();
        index.remove(DocId(2), &vecs[2]);
        index.insert(DocId(2), &vecs[2]);
        assert!(index.contains(DocId(2)));
        let (d, _) = index.nearest(&phi(&[(5, 1.0)]), None).unwrap();
        assert_eq!(d, DocId(2));
    }

    #[test]
    fn empty_index_behaviour() {
        let index = SimIndex::new();
        assert!(index.is_empty());
        assert!(index.nearest(&phi(&[(0, 1.0)]), None).is_none());
        assert!(index.top_n(&phi(&[(0, 1.0)]), 3, None).is_empty());
    }
}
