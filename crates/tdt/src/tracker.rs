//! Topic tracking: follow a stream for stories similar to a set of example
//! stories (TDT's tracking task, §2.1 of the paper).

use nidc_textproc::SparseVector;

/// Configuration for [`TopicTracker`].
#[derive(Debug, Clone)]
pub struct TrackerConfig {
    /// Cosine threshold against the topic profile for a document to count
    /// as on-topic.
    pub threshold: f64,
    /// Adaptive tracking: absorb every on-topic document into the profile
    /// (classic TDT "adaptive tracking"; off = fixed profile from the
    /// seed stories only).
    pub adaptive: bool,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        Self {
            threshold: 0.35,
            adaptive: true,
        }
    }
}

/// A tracker for one topic, seeded with example story vectors.
///
/// Works on any vector representation; for the novelty semantics pass the φ
/// (contribution) vectors of `nidc_similarity::DocVectors`, so that decayed
/// old stories pull the profile less than fresh ones. Scores are cosines,
/// so the threshold is scale-free.
///
/// ```
/// use nidc_tdt::{TopicTracker, TrackerConfig};
/// use nidc_textproc::{SparseVector, TermId};
///
/// let v = |p: &[(u32, f64)]| SparseVector::from_entries(
///     p.iter().map(|&(i, w)| (TermId(i), w)).collect());
/// let mut tracker = TopicTracker::new(
///     [v(&[(0, 1.0), (1, 0.5)])], TrackerConfig::default()).unwrap();
/// assert!(tracker.assess(&v(&[(0, 0.8), (1, 0.6)])).1); // on topic
/// assert!(!tracker.assess(&v(&[(9, 1.0)])).1);          // unrelated
/// ```
#[derive(Debug, Clone)]
pub struct TopicTracker {
    profile: SparseVector,
    config: TrackerConfig,
    tracked: usize,
}

impl TopicTracker {
    /// Builds a tracker from at least one non-zero seed vector. Returns
    /// `None` if every seed is the zero vector.
    pub fn new<I>(seeds: I, config: TrackerConfig) -> Option<Self>
    where
        I: IntoIterator<Item = SparseVector>,
    {
        let mut profile = SparseVector::new();
        for s in seeds {
            profile = profile.add_scaled(&s, 1.0);
        }
        if profile.norm() == 0.0 {
            return None;
        }
        Some(Self {
            profile,
            config,
            tracked: 0,
        })
    }

    /// The current (unnormalised) topic profile.
    pub fn profile(&self) -> &SparseVector {
        &self.profile
    }

    /// Number of documents absorbed so far (adaptive mode only).
    pub fn tracked(&self) -> usize {
        self.tracked
    }

    /// The cosine of `doc` against the profile.
    pub fn score(&self, doc: &SparseVector) -> f64 {
        self.profile.cosine(doc)
    }

    /// Scores `doc` and, in adaptive mode, absorbs it when on-topic.
    /// Returns `(score, on_topic)`.
    pub fn assess(&mut self, doc: &SparseVector) -> (f64, bool) {
        let score = self.score(doc);
        let on_topic = score >= self.config.threshold;
        if on_topic && self.config.adaptive {
            self.profile = self.profile.add_scaled(doc, 1.0);
            self.tracked += 1;
        }
        (score, on_topic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nidc_textproc::TermId;

    fn v(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
    }

    #[test]
    fn tracks_related_rejects_unrelated() {
        let mut t =
            TopicTracker::new([v(&[(0, 1.0), (1, 1.0)])], TrackerConfig::default()).unwrap();
        let (s, on) = t.assess(&v(&[(0, 1.0), (1, 0.8)]));
        assert!(on && s > 0.9);
        let (s, on) = t.assess(&v(&[(7, 1.0)]));
        assert!(!on && s == 0.0);
    }

    #[test]
    fn adaptive_profile_drifts_with_the_story() {
        let mut t = TopicTracker::new(
            [v(&[(0, 1.0)])],
            TrackerConfig {
                threshold: 0.3,
                adaptive: true,
            },
        )
        .unwrap();
        // a follow-up introduces term 1; after absorption, term-1-only
        // documents become trackable
        assert!(t.assess(&v(&[(0, 1.0), (1, 1.0)])).1);
        assert_eq!(t.tracked(), 1);
        let (s, on) = t.assess(&v(&[(1, 1.0)]));
        assert!(on, "drifted profile should track the new wording (s={s})");
    }

    #[test]
    fn non_adaptive_profile_is_fixed() {
        let mut t = TopicTracker::new(
            [v(&[(0, 1.0)])],
            TrackerConfig {
                threshold: 0.3,
                adaptive: false,
            },
        )
        .unwrap();
        assert!(t.assess(&v(&[(0, 1.0), (1, 1.0)])).1);
        assert_eq!(t.tracked(), 0);
        assert!(!t.assess(&v(&[(1, 1.0)])).1, "fixed profile must not drift");
    }

    #[test]
    fn zero_seeds_are_rejected() {
        assert!(TopicTracker::new([SparseVector::new()], TrackerConfig::default()).is_none());
        assert!(
            TopicTracker::new(std::iter::empty::<SparseVector>(), TrackerConfig::default())
                .is_none()
        );
    }

    #[test]
    fn multiple_seeds_average_the_topic() {
        let t =
            TopicTracker::new([v(&[(0, 1.0)]), v(&[(1, 1.0)])], TrackerConfig::default()).unwrap();
        // equidistant from both seeds scores higher than either alone would
        let s_mid = t.score(&v(&[(0, 1.0), (1, 1.0)]));
        let s_one = t.score(&v(&[(0, 1.0)]));
        assert!(s_mid > s_one);
    }
}
