//! TDT tasks on top of the novelty-based similarity.
//!
//! The paper situates itself in the Topic Detection and Tracking programme
//! (§2.1) and lists its canonical tasks; two of them fall out naturally once
//! the forgetting-weighted similarity exists, and this crate implements
//! them as applications of the library:
//!
//! * **First-story detection** ([`FirstStoryDetector`]) — an incoming
//!   document is the first story of a new topic iff its maximum similarity
//!   to every story still alive in the repository falls below a threshold.
//!   The document forgetting model gives this a natural twist: stories
//!   older than the life span have expired, and near-expired stories have
//!   lost most of their weight, so "new" means *new relative to what the
//!   stream still remembers* — exactly the semantics an on-line monitor
//!   wants.
//! * **Topic tracking** ([`TopicTracker`]) — given a handful of example
//!   stories, follow the stream and flag documents whose similarity to the
//!   (decaying) topic profile clears a threshold.
//!
//! Both are driven by [`SimIndex`], an inverted index over the φ
//! (contribution) vectors that answers "which live document is most similar
//! to this one?" in time proportional to the postings of the query's terms
//! rather than to the corpus size. Results are scored with TDT's official
//! methodology — DET curves and the normalised detection cost — in [`det`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod det;
mod fsd;
mod index;
mod tracker;

pub use det::{det_curve, min_cost, CostParams, DetPoint, Trial};
pub use fsd::{FirstStoryDetector, FsdConfig, FsdDecision};
pub use index::SimIndex;
pub use tracker::{TopicTracker, TrackerConfig};
