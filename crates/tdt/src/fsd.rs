//! First-story detection under the document forgetting model.

use std::collections::BTreeMap;

use nidc_forgetting::{DecayParams, Repository, StatsSnapshot, Timestamp};
use nidc_textproc::{DocId, SparseVector};

use crate::SimIndex;

/// Configuration for [`FirstStoryDetector`].
#[derive(Debug, Clone)]
pub struct FsdConfig {
    /// Novelty threshold θ ∈ (0, 1): a document is a *first story* iff its
    /// novelty score — the mean similarity of its `top_k` most similar live
    /// documents, normalised by the document's *shareable* self-similarity —
    /// falls below θ.
    ///
    /// A fresh duplicate scores ≈ 1; a duplicate of a half-forgotten story
    /// scores ≈ its decayed weight — so θ also controls how forgotten a
    /// topic must be before its re-emergence counts as news again.
    pub threshold: f64,
    /// How many nearest stories the score averages over. Averaging (rather
    /// than taking the single maximum) suppresses one-off vocabulary
    /// flukes; 3 is a good default.
    pub top_k: usize,
    /// Days between full φ/index rebuilds (statistics drift between
    /// rebuilds is second-order; 1 day matches the paper's update cadence).
    pub rebuild_every: f64,
}

impl Default for FsdConfig {
    fn default() -> Self {
        Self {
            threshold: 0.2,
            top_k: 3,
            rebuild_every: 1.0,
        }
    }
}

/// The verdict for one processed document.
#[derive(Debug, Clone)]
pub struct FsdDecision {
    /// The document assessed.
    pub id: DocId,
    /// Whether it was flagged as the first story of a new topic.
    pub is_first_story: bool,
    /// The most similar live document at assessment time, if any.
    pub nearest: Option<(DocId, f64)>,
    /// The normalised novelty score `max sim(q,d)/sim(q,q)` (0 = nothing
    /// similar is remembered).
    pub score: f64,
}

/// Streaming first-story detector (TDT's FSD task, under the forgetting
/// model: "new" means new *relative to what the stream still remembers*).
///
/// ```
/// use nidc_forgetting::{DecayParams, Timestamp};
/// use nidc_tdt::{FirstStoryDetector, FsdConfig};
/// use nidc_textproc::{DocId, SparseVector, TermId};
///
/// let tf = |p: &[(u32, f64)]| SparseVector::from_entries(
///     p.iter().map(|&(i, w)| (TermId(i), w)).collect());
/// let mut fsd = FirstStoryDetector::new(
///     DecayParams::from_spans(7.0, 21.0).unwrap(), FsdConfig::default());
///
/// let d0 = fsd.process(DocId(0), Timestamp(0.0), tf(&[(0, 3.0), (1, 1.0)])).unwrap();
/// assert!(d0.is_first_story); // nothing seen before
/// let d1 = fsd.process(DocId(1), Timestamp(0.1), tf(&[(0, 2.0), (1, 2.0)])).unwrap();
/// assert!(!d1.is_first_story); // same story
/// let d2 = fsd.process(DocId(2), Timestamp(0.2), tf(&[(9, 3.0)])).unwrap();
/// assert!(d2.is_first_story); // a genuinely new topic
/// ```
#[derive(Debug, Clone)]
pub struct FirstStoryDetector {
    repo: Repository,
    config: FsdConfig,
    index: SimIndex,
    phis: BTreeMap<DocId, SparseVector>,
    snapshot: Option<StatsSnapshot>,
    last_rebuild: f64,
}

impl FirstStoryDetector {
    /// Creates a detector.
    pub fn new(decay: DecayParams, config: FsdConfig) -> Self {
        Self {
            repo: Repository::new(decay),
            config,
            index: SimIndex::new(),
            phis: BTreeMap::new(),
            snapshot: None,
            last_rebuild: f64::NEG_INFINITY,
        }
    }

    /// The underlying repository.
    pub fn repository(&self) -> &Repository {
        &self.repo
    }

    /// Rebuilds φ vectors and the index from the current statistics.
    fn rebuild(&mut self) {
        let snapshot = self.repo.snapshot();
        self.phis.clear();
        let mut index = SimIndex::new();
        for (id, entry) in self.repo.iter() {
            let Some(pr) = snapshot.pr_doc(id) else {
                continue;
            };
            let scale = pr / entry.len();
            let phi = SparseVector::from_sorted(
                entry
                    .tf()
                    .iter()
                    .filter_map(|(t, f)| {
                        let idf = snapshot.idf(t);
                        (idf > 0.0).then_some((t, scale * f * idf))
                    })
                    .collect(),
            );
            index.insert(id, &phi);
            self.phis.insert(id, phi);
        }
        self.index = index;
        self.snapshot = Some(snapshot);
        self.last_rebuild = self.repo.now().days();
    }

    /// φ for one document under the cached snapshot's idf, but the current
    /// `Pr(d)` (fresh documents are not in the cached snapshot).
    fn phi_for(&self, id: DocId) -> SparseVector {
        let entry = self.repo.doc(id).expect("caller inserted the doc");
        let snapshot = self.snapshot.as_ref().expect("rebuild ran at least once");
        let pr = self.repo.pr_doc(id).expect("live doc");
        let scale = pr / entry.len();
        SparseVector::from_sorted(
            entry
                .tf()
                .iter()
                .filter_map(|(t, f)| {
                    let idf = snapshot.idf(t);
                    (idf > 0.0).then_some((t, scale * f * idf))
                })
                .collect(),
        )
    }

    /// Ingests one document (chronological order) and decides whether it is
    /// a first story.
    ///
    /// # Errors
    /// Propagates repository errors (duplicates, time going backwards, …).
    pub fn process(
        &mut self,
        id: DocId,
        t: Timestamp,
        tf: SparseVector,
    ) -> nidc_forgetting::Result<FsdDecision> {
        self.repo.insert(id, t, tf)?;
        // drop expired stories from the searchable memory
        for dead in self.repo.expire() {
            if let Some(phi) = self.phis.remove(&dead) {
                self.index.remove(dead, &phi);
            }
        }
        if self.repo.now().days() - self.last_rebuild >= self.config.rebuild_every {
            self.rebuild();
        }
        let phi = self.phi_for(id);
        // Normalise by the *shareable* self-similarity: terms no previous
        // live document contains (names, one-off words) inflate ‖φ‖² under
        // idf = 1/√Pr but can never contribute to a similarity, so they are
        // excluded from the denominator. The score is then "how much of the
        // vocabulary the stream could recognise does the closest remembered
        // story actually match" — 1 for a fresh duplicate, ~dw for a
        // half-forgotten one, 0 for an all-new story.
        let self_sim = self.index.shareable_norm_sq(&phi);
        let top = if self_sim > 0.0 {
            self.index.top_n(&phi, self.config.top_k.max(1), Some(id))
        } else {
            Vec::new()
        };
        let nearest = top.first().copied();
        let score = if top.is_empty() || self_sim <= 0.0 {
            0.0
        } else {
            (top.iter().map(|&(_, s)| s).sum::<f64>() / (self_sim * top.len() as f64)).max(0.0)
        };
        // make the newcomer part of the searchable memory
        self.index.insert(id, &phi);
        self.phis.insert(id, phi);
        Ok(FsdDecision {
            id,
            is_first_story: score < self.config.threshold,
            nearest,
            score,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nidc_textproc::TermId;

    fn tf(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
    }

    fn detector() -> FirstStoryDetector {
        FirstStoryDetector::new(
            DecayParams::from_spans(7.0, 21.0).unwrap(),
            FsdConfig::default(),
        )
    }

    #[test]
    fn very_first_document_is_a_first_story() {
        let mut fsd = detector();
        let d = fsd
            .process(DocId(0), Timestamp(0.0), tf(&[(0, 1.0)]))
            .unwrap();
        assert!(d.is_first_story);
        assert!(d.nearest.is_none());
        assert_eq!(d.score, 0.0);
    }

    #[test]
    fn followups_are_not_first_stories() {
        let mut fsd = detector();
        fsd.process(DocId(0), Timestamp(0.0), tf(&[(0, 3.0), (1, 1.0)]))
            .unwrap();
        let d = fsd
            .process(DocId(1), Timestamp(0.1), tf(&[(0, 3.0), (1, 1.0)]))
            .unwrap();
        assert!(!d.is_first_story, "duplicate flagged as first story: {d:?}");
        assert_eq!(d.nearest.unwrap().0, DocId(0));
        assert!(d.score > 0.5);
    }

    #[test]
    fn new_topic_is_detected_among_old_ones() {
        let mut fsd = detector();
        for i in 0..5u64 {
            fsd.process(
                DocId(i),
                Timestamp(0.05 * i as f64),
                tf(&[(0, 3.0), (1, 2.0), (2 + (i % 2) as u32, 1.0)]),
            )
            .unwrap();
        }
        let d = fsd
            .process(DocId(10), Timestamp(0.5), tf(&[(20, 3.0), (21, 2.0)]))
            .unwrap();
        assert!(d.is_first_story, "{d:?}");
    }

    #[test]
    fn forgotten_topics_become_news_again() {
        let mut fsd = detector();
        fsd.process(DocId(0), Timestamp(0.0), tf(&[(0, 3.0), (1, 2.0)]))
            .unwrap();
        // immediate repeat: old story
        let fresh = fsd
            .process(DocId(1), Timestamp(0.2), tf(&[(0, 3.0), (1, 2.0)]))
            .unwrap();
        assert!(!fresh.is_first_story);
        // the same story again after everything expired (γ = 21 days)
        let after_expiry = fsd
            .process(DocId(2), Timestamp(30.0), tf(&[(0, 3.0), (1, 2.0)]))
            .unwrap();
        assert!(
            after_expiry.is_first_story,
            "expired topic should be news again: {after_expiry:?}"
        );
    }

    #[test]
    fn decayed_near_duplicates_score_lower_than_fresh_ones() {
        let mut fsd = detector();
        fsd.process(DocId(0), Timestamp(0.0), tf(&[(0, 3.0), (1, 2.0)]))
            .unwrap();
        let early = fsd
            .process(DocId(1), Timestamp(0.1), tf(&[(0, 3.0), (1, 2.0)]))
            .unwrap();
        // the same comparison 6 days later: doc 0 and 1 have decayed
        let mut fsd2 = detector();
        fsd2.process(DocId(0), Timestamp(0.0), tf(&[(0, 3.0), (1, 2.0)]))
            .unwrap();
        fsd2.process(DocId(1), Timestamp(0.1), tf(&[(0, 3.0), (1, 2.0)]))
            .unwrap();
        let late = fsd2
            .process(DocId(2), Timestamp(6.0), tf(&[(0, 3.0), (1, 2.0)]))
            .unwrap();
        assert!(
            late.score < early.score,
            "decay must lower the novelty score: late {} vs early {}",
            late.score,
            early.score
        );
    }

    #[test]
    fn chronology_is_enforced() {
        let mut fsd = detector();
        fsd.process(DocId(0), Timestamp(5.0), tf(&[(0, 1.0)]))
            .unwrap();
        assert!(fsd
            .process(DocId(1), Timestamp(1.0), tf(&[(0, 1.0)]))
            .is_err());
    }
}
