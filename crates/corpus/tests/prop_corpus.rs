//! Property tests for the corpus generator and container.

use nidc_corpus::{Corpus, Generator, GeneratorConfig, TopicId};
use proptest::prelude::*;

fn corpus_strategy() -> impl Strategy<Value = Corpus> {
    (0u64..1000, 2u32..8).prop_map(|(seed, scale_pct)| {
        Generator::new(GeneratorConfig {
            seed,
            scale: scale_pct as f64 / 100.0, // 0.02..0.08 — fast
            ..GeneratorConfig::default()
        })
        .generate()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Articles are chronological with dense arrival-order ids, all within
    /// the 178-day span, and every topic label resolves to a name.
    #[test]
    fn corpus_invariants(corpus in corpus_strategy()) {
        let mut prev = f64::NEG_INFINITY;
        for (i, a) in corpus.articles().iter().enumerate() {
            prop_assert_eq!(a.id, i as u64);
            prop_assert!(a.day >= prev);
            prop_assert!((0.0..178.0).contains(&a.day));
            prop_assert!(corpus.topic_name(a.topic).is_some());
            prop_assert!(!a.text.is_empty());
            prev = a.day;
        }
    }

    /// The six standard windows partition the articles exactly.
    #[test]
    fn windows_partition(corpus in corpus_strategy()) {
        let windows = corpus.standard_windows();
        prop_assert_eq!(windows.len(), 6);
        let mut seen = vec![false; corpus.len()];
        for w in &windows {
            for &i in &w.article_indices {
                prop_assert!(!seen[i], "article {i} in two windows");
                seen[i] = true;
                let a = &corpus.articles()[i];
                prop_assert!(a.day >= w.start && a.day < w.end);
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "article missed by all windows");
    }

    /// The topic inventory counts match the articles exactly.
    #[test]
    fn inventory_counts_match(corpus in corpus_strategy()) {
        for t in corpus.topics() {
            let actual = corpus
                .articles()
                .iter()
                .filter(|a| a.topic == t.id)
                .count();
            prop_assert_eq!(t.count, actual, "topic {} count mismatch", t.id);
        }
        let total: usize = corpus.topics().iter().map(|t| t.count).sum();
        prop_assert_eq!(total, corpus.len());
    }

    /// Histograms conserve counts for any bin width.
    #[test]
    fn histogram_conserves_counts(corpus in corpus_strategy(), bin in 1.0f64..40.0) {
        let topic = corpus.topics()[0].id;
        let hist = corpus.topic_histogram(topic, bin);
        let total: usize = hist.iter().map(|&(_, n)| n).sum();
        let expected = corpus.articles().iter().filter(|a| a.topic == topic).count();
        prop_assert_eq!(total, expected);
        // bins start at multiples of the width
        for (i, &(start, _)) in hist.iter().enumerate() {
            prop_assert!((start - i as f64 * bin).abs() < 1e-9);
        }
    }

    /// JSONL round trip preserves the corpus (ids, labels, days, text).
    #[test]
    fn jsonl_roundtrip(corpus in corpus_strategy()) {
        let mut buf = Vec::new();
        corpus.save_jsonl(&mut buf).unwrap();
        let back = Corpus::load_jsonl(buf.as_slice()).unwrap();
        prop_assert_eq!(back.len(), corpus.len());
        for (a, b) in corpus.articles().iter().zip(back.articles()) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.topic, b.topic);
            prop_assert!((a.day - b.day).abs() < 1e-12);
            prop_assert_eq!(&a.text, &b.text);
        }
    }

    /// The five narrative topics exist at every scale (they carry the
    /// paper's claims and must never be scaled away).
    #[test]
    fn narrative_topics_survive_scaling(corpus in corpus_strategy()) {
        for id in [20074u32, 20077, 20078, 20001, 20002] {
            let n = corpus
                .articles()
                .iter()
                .filter(|a| a.topic == TopicId(id))
                .count();
            prop_assert!(n > 0, "topic {id} vanished");
        }
    }
}
