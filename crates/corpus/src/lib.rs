//! Synthetic TDT2-like news-stream corpus.
//!
//! The paper evaluates on the TDT2 corpus (LDC): ~64,400 chronologically
//! ordered news stories from 6 sources (Jan 4 – Jun 30, 1998), of which 7,578
//! single-"YES"-label stories over 96 topics form the evaluation subset
//! (paper §6.2.1, Tables 2 and 5). TDT2 is licensed data we cannot ship, so
//! this crate generates a *synthetic equivalent* that preserves everything
//! the paper's experiments depend on:
//!
//! * **chronology** — articles arrive in time order over a 178-day span,
//!   split into six 30-day windows (the last has 28 days), exactly as §6.2.1;
//! * **heavy-tailed topic sizes** — a few 500–1500-document topics
//!   ("Asian Economic Crisis", "Current Conflict with Iraq", …) and a long
//!   tail of 2–40-document topics, calibrated to Table 5;
//! * **temporal topic profiles** — per-window counts and within-window
//!   placement reproduce the histogram shapes of Figures 5–9 (bursty,
//!   bimodal, early-burst, late-burst, sustained), which drive the paper's
//!   hot-topic-detection claims;
//! * **a topical language model** — each topic owns a set of specific terms;
//!   article text mixes topic terms with a shared Zipfian background
//!   vocabulary, so clustering is possible but not trivial (the paper's F1
//!   scores are in the 0.3–0.7 range, not 1.0).
//!
//! Ground-truth labels come for free: every [`Article`] records its topic.
//!
//! # Example
//!
//! ```
//! use nidc_corpus::{Generator, GeneratorConfig};
//!
//! let corpus = Generator::new(GeneratorConfig { scale: 0.05, ..GeneratorConfig::default() })
//!     .generate();
//! assert!(corpus.len() > 100);
//! let windows = corpus.standard_windows();
//! assert_eq!(windows.len(), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod article;
mod catalog;
mod corpus;
mod generator;
mod language;
mod windows;

pub use article::{Article, TopicId};
pub use catalog::{Placement, TopicCatalog, TopicSpec};
pub use corpus::{Corpus, TopicInfo};
pub use generator::{Generator, GeneratorConfig};
pub use language::LanguageModel;
pub use windows::{TimeWindow, WindowStats};

/// Day boundaries of the paper's six time windows, relative to day 0 =
/// Jan 4 1998: five 30-day windows and one final 28-day window (§6.2.1).
pub const STANDARD_WINDOW_BOUNDS: [(f64, f64); 6] = [
    (0.0, 30.0),
    (30.0, 60.0),
    (60.0, 90.0),
    (90.0, 120.0),
    (120.0, 150.0),
    (150.0, 178.0),
];

/// Human-readable labels of the standard windows (paper §6.2.1).
pub const STANDARD_WINDOW_LABELS: [&str; 6] = [
    "Jan4-Feb2",
    "Feb3-Mar4",
    "Mar5-Apr3",
    "Apr4-May3",
    "May4-Jun2",
    "Jun3-Jun30",
];
