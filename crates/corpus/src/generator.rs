//! The deterministic corpus generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::article::{Article, TopicId};
use crate::catalog::{Placement, TopicCatalog};
use crate::corpus::{Corpus, TopicInfo};
use crate::language::{LanguageModel, ZipfTable};
use crate::STANDARD_WINDOW_BOUNDS;

/// Configuration for [`Generator`].
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// RNG seed — the same seed always produces the identical corpus.
    pub seed: u64,
    /// Document-count scale factor. 1.0 reproduces the paper's 7,578-document
    /// evaluation subset; smaller values generate proportionally smaller
    /// corpora for fast tests.
    pub scale: f64,
    /// The synthetic language model.
    pub language: LanguageModel,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            seed: 19980104, // Jan 4, 1998 — day 0 of TDT2
            scale: 1.0,
            language: LanguageModel::standard(),
        }
    }
}

/// Generates TDT2-like corpora (see the [crate docs](crate) for what is
/// calibrated to which table/figure of the paper).
#[derive(Debug, Clone)]
pub struct Generator {
    config: GeneratorConfig,
    catalog: TopicCatalog,
}

impl Generator {
    /// A generator with the default (paper Table 2/5) catalogue.
    pub fn new(config: GeneratorConfig) -> Self {
        Self {
            config,
            catalog: TopicCatalog::default(),
        }
    }

    /// A generator over a custom catalogue.
    pub fn with_catalog(config: GeneratorConfig, catalog: TopicCatalog) -> Self {
        Self { config, catalog }
    }

    /// The catalogue in use.
    pub fn catalog(&self) -> &TopicCatalog {
        &self.catalog
    }

    fn scaled(&self, count: u32) -> u32 {
        if count == 0 {
            return 0;
        }
        // round, but never scale a non-zero count to zero: tiny topics must
        // survive (they carry the paper's small-hot-topic claims)
        (((count as f64) * self.config.scale).round() as u32).max(1)
    }

    /// Generates the labelled evaluation corpus (the analogue of the paper's
    /// 7,578-document, 96-topic TDT2 subset).
    pub fn generate(&self) -> Corpus {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut articles: Vec<Article> = Vec::new();
        let mut topics: Vec<TopicInfo> = Vec::new();
        // dense topic index for the language model
        let mut next_topic_idx: usize = 0;

        // 1. Named topics.
        for spec in &self.catalog.named {
            let topic_idx = next_topic_idx;
            next_topic_idx += 1;
            topics.push(TopicInfo {
                id: spec.id,
                name: spec.name.to_owned(),
                count: 0,
            });
            for (w, (&count, &placement)) in spec
                .window_counts
                .iter()
                .zip(spec.placements.iter())
                .enumerate()
            {
                let n = self.scaled(count);
                self.emit_window_docs(&mut rng, &mut articles, spec.id, topic_idx, w, n, placement);
            }
        }

        // 2. Filler topics per window, to reach the Table 2 per-window
        //    document and topic counts.
        let mut filler_id = 30000u32;
        for w in 0..6 {
            let target_docs =
                ((self.catalog.targets.docs[w] as f64) * self.config.scale).round() as i64;
            let named_docs: i64 = self
                .catalog
                .named
                .iter()
                .map(|t| self.scaled(t.window_counts[w]) as i64)
                .sum();
            let deficit_docs = (target_docs - named_docs).max(0) as u32;
            let named_topics = self.catalog.named_topics_in_window(w);
            let deficit_topics = self.catalog.targets.topics[w].saturating_sub(named_topics);
            if deficit_topics == 0 && deficit_docs == 0 {
                continue;
            }
            let n_filler = if deficit_topics > 0 {
                deficit_topics.min(deficit_docs.max(1))
            } else {
                1
            };
            // distribute deficit docs over filler topics with a Zipfian skew
            let mut sizes = vec![1u32; n_filler as usize];
            let mut remaining = deficit_docs.saturating_sub(n_filler);
            let zipf = ZipfTable::new(n_filler as usize, 1.0);
            while remaining > 0 {
                sizes[zipf.sample(&mut rng)] += 1;
                remaining -= 1;
            }
            for size in sizes {
                let id = TopicId(filler_id);
                filler_id += 1;
                let topic_idx = next_topic_idx;
                next_topic_idx += 1;
                topics.push(TopicInfo {
                    id,
                    name: format!("Synthetic minor story {}", filler_id - 30000),
                    count: 0,
                });
                let placement = match rng.gen_range(0..4) {
                    0 => Placement::Early,
                    1 => Placement::Center,
                    2 => Placement::Late,
                    _ => Placement::Uniform,
                };
                self.emit_window_docs(&mut rng, &mut articles, id, topic_idx, w, size, placement);
            }
        }

        Corpus::from_parts(articles, topics)
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_window_docs(
        &self,
        rng: &mut StdRng,
        articles: &mut Vec<Article>,
        id: TopicId,
        topic_idx: usize,
        window: usize,
        n: u32,
        placement: Placement,
    ) {
        let (start, end) = STANDARD_WINDOW_BOUNDS[window];
        let span = end - start;
        for _ in 0..n {
            let day = start + placement.warp(rng.gen::<f64>()) * span;
            articles.push(Article {
                id: 0, // reassigned by Corpus::from_parts
                topic: id,
                day,
                text: self.config.language.generate_text(topic_idx, day, rng),
            });
        }
    }

    /// Generates a *dense unlabelled-style stream* for timing experiments
    /// (the analogue of the raw 64k-document TDT2 feed used in the paper's
    /// Experiment 1): `per_day` documents per day for `days` days, topics
    /// drawn Zipf-style from a pool of `n_topics`.
    pub fn dense_stream(seed: u64, days: u32, per_day: u32, n_topics: usize) -> Corpus {
        let mut rng = StdRng::seed_from_u64(seed);
        let lm = LanguageModel::standard();
        let zipf = ZipfTable::new(n_topics, 1.0);
        let mut articles = Vec::with_capacity((days * per_day) as usize);
        let topics: Vec<TopicInfo> = (0..n_topics)
            .map(|i| TopicInfo {
                id: TopicId(40000 + i as u32),
                name: format!("Stream topic {i}"),
                count: 0,
            })
            .collect();
        for day in 0..days {
            for _ in 0..per_day {
                let topic_idx = zipf.sample(&mut rng);
                let day_frac = day as f64 + rng.gen::<f64>();
                articles.push(Article {
                    id: 0,
                    topic: TopicId(40000 + topic_idx as u32),
                    day: day_frac,
                    text: lm.generate_text(topic_idx, day_frac, &mut rng),
                });
            }
        }
        Corpus::from_parts(articles, topics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TABLE2_TARGETS;

    fn small_corpus() -> Corpus {
        Generator::new(GeneratorConfig {
            scale: 0.1,
            ..GeneratorConfig::default()
        })
        .generate()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_corpus();
        let b = small_corpus();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.articles()[5].text, b.articles()[5].text);
        assert_eq!(a.articles()[5].day, b.articles()[5].day);
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_corpus();
        let b = Generator::new(GeneratorConfig {
            seed: 99,
            scale: 0.1,
            ..GeneratorConfig::default()
        })
        .generate();
        assert_ne!(a.articles()[0].text, b.articles()[0].text);
    }

    #[test]
    fn full_scale_matches_table2_document_totals() {
        let corpus = Generator::new(GeneratorConfig::default()).generate();
        let windows = corpus.standard_windows();
        for (w, window) in windows.iter().enumerate() {
            let target = TABLE2_TARGETS.docs[w] as f64;
            let got = window.len() as f64;
            assert!(
                (got - target).abs() / target < 0.05,
                "window {w}: {got} docs vs Table 2 target {target}"
            );
        }
        // grand total ≈ 7578
        assert!((corpus.len() as f64 - 7578.0).abs() / 7578.0 < 0.05);
    }

    #[test]
    fn full_scale_matches_table2_topic_counts() {
        let corpus = Generator::new(GeneratorConfig::default()).generate();
        let windows = corpus.standard_windows();
        for (w, window) in windows.iter().enumerate() {
            let stats = corpus.window_stats(window);
            let target = TABLE2_TARGETS.topics[w] as f64;
            let got = stats.num_topics as f64;
            assert!(
                (got - target).abs() <= 6.0,
                "window {w}: {got} topics vs Table 2 target {target}"
            );
        }
    }

    #[test]
    fn articles_are_chronological_with_dense_ids() {
        let c = small_corpus();
        for (i, pair) in c.articles().windows(2).enumerate() {
            assert!(pair[0].day <= pair[1].day, "out of order at {i}");
        }
        for (i, a) in c.articles().iter().enumerate() {
            assert_eq!(a.id, i as u64);
        }
    }

    #[test]
    fn every_article_has_a_known_topic_and_text() {
        let c = small_corpus();
        for a in c.articles() {
            assert!(c.topic_name(a.topic).is_some(), "unknown topic {}", a.topic);
            assert!(!a.text.is_empty());
        }
    }

    #[test]
    fn denmark_strike_histogram_shape() {
        // Figure 7: all documents late in w4 / early in w5.
        let c = Generator::new(GeneratorConfig::default()).generate();
        let hist = c.topic_histogram(TopicId(20078), 1.0);
        let total: usize = hist.iter().map(|&(_, n)| n).sum();
        assert!(total >= 10, "Denmark Strike too small: {total}");
        for &(day, n) in &hist {
            if n > 0 {
                assert!(
                    (110.0..130.0).contains(&day),
                    "Denmark Strike doc outside late-w4/early-w5: day {day}"
                );
            }
        }
    }

    #[test]
    fn unabomber_histogram_is_bimodal() {
        // Figure 6: burst in first half of w1, re-emergence late in w4.
        let c = Generator::new(GeneratorConfig::default()).generate();
        let hist = c.topic_histogram(TopicId(20077), 1.0);
        let early: usize = hist
            .iter()
            .filter(|&&(d, _)| d < 15.0)
            .map(|&(_, n)| n)
            .sum();
        let middle: usize = hist
            .iter()
            .filter(|&&(d, _)| (40.0..100.0).contains(&d))
            .map(|&(_, n)| n)
            .sum();
        let late_w4: usize = hist
            .iter()
            .filter(|&&(d, _)| (110.0..120.0).contains(&d))
            .map(|&(_, n)| n)
            .sum();
        assert!(early > 50, "w1 burst missing: {early}");
        assert!(late_w4 >= 10, "w4 re-emergence missing: {late_w4}");
        assert!(middle < early / 4, "no quiet middle: {middle} vs {early}");
    }

    #[test]
    fn scaled_never_drops_small_topics() {
        let c = Generator::new(GeneratorConfig {
            scale: 0.05,
            ..GeneratorConfig::default()
        })
        .generate();
        // Denmark Strike (15 docs at scale 1) must still exist.
        let total: usize = c
            .articles()
            .iter()
            .filter(|a| a.topic == TopicId(20078))
            .count();
        assert!(total >= 2, "tiny topic vanished at small scale");
    }

    #[test]
    fn dense_stream_has_requested_volume() {
        let c = Generator::dense_stream(7, 5, 40, 16);
        assert_eq!(c.len(), 200);
        assert!(c.articles().iter().all(|a| a.day < 5.0));
        // multiple topics in play
        let distinct: std::collections::HashSet<_> = c.articles().iter().map(|a| a.topic).collect();
        assert!(distinct.len() > 3);
    }
}
