//! Time windows and per-window corpus statistics (paper Table 2).

use std::collections::BTreeMap;

use crate::article::{Article, TopicId};

/// One time window over the article stream.
#[derive(Debug, Clone)]
pub struct TimeWindow {
    /// 0-based window index.
    pub index: usize,
    /// Human-readable label ("Jan4-Feb2", …).
    pub label: String,
    /// Inclusive start day.
    pub start: f64,
    /// Exclusive end day.
    pub end: f64,
    /// Indices into the corpus article vector, in chronological order.
    pub article_indices: Vec<usize>,
}

impl TimeWindow {
    /// Number of articles in the window.
    pub fn len(&self) -> usize {
        self.article_indices.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.article_indices.is_empty()
    }

    /// Iterates the window's articles out of a corpus article slice.
    pub fn articles<'a>(&'a self, all: &'a [Article]) -> impl Iterator<Item = &'a Article> {
        self.article_indices.iter().map(move |&i| &all[i])
    }
}

/// Per-window statistics, i.e. one column of the paper's Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// Number of documents.
    pub num_docs: usize,
    /// Number of distinct topics.
    pub num_topics: usize,
    /// Smallest topic size.
    pub min_topic_size: usize,
    /// Largest topic size.
    pub max_topic_size: usize,
    /// Median topic size.
    pub median_topic_size: f64,
    /// Mean topic size.
    pub mean_topic_size: f64,
}

impl WindowStats {
    /// Computes the statistics of a window over `articles`.
    pub fn compute(window: &TimeWindow, articles: &[Article]) -> Self {
        let mut per_topic: BTreeMap<TopicId, usize> = BTreeMap::new();
        for a in window.articles(articles) {
            *per_topic.entry(a.topic).or_insert(0) += 1;
        }
        let mut sizes: Vec<usize> = per_topic.values().copied().collect();
        sizes.sort_unstable();
        let num_topics = sizes.len();
        let num_docs = window.len();
        if num_topics == 0 {
            return Self {
                num_docs: 0,
                num_topics: 0,
                min_topic_size: 0,
                max_topic_size: 0,
                median_topic_size: 0.0,
                mean_topic_size: 0.0,
            };
        }
        let median = if num_topics % 2 == 1 {
            sizes[num_topics / 2] as f64
        } else {
            (sizes[num_topics / 2 - 1] + sizes[num_topics / 2]) as f64 / 2.0
        };
        Self {
            num_docs,
            num_topics,
            min_topic_size: sizes[0],
            max_topic_size: *sizes.last().expect("non-empty"),
            median_topic_size: median,
            mean_topic_size: num_docs as f64 / num_topics as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn art(id: u64, topic: u32, day: f64) -> Article {
        Article {
            id,
            topic: TopicId(topic),
            day,
            text: String::new(),
        }
    }

    #[test]
    fn stats_of_simple_window() {
        let articles = vec![
            art(0, 1, 0.5),
            art(1, 1, 1.0),
            art(2, 1, 2.0),
            art(3, 2, 2.5),
        ];
        let w = TimeWindow {
            index: 0,
            label: "test".into(),
            start: 0.0,
            end: 30.0,
            article_indices: vec![0, 1, 2, 3],
        };
        let s = WindowStats::compute(&w, &articles);
        assert_eq!(s.num_docs, 4);
        assert_eq!(s.num_topics, 2);
        assert_eq!(s.min_topic_size, 1);
        assert_eq!(s.max_topic_size, 3);
        assert_eq!(s.median_topic_size, 2.0);
        assert_eq!(s.mean_topic_size, 2.0);
    }

    #[test]
    fn median_with_odd_topic_count() {
        let articles = vec![
            art(0, 1, 0.0),
            art(1, 2, 0.0),
            art(2, 2, 0.0),
            art(3, 3, 0.0),
            art(4, 3, 0.0),
            art(5, 3, 0.0),
        ];
        let w = TimeWindow {
            index: 0,
            label: "t".into(),
            start: 0.0,
            end: 1.0,
            article_indices: (0..6).collect(),
        };
        let s = WindowStats::compute(&w, &articles);
        assert_eq!(s.num_topics, 3);
        assert_eq!(s.median_topic_size, 2.0);
    }

    #[test]
    fn empty_window_stats_are_zero() {
        let w = TimeWindow {
            index: 0,
            label: "empty".into(),
            start: 0.0,
            end: 1.0,
            article_indices: vec![],
        };
        let s = WindowStats::compute(&w, &[]);
        assert_eq!(s.num_docs, 0);
        assert_eq!(s.num_topics, 0);
        assert_eq!(s.mean_topic_size, 0.0);
    }
}
