//! Articles and topic identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

use nidc_textproc::DocId;

/// A ground-truth topic label (the TDT2 topic ids are 20001–20100; synthetic
/// filler topics use ids ≥ 30000).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TopicId(pub u32);

impl fmt::Display for TopicId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One news article of the synthetic stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Article {
    /// Unique article id (dense, in arrival order).
    pub id: u64,
    /// Ground-truth topic label.
    pub topic: TopicId,
    /// Arrival day (fractional), relative to day 0 = Jan 4.
    pub day: f64,
    /// The article body: space-separated synthetic tokens.
    pub text: String,
}

impl Article {
    /// The article id as a workspace [`DocId`].
    pub fn doc_id(&self) -> DocId {
        DocId(self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_id_mirrors_article_id() {
        let a = Article {
            id: 7,
            topic: TopicId(20001),
            day: 1.5,
            text: "asia crisis market".into(),
        };
        assert_eq!(a.doc_id(), DocId(7));
    }

    #[test]
    fn serde_roundtrip() {
        let a = Article {
            id: 1,
            topic: TopicId(20077),
            day: 3.25,
            text: "unabomber trial".into(),
        };
        let json = serde_json::to_string(&a).unwrap();
        let back: Article = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id, 1);
        assert_eq!(back.topic, TopicId(20077));
        assert_eq!(back.day, 3.25);
        assert_eq!(back.text, "unabomber trial");
    }

    #[test]
    fn topic_display() {
        assert_eq!(TopicId(20001).to_string(), "20001");
    }
}
